#!/usr/bin/env python
"""Regenerate the ad-events golden results file.

Usage:  PYTHONPATH=src python tools/gen_adevents_golden.py

Writes tests/adevents/data/golden_x1_seed7.json. Same shape as the
TPC-H golden file: per query the output columns, the stringified first
row, the sum of all numeric cells, and the row count. Regenerate only
for *intentional* behaviour changes, and review the diff.
"""

from __future__ import annotations

import json
import math
from pathlib import Path

from repro.adevents import QUERY_NAMES, build, generate
from repro.engine import execute

SCALE = 1.0
SEED = 7


def _numeric_sum(rows) -> float:
    total = 0.0
    for row in rows:
        for value in row:
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                if isinstance(value, float) and math.isnan(value):
                    continue
                total += float(value)
    return total


def main() -> None:
    db = generate(SCALE, seed=SEED)
    golden = {}
    for name in QUERY_NAMES:
        result = execute(db, build(db, name))
        golden[name] = {
            "columns": list(result.column_names),
            "first_row": [str(v) for v in result.rows[0]] if len(result) else [],
            "numeric_sum": round(_numeric_sum(result.rows), 2),
            "rows": len(result),
        }
        print(f"{name:22s} rows={golden[name]['rows']}")
    out = Path(__file__).parent.parent / "tests" / "adevents" / "data" / "golden_x1_seed7.json"
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(golden, indent=1, sort_keys=True) + "\n")
    print(f"wrote {out}")


if __name__ == "__main__":
    main()
