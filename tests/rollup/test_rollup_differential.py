"""Differential wall: rollup routing must never change a result.

Every TPC-H and ad-events query runs with rollups on and off, serially
and with 4 morsel workers, and every configuration must match the
checked-in goldens. A separate pin asserts the router actually fires on
a healthy fraction of the workload — a rollup layer that routes nothing
would pass the differential trivially.
"""

from __future__ import annotations

import json
import math
from pathlib import Path

import pytest

from repro.adevents import QUERY_NAMES, build as adevents_build
from repro.engine import Executor, ParallelExecutor
from repro.engine.explain import explain
from repro.engine.optimizer import DEFAULT_SETTINGS
from repro.tpch import ALL_QUERY_NUMBERS, get_query

TPCH_GOLDEN = json.loads(
    (Path(__file__).parent.parent / "tpch" / "data" / "golden_sf001_seed42.json")
    .read_text()
)
ADEVENTS_GOLDEN = json.loads(
    (Path(__file__).parent.parent / "adevents" / "data" / "golden_x1_seed7.json")
    .read_text()
)

ROLLUPS_OFF = DEFAULT_SETTINGS.without_rollups()

# Queries the workload miner + router must provably serve from cubes at
# these scales (ISSUE floor is 6; pin well above it so regressions in
# canonicalization show up as routing loss, not silent slowdowns).
MIN_ROUTED = 6


def _numeric_sum(rows) -> float:
    total = 0.0
    for row in rows:
        for value in row:
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                if isinstance(value, float) and math.isnan(value):
                    continue
                total += float(value)
    return total


def _assert_golden(result, expected, label: str, exact_first_row: bool = True) -> None:
    assert len(result) == expected["rows"], label
    assert list(result.column_names) == expected["columns"], label
    assert _numeric_sum(result.rows) == pytest.approx(
        expected["numeric_sum"], rel=1e-6, abs=0.02
    ), label
    if expected["first_row"] and exact_first_row:
        # The exact string pin only holds for base-table execution: a
        # routed SUM recombines per-cell partials in a different float
        # order, legitimately moving the last ulp. Routed configurations
        # are instead pinned row-for-row (rel 1e-9) against the
        # golden-matching rollups-off run.
        assert [str(v) for v in result.rows[0]] == expected["first_row"], label


def _values_close(a, b) -> bool:
    if isinstance(a, float) and isinstance(b, float):
        if math.isnan(a) and math.isnan(b):
            return True
        return math.isclose(a, b, rel_tol=1e-9, abs_tol=1e-9)
    return a == b


def _assert_rows_match(reference, candidate, label: str) -> None:
    assert candidate.column_names == reference.column_names, label
    assert len(candidate) == len(reference), label
    for i, (expected, actual) in enumerate(zip(reference.rows, candidate.rows)):
        for a, b in zip(expected, actual):
            assert _values_close(a, b), (label, i, expected, actual)


class TestTpchDifferential:
    @pytest.fixture(scope="class")
    def parallel(self, rollup_tpch_db):
        with ParallelExecutor(rollup_tpch_db, workers=4, cache_size=8) as ex:
            yield ex

    @pytest.mark.parametrize("number", ALL_QUERY_NUMBERS)
    def test_on_off_serial_parallel(self, rollup_tpch_db, parallel, number):
        db = rollup_tpch_db
        plan = get_query(number).build(db, {"sf": 0.01})
        expected = TPCH_GOLDEN[str(number)]
        off = Executor(db, ROLLUPS_OFF).execute(plan)
        on = Executor(db, DEFAULT_SETTINGS).execute(plan)
        _assert_golden(off, expected, f"q{number} rollups-off serial")
        _assert_golden(on, expected, f"q{number} rollups-on serial", exact_first_row=False)
        _assert_rows_match(off, on, f"q{number} on-vs-off serial")
        # Twice through the parallel executor: first populates the
        # semantic cache, second answers from it.
        for attempt in ("cold", "warm"):
            par = parallel.execute(plan)
            _assert_rows_match(off, par, f"q{number} parallel-4 {attempt}")


class TestAdeventsDifferential:
    @pytest.fixture(scope="class")
    def parallel(self, rollup_adevents_db):
        with ParallelExecutor(rollup_adevents_db, workers=4, cache_size=8) as ex:
            yield ex

    @pytest.mark.parametrize("name", QUERY_NAMES)
    def test_on_off_serial_parallel(self, rollup_adevents_db, parallel, name):
        db = rollup_adevents_db
        plan = adevents_build(db, name)
        expected = ADEVENTS_GOLDEN[name]
        off = Executor(db, ROLLUPS_OFF).execute(plan)
        on = Executor(db, DEFAULT_SETTINGS).execute(plan)
        _assert_golden(off, expected, f"{name} rollups-off serial")
        _assert_golden(on, expected, f"{name} rollups-on serial", exact_first_row=False)
        _assert_rows_match(off, on, f"{name} on-vs-off serial")
        for attempt in ("cold", "warm"):
            par = parallel.execute(plan)
            _assert_rows_match(off, par, f"{name} parallel-4 {attempt}")


class TestRoutingCoverage:
    def test_enough_queries_route(self, rollup_tpch_db, rollup_adevents_db):
        routed = []
        for number in ALL_QUERY_NUMBERS:
            plan = get_query(number).build(rollup_tpch_db, {"sf": 0.01})
            if "[rollup:" in explain(plan, rollup_tpch_db):
                routed.append(f"q{number}")
        for name in QUERY_NAMES:
            plan = adevents_build(rollup_adevents_db, name)
            if "[rollup:" in explain(plan, rollup_adevents_db):
                routed.append(name)
        assert len(routed) >= MIN_ROUTED, routed
        # Canaries: the archetypal repeated-dashboard queries must route.
        assert "q1" in routed
        assert "daily_funnel" in routed

    def test_ablation_never_routes(self, rollup_tpch_db):
        for number in ALL_QUERY_NUMBERS:
            plan = get_query(number).build(rollup_tpch_db, {"sf": 0.01})
            rendered = explain(plan, rollup_tpch_db, settings=ROLLUPS_OFF)
            assert "[rollup:" not in rendered, f"q{number}"

    def test_q6_is_guarded_not_routed(self, rollup_tpch_db):
        """Q6 filters near-unique columns; a cube for it would hold
        about as many cells as lineitem has rows, so the cardinality
        guard must have rejected it."""
        plan = get_query(6).build(rollup_tpch_db, {"sf": 0.01})
        assert "[rollup:" not in explain(plan, rollup_tpch_db)
