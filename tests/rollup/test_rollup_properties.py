"""Hypothesis soundness wall for rollup routing.

For every generated (cube, query) pair the router must do one of two
things: route the query onto the cube and produce *exactly* the rows
base-table execution produces, or decline and leave the plan untouched.
There is no third outcome. The generator deliberately includes the
classic traps: NULL group keys, AVG recomposition from sum/count
partials, and filters over columns the cube never materialized (which
must force a decline, not a wrong answer).
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import Column, Database, Executor, Q, Table, agg, col
from repro.engine.explain import explain
from repro.engine.optimizer import DEFAULT_SETTINGS
from repro.engine.types import FLOAT64, INT64
from repro.rollup import enable_rollups

ROLLUPS_OFF = DEFAULT_SETTINGS.without_rollups()

# One row of the generated fact table: (g1, g1-is-valid, g2, v, w).
rows_strategy = st.lists(
    st.tuples(
        st.integers(0, 3),
        st.booleans(),
        st.integers(0, 2),
        st.integers(-100, 100),
        st.floats(min_value=-1e3, max_value=1e3, allow_nan=False, width=32),
    ),
    min_size=1,
    max_size=40,
)

MEASURES = {
    "s": lambda: agg.sum(col("v")),
    "a": lambda: agg.avg(col("v")),
    "n": lambda: agg.count_star(),
    "c": lambda: agg.count(col("v")),
    "lo": lambda: agg.min(col("v")),
    "hi": lambda: agg.max(col("w")),
}

measure_sets = st.lists(
    st.sampled_from(sorted(MEASURES)), min_size=1, max_size=4, unique=True
)


def _make_db(rows):
    g1 = Column(
        INT64,
        np.array([r[0] for r in rows], dtype=np.int64),
        valid=np.array([r[1] for r in rows]),
    )
    db = Database()
    db.add(Table("facts", {
        "g1": g1,
        "g2": Column.from_ints([r[2] for r in rows]),
        "v": Column.from_ints([r[3] for r in rows]),
        "w": Column(FLOAT64, np.array([r[4] for r in rows], dtype=np.float64)),
    }))
    return db


def _seed_cube(db):
    """Mine one wide cube over (g1, g2) carrying every measure part."""
    seed = Q(db).scan("facts").aggregate(
        by=["g1", "g2"], **{name: make() for name, make in MEASURES.items()}
    )
    enable_rollups(db, plans=[seed])
    return db


def _query(db, group_by, measure_names, filter_value):
    q = Q(db).scan("facts")
    if filter_value is not None:
        q = q.filter(col("g2") == filter_value)
    q = q.aggregate(
        by=list(group_by),
        **{name: MEASURES[name]() for name in measure_names},
    )
    return q.sort(*group_by) if group_by else q


def _assert_equivalent(db, plan, label):
    off = Executor(db, ROLLUPS_OFF).execute(plan)
    on = Executor(db, DEFAULT_SETTINGS).execute(plan)
    assert on.column_names == off.column_names, label
    assert len(on) == len(off), label
    for i, (expected, actual) in enumerate(zip(off.rows, on.rows)):
        for a, b in zip(expected, actual):
            if isinstance(a, float) and isinstance(b, float):
                assert (math.isnan(a) and math.isnan(b)) or math.isclose(
                    a, b, rel_tol=1e-9, abs_tol=1e-9
                ), (label, i, expected, actual)
            else:
                assert a == b, (label, i, expected, actual)
    return off, on


class TestSubsumptionSoundness:
    @given(rows_strategy,
           st.sampled_from([("g1", "g2"), ("g1",), ("g2",)]),
           measure_sets,
           st.one_of(st.none(), st.integers(0, 2)))
    @settings(max_examples=40, deadline=None)
    def test_routed_query_matches_base_execution(
        self, rows, group_by, measure_names, filter_value
    ):
        """Shapes the cube provably subsumes must route AND match,
        covering NULL group keys and AVG = sum/count recomposition."""
        db = _seed_cube(_make_db(rows))
        plan = _query(db, group_by, measure_names, filter_value)
        rendered = explain(plan, db)
        assert "[rollup:" in rendered, rendered
        _assert_equivalent(db, plan, (group_by, measure_names, filter_value))

    @given(rows_strategy, measure_sets)
    @settings(max_examples=25, deadline=None)
    def test_filter_on_unmaterialized_column_declines(self, rows, measure_names):
        """A predicate over ``v`` needs per-row data the cube collapsed
        away; the router must decline — silently routing would return
        garbage, and the differential here would catch it."""
        db = _seed_cube(_make_db(rows))
        plan = (
            Q(db).scan("facts")
            .filter(col("v") > 0)
            .aggregate(by=["g1"], **{n: MEASURES[n]() for n in measure_names})
            .sort("g1")
        )
        assert "[rollup:" not in explain(plan, db)
        _assert_equivalent(db, plan, ("decline-filter", measure_names))

    @given(rows_strategy)
    @settings(max_examples=25, deadline=None)
    def test_grouping_by_unmaterialized_column_declines(self, rows):
        db = _seed_cube(_make_db(rows))
        plan = (
            Q(db).scan("facts")
            .aggregate(by=["v"], n=agg.count_star())
            .sort("v")
        )
        assert "[rollup:" not in explain(plan, db)
        _assert_equivalent(db, plan, "decline-group")

    @given(rows_strategy)
    @settings(max_examples=25, deadline=None)
    def test_null_groups_survive_reaggregation(self, rows):
        """NULL keys form their own group both in the cube and in any
        coarser re-aggregation of it; counts must stay exact."""
        db = _seed_cube(_make_db(rows))
        plan = (
            Q(db).scan("facts")
            .aggregate(by=["g1"], n=agg.count_star(), s=agg.sum(col("v")))
            .sort("g1")
        )
        assert "[rollup:" in explain(plan, db)
        off, _ = _assert_equivalent(db, plan, "null-groups")
        assert sum(off.column("n")) == len(rows)

    @given(rows_strategy)
    @settings(max_examples=25, deadline=None)
    def test_avg_recomposition_is_exact_over_integers(self, rows):
        """AVG over integers routed through sum/count parts must equal
        the naive ratio bit-for-bit (integer sums are exact in the cube
        thanks to the isum merge kernel)."""
        db = _seed_cube(_make_db(rows))
        plan = (
            Q(db).scan("facts")
            .aggregate(by=["g2"], a=agg.avg(col("v")), n=agg.count(col("v")))
            .sort("g2")
        )
        assert "[rollup:" in explain(plan, db)
        on = Executor(db, DEFAULT_SETTINGS).execute(plan)
        naive_sum: dict[int, int] = {}
        naive_cnt: dict[int, int] = {}
        for _, _, g2, v, _ in rows:
            naive_sum[g2] = naive_sum.get(g2, 0) + v
            naive_cnt[g2] = naive_cnt.get(g2, 0) + 1
        for g2, a, n in zip(on.column("g2"), on.column("a"), on.column("n")):
            assert n == naive_cnt[g2]
            assert a == pytest.approx(naive_sum[g2] / naive_cnt[g2], rel=1e-12)
