"""Unit coverage for the rollup package internals: canonical shapes,
the workload miner, the cube builder's guardrails, router bookkeeping,
the semantic cache's decline paths, and the server's live-mining flow.
The differential and property walls prove end-to-end soundness; these
tests pin the individual contracts those walls rest on."""

from __future__ import annotations

import pytest

from repro.engine import Column, Database, Executor, Q, Table, agg, col
from repro.engine.optimizer import DEFAULT_SETTINGS, optimize_plan
from repro.engine.plan import AggregateNode
from repro.engine.sql import sql
from repro.obs import metrics
from repro.rollup import (
    ROLLUP_PREFIX,
    WorkloadMiner,
    aggregate_shape,
    build_rollups,
    enable_rollups,
    semantic_plan,
    storage_aggs,
)

ROLLUPS_OFF = DEFAULT_SETTINGS.without_rollups()


def _db(n_rows: int = 12) -> Database:
    db = Database()
    db.add(Table("t", {
        "g": Column.from_ints([i % 3 for i in range(n_rows)]),
        "h": Column.from_ints([i % 2 for i in range(n_rows)]),
        "u": Column.from_ints(range(n_rows)),  # unique: a cardinality bomb
        "v": Column.from_ints([10 + i for i in range(n_rows)]),
    }))
    return db


def _shape(db, q):
    """The first aggregate shape in an optimized (unrouted) plan."""
    node = optimize_plan(q.node, db, ROLLUPS_OFF)
    stack = [node]
    while stack:
        current = stack.pop()
        if isinstance(current, AggregateNode):
            return aggregate_shape(current, db)
        stack.extend(current.children())
    return None


class TestShapes:
    def test_source_key_ignores_filter_literals(self):
        db = _db()
        a = _shape(db, Q(db).scan("t").filter(col("v") > 11)
                   .aggregate(by=["g"], s=agg.sum(col("v"))))
        b = _shape(db, Q(db).scan("t").filter(col("v") > 15)
                   .aggregate(by=["g"], s=agg.sum(col("v"))))
        assert a.key == b.key
        assert a.dims == b.dims == ("g", "v")

    def test_different_sources_get_different_keys(self):
        db = _db()
        db.add(Table("other", {"g": Column.from_ints([1]),
                               "v": Column.from_ints([2])}))
        a = _shape(db, Q(db).scan("t").aggregate(by=["g"], s=agg.sum(col("v"))))
        b = _shape(db, Q(db).scan("other").aggregate(by=["g"], s=agg.sum(col("v"))))
        assert a.key != b.key

    def test_count_distinct_is_not_a_shape(self):
        # COUNT(DISTINCT x) cannot be merged from per-cell partials, so
        # the canonicalizer must refuse the whole aggregate.
        db = _db()
        shape = _shape(db, Q(db).scan("t")
                       .aggregate(by=["g"], d=agg.count_distinct(col("v"))))
        assert shape is None

    def test_storage_naming_is_deterministic(self):
        db = _db()
        shape = _shape(db, Q(db).scan("t").aggregate(
            by=["g"], a=agg.avg(col("v")), n=agg.count_star()))
        specs, colmap = storage_aggs(shape.measures())
        # avg needs sum+count parts of m0 (=v); count(*) is its own m1.
        assert sorted(specs) == ["m0_cnt", "m0_sum", "m1_star"]
        assert sorted(colmap.values()) == ["m0_cnt", "m0_sum", "m1_star"]


class TestMiner:
    def test_literal_variants_collapse_to_one_spec(self):
        db = _db()
        miner = WorkloadMiner(db)
        for cutoff in (11, 13, 17):
            q = (Q(db).scan("t").filter(col("v") > cutoff)
                 .aggregate(by=["g"], s=agg.sum(col("v"))))
            assert miner.observe(q) == 1
        specs = miner.mine()
        assert len(specs) == 1
        assert specs[0].observations == 3

    def test_min_count_filters_one_offs(self):
        db = _db()
        miner = WorkloadMiner(db)
        miner.observe(Q(db).scan("t").aggregate(by=["g"], s=agg.sum(col("v"))))
        assert miner.mine(min_count=2) == []
        assert len(miner.mine(min_count=1)) == 1

    def test_unplannable_input_contributes_nothing(self):
        db = _db()
        miner = WorkloadMiner(db)
        assert miner.observe("not a plan") == 0
        assert len(miner) == 0

    def test_wider_spec_subsumes_narrower(self):
        db = _db()
        miner = WorkloadMiner(db)
        miner.observe(Q(db).scan("t").aggregate(
            by=["g", "h"], s=agg.sum(col("v")), n=agg.count_star()))
        miner.observe(Q(db).scan("t").aggregate(by=["g"], s=agg.sum(col("v"))))
        wide, narrow = miner.mine()  # widest dimension set first
        assert set(narrow.dims) < set(wide.dims)
        assert wide.subsumes(narrow)
        assert not narrow.subsumes(wide)


class TestBuilder:
    def test_cardinality_guard_rejects_per_row_cubes(self):
        db = _db(n_rows=400)
        plan = Q(db).scan("t").aggregate(by=["u"], s=agg.sum(col("v")))
        catalog = enable_rollups(db, plans=[plan])
        # 400 distinct cells over 400 rows exceeds the 50% cell budget:
        # the cube would be the table.
        assert catalog.cubes == []
        assert catalog.candidates_rejected == 1

    def test_subsumed_candidates_build_one_cube(self):
        db = _db()
        wide = Q(db).scan("t").aggregate(
            by=["g", "h"], s=agg.sum(col("v")), n=agg.count_star())
        narrow = Q(db).scan("t").aggregate(by=["g"], s=agg.sum(col("v")))
        catalog = enable_rollups(db, plans=[wide, narrow])
        assert len(catalog.cubes) == 1
        assert catalog.cubes[0].spec.dims == ("g", "h")

    def test_start_index_offsets_cube_names(self):
        db = _db()
        miner = WorkloadMiner(db)
        miner.observe(Q(db).scan("t").aggregate(by=["g"], s=agg.sum(col("v"))))
        catalog = build_rollups(db, miner.mine(), start_index=7)
        assert catalog.cubes[0].name.startswith(f"{ROLLUP_PREFIX}07_")

    def test_catalog_tables_resolve_through_database(self):
        db = _db()
        plan = Q(db).scan("t").aggregate(by=["g"], s=agg.sum(col("v")))
        catalog = enable_rollups(db, plans=[plan])
        name = catalog.cubes[0].name
        # Cube tables live in the catalog, not the user's table list,
        # but scans must still resolve them by name.
        assert db.table(name).name == name
        assert name not in db.table_names

    def test_build_charges_profile_and_gauges(self):
        db = _db()
        plan = Q(db).scan("t").aggregate(by=["g"], s=agg.sum(col("v")))
        catalog = enable_rollups(db, plans=[plan])
        assert catalog.build_wall_seconds > 0.0
        assert len(catalog.build_profile.operators) > 0
        assert catalog.nbytes > 0
        assert metrics.gauge("rollup.cubes").value == float(len(catalog.cubes))
        assert metrics.gauge("rollup.bytes").value == float(catalog.nbytes)


class TestSemanticDeclines:
    def test_unfiltered_aggregate_declines(self):
        # Without a residual predicate the plain result cache already
        # answers the re-run; the semantic split would only add work.
        db = _db()
        q = sql(db, "SELECT g, SUM(v) AS s FROM t GROUP BY g")
        node = optimize_plan(q.node, db, ROLLUPS_OFF)
        assert semantic_plan(node, db) is None

    def test_scalar_subquery_in_residual_declines(self):
        # The residual re-executes inside a scratch database holding
        # only the cached cells; a subquery over base tables cannot.
        db = _db()
        q = sql(db, "SELECT g, SUM(v) AS s FROM t "
                    "WHERE v > (SELECT MIN(v) FROM t) GROUP BY g")
        node = optimize_plan(q.node, db, ROLLUPS_OFF)
        assert semantic_plan(node, db) is None

    def test_filtered_aggregate_splits(self):
        db = _db()
        q = sql(db, "SELECT g, SUM(v) AS s FROM t WHERE v > 12 GROUP BY g")
        node = optimize_plan(q.node, db, ROLLUPS_OFF)
        sp = semantic_plan(node, db)
        assert sp is not None
        assert sp.cache_suffix == "#semantic"
        # The finer plan groups by every dimension the residual needs.
        assert set(sp.shape.dims) == {"g", "v"}


class TestServerLiveMining:
    def test_build_rollups_from_observed_traffic(self):
        from repro.serve import QueryServer

        db = _db(n_rows=60)
        with QueryServer(db, workers=2, cache_size=0) as server:
            for cutoff in (20, 30):
                server.query(f"SELECT g, SUM(v) AS s FROM t "
                             f"WHERE v > {cutoff} GROUP BY g")
            assert getattr(db, "rollups", None) is None
            catalog = server.build_rollups(min_count=2)
            assert len(catalog.cubes) == 1
            assert db.rollups is catalog
            # Subsequent requests route onto the freshly built cube.
            routed = server.query("SELECT g, SUM(v) AS s FROM t "
                                  "WHERE v > 40 GROUP BY g")
            base = Executor(db, ROLLUPS_OFF).execute(
                sql(db, "SELECT g, SUM(v) AS s FROM t WHERE v > 40 GROUP BY g"))
            assert sorted(routed.rows) == sorted(base.rows)
            # Rebuilding with no new shapes must not duplicate cubes.
            again = server.build_rollups(min_count=2)
            assert again is catalog
            assert len(again.cubes) == 1
