"""Fixtures for the rollup suites.

The databases here are generated fresh (not the shared session
``tpch_db``) because ``enable_rollups`` attaches a catalog to the
database object; the shared fixtures must keep serving every other
suite without routing."""

from __future__ import annotations

import pytest

from repro.adevents import generate as adevents_generate
from repro.rollup import enable_rollups
from repro.tpch import generate as tpch_generate


@pytest.fixture(scope="package")
def rollup_tpch_db():
    db = tpch_generate(0.01, seed=42)
    enable_rollups(db)
    return db


@pytest.fixture(scope="package")
def rollup_adevents_db():
    db = adevents_generate(1.0, seed=7)
    enable_rollups(db)
    return db
