"""Ad-events workload family: generator determinism, schema conformance,
golden pins, and the serial-vs-parallel differential harness.

Every query in the family is defined as SQL text and planned through the
generalized front-end, so this suite doubles as an end-to-end exercise of
the SQL layers (CASE, BETWEEN, UNION, NOT EXISTS, correlated scalars,
IN + HAVING, derived tables, string functions) against a second schema
with different shapes than TPC-H.
"""

from __future__ import annotations

import json
import math
from pathlib import Path

import numpy as np
import pytest

from repro.adevents import (
    ADEVENTS_QUERIES,
    ADEVENTS_SCHEMAS,
    QUERY_NAMES,
    build,
    generate,
    rows_at_scale,
)
from repro.engine import Executor, ParallelExecutor, execute
from repro.engine.plan import LimitNode, SortNode

GOLDEN = json.loads(
    (Path(__file__).parent / "data" / "golden_x1_seed7.json").read_text()
)

MORSEL_ROWS = 4096  # 100k-row fact => ~25 morsels: real parallel execution


@pytest.fixture(scope="module")
def adevents_db():
    return generate(1.0, seed=7)


def _numeric_sum(rows) -> float:
    total = 0.0
    for row in rows:
        for value in row:
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                if isinstance(value, float) and math.isnan(value):
                    continue
                total += float(value)
    return total


def _canonical(rows):
    def norm(v):
        if isinstance(v, float):
            return "nan" if math.isnan(v) else round(v, 7)
        return v

    return sorted(tuple(norm(v) for v in row) for row in rows)


def _is_ordered(plan) -> bool:
    node = plan.node
    while isinstance(node, LimitNode):
        node = node.child
    return isinstance(node, SortNode)


class TestGenerator:
    def test_cardinalities(self, adevents_db):
        for table in ADEVENTS_SCHEMAS:
            assert adevents_db.table(table).nrows == rows_at_scale(table, 1.0)

    @pytest.mark.parametrize("table", list(ADEVENTS_SCHEMAS))
    def test_columns_match_schema(self, adevents_db, table):
        schema = ADEVENTS_SCHEMAS[table]
        tab = adevents_db.table(table)
        assert tab.column_names == schema.names
        for name, dtype in schema.fields:
            assert tab.column(name).dtype is dtype, (table, name)

    def test_same_seed_same_data(self):
        a = generate(0.2, seed=11)
        b = generate(0.2, seed=11)
        for table in a.table_names:
            ta, tb = a.table(table), b.table(table)
            for name in ta.column_names:
                assert np.array_equal(
                    ta.column(name).values, tb.column(name).values
                ), (table, name)

    def test_different_seed_different_data(self):
        a = generate(0.2, seed=1)
        b = generate(0.2, seed=2)
        assert not np.array_equal(
            a.table("events").column("ev_cost").values,
            b.table("events").column("ev_cost").values,
        )

    def test_foreign_keys_resolve(self, adevents_db):
        events = adevents_db.table("events")
        n_camp = adevents_db.table("campaign").nrows
        n_site = adevents_db.table("site").nrows
        camp = events.column("ev_campkey").values
        site = events.column("ev_sitekey").values
        assert camp.min() >= 1 and camp.max() <= n_camp
        assert site.min() >= 1 and site.max() <= n_site
        adv = adevents_db.table("campaign").column("cm_advkey").values
        assert adv.min() >= 1 and adv.max() <= adevents_db.table("advertiser").nrows

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            generate(0)

    def test_unknown_query(self, adevents_db):
        with pytest.raises(KeyError, match="unknown adevents query"):
            build(adevents_db, "nope")


class TestGolden:
    def test_golden_covers_all_queries(self):
        assert set(GOLDEN) == set(QUERY_NAMES)

    @pytest.mark.parametrize("name", QUERY_NAMES)
    def test_query_matches_golden(self, adevents_db, name):
        expected = GOLDEN[name]
        result = execute(adevents_db, build(adevents_db, name))
        assert len(result) == expected["rows"]
        assert list(result.column_names) == expected["columns"]
        assert _numeric_sum(result.rows) == pytest.approx(
            expected["numeric_sum"], rel=1e-6, abs=0.02
        )
        if expected["first_row"]:
            assert [str(v) for v in result.rows[0]] == expected["first_row"]


class TestDifferential:
    """Serial and 1/2/4-worker morsel-parallel execution must agree
    row-for-row on every query in the family."""

    @pytest.fixture(scope="class")
    def parallel_executors(self, adevents_db):
        made = {
            workers: ParallelExecutor(
                adevents_db, workers=workers, morsel_rows=MORSEL_ROWS,
                cache_size=0,
            )
            for workers in (1, 2, 4)
        }
        yield made
        for executor in made.values():
            executor.close()

    @pytest.mark.parametrize("name", QUERY_NAMES)
    def test_serial_vs_workers(self, adevents_db, parallel_executors, name):
        plan = build(adevents_db, name)
        reference = Executor(adevents_db).execute(plan)
        for workers, executor in parallel_executors.items():
            candidate = executor.execute(plan)
            label = f"{name} workers={workers}"
            assert candidate.column_names == reference.column_names, label
            if _is_ordered(plan):
                assert len(candidate) == len(reference), label
                for i, (expected, actual) in enumerate(
                    zip(reference.rows, candidate.rows)
                ):
                    for a, b in zip(expected, actual):
                        if isinstance(a, float) and isinstance(b, float):
                            if math.isnan(a) and math.isnan(b):
                                continue
                            assert b == pytest.approx(a, rel=1e-9, abs=1e-9), (
                                f"{label} row {i}"
                            )
                        else:
                            assert a == b, f"{label} row {i}"
            else:
                assert _canonical(candidate.rows) == _canonical(reference.rows), label
