"""Tests for EXPLAIN and CSV I/O."""

import pytest

from repro.engine import Q, agg, col, execute
from repro.engine.explain import explain, explain_profile
from repro.engine.io import load_database, read_csv, save_database, write_csv


class TestExplain:
    def test_tree_structure(self, toy_db):
        plan = (
            Q(toy_db).scan("t").filter(col("k") > 1)
            .join("u", on=[("k", "k2")])
            .aggregate(by=["s"], n=agg.count_star())
            .sort(("n", "desc")).limit(3)
        )
        text = explain(plan, toy_db)
        for fragment in ("Limit 3", "Sort [n desc]", "Aggregate by [s]",
                         "HashJoin inner on (k=k2)", "Filter", "Scan t", "Scan u"):
            assert fragment in text

    def test_output_columns_line(self, toy_db):
        text = explain(Q(toy_db).scan("t").select("k", "v"), toy_db)
        assert "output: [k, v]" in text

    def test_optimized_scan_shows_pruned_columns(self, toy_db):
        text = explain(Q(toy_db).scan("t").project(x="k"), toy_db, optimize=True)
        assert "Scan t [k]" in text

    def test_unoptimized_scan_shows_star(self, toy_db):
        text = explain(Q(toy_db).scan("t"), toy_db, optimize=False)
        assert "Scan t [*]" in text

    def test_predicates_render_readably(self, toy_db):
        text = explain(
            Q(toy_db).scan("t").filter((col("k") > 1) & (col("s") == "a")),
            toy_db,
        )
        assert "AND" in text and "col('k')" in text

    def test_empty_plan_rejected(self, toy_db):
        with pytest.raises(ValueError):
            explain(Q(toy_db), toy_db)

    def test_profile_table(self, toy_db):
        result = execute(toy_db, Q(toy_db).scan("t").filter(col("k") > 1))
        text = explain_profile(result)
        assert "scan" in text and "filter" in text and "total" in text

    def test_union_all_rendered(self, toy_db):
        plan = Q(toy_db).scan("t").select("k").union_all(
            Q(toy_db).scan("u").project(k="k2")
        )
        text = explain(plan, toy_db)
        assert "UnionAll" in text
        assert text.count("Scan") == 2

    def test_topk_visible_in_profile(self, toy_db):
        result = execute(toy_db, Q(toy_db).scan("t").sort("v").limit(2))
        assert "topk" in explain_profile(result)


class TestCsvRoundtrip:
    def test_table_roundtrip(self, toy_db, tmp_path):
        original = toy_db.table("t")
        path = write_csv(original, tmp_path / "t.csv")
        loaded = read_csv(path)
        assert loaded.name == "t"
        assert loaded.column_names == original.column_names
        for name in original.column_names:
            assert loaded.column(name).to_list() == original.column(name).to_list()
            assert loaded.column(name).dtype is original.column(name).dtype

    def test_database_roundtrip(self, toy_db, tmp_path):
        save_database(toy_db, tmp_path / "db")
        loaded = load_database(tmp_path / "db")
        assert sorted(loaded.table_names) == sorted(toy_db.table_names)

    def test_tpch_sample_roundtrip(self, tpch_db, tmp_path):
        nation = tpch_db.table("nation")
        loaded = read_csv(write_csv(nation, tmp_path / "nation.csv"))
        assert loaded.nrows == 25
        assert loaded.column("n_name").to_list() == nation.column("n_name").to_list()

    def test_queries_run_on_loaded_data(self, toy_db, tmp_path):
        save_database(toy_db, tmp_path / "db")
        loaded = load_database(tmp_path / "db")
        original = execute(toy_db, Q(toy_db).scan("t").aggregate(s=agg.sum(col("v"))))
        reloaded = execute(loaded, Q(loaded).scan("t").aggregate(s=agg.sum(col("v"))))
        assert original.scalar() == reloaded.scalar()

    def test_untyped_header_rejected(self, tmp_path):
        bad = tmp_path / "bad.csv"
        bad.write_text("a,b\n1,2\n")
        with pytest.raises(ValueError, match="type suffix"):
            read_csv(bad)

    def test_empty_directory_rejected(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_database(tmp_path)

    def test_compressed_table_rejected(self, toy_db, tmp_path):
        from repro.engine import compress_table

        compressed = compress_table(toy_db.table("t"))
        with pytest.raises(TypeError, match="compressed"):
            write_csv(compressed, tmp_path / "c.csv")
