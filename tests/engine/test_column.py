"""Tests for Column: construction, positional ops, nulls, concat."""

import numpy as np
import pytest

from repro.engine import Column
from repro.engine.types import BOOL, DATE, FLOAT64, INT64, STRING


class TestConstruction:
    def test_from_ints(self):
        col = Column.from_ints([1, 2, 3])
        assert col.dtype is INT64
        assert col.values.tolist() == [1, 2, 3]

    def test_from_floats(self):
        col = Column.from_floats([1.5, 2.5])
        assert col.dtype is FLOAT64

    def test_from_bools(self):
        col = Column.from_bools([True, False])
        assert col.dtype is BOOL
        assert col.values.tolist() == [True, False]

    def test_from_dates_stores_days(self):
        col = Column.from_dates(["1970-01-02", "1970-01-03"])
        assert col.dtype is DATE
        assert col.values.tolist() == [1, 2]

    def test_from_strings_builds_sorted_dictionary(self):
        col = Column.from_strings(["b", "a", "b"])
        assert col.dtype is STRING
        assert list(col.dictionary) == ["a", "b"]
        assert col.values.tolist() == [1, 0, 1]

    def test_string_requires_dictionary(self):
        with pytest.raises(ValueError, match="dictionary"):
            Column(STRING, np.array([0], dtype=np.int32))

    def test_non_string_rejects_dictionary(self):
        with pytest.raises(ValueError):
            Column(INT64, np.array([1]), dictionary=np.array(["x"], dtype=object))

    def test_from_string_codes(self):
        col = Column.from_string_codes(
            np.array([0, 1, 0], dtype=np.int32), np.array(["x", "y"], dtype=object)
        )
        assert col.to_list() == ["x", "y", "x"]


class TestIntrospection:
    def test_len(self):
        assert len(Column.from_ints([1, 2, 3])) == 3

    def test_nbytes_counts_value_array(self):
        assert Column.from_ints([1, 2, 3]).nbytes == 24
        assert Column.from_strings(["a", "b"]).nbytes == 8  # int32 codes

    def test_dict_nbytes(self):
        col = Column.from_strings(["abc", "de", "abc"])
        assert col.dict_nbytes == 5
        assert Column.from_ints([1]).dict_nbytes == 0

    def test_has_nulls(self):
        col = Column.from_ints([1, 2])
        assert not col.has_nulls()
        nullable = Column(INT64, np.array([1, 2]), valid=np.array([True, False]))
        assert nullable.has_nulls()


class TestPositional:
    def test_take(self):
        col = Column.from_ints([10, 20, 30])
        assert col.take(np.array([2, 0])).values.tolist() == [30, 10]

    def test_take_negative_marks_null(self):
        col = Column.from_ints([10, 20, 30])
        out = col.take(np.array([1, -1]))
        assert out.valid.tolist() == [True, False]
        assert out.to_list() == [20, None]

    def test_take_preserves_existing_nulls(self):
        col = Column(INT64, np.array([1, 2, 3]), valid=np.array([True, False, True]))
        out = col.take(np.array([1, 2, -1]))
        assert out.to_list() == [None, 3, None]

    def test_filter(self):
        col = Column.from_floats([1.0, 2.0, 3.0])
        out = col.filter(np.array([True, False, True]))
        assert out.values.tolist() == [1.0, 3.0]

    def test_slice(self):
        col = Column.from_ints(range(10))
        assert col.slice(2, 5).values.tolist() == [2, 3, 4]

    def test_take_strings_shares_dictionary(self):
        col = Column.from_strings(["a", "b", "c"])
        out = col.take(np.array([2, 1]))
        assert out.dictionary is col.dictionary
        assert out.to_list() == ["c", "b"]


class TestDecoding:
    def test_to_list_dates(self):
        col = Column.from_dates(["1994-05-04"])
        assert col.to_list()[0].isoformat() == "1994-05-04"

    def test_to_list_nulls(self):
        col = Column(FLOAT64, np.array([1.0, 2.0]), valid=np.array([False, True]))
        assert col.to_list() == [None, 2.0]

    def test_decoded_strings(self):
        col = Column.from_strings(["x", "y", "x"])
        assert list(col.decoded()) == ["x", "y", "x"]

    def test_to_list_native_types(self):
        assert all(isinstance(v, int) for v in Column.from_ints([1]).to_list())
        assert all(isinstance(v, float) for v in Column.from_floats([1.0]).to_list())
        assert all(isinstance(v, bool) for v in Column.from_bools([True]).to_list())


class TestConcat:
    def test_concat_ints(self):
        out = Column.concat([Column.from_ints([1, 2]), Column.from_ints([3])])
        assert out.values.tolist() == [1, 2, 3]

    def test_concat_strings_reencodes(self):
        out = Column.concat([
            Column.from_strings(["b", "a"]),
            Column.from_strings(["c", "a"]),
        ])
        assert out.to_list() == ["b", "a", "c", "a"]
        assert sorted(out.dictionary) == ["a", "b", "c"]

    def test_concat_mixed_validity(self):
        a = Column(INT64, np.array([1, 2]), valid=np.array([True, False]))
        b = Column.from_ints([3])
        out = Column.concat([a, b])
        assert out.to_list() == [1, None, 3]

    def test_concat_type_mismatch_raises(self):
        with pytest.raises(TypeError):
            Column.concat([Column.from_ints([1]), Column.from_floats([1.0])])

    def test_concat_empty_list_raises(self):
        with pytest.raises(ValueError):
            Column.concat([])
