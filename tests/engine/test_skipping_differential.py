"""Differential suite: data skipping on vs off across all 22 queries.

Every TPC-H query at SF 0.01 runs four ways — serial and 4-worker
morsel-parallel, each with the optimizer's predicate pushdown + zone-map
skipping enabled (the default) and fully disabled (the ``--no-skipping``
ablation) — and all four must agree with each other and with the
committed goldens. This pins the entire skipping stack to external
truth: a zone map that wrongly proves a block empty, or a pushdown that
moves a filter past an operator it does not commute with, shows up as a
row-level diff here.
"""

from __future__ import annotations

import json
import math
from pathlib import Path

import pytest

from repro.engine import Executor, OptimizerSettings, ParallelExecutor
from repro.engine.plan import LimitNode, SortNode
from repro.tpch import ALL_QUERY_NUMBERS, get_query

GOLDEN = json.loads(
    (Path(__file__).parent.parent / "tpch" / "data" / "golden_sf001_seed42.json").read_text()
)

MORSEL_ROWS = 2048  # force real multi-morsel execution at SF 0.01
WORKERS = 4


def _is_ordered(plan) -> bool:
    node = plan.node
    while isinstance(node, LimitNode):
        node = node.child
    return isinstance(node, SortNode)


def _assert_values_equal(expected_rows, actual_rows, label):
    assert len(expected_rows) == len(actual_rows), label
    for i, (expected, actual) in enumerate(zip(expected_rows, actual_rows)):
        assert len(expected) == len(actual)
        for a, b in zip(expected, actual):
            if isinstance(a, float) and isinstance(b, float):
                if math.isnan(a) and math.isnan(b):
                    continue
                assert b == pytest.approx(a, rel=1e-9, abs=1e-9), (
                    f"{label} row {i}: {a!r} != {b!r}"
                )
            else:
                assert a == b, f"{label} row {i}: {a!r} != {b!r}"


def _canonical(rows):
    def norm(v):
        if isinstance(v, float):
            return "nan" if math.isnan(v) else round(v, 7)
        return v

    return sorted(tuple(norm(v) for v in row) for row in rows)


def _numeric_sum(rows) -> float:
    total = 0.0
    for row in rows:
        for value in row:
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                if isinstance(value, float) and math.isnan(value):
                    continue
                total += float(value)
    return total


def _assert_same(plan, reference, candidate, label):
    assert candidate.column_names == reference.column_names
    if _is_ordered(plan):
        _assert_values_equal(reference.rows, candidate.rows, label)
    else:
        assert _canonical(candidate.rows) == _canonical(reference.rows), label


@pytest.fixture(scope="module")
def parallel_executors(tpch_db):
    made = {
        "on": ParallelExecutor(
            tpch_db, workers=WORKERS, morsel_rows=MORSEL_ROWS, cache_size=0
        ),
        "off": ParallelExecutor(
            tpch_db, workers=WORKERS, morsel_rows=MORSEL_ROWS, cache_size=0,
            settings=OptimizerSettings.disabled(),
        ),
    }
    yield made
    for executor in made.values():
        executor.close()


class TestSkippingDifferential:
    @pytest.mark.parametrize("number", ALL_QUERY_NUMBERS)
    def test_four_way_agreement(
        self, tpch_db, tpch_params, parallel_executors, number
    ):
        plan = get_query(number).build(tpch_db, tpch_params)
        serial_off = Executor(tpch_db, OptimizerSettings.disabled()).execute(plan)
        serial_on = Executor(tpch_db).execute(plan)
        parallel_on = parallel_executors["on"].execute(plan)
        parallel_off = parallel_executors["off"].execute(plan)

        _assert_same(plan, serial_off, serial_on, f"Q{number} serial on-vs-off")
        _assert_same(plan, serial_on, parallel_on, f"Q{number} parallel-on")
        _assert_same(plan, serial_off, parallel_off, f"Q{number} parallel-off")

        # Skipping may only reduce streamed bytes, never add any.
        assert (
            serial_on.profile.seq_bytes
            <= serial_off.profile.seq_bytes * (1 + 1e-9) + 1e-6
        ), f"Q{number}: skipping increased streamed bytes"

    @pytest.mark.parametrize("number", ALL_QUERY_NUMBERS)
    def test_skipping_matches_golden(
        self, tpch_db, tpch_params, parallel_executors, number
    ):
        expected = GOLDEN[str(number)]
        plan = get_query(number).build(tpch_db, tpch_params)
        result = parallel_executors["on"].execute(plan)
        assert len(result) == expected["rows"]
        assert result.column_names == expected["columns"]
        assert _numeric_sum(result.rows) == pytest.approx(
            expected["numeric_sum"], rel=1e-6, abs=0.02
        )
        if expected["first_row"] and _is_ordered(plan):
            for actual, pinned in zip(result.rows[0], expected["first_row"]):
                try:
                    pinned_value = float(pinned)
                except ValueError:
                    assert str(actual) == pinned
                else:
                    assert float(actual) == pytest.approx(
                        pinned_value, rel=1e-9, abs=1e-9
                    )
