"""Projection-pruning tests: the optimizer must narrow scans without
changing results."""

import pytest

from repro.engine import Q, agg, col, execute
from repro.engine.optimizer import output_columns, prune_columns
from repro.engine.plan import ScanNode


def _scan_columns(node):
    out = {}
    stack = [node]
    while stack:
        n = stack.pop()
        if isinstance(n, ScanNode):
            out[n.table] = n.columns
        stack.extend(n.children())
    return out


class TestOutputColumns:
    def test_scan(self, toy_db):
        node = Q(toy_db).scan("t").node
        assert output_columns(node, toy_db) == ["k", "v", "s", "d"]

    def test_project(self, toy_db):
        node = Q(toy_db).scan("t").project(a="k", b=col("v") * 2).node
        assert output_columns(node, toy_db) == ["a", "b"]

    def test_aggregate(self, toy_db):
        node = Q(toy_db).scan("t").aggregate(by=["s"], n=agg.count_star()).node
        assert output_columns(node, toy_db) == ["s", "n"]

    def test_join_drops_duplicate_key(self, toy_db):
        node = Q(toy_db).scan("t").join("u", on=[("k", "k2")]).node
        cols = output_columns(node, toy_db)
        assert cols == ["k", "v", "s", "d", "k2", "w", "name"]

    def test_semi_join_left_only(self, toy_db):
        node = Q(toy_db).scan("t").join("u", on=[("k", "k2")], how="semi").node
        assert output_columns(node, toy_db) == ["k", "v", "s", "d"]


class TestPruning:
    def test_scan_narrowed_to_used_columns(self, toy_db):
        plan = Q(toy_db).scan("t").filter(col("k") > 1).project(out=col("v") * 2)
        pruned = prune_columns(plan.node, toy_db)
        assert set(_scan_columns(pruned)["t"]) == {"k", "v"}

    def test_join_sides_pruned_independently(self, toy_db):
        plan = (
            Q(toy_db).scan("t").join("u", on=[("k", "k2")])
            .project(total=col("v") + col("w"))
        )
        pruned = prune_columns(plan.node, toy_db)
        cols = _scan_columns(pruned)
        assert set(cols["t"]) == {"k", "v"}
        assert set(cols["u"]) == {"k2", "w"}

    def test_semi_join_right_side_keeps_keys_only(self, toy_db):
        plan = Q(toy_db).scan("t").join("u", on=[("k", "k2")], how="semi")
        pruned = prune_columns(plan.node, toy_db)
        assert set(_scan_columns(pruned)["u"]) == {"k2"}

    def test_aggregate_keeps_group_and_input_columns(self, toy_db):
        plan = Q(toy_db).scan("t").aggregate(by=["s"], total=agg.sum(col("v")))
        pruned = prune_columns(plan.node, toy_db)
        assert set(_scan_columns(pruned)["t"]) == {"s", "v"}

    def test_sort_keys_are_kept(self, toy_db):
        plan = Q(toy_db).scan("t").select("v").sort("v")
        pruned = prune_columns(plan.node, toy_db)
        assert set(_scan_columns(pruned)["t"]) == {"v"}

    def test_count_star_only_reads_one_column(self, toy_db):
        plan = Q(toy_db).scan("t").aggregate(n=agg.count_star())
        pruned = prune_columns(plan.node, toy_db)
        assert len(_scan_columns(pruned)["t"]) == 1


class TestPruningPreservesSemantics:
    @pytest.mark.parametrize("build", [
        lambda db: Q(db).scan("t").filter(col("k") > 2).project(x=col("v")),
        lambda db: Q(db).scan("t").join("u", on=[("k", "k2")]).project(w="w"),
        lambda db: Q(db).scan("t").aggregate(by=["s"], t=agg.sum(col("v"))).sort("s"),
        lambda db: Q(db).scan("t").join("u", on=[("k", "k2")], how="anti").select("k"),
        lambda db: Q(db).scan("t").sort(("v", "desc")).limit(3).select("k"),
    ])
    def test_same_rows_with_and_without_optimizer(self, toy_db, build):
        plan = build(toy_db)
        optimized = execute(toy_db, plan, optimize=True)
        raw = execute(toy_db, plan, optimize=False)
        assert optimized.rows == raw.rows

    def test_pruned_scan_bytes_are_lower(self, toy_db):
        plan = Q(toy_db).scan("t").project(x="k")
        optimized = execute(toy_db, plan, optimize=True)
        raw = execute(toy_db, plan, optimize=False)
        assert optimized.profile.seq_bytes < raw.profile.seq_bytes


class TestTPCHPruning:
    def test_q6_reads_only_four_lineitem_columns(self, tpch_db, tpch_params):
        from repro.tpch import get_query

        plan = get_query(6).build(tpch_db, tpch_params)
        pruned = prune_columns(plan.node, tpch_db)
        cols = _scan_columns(pruned)["lineitem"]
        assert set(cols) == {"l_shipdate", "l_discount", "l_quantity", "l_extendedprice"}

    def test_all_queries_prune_without_error(self, tpch_db, tpch_params):
        from repro.tpch import ALL_QUERY_NUMBERS, get_query

        for n in ALL_QUERY_NUMBERS:
            plan = get_query(n).build(tpch_db, tpch_params)
            pruned = prune_columns(plan.node, tpch_db)
            assert pruned is not None
