"""Hash-join tests: all join types, duplicates, multi-key, nulls."""

import numpy as np
import pytest

from repro.engine import Column, Database, Q, Table, col, execute
from repro.engine.types import INT64


class TestInnerJoin:
    def test_basic_with_duplicates(self, toy_db):
        result = execute(
            toy_db,
            Q(toy_db).scan("t").join("u", on=[("k", "k2")]).sort("k", "w"),
        )
        assert result.column("k") == [1, 2, 2]
        assert result.column("w") == [100.0, 200.0, 201.0]

    def test_no_matches(self, toy_db):
        db = toy_db
        result = execute(
            db,
            Q(db).scan("t").filter(col("k") == 3).join("u", on=[("k", "k2")]),
        )
        assert len(result) == 0

    def test_join_keeps_both_sides_columns(self, toy_db):
        result = execute(toy_db, Q(toy_db).scan("t").join("u", on=[("k", "k2")]))
        assert set(result.column_names) >= {"k", "v", "k2", "w", "name"}

    def test_equal_key_names_deduplicated(self):
        db = Database()
        db.add(Table("a", {"id": Column.from_ints([1, 2]), "x": Column.from_ints([10, 20])}))
        db.add(Table("b", {"id": Column.from_ints([2, 3]), "y": Column.from_ints([200, 300])}))
        result = execute(db, Q(db).scan("a").join("b", on=[("id", "id")]))
        assert result.column_names.count("id") == 1
        assert result.rows == [(2, 20, 200)]

    def test_non_key_collision_raises(self):
        db = Database()
        db.add(Table("a", {"id": Column.from_ints([1]), "x": Column.from_ints([1])}))
        db.add(Table("b", {"id2": Column.from_ints([1]), "x": Column.from_ints([2])}))
        with pytest.raises(ValueError, match="duplicate"):
            execute(db, Q(db).scan("a").join("b", on=[("id", "id2")]))

    def test_string_keys(self):
        db = Database()
        db.add(Table("a", {"s": Column.from_strings(["x", "y", "z"])}))
        db.add(Table("b", {"s2": Column.from_strings(["y", "z", "w"]),
                           "n": Column.from_ints([1, 2, 3])}))
        result = execute(db, Q(db).scan("a").join("b", on=[("s", "s2")]).sort("s"))
        assert result.column("s") == ["y", "z"]
        assert result.column("n") == [1, 2]

    def test_multi_key_join(self):
        db = Database()
        db.add(Table("a", {
            "p": Column.from_ints([1, 1, 2]),
            "q": Column.from_ints([10, 20, 10]),
        }))
        db.add(Table("b", {
            "p2": Column.from_ints([1, 2, 1]),
            "q2": Column.from_ints([10, 10, 99]),
            "tag": Column.from_strings(["m1", "m2", "m3"]),
        }))
        result = execute(
            db, Q(db).scan("a").join("b", on=[("p", "p2"), ("q", "q2")]).sort("p")
        )
        assert result.column("tag") == ["m1", "m2"]

    def test_multi_key_string_and_int(self):
        db = Database()
        db.add(Table("a", {
            "i": Column.from_ints([1, 2]),
            "s": Column.from_strings(["x", "y"]),
        }))
        db.add(Table("b", {
            "i2": Column.from_ints([1, 2]),
            "s2": Column.from_strings(["x", "z"]),
            "v": Column.from_ints([7, 8]),
        }))
        result = execute(db, Q(db).scan("a").join("b", on=[("i", "i2"), ("s", "s2")]))
        # Differently-named right key columns survive the join.
        assert result.rows == [(1, "x", 1, "x", 7)]


class TestLeftJoin:
    def test_unmatched_left_rows_get_nulls(self, toy_db):
        result = execute(
            toy_db,
            Q(toy_db).scan("t").join("u", on=[("k", "k2")], how="left").sort("k"),
        )
        w = dict(zip(result.column("k"), result.column("w")))
        assert w[3] is None and w[6] is None
        assert w[1] == 100.0

    def test_row_count(self, toy_db):
        result = execute(
            toy_db, Q(toy_db).scan("t").join("u", on=[("k", "k2")], how="left")
        )
        # 6 left rows, k=2 matches twice -> 7 output rows
        assert len(result) == 7

    def test_null_keys_do_not_cascade(self, toy_db):
        # Left-joining twice: nulls from the first join must not match
        plan = (
            Q(toy_db).scan("t")
            .join("u", on=[("k", "k2")], how="left")
            .filter(col("w").is_null())
        )
        result = execute(toy_db, plan)
        assert sorted(result.column("k")) == [3, 4, 5, 6]


class TestSemiAnti:
    def test_semi_keeps_left_columns_only(self, toy_db):
        result = execute(
            toy_db, Q(toy_db).scan("t").join("u", on=[("k", "k2")], how="semi")
        )
        assert result.column_names == ["k", "v", "s", "d"]
        assert sorted(result.column("k")) == [1, 2]

    def test_semi_no_duplicate_explosion(self, toy_db):
        # k=2 matches two u rows but must appear once.
        result = execute(
            toy_db, Q(toy_db).scan("t").join("u", on=[("k", "k2")], how="semi")
        )
        assert len(result) == 2

    def test_anti_complement(self, toy_db):
        semi = execute(
            toy_db, Q(toy_db).scan("t").join("u", on=[("k", "k2")], how="semi")
        )
        anti = execute(
            toy_db, Q(toy_db).scan("t").join("u", on=[("k", "k2")], how="anti")
        )
        assert sorted(semi.column("k") + anti.column("k")) == [1, 2, 3, 4, 5, 6]

    def test_unknown_join_type(self, toy_db):
        with pytest.raises(ValueError, match="unknown join type"):
            execute(toy_db, Q(toy_db).scan("t").join("u", on=[("k", "k2")], how="full"))


class TestJoinProfile:
    def test_probe_accounting(self, toy_db):
        result = execute(toy_db, Q(toy_db).scan("t").join("u", on=[("k", "k2")]))
        join_work = [op for op in result.profile.operators if op.operator == "hashjoin"][0]
        assert join_work.tuples_in == 10  # 6 left + 4 right
        assert join_work.rand_accesses >= 6  # at least one probe per left row
        assert join_work.out_bytes > 0

    def test_join_with_subplan(self, toy_db):
        filtered_u = Q(toy_db).scan("u").filter(col("w") > 150.0)
        result = execute(
            toy_db, Q(toy_db).scan("t").join(filtered_u, on=[("k", "k2")])
        )
        assert sorted(result.column("w")) == [200.0, 201.0]
