"""Tests for UNION ALL and the fused top-k (ORDER BY + LIMIT) path."""

import numpy as np
import pytest

from repro.engine import Column, Database, Q, Table, agg, col, execute
from repro.engine.plan import LimitNode, SortNode


class TestUnionAll:
    def test_concatenates_rows(self, toy_db):
        low = Q(toy_db).scan("t").filter(col("k") <= 2).select("k", "v")
        high = Q(toy_db).scan("t").filter(col("k") >= 5).select("k", "v")
        result = execute(toy_db, low.union_all(high).sort("k"))
        assert result.column("k") == [1, 2, 5, 6]

    def test_duplicates_preserved(self, toy_db):
        half = Q(toy_db).scan("t").select("k")
        result = execute(toy_db, half.union_all(half))
        assert len(result) == 12

    def test_schema_mismatch_rejected(self, toy_db):
        left = Q(toy_db).scan("t").select("k")
        right = Q(toy_db).scan("t").select("v")
        with pytest.raises(ValueError, match="mismatch"):
            execute(toy_db, left.union_all(right))

    def test_string_columns_reencode(self, toy_db):
        a = Q(toy_db).scan("t").filter(col("s") == "a").select("s")
        b = Q(toy_db).scan("t").filter(col("s") == "c").select("s")
        result = execute(toy_db, a.union_all(b))
        assert sorted(result.column("s")) == ["a", "a", "a", "c"]

    def test_aggregation_over_union(self, toy_db):
        both = (
            Q(toy_db).scan("t").select("k")
            .union_all(Q(toy_db).scan("u").project(k="k2"))
        )
        result = execute(toy_db, both.aggregate(n=agg.count_star()))
        assert result.scalar() == 10

    def test_pruning_keeps_sides_aligned(self, toy_db):
        both = (
            Q(toy_db).scan("t").select("k", "v")
            .union_all(Q(toy_db).scan("t").select("k", "v"))
            .project(out="k")
        )
        result = execute(toy_db, both, optimize=True)
        assert len(result) == 12


class TestTopK:
    @pytest.fixture
    def big_db(self):
        rng = np.random.default_rng(5)
        db = Database()
        db.add(Table("big", {
            "a": Column.from_ints(rng.integers(0, 1000, 5000)),
            "b": Column.from_ints(rng.integers(0, 10, 5000)),
        }))
        return db

    def test_topk_equals_full_sort(self, big_db):
        plan = Q(big_db).scan("big").sort(("a", "desc")).limit(25)
        fused = execute(big_db, plan)
        unfused = execute(big_db, Q(big_db).scan("big").sort(("a", "desc")))
        assert fused.rows == unfused.rows[:25]

    def test_topk_multikey_with_ties(self, big_db):
        plan = Q(big_db).scan("big").sort("b", ("a", "desc")).limit(40)
        fused = execute(big_db, plan)
        unfused = execute(big_db, Q(big_db).scan("big").sort("b", ("a", "desc")))
        assert fused.rows == unfused.rows[:40]

    def test_topk_operator_used(self, big_db):
        result = execute(big_db, Q(big_db).scan("big").sort("a").limit(10))
        kinds = [op.operator for op in result.profile.operators]
        assert "topk" in kinds

    def test_topk_cheaper_than_full_sort(self, big_db):
        fused = execute(big_db, Q(big_db).scan("big").sort("a").limit(10))
        full = execute(big_db, Q(big_db).scan("big").sort("a"))
        assert fused.profile.ops < full.profile.ops

    def test_limit_zero(self, big_db):
        assert len(execute(big_db, Q(big_db).scan("big").sort("a").limit(0))) == 0

    def test_limit_exceeds_input(self, big_db):
        result = execute(big_db, Q(big_db).scan("big").sort("a").limit(10_000))
        assert len(result) == 5000

    def test_tpch_q3_unchanged_by_fusion(self, tpch_db, tpch_params):
        from repro.tpch import get_query

        result = execute(tpch_db, get_query(3).build(tpch_db, tpch_params))
        revenue = result.column("revenue")
        assert revenue == sorted(revenue, reverse=True)
        assert len(result) <= 10
