"""Differential suite: serial vs morsel-parallel execution.

Every TPC-H query at SF 0.01 runs through :class:`ParallelExecutor` with
1, 2, and 4 workers (morsels forced small so even the 0.01-scale tables
split into dozens of fragments) and must produce results identical to the
serial :class:`Executor`: same columns, same rows, same order where the
query orders, float values within 1e-9. The parallel results are also
held against the committed goldens, so both executors are pinned to the
same external truth.
"""

from __future__ import annotations

import json
import math
from pathlib import Path

import pytest

from repro.engine import Executor, ParallelExecutor
from repro.engine.plan import LimitNode, SortNode
from repro.tpch import ALL_QUERY_NUMBERS, get_query

GOLDEN = json.loads(
    (Path(__file__).parent.parent / "tpch" / "data" / "golden_sf001_seed42.json").read_text()
)

WORKER_COUNTS = (1, 2, 4)
MORSEL_ROWS = 2048  # force real multi-morsel execution at SF 0.01


def _is_ordered(plan) -> bool:
    """Whether the query pins its output order (top-level ORDER BY)."""
    node = plan.node
    while isinstance(node, LimitNode):
        node = node.child
    return isinstance(node, SortNode)


def _assert_values_equal(serial_rows, parallel_rows, query_number):
    assert len(serial_rows) == len(parallel_rows)
    for i, (expected, actual) in enumerate(zip(serial_rows, parallel_rows)):
        assert len(expected) == len(actual)
        for a, b in zip(expected, actual):
            if isinstance(a, float) and isinstance(b, float):
                if math.isnan(a) and math.isnan(b):
                    continue
                assert b == pytest.approx(a, rel=1e-9, abs=1e-9), (
                    f"Q{query_number} row {i}: {a!r} != {b!r}"
                )
            else:
                assert a == b, f"Q{query_number} row {i}: {a!r} != {b!r}"


def _canonical(rows):
    """Order-insensitive row normalization (floats rounded past 1e-9)."""
    def norm(v):
        if isinstance(v, float):
            return "nan" if math.isnan(v) else round(v, 7)
        return v

    return sorted(tuple(norm(v) for v in row) for row in rows)


def _numeric_sum(rows) -> float:
    total = 0.0
    for row in rows:
        for value in row:
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                if isinstance(value, float) and math.isnan(value):
                    continue
                total += float(value)
    return total


@pytest.fixture(scope="module")
def executors(tpch_db):
    made = {
        workers: ParallelExecutor(
            tpch_db, workers=workers, morsel_rows=MORSEL_ROWS, cache_size=0
        )
        for workers in WORKER_COUNTS
    }
    yield made
    for executor in made.values():
        executor.close()


class TestParallelDifferential:
    @pytest.mark.parametrize("number", ALL_QUERY_NUMBERS)
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_matches_serial(self, tpch_db, tpch_params, executors, number, workers):
        plan = get_query(number).build(tpch_db, tpch_params)
        serial = Executor(tpch_db).execute(plan)
        parallel = executors[workers].execute(plan)

        assert parallel.column_names == serial.column_names
        if _is_ordered(plan):
            _assert_values_equal(serial.rows, parallel.rows, number)
        else:
            assert _canonical(parallel.rows) == _canonical(serial.rows)

    @pytest.mark.parametrize("number", ALL_QUERY_NUMBERS)
    def test_parallel_matches_golden(self, tpch_db, tpch_params, executors, number):
        expected = GOLDEN[str(number)]
        plan = get_query(number).build(tpch_db, tpch_params)
        result = executors[max(WORKER_COUNTS)].execute(plan)
        assert len(result) == expected["rows"]
        assert result.column_names == expected["columns"]
        assert _numeric_sum(result.rows) == pytest.approx(
            expected["numeric_sum"], rel=1e-6, abs=0.02
        )
        if expected["first_row"] and _is_ordered(plan):
            # Partial-aggregate merging legally reorders float summation;
            # compare numerically where the golden value parses as float,
            # exactly (as strings) everywhere else.
            for actual, pinned in zip(result.rows[0], expected["first_row"]):
                try:
                    pinned_value = float(pinned)
                except ValueError:
                    assert str(actual) == pinned
                else:
                    assert float(actual) == pytest.approx(
                        pinned_value, rel=1e-9, abs=1e-9
                    )
