"""Compression tests: losslessness, ratios, engine integration, and the
§III-C2 bandwidth-for-cycles trade."""

import numpy as np
import pytest

from repro.engine import Column, Database, Q, Table, agg, col, execute
from repro.engine.compression import (
    ALL_ENCODINGS,
    BitPackedEncoding,
    CompressedColumn,
    DeltaEncoding,
    FrameOfReferenceEncoding,
    RunLengthEncoding,
    compress_column,
    compress_table,
    compression_ratio,
)
from repro.engine.types import FLOAT64, INT64


class TestEncodingsRoundtrip:
    @pytest.mark.parametrize("encoding", ALL_ENCODINGS, ids=lambda e: e.name)
    def test_lossless_on_assorted_ints(self, encoding):
        for values in (
            np.array([5, 5, 5, 5], dtype=np.int64),
            np.array([1, 2, 3, 4, 100], dtype=np.int64),
            np.array([-7, 0, 7, -7], dtype=np.int64),
            np.arange(1000, dtype=np.int64),
            np.array([2**31, 2**31 + 1], dtype=np.int64),
        ):
            payload = encoding.encode(values)
            decoded = encoding.decode(payload, len(values), np.dtype(np.int64))
            assert np.array_equal(decoded, values), encoding.name

    def test_bitpack_width_selection(self):
        enc = BitPackedEncoding()
        _, packed = enc.encode(np.array([0, 255], dtype=np.int64))
        assert packed.dtype == np.uint8
        _, packed = enc.encode(np.array([0, 256], dtype=np.int64))
        assert packed.dtype == np.uint16

    def test_rle_on_runs(self):
        enc = RunLengthEncoding()
        values = np.repeat(np.array([1, 2, 3], dtype=np.int64), 1000)
        payload = enc.encode(values)
        assert enc.encoded_nbytes(payload) < values.nbytes / 100

    def test_delta_on_sorted(self):
        enc = DeltaEncoding()
        values = np.arange(0, 100_000, 3, dtype=np.int64)
        payload = enc.encode(values)
        assert enc.encoded_nbytes(payload) < values.nbytes / 4

    def test_frame_of_reference_blocks(self):
        enc = FrameOfReferenceEncoding()
        values = np.concatenate([
            np.arange(10_000, dtype=np.int64),
            np.arange(10_000_000, 10_005_000, dtype=np.int64),
        ])
        payload = enc.encode(values)
        decoded = enc.decode(payload, len(values), np.dtype(np.int64))
        assert np.array_equal(decoded, values)
        assert enc.encoded_nbytes(payload) < values.nbytes / 2


class TestCompressColumn:
    def test_ints_compress(self):
        column = Column.from_ints([1, 2, 3] * 100)
        out = compress_column(column)
        assert isinstance(out, CompressedColumn)
        assert out.nbytes < column.nbytes
        assert np.array_equal(out.to_column().values, column.values)

    def test_fixed_point_floats_compress_losslessly(self):
        column = Column.from_floats([1.25, 2.50, 3.75] * 100)
        out = compress_column(column)
        assert isinstance(out, CompressedColumn)
        assert np.allclose(out.to_column().values, column.values)

    def test_irrational_floats_stay_plain(self):
        rng = np.random.default_rng(0)
        column = Column(FLOAT64, rng.random(100))
        assert compress_column(column) is column

    def test_strings_compress_code_array(self):
        column = Column.from_strings(["x", "y"] * 500)
        out = compress_column(column)
        assert isinstance(out, CompressedColumn)
        assert out.to_column().to_list() == column.to_list()

    def test_nullable_columns_stay_plain(self):
        column = Column(INT64, np.array([1, 2]), valid=np.array([True, False]))
        assert compress_column(column) is column

    def test_decode_ops_positive(self):
        out = compress_column(Column.from_ints(range(1000)))
        assert out.decode_ops > 0


class TestEngineIntegration:
    @pytest.fixture
    def dbs(self, tpch_db):
        compressed = Database("c")
        for name in tpch_db.table_names:
            compressed.add(compress_table(tpch_db.table(name)))
        return tpch_db, compressed

    def test_lineitem_ratio_at_least_2x(self, dbs):
        _, compressed = dbs
        assert compression_ratio(compressed.table("lineitem")) > 2.0

    @pytest.mark.parametrize("number", [1, 6, 14, 19])
    def test_query_results_identical(self, dbs, tpch_params, number):
        from repro.tpch import get_query

        plain_db, compressed_db = dbs
        plain = execute(plain_db, get_query(number).build(plain_db, tpch_params))
        packed = execute(compressed_db, get_query(number).build(compressed_db, tpch_params))
        assert len(plain.rows) == len(packed.rows)
        for a, b in zip(plain.rows, packed.rows):
            for x, y in zip(a, b):
                if isinstance(x, float):
                    assert x == pytest.approx(y, rel=1e-9)
                else:
                    assert x == y

    def test_compressed_scan_streams_fewer_bytes_more_ops(self, dbs, tpch_params):
        """The §III-C2 decode trade in isolation (encoded execution off):
        compressed scans stream fewer bytes but pay decode ops."""
        from repro.engine import DEFAULT_SETTINGS
        from repro.tpch import get_query

        plain_db, compressed_db = dbs
        plain = execute(plain_db, get_query(6).build(plain_db, tpch_params))
        packed = execute(
            compressed_db, get_query(6).build(compressed_db, tpch_params),
            settings=DEFAULT_SETTINGS.without_compressed(),
        )
        assert packed.profile.seq_bytes < plain.profile.seq_bytes
        assert packed.profile.ops > plain.profile.ops

    def test_encoded_execution_cuts_ops_and_decoded_bytes(self, dbs, tpch_params):
        """Compressed execution keeps the byte saving and drops the
        decode/compare ops too: sargable conjuncts evaluate on the
        packed payloads, so predicate-only columns never decode."""
        from repro.engine import DEFAULT_SETTINGS
        from repro.tpch import get_query

        _, compressed_db = dbs
        plan = get_query(6).build(compressed_db, tpch_params)
        enc = execute(compressed_db, plan)
        dec = execute(
            compressed_db, plan, settings=DEFAULT_SETTINGS.without_compressed()
        )
        assert enc.rows == dec.rows
        assert enc.profile.encoded_eval_rows > 0
        assert enc.profile.ops < dec.profile.ops
        assert enc.profile.decoded_bytes < dec.profile.decoded_bytes

    def test_compression_helps_pi_more_than_server(self, dbs, tpch_params):
        """The paper's §III-C2 thesis: compression pays on the
        bandwidth-starved Pi, is ~neutral on the server."""
        from repro.hardware import PLATFORMS, PerformanceModel
        from repro.tpch import get_query

        plain_db, compressed_db = dbs
        model = PerformanceModel()
        plain = execute(plain_db, get_query(1).build(plain_db, tpch_params))
        packed = execute(compressed_db, get_query(1).build(compressed_db, tpch_params))
        speedup = {}
        for key in ("pi3b+", "op-e5"):
            t_plain = model.predict(plain.profile.scaled(100), PLATFORMS[key])
            t_packed = model.predict(packed.profile.scaled(100), PLATFORMS[key])
            speedup[key] = t_plain / t_packed
        assert speedup["pi3b+"] > speedup["op-e5"]
        assert speedup["pi3b+"] > 1.0
        assert speedup["op-e5"] > 0.9  # at worst neutral
