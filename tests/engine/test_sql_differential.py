"""SQL-text differential wall over all 22 TPC-H queries.

Every query is planned from its SQL text (``repro.tpch.sqltext``) —
not the hand-written builder — and must:

* reproduce the golden results exactly with the default serial executor
  (same pins as ``tests/tpch/test_golden.py``: row count, column names,
  numeric checksum, stringified first row), and
* agree row-for-row with that reference under every optimizer ablation
  (no pushdown/skipping, no late materialization) and under 4-worker
  morsel-parallel execution.

This closes the loop on the front-end: if lowering EXISTS to a semi
join, decorrelating a scalar subquery, or planning a derived table ever
interacts badly with pushdown, zone-map skipping, late materialization,
or parallel morsel execution, a query here diverges.
"""

from __future__ import annotations

import json
import math
from pathlib import Path

import pytest

from repro.engine import Executor, ParallelExecutor
from repro.engine.optimizer import OptimizerSettings
from repro.engine.plan import LimitNode, SortNode
from repro.tpch.sqltext import SQL_QUERY_NUMBERS, build_from_sql

GOLDEN = json.loads(
    (Path(__file__).parent.parent / "tpch" / "data"
     / "golden_sf001_seed42.json").read_text()
)

SETTINGS_AXES = {
    "default": OptimizerSettings(),
    "no-skipping": OptimizerSettings.disabled(),
    "no-latemat": OptimizerSettings().without_latemat(),
}

MORSEL_ROWS = 2048


def _numeric_sum(rows) -> float:
    total = 0.0
    for row in rows:
        for value in row:
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                if isinstance(value, float) and math.isnan(value):
                    continue
                total += float(value)
    return total


def _canonical(rows):
    def norm(v):
        if isinstance(v, float):
            return "nan" if math.isnan(v) else round(v, 7)
        return v

    return sorted(tuple(norm(v) for v in row) for row in rows)


def _is_ordered(plan) -> bool:
    node = plan.node
    while isinstance(node, LimitNode):
        node = node.child
    return isinstance(node, SortNode)


def _assert_rows_agree(reference, candidate, ordered: bool, label: str) -> None:
    assert candidate.column_names == reference.column_names, label
    assert len(candidate) == len(reference), label
    if ordered:
        for i, (expected, actual) in enumerate(
            zip(reference.rows, candidate.rows)
        ):
            for a, b in zip(expected, actual):
                if isinstance(a, float) and isinstance(b, float):
                    if math.isnan(a) and math.isnan(b):
                        continue
                    assert b == pytest.approx(a, rel=1e-9, abs=1e-9), (
                        f"{label} row {i}"
                    )
                else:
                    assert a == b, f"{label} row {i}"
    else:
        assert _canonical(candidate.rows) == _canonical(reference.rows), label


@pytest.fixture(scope="module")
def parallel_executors(tpch_db):
    made = {
        axis: ParallelExecutor(
            tpch_db, workers=4, morsel_rows=MORSEL_ROWS, cache_size=0,
            settings=settings,
        )
        for axis, settings in SETTINGS_AXES.items()
    }
    yield made
    for executor in made.values():
        executor.close()


@pytest.mark.parametrize("number", SQL_QUERY_NUMBERS)
def test_sql_text_matches_golden_serial(tpch_db, tpch_params, number):
    """SQL-planned queries hit the exact same golden pins as the builders."""
    expected = GOLDEN[str(number)]
    plan = build_from_sql(tpch_db, number, tpch_params)
    result = Executor(tpch_db).execute(plan)
    assert len(result) == expected["rows"]
    assert result.column_names == expected["columns"]
    assert _numeric_sum(result.rows) == pytest.approx(
        expected["numeric_sum"], rel=1e-6, abs=0.02
    )
    if expected["first_row"]:
        assert [str(v) for v in result.rows[0]] == expected["first_row"]


@pytest.mark.parametrize("number", SQL_QUERY_NUMBERS)
def test_sql_text_serial_ablations_agree(tpch_db, tpch_params, number):
    plan = build_from_sql(tpch_db, number, tpch_params)
    ordered = _is_ordered(plan)
    reference = Executor(tpch_db, SETTINGS_AXES["default"]).execute(plan)
    for axis in ("no-skipping", "no-latemat"):
        candidate = Executor(tpch_db, SETTINGS_AXES[axis]).execute(plan)
        _assert_rows_agree(reference, candidate, ordered, f"q{number} {axis}")


@pytest.mark.parametrize("number", SQL_QUERY_NUMBERS)
def test_sql_text_parallel_agrees(tpch_db, tpch_params, parallel_executors,
                                  number):
    plan = build_from_sql(tpch_db, number, tpch_params)
    ordered = _is_ordered(plan)
    reference = Executor(tpch_db).execute(plan)
    for axis, executor in parallel_executors.items():
        candidate = executor.execute(plan)
        _assert_rows_agree(
            reference, candidate, ordered, f"q{number} workers=4 {axis}"
        )
