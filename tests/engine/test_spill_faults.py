"""Fault injection for spill I/O: failures are loud and leak-free.

The out-of-core path touches a storage device, which on a wimpy node is
an SD card that *will* eventually fill up or corrupt a file. The
contract under test: every spill fault surfaces as a typed
:class:`SpillError` subclass — never a silent wrong answer — and the
query's temporary spill directory is removed on failure and on
cancellation, not just on success.

Faults are injected through :class:`SpillFaultPlan`, a deterministic
value object consulted by the spill writer (no monkeypatching of the
I/O layer, so the production read/write code paths run unmodified).
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

from repro.engine import (
    Column,
    Executor,
    Frame,
    MemoryBudget,
    ParallelExecutor,
    QueryCancelled,
    SpillCorrupt,
    SpillDiskFull,
    SpillError,
    SpillFaultPlan,
)
from repro.engine.profile import WorkProfile
from repro.engine.spill import SpillSet
from repro.tpch import get_query


def _spill_dirs(base: Path) -> list[Path]:
    return sorted(base.glob("repro-spill-*"))


def _frame(n: int = 5000) -> Frame:
    return Frame(
        {
            "k": Column.from_ints(np.arange(n, dtype=np.int64)),
            "v": Column.from_floats(np.linspace(0.0, 1.0, n)),
        },
        n,
    )


class _CountingCancel:
    """Cancel token that trips after a fixed number of checks — lets a
    query get partway through writing spill partitions before dying."""

    def __init__(self, after: int):
        self.after = after
        self.calls = 0

    def check(self) -> None:
        self.calls += 1
        if self.calls > self.after:
            raise QueryCancelled("injected mid-spill cancellation")


# ----------------------------------------------------------------------
# Unit level: SpillSet honors the fault plan
# ----------------------------------------------------------------------


class TestSpillSetFaults:
    def test_disk_full_raises_typed_error(self, tmp_path):
        budget = MemoryBudget(
            limit_bytes=1,
            spill_dir=str(tmp_path),
            faults=SpillFaultPlan(disk_full_after_bytes=0),
        )
        spills = SpillSet(budget)
        try:
            with pytest.raises(SpillDiskFull):
                spills.write_frame(_frame())
        finally:
            spills.cleanup()
        assert _spill_dirs(tmp_path) == []

    def test_disk_full_threshold_allows_earlier_writes(self, tmp_path):
        budget = MemoryBudget(
            limit_bytes=1,
            spill_dir=str(tmp_path),
            faults=SpillFaultPlan(disk_full_after_bytes=1 << 30),
        )
        spills = SpillSet(budget)
        try:
            ref = spills.write_frame(_frame())
            assert ref.nbytes > 0
        finally:
            spills.cleanup()

    def test_truncated_file_raises_corrupt_on_read(self, tmp_path):
        budget = MemoryBudget(
            limit_bytes=1,
            spill_dir=str(tmp_path),
            faults=SpillFaultPlan(truncate_file=0),
        )
        spills = SpillSet(budget)
        try:
            ref = spills.write_frame(_frame())
            with pytest.raises(SpillCorrupt):
                spills.read_frame(ref)
        finally:
            spills.cleanup()
        assert _spill_dirs(tmp_path) == []

    def test_garbage_file_raises_corrupt_not_garbage_rows(self, tmp_path):
        budget = MemoryBudget(limit_bytes=1, spill_dir=str(tmp_path))
        spills = SpillSet(budget)
        try:
            ref = spills.write_frame(_frame())
            Path(ref.path).write_bytes(b"not a spill file at all")
            with pytest.raises(SpillCorrupt):
                spills.read_frame(ref)
        finally:
            spills.cleanup()


# ----------------------------------------------------------------------
# Query level: faults mid-query fail loudly and clean up
# ----------------------------------------------------------------------


class TestQueryLevelFaults:
    def test_disk_full_mid_query_is_typed_and_leak_free(
        self, tmp_path, tpch_db, tpch_params
    ):
        budget = MemoryBudget(
            limit_bytes=1,
            spill_dir=str(tmp_path),
            faults=SpillFaultPlan(disk_full_after_bytes=64 * 1024),
        )
        plan = get_query(3).build(tpch_db, tpch_params)
        with pytest.raises(SpillDiskFull):
            Executor(tpch_db, memory_budget=budget).execute(plan)
        assert _spill_dirs(tmp_path) == []

    def test_truncated_partition_mid_query_is_typed_and_leak_free(
        self, tmp_path, tpch_db, tpch_params
    ):
        budget = MemoryBudget(
            limit_bytes=1,
            spill_dir=str(tmp_path),
            faults=SpillFaultPlan(truncate_file=2),
        )
        plan = get_query(3).build(tpch_db, tpch_params)
        with pytest.raises(SpillCorrupt):
            Executor(tpch_db, memory_budget=budget).execute(plan)
        assert _spill_dirs(tmp_path) == []

    def test_faults_are_spill_errors(self):
        # Callers that want "any spill failure" can catch the base type.
        assert issubclass(SpillDiskFull, SpillError)
        assert issubclass(SpillCorrupt, SpillError)

    def test_parallel_disk_full_is_typed_and_leak_free(
        self, tmp_path, tpch_db, tpch_params
    ):
        budget = MemoryBudget(
            limit_bytes=1,
            spill_dir=str(tmp_path),
            faults=SpillFaultPlan(disk_full_after_bytes=64 * 1024),
        )
        plan = get_query(3).build(tpch_db, tpch_params)
        with ParallelExecutor(
            tpch_db, workers=2, morsel_rows=2048, cache_size=0, memory_budget=budget
        ) as executor:
            with pytest.raises(SpillDiskFull):
                executor.execute(plan)
        assert _spill_dirs(tmp_path) == []


# ----------------------------------------------------------------------
# Cancellation mid-spill leaves no orphaned temp files
# ----------------------------------------------------------------------


class TestCancelMidSpill:
    def test_cancel_between_partition_writes_cleans_up(
        self, tmp_path, tpch_db, tpch_params
    ):
        budget = MemoryBudget(limit_bytes=1, spill_dir=str(tmp_path))
        plan = get_query(3).build(tpch_db, tpch_params)
        # Let a handful of spill-side cancel checks pass so partition
        # files actually hit disk before the token trips.
        cancel = _CountingCancel(after=3)
        with pytest.raises(QueryCancelled):
            Executor(tpch_db, memory_budget=budget).execute(plan, cancel=cancel)
        assert cancel.calls > 3  # the spill loop really consulted it
        assert _spill_dirs(tmp_path) == []

    def test_uncancelled_query_also_cleans_up(self, tmp_path, tpch_db, tpch_params):
        budget = MemoryBudget(limit_bytes=1, spill_dir=str(tmp_path))
        plan = get_query(3).build(tpch_db, tpch_params)
        result = Executor(tpch_db, memory_budget=budget).execute(plan)
        assert result.profile.spilled_bytes > 0
        assert _spill_dirs(tmp_path) == []
