"""Property-based tests (hypothesis) for the parallel merge layer.

The merge layer's contract is: for *any* morsel split of the input, the
merged partial states equal the single-pass serial operator. Hypothesis
drives random data and random split points through each merge path:

* partial-aggregate merge is associative/commutative (any split, any
  morsel order) and agrees with single-pass aggregation;
* filter + concat preserves row order;
* top-k merge equals global sort-then-limit;
* sorted-run merge equals a global stable sort.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import Column, Frame, WorkProfile, agg, col
from repro.engine.merge import (
    concat_frames,
    decompose_aggregates,
    merge_partial_aggregates,
    merge_profiles,
    merge_sorted_runs,
    merge_topk,
)
from repro.engine.operators.aggregate import execute_aggregate
from repro.engine.operators.filter import execute_filter
from repro.engine.operators.sort import execute_sort, execute_topk


class _Ctx:
    """Minimal operator context: a profile and a current-work slot."""

    def __init__(self):
        self.profile = WorkProfile()
        self.work = self.profile.new_operator("test")


def _frame(keys, values):
    return Frame({
        "k": Column.from_ints(keys),
        "v": Column.from_floats(values),
    }, len(keys))


def _split(frame, cut_points):
    """Split a frame at the given sorted row offsets."""
    bounds = [0] + sorted(set(cut_points)) + [frame.nrows]
    parts = [
        frame.slice(lo, hi)
        for lo, hi in zip(bounds, bounds[1:])
        if hi > lo
    ]
    return parts or [frame]


rows = st.integers(min_value=1, max_value=60)


@st.composite
def keyed_data(draw):
    n = draw(rows)
    keys = draw(st.lists(st.integers(0, 6), min_size=n, max_size=n))
    values = draw(st.lists(
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, width=32),
        min_size=n, max_size=n,
    ))
    cuts = draw(st.lists(st.integers(0, n), min_size=0, max_size=5))
    return keys, values, cuts


AGGS = {
    "s": agg.sum(col("v")),
    "a": agg.avg(col("v")),
    "c": agg.count(col("v")),
    "n": agg.count_star(),
    "lo": agg.min(col("v")),
    "hi": agg.max(col("v")),
}


def _rows_of(frame):
    lists = [c.to_list() for c in frame.columns.values()]
    return list(zip(*lists))


def _assert_rows_close(actual, expected):
    assert len(actual) == len(expected)
    for row_a, row_e in zip(actual, expected):
        for a, e in zip(row_a, row_e):
            if isinstance(e, float):
                if math.isnan(e):
                    assert math.isnan(a)
                else:
                    assert a == pytest.approx(e, rel=1e-9, abs=1e-9)
            else:
                assert a == e


class TestPartialAggregateMerge:
    @given(keyed_data())
    @settings(max_examples=60, deadline=None)
    def test_merge_agrees_with_single_pass(self, data):
        keys, values, cuts = data
        frame = _frame(keys, values)
        serial = execute_aggregate(frame, ["k"], AGGS, _Ctx())

        partial_specs, _ = decompose_aggregates(AGGS)
        partials = [
            execute_aggregate(part, ["k"], partial_specs, _Ctx())
            for part in _split(frame, cuts)
        ]
        merged = merge_partial_aggregates(partials, ["k"], AGGS, _Ctx())

        assert list(merged.columns) == list(serial.columns)
        _assert_rows_close(_rows_of(merged), _rows_of(serial))

    @given(keyed_data(), st.randoms(use_true_random=False))
    @settings(max_examples=40, deadline=None)
    def test_merge_is_commutative_in_morsel_order(self, data, rng):
        keys, values, cuts = data
        frame = _frame(keys, values)
        partial_specs, _ = decompose_aggregates(AGGS)
        partials = [
            execute_aggregate(part, ["k"], partial_specs, _Ctx())
            for part in _split(frame, cuts)
        ]
        shuffled = list(partials)
        rng.shuffle(shuffled)
        a = merge_partial_aggregates(partials, ["k"], AGGS, _Ctx())
        b = merge_partial_aggregates(shuffled, ["k"], AGGS, _Ctx())
        _assert_rows_close(_rows_of(b), _rows_of(a))

    @given(keyed_data())
    @settings(max_examples=40, deadline=None)
    def test_merge_is_associative(self, data):
        """Merging a pre-merged prefix equals merging all morsels flat.

        The partial specs are themselves decomposable (AVG is already
        split into SUM+COUNT), so merging a prefix of partials *under the
        partial specs* yields a frame shaped exactly like a fresh partial
        — a true merge-of-merges.
        """
        keys, values, cuts = data
        frame = _frame(keys, values)
        partial_specs, _ = decompose_aggregates(AGGS)
        flat = [
            execute_aggregate(part, ["k"], partial_specs, _Ctx())
            for part in _split(frame, cuts)
        ]
        if len(flat) > 1:
            prefix = merge_partial_aggregates(
                flat[:2], ["k"], partial_specs, _Ctx()
            )
            regrouped = [prefix] + flat[2:]
        else:
            regrouped = flat
        a = merge_partial_aggregates(flat, ["k"], AGGS, _Ctx())
        b = merge_partial_aggregates(regrouped, ["k"], AGGS, _Ctx())
        _assert_rows_close(_rows_of(b), _rows_of(a))

    def test_count_distinct_is_not_decomposable(self):
        assert decompose_aggregates({"d": agg.count_distinct(col("v"))}) is None


class TestOrderPreservation:
    @given(keyed_data())
    @settings(max_examples=60, deadline=None)
    def test_filter_concat_preserves_row_order(self, data):
        keys, values, cuts = data
        frame = _frame(keys, values)
        predicate = col("k") >= 3
        serial = execute_filter(frame, predicate, _Ctx())
        parts = [
            execute_filter(part, predicate, _Ctx())
            for part in _split(frame, cuts)
        ]
        merged = concat_frames(parts)
        assert _rows_of(merged) == _rows_of(serial)


class TestTopKMerge:
    @given(keyed_data(), st.integers(1, 10))
    @settings(max_examples=60, deadline=None)
    def test_topk_merge_equals_sort_then_limit(self, data, n):
        keys, values, cuts = data
        frame = _frame(keys, values)
        sort_keys = [("k", "asc"), ("v", "desc")]
        global_sorted = execute_sort(frame, sort_keys, _Ctx()).slice(0, n)
        local = [
            execute_topk(part, sort_keys, n, _Ctx())
            for part in _split(frame, cuts)
        ]
        merged = merge_topk(local, sort_keys, n, _Ctx())
        assert _rows_of(merged) == _rows_of(global_sorted)


class TestSortedRunMerge:
    @given(keyed_data())
    @settings(max_examples=60, deadline=None)
    def test_single_key_merge_equals_stable_sort(self, data):
        keys, values, cuts = data
        frame = _frame(keys, values)
        sort_keys = [("k", "asc")]
        global_sorted = execute_sort(frame, sort_keys, _Ctx())
        runs = [
            execute_sort(part, sort_keys, _Ctx())
            for part in _split(frame, cuts)
        ]
        merged = merge_sorted_runs(runs, sort_keys)
        assert _rows_of(merged) == _rows_of(global_sorted)

    @given(keyed_data())
    @settings(max_examples=40, deadline=None)
    def test_multi_key_merge_equals_stable_sort(self, data):
        keys, values, cuts = data
        frame = _frame(keys, values)
        sort_keys = [("k", "desc"), ("v", "asc")]
        global_sorted = execute_sort(frame, sort_keys, _Ctx())
        runs = [
            execute_sort(part, sort_keys, _Ctx())
            for part in _split(frame, cuts)
        ]
        merged = merge_sorted_runs(runs, sort_keys)
        assert _rows_of(merged) == _rows_of(global_sorted)


class TestProfileMerge:
    def test_aligned_profiles_coalesce(self):
        profiles = []
        for _ in range(3):
            p = WorkProfile()
            scan = p.new_operator("scan")
            scan.ops = 10.0
            scan.tuples_in = 5.0
            agg_work = p.new_operator("aggregate")
            agg_work.rand_accesses = 2.0
            profiles.append(p)
        merged = merge_profiles(profiles)
        assert [op.operator for op in merged.operators] == ["scan", "aggregate"]
        assert merged.operators[0].ops == 30.0
        assert merged.operators[0].tuples_in == 15.0
        assert merged.operators[1].rand_accesses == 6.0

    def test_misaligned_profiles_concatenate(self):
        a = WorkProfile()
        a.new_operator("scan")
        b = WorkProfile()
        b.new_operator("scan")
        b.new_operator("filter")
        merged = merge_profiles([a, b])
        assert [op.operator for op in merged.operators] == ["scan", "scan", "filter"]
