"""Differential + property wall for compressed (encoded-domain) execution.

Two layers of defense for the "never change an answer" guarantee:

* **Differential suite.** Every TPC-H query (SF 0.01) and every ad-events
  query (x1.0) runs against a fully compressed database four ways —
  serial and 4-worker morsel-parallel, each with compressed execution
  enabled (the default) and disabled (``--no-compressed-exec``) — and
  all four must agree with each other and with the committed goldens of
  the *plain* databases. A mistranslated predicate constant, an RLE run
  boundary off by one, or a group built from the wrong run shows up as a
  row-level diff here.

* **Property wall.** Hypothesis drives every supported encoding ×
  predicate operator × dtype combination — including NULLs, empty
  columns, constants at the data min/max ± 1, constants between
  fixed-point cents, NaN, and the dtype extremes — and asserts the
  compressed-domain mask is *bit-identical* to evaluating the same
  conjunct on the decoded column. A second property does the same for
  run-level aggregation against the row-at-a-time decode path.
"""

from __future__ import annotations

import json
import math
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adevents import QUERY_NAMES as ADEVENTS_NAMES
from repro.adevents import build as adevents_build
from repro.adevents import generate as adevents_generate
from repro.engine import (
    DEFAULT_SETTINGS,
    Column,
    Executor,
    Frame,
    ParallelExecutor,
    col,
)
from repro.engine.compression import (
    BitPackedEncoding,
    CompressedColumn,
    DeltaEncoding,
    FrameOfReferenceEncoding,
    RunLengthEncoding,
    _ScaledEncoding,
    compress_table,
)
from repro.engine.encoded import (
    compile_conjunct,
    compile_predicate,
    prepare_aggregate,
)
from repro.engine.operators.aggregate import (
    avg,
    count_star,
    execute_aggregate,
    max_,
    min_,
    sum_,
)
from repro.engine.plan import LimitNode, SortNode
from repro.engine.profile import WorkProfile
from repro.engine.table import Database, Table
from repro.engine.types import DATE, FLOAT64, INT64, STRING, date_to_days
from repro.tpch import ALL_QUERY_NUMBERS, get_query

GOLDEN = json.loads(
    (Path(__file__).parent.parent / "tpch" / "data" / "golden_sf001_seed42.json").read_text()
)
ADEVENTS_GOLDEN = json.loads(
    (Path(__file__).parent.parent / "adevents" / "data" / "golden_x1_seed7.json").read_text()
)

WORKERS = 4
TPCH_MORSEL_ROWS = 2048  # force real multi-morsel execution at SF 0.01
ADEVENTS_MORSEL_ROWS = 4096

ENC = DEFAULT_SETTINGS  # compressed execution is the default
DEC = DEFAULT_SETTINGS.without_compressed()


# ----------------------------------------------------------------------
# Shared result-comparison helpers (same semantics as the latemat suite)
# ----------------------------------------------------------------------


class _Ctx:
    """Minimal evaluation context: a fresh profile with one operator."""

    def __init__(self):
        self.profile = WorkProfile()
        self.work = self.profile.new_operator("test")

    def scalar(self, plan):  # pragma: no cover - not used here
        raise NotImplementedError


class _ExecCtx:
    """Execution context for plan-level helpers: begin_operator only."""

    def __init__(self):
        self.profile = WorkProfile()

    def begin_operator(self, name: str):
        return self.profile.new_operator(name)


def _is_ordered(plan) -> bool:
    node = plan.node
    while isinstance(node, LimitNode):
        node = node.child
    return isinstance(node, SortNode)


def _canonical(rows):
    def norm(v):
        if isinstance(v, float):
            return "nan" if math.isnan(v) else round(v, 7)
        return v

    return sorted(tuple(norm(v) for v in row) for row in rows)


def _numeric_sum(rows) -> float:
    total = 0.0
    for row in rows:
        for value in row:
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                if isinstance(value, float) and math.isnan(value):
                    continue
                total += float(value)
    return total


def _assert_values_equal(expected_rows, actual_rows, label):
    assert len(expected_rows) == len(actual_rows), label
    for i, (expected, actual) in enumerate(zip(expected_rows, actual_rows)):
        assert len(expected) == len(actual)
        for a, b in zip(expected, actual):
            if isinstance(a, float) and isinstance(b, float):
                if math.isnan(a) and math.isnan(b):
                    continue
                assert b == pytest.approx(a, rel=1e-9, abs=1e-9), (
                    f"{label} row {i}: {a!r} != {b!r}"
                )
            else:
                assert a == b, f"{label} row {i}: {a!r} != {b!r}"


def _assert_same(plan, reference, candidate, label):
    assert candidate.column_names == reference.column_names
    if _is_ordered(plan):
        _assert_values_equal(reference.rows, candidate.rows, label)
    else:
        assert _canonical(candidate.rows) == _canonical(reference.rows), label


def _assert_golden(plan, result, expected):
    assert len(result) == expected["rows"]
    assert list(result.column_names) == expected["columns"]
    assert _numeric_sum(result.rows) == pytest.approx(
        expected["numeric_sum"], rel=1e-6, abs=0.02
    )
    if expected["first_row"] and _is_ordered(plan):
        # Fixed-point float columns decode to cents/100.0, which may
        # differ from the plain doubles in the last bit — compare
        # numerically, not by string.
        for actual, pinned in zip(result.rows[0], expected["first_row"]):
            try:
                pinned_value = float(pinned)
            except ValueError:
                assert str(actual) == pinned
            else:
                assert float(actual) == pytest.approx(pinned_value, rel=1e-9, abs=1e-9)


def _compress_db(db, name: str) -> Database:
    out = Database(name)
    for table in db.table_names:
        out.add(compress_table(db.table(table)))
    return out


# ----------------------------------------------------------------------
# Differential: all 22 TPC-H queries on a compressed database
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def ctpch_db(tpch_db) -> Database:
    return _compress_db(tpch_db, "ctpch")


@pytest.fixture(scope="module")
def ctpch_executors(ctpch_db):
    made = {
        "enc": ParallelExecutor(
            ctpch_db, workers=WORKERS, morsel_rows=TPCH_MORSEL_ROWS, cache_size=0,
            settings=ENC,
        ),
        "dec": ParallelExecutor(
            ctpch_db, workers=WORKERS, morsel_rows=TPCH_MORSEL_ROWS, cache_size=0,
            settings=DEC,
        ),
    }
    yield made
    for executor in made.values():
        executor.close()


class TestTpchCompressedDifferential:
    @pytest.mark.parametrize("number", ALL_QUERY_NUMBERS)
    def test_four_way_agreement(
        self, ctpch_db, tpch_params, ctpch_executors, number
    ):
        plan = get_query(number).build(ctpch_db, tpch_params)
        serial_dec = Executor(ctpch_db, DEC).execute(plan)
        serial_enc = Executor(ctpch_db, ENC).execute(plan)
        parallel_enc = ctpch_executors["enc"].execute(plan)
        parallel_dec = ctpch_executors["dec"].execute(plan)

        _assert_same(plan, serial_dec, serial_enc, f"Q{number} serial enc-vs-dec")
        _assert_same(plan, serial_enc, parallel_enc, f"Q{number} parallel-enc")
        _assert_same(plan, serial_dec, parallel_dec, f"Q{number} parallel-dec")

    @pytest.mark.parametrize("number", ALL_QUERY_NUMBERS)
    def test_matches_plain_golden(
        self, ctpch_db, tpch_params, ctpch_executors, number
    ):
        """Encoded execution over the compressed database must still
        reproduce the goldens pinned against the *plain* database."""
        plan = get_query(number).build(ctpch_db, tpch_params)
        result = ctpch_executors["enc"].execute(plan)
        _assert_golden(plan, result, GOLDEN[str(number)])


# ----------------------------------------------------------------------
# Differential: all 11 ad-events queries on a compressed database
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def cadevents_db() -> Database:
    return _compress_db(adevents_generate(1.0, seed=7), "cadevents")


@pytest.fixture(scope="module")
def cadevents_executors(cadevents_db):
    made = {
        "enc": ParallelExecutor(
            cadevents_db, workers=WORKERS, morsel_rows=ADEVENTS_MORSEL_ROWS,
            cache_size=0, settings=ENC,
        ),
        "dec": ParallelExecutor(
            cadevents_db, workers=WORKERS, morsel_rows=ADEVENTS_MORSEL_ROWS,
            cache_size=0, settings=DEC,
        ),
    }
    yield made
    for executor in made.values():
        executor.close()


class TestAdEventsCompressedDifferential:
    @pytest.mark.parametrize("name", ADEVENTS_NAMES)
    def test_four_way_agreement(self, cadevents_db, cadevents_executors, name):
        plan = adevents_build(cadevents_db, name)
        serial_dec = Executor(cadevents_db, DEC).execute(plan)
        serial_enc = Executor(cadevents_db, ENC).execute(plan)
        parallel_enc = cadevents_executors["enc"].execute(plan)
        parallel_dec = cadevents_executors["dec"].execute(plan)

        _assert_same(plan, serial_dec, serial_enc, f"{name} serial enc-vs-dec")
        _assert_same(plan, serial_enc, parallel_enc, f"{name} parallel-enc")
        _assert_same(plan, serial_dec, parallel_dec, f"{name} parallel-dec")

    @pytest.mark.parametrize("name", ADEVENTS_NAMES)
    def test_matches_plain_golden(self, cadevents_db, cadevents_executors, name):
        plan = adevents_build(cadevents_db, name)
        result = cadevents_executors["enc"].execute(plan)
        _assert_golden(plan, result, ADEVENTS_GOLDEN[name])


# ----------------------------------------------------------------------
# Property wall: encoded predicate kernels ≡ decode-then-eval
# ----------------------------------------------------------------------

_FORCEABLE = {
    "bitpack": BitPackedEncoding(),
    "for": FrameOfReferenceEncoding(),
    "rle": RunLengthEncoding(),
}

_I64 = np.iinfo(np.int64)
_I32 = np.iinfo(np.int32)


def _force_compress(column: Column, encoding) -> CompressedColumn:
    """Compress ``column`` with exactly ``encoding``, even when the
    auto-picker would keep it plain (small test arrays never win on
    size, but the kernels must still be exact)."""
    assert column.valid is None
    values = column.values
    scale = None
    if column.dtype is FLOAT64:
        cents = np.round(values * 100).astype(np.int64)
        assert np.allclose(cents / 100.0, values, atol=1e-9)
        values = cents
        scale = 100.0
    payload = encoding.encode(values)
    nbytes = encoding.encoded_nbytes(payload)
    if scale is not None:
        payload = ("scaled", scale, payload)
    return CompressedColumn(
        dtype=column.dtype,
        encoding_name=encoding.name,
        payload=payload,
        n=len(column),
        nbytes=nbytes,
        decode_ops=float(len(column)),
        plain_nbytes=column.nbytes,
        dictionary=column.dictionary,
        _encoding=_ScaledEncoding(encoding, scale) if scale is not None else encoding,
    )


def _table_of(columns: dict) -> Table:
    table = Table.__new__(Table)
    table.name = "t"
    table.columns = columns
    table.nrows = len(next(iter(columns.values())))
    return table


def _check_encoded_mask(column: Column, expr, lo: int, hi: int):
    """For every forceable encoding: the conjunct compiles, and its mask
    over [0, n) and over the [lo, hi) subrange is bit-identical to
    evaluating the same conjunct on the decoded column."""
    n = len(column)
    for enc_name, encoding in _FORCEABLE.items():
        ccol = _force_compress(column, encoding)
        plan = compile_conjunct(expr, _table_of({"x": ccol}))
        assert plan is not None, enc_name
        decoded = Frame({"x": ccol.to_column()}, n)
        want = np.asarray(expr.evaluate(decoded, _Ctx()).values, dtype=bool)
        got = plan.mask(0, n, _Ctx().work)
        assert got.dtype == np.bool_, enc_name
        assert np.array_equal(got, want), enc_name
        sub = plan.mask(lo, hi, _Ctx().work)
        assert np.array_equal(sub, want[lo:hi]), f"{enc_name} [{lo}:{hi})"


_CMP_OPS = ["==", "!=", "<", "<=", ">", ">="]


def _cmp(op: str, constant):
    ref = col("x")
    return {
        "==": ref == constant, "!=": ref != constant,
        "<": ref < constant, "<=": ref <= constant,
        ">": ref > constant, ">=": ref >= constant,
    }[op]


@st.composite
def _runs_and_range(draw, value_st, max_runs: int = 12, max_run: int = 5):
    """Clustered values (so RLE sees real runs) plus a probe subrange."""
    n_runs = draw(st.integers(min_value=0, max_value=max_runs))
    run_values = draw(st.lists(value_st, min_size=n_runs, max_size=n_runs))
    lengths = draw(
        st.lists(st.integers(1, max_run), min_size=n_runs, max_size=n_runs)
    )
    values = [v for v, l in zip(run_values, lengths) for _ in range(l)]
    n = len(values)
    lo = draw(st.integers(0, n))
    hi = draw(st.integers(lo, n))
    return values, lo, hi


def _boundary_pool(values: list[int], extremes: tuple[int, int]) -> list[int]:
    """Domain-boundary constants: data min/max ± 1 and the dtype extremes."""
    lo, hi = extremes
    pool = [0, lo, hi]
    if values:
        vmin, vmax = min(values), max(values)
        pool += [vmin, vmax, max(vmin - 1, lo), min(vmax + 1, hi)]
    return pool


class TestEncodedPredicatesAgree:
    @settings(max_examples=80, deadline=None)
    @given(
        data=_runs_and_range(
            st.integers(-1000, 1000)
            | st.sampled_from([0, 255, 256, -256, 10**6, -(10**6), 2**40])
        ),
        op=st.sampled_from(_CMP_OPS),
        pick=st.data(),
    )
    def test_int64_comparisons(self, data, op, pick):
        values, lo, hi = data
        pool = _boundary_pool(values, (int(_I64.min), int(_I64.max)))
        constant = pick.draw(st.sampled_from(pool) | st.integers(-1200, 1200))
        column = Column.from_ints(values)
        _check_encoded_mask(column, _cmp(op, constant), lo, hi)

    @settings(max_examples=80, deadline=None)
    @given(
        data=_runs_and_range(st.integers(-40000, 40000)),
        op=st.sampled_from(_CMP_OPS),
        pick=st.data(),
    )
    def test_float64_fixed_point_comparisons(self, data, op, pick):
        """FLOAT64 stored as cents: constants include values *between*
        representable cents (±half a cent), NaN, and the infinities —
        the bisection must reproduce float comparison semantics exactly."""
        cents, lo, hi = data
        values = [c / 100.0 for c in cents]
        cent_consts = [c / 100.0 for c in _boundary_pool(cents, (-(10**9), 10**9))]
        off_grid = [c + 0.005 for c in cent_consts] + [c - 0.005 for c in cent_consts]
        constant = pick.draw(
            st.sampled_from(cent_consts + off_grid + [math.nan, math.inf, -math.inf])
        )
        column = Column.from_floats(values)
        _check_encoded_mask(column, _cmp(op, constant), lo, hi)

    @settings(max_examples=80, deadline=None)
    @given(
        data=_runs_and_range(st.integers(7000, 11000)),  # ~1989..2000 in days
        op=st.sampled_from(_CMP_OPS),
        pick=st.data(),
    )
    def test_date_comparisons(self, data, op, pick):
        """DATE (int32 storage): int-day constants at the data boundary,
        the int32 extremes, constants past int32 (promoted comparisons),
        and ISO date-string literals translated through date_to_days."""
        days, lo, hi = data
        pool = _boundary_pool(days, (int(_I32.min), int(_I32.max)))
        constant = pick.draw(
            st.sampled_from(pool + [2**40, -(2**40)])
            | st.sampled_from(["1994-01-01", "1995-06-17", "1998-12-31"])
        )
        column = Column(DATE, np.asarray(days, dtype=np.int32))
        _check_encoded_mask(column, _cmp(op, constant), lo, hi)

    @settings(max_examples=80, deadline=None)
    @given(
        data=_runs_and_range(
            st.sampled_from(["apple", "banana", "cherry", "kiwi", ""])
        ),
        op=st.sampled_from(_CMP_OPS),
        probe=st.sampled_from(
            ["apple", "banana", "", "durian", "aaa", "zzz", "ap", "apple pie"]
        ),
    )
    def test_string_comparisons(self, data, op, probe):
        """Dictionary-mask kernels, including probes that are not
        dictionary-resident."""
        words, lo, hi = data
        column = Column.from_strings(words)
        _check_encoded_mask(column, _cmp(op, probe), lo, hi)

    @settings(max_examples=60, deadline=None)
    @given(
        data=_runs_and_range(
            st.sampled_from(["apple", "banana", "cherry", "kiwi", ""])
        ),
        wanted=st.lists(
            st.sampled_from(["apple", "cherry", "durian", "zzz", ""]),
            min_size=0, max_size=4,
        ),
    )
    def test_string_isin(self, data, wanted):
        words, lo, hi = data
        column = Column.from_strings(words)
        _check_encoded_mask(column, col("x").isin(wanted), lo, hi)

    @settings(max_examples=60, deadline=None)
    @given(
        data=_runs_and_range(
            st.sampled_from(["apple", "banana", "cherry", "kiwi", ""])
        ),
        pattern=st.sampled_from(
            ["%an%", "a%", "%y", "_pple", "%", "", "ap_le", "%a%a%", "zzz%"]
        ),
    )
    def test_string_like(self, data, pattern):
        words, lo, hi = data
        column = Column.from_strings(words)
        _check_encoded_mask(column, col("x").like(pattern), lo, hi)

    @settings(max_examples=60, deadline=None)
    @given(
        data=_runs_and_range(st.integers(-100, 100)),
        wanted=st.lists(st.integers(-110, 110), min_size=0, max_size=5),
    )
    def test_int_isin_rle_only(self, data, wanted):
        """Numeric IN compiles for RLE (one membership test per run) and
        deliberately falls back for packed encodings."""
        values, lo, hi = data
        column = Column.from_ints(values)
        expr = col("x").isin(wanted)
        for enc_name, encoding in _FORCEABLE.items():
            ccol = _force_compress(column, encoding)
            plan = compile_conjunct(expr, _table_of({"x": ccol}))
            if enc_name != "rle":
                assert plan is None, enc_name
                continue
            assert plan is not None
            decoded = Frame({"x": ccol.to_column()}, len(column))
            want = np.asarray(expr.evaluate(decoded, _Ctx()).values, dtype=bool)
            assert np.array_equal(plan.mask(0, len(column), _Ctx().work), want)
            assert np.array_equal(plan.mask(lo, hi, _Ctx().work), want[lo:hi])

    def test_empty_column_all_encodings(self):
        column = Column.from_ints([])
        for op in _CMP_OPS:
            _check_encoded_mask(column, _cmp(op, 0), 0, 0)

    def test_nullable_column_never_compiles(self):
        """Nullable columns stay plain, so every conjunct lands on the
        residual (decode) list and no encoded plans are produced."""
        column = Column(
            INT64, np.asarray([1, 2, 3], dtype=np.int64),
            valid=np.asarray([True, False, True]),
        )
        table = _table_of({"x": column})
        conjuncts = [_cmp("==", 2), _cmp("<", 3)]
        plans, residual = compile_predicate(conjuncts, table)
        assert plans == []
        assert residual == conjuncts

    def test_delta_encoding_never_compiles(self):
        """Delta prefix sums have no packed-domain comparison; the
        conjunct must fall back to decode-then-eval."""
        column = Column.from_ints(list(range(100)))
        ccol = _force_compress(column, DeltaEncoding())
        assert compile_conjunct(_cmp(">", 50), _table_of({"x": ccol})) is None


# ----------------------------------------------------------------------
# Property wall: RLE run-level aggregation ≡ decode-then-aggregate
# ----------------------------------------------------------------------


def _assert_frames_identical(want: Frame, got: Frame):
    assert list(got.columns) == list(want.columns)
    assert got.nrows == want.nrows
    for name in want.columns:
        a, b = want.column(name), got.column(name)
        assert b.dtype is a.dtype, name
        if a.dtype is STRING:
            assert b.to_list() == a.to_list(), name
        else:
            assert np.array_equal(
                np.asarray(a.values), np.asarray(b.values), equal_nan=True
            ), name
        a_valid = a.valid if a.valid is not None else np.ones(len(a), dtype=bool)
        b_valid = b.valid if b.valid is not None else np.ones(len(b), dtype=bool)
        assert np.array_equal(a_valid, b_valid), name


@st.composite
def _rle_agg_case(draw):
    n_runs = draw(st.integers(1, 10))
    key_runs = draw(st.lists(st.integers(0, 4), min_size=n_runs, max_size=n_runs))
    key_lens = draw(st.lists(st.integers(1, 6), min_size=n_runs, max_size=n_runs))
    keys = [k for k, l in zip(key_runs, key_lens) for _ in range(l)]
    n = len(keys)
    # Input column with its own, differently aligned run structure.
    vals: list[int] = []
    while len(vals) < n:
        v = draw(st.integers(-500, 500))
        vals.extend([v] * draw(st.integers(1, 4)))
    return keys, vals[:n]


class TestEncodedAggregateAgrees:
    @settings(max_examples=60, deadline=None)
    @given(case=_rle_agg_case())
    def test_grouped_int_aggregates(self, case):
        keys, vals = case
        kcol = _force_compress(Column.from_ints(keys), RunLengthEncoding())
        vcol = _force_compress(Column.from_ints(vals), RunLengthEncoding())
        table = _table_of({"k": kcol, "v": vcol})
        aggs = {
            "total": sum_(col("v")),
            "mean": avg(col("v")),
            "lo": min_(col("v")),
            "hi": max_(col("v")),
            "cnt": count_star(),
        }
        plan = prepare_aggregate(table, ["k"], aggs)
        assert plan is not None
        got = plan.execute(_ExecCtx())
        decoded = Frame(
            {"k": kcol.to_column(), "v": vcol.to_column()}, table.nrows
        )
        want = execute_aggregate(decoded, ["k"], aggs, _Ctx())
        _assert_frames_identical(want, got)

    @settings(max_examples=60, deadline=None)
    @given(case=_rle_agg_case())
    def test_grouped_float_min_max(self, case):
        """Fixed-point FLOAT64 inputs: only min/max/count compile (sums
        fall back), and the run-level extremes decode through the same
        cents/scale cast as the row-level path."""
        keys, cents = case
        kcol = _force_compress(Column.from_ints(keys), RunLengthEncoding())
        vcol = _force_compress(
            Column.from_floats([c / 100.0 for c in cents]), RunLengthEncoding()
        )
        table = _table_of({"k": kcol, "v": vcol})
        aggs = {"lo": min_(col("v")), "hi": max_(col("v")), "cnt": count_star()}
        plan = prepare_aggregate(table, ["k"], aggs)
        assert plan is not None
        got = plan.execute(_ExecCtx())
        decoded = Frame(
            {"k": kcol.to_column(), "v": vcol.to_column()}, table.nrows
        )
        want = execute_aggregate(decoded, ["k"], aggs, _Ctx())
        _assert_frames_identical(want, got)

    @settings(max_examples=60, deadline=None)
    @given(case=_rle_agg_case())
    def test_string_keys(self, case):
        key_ids, vals = case
        names = ["alpha", "beta", "gamma", "delta", "epsilon"]
        kcol = _force_compress(
            Column.from_strings([names[k] for k in key_ids]), RunLengthEncoding()
        )
        vcol = _force_compress(Column.from_ints(vals), RunLengthEncoding())
        table = _table_of({"k": kcol, "v": vcol})
        aggs = {"total": sum_(col("v")), "cnt": count_star()}
        plan = prepare_aggregate(table, ["k"], aggs)
        assert plan is not None
        got = plan.execute(_ExecCtx())
        decoded = Frame(
            {"k": kcol.to_column(), "v": vcol.to_column()}, table.nrows
        )
        want = execute_aggregate(decoded, ["k"], aggs, _Ctx())
        _assert_frames_identical(want, got)

    @settings(max_examples=60, deadline=None)
    @given(case=_rle_agg_case())
    def test_global_aggregates(self, case):
        _, vals = case
        vcol = _force_compress(Column.from_ints(vals), RunLengthEncoding())
        table = _table_of({"v": vcol})
        aggs = {
            "total": sum_(col("v")),
            "mean": avg(col("v")),
            "lo": min_(col("v")),
            "hi": max_(col("v")),
            "cnt": count_star(),
        }
        plan = prepare_aggregate(table, [], aggs)
        assert plan is not None
        got = plan.execute(_ExecCtx())
        want = execute_aggregate(
            Frame({"v": vcol.to_column()}, table.nrows), [], aggs, _Ctx()
        )
        _assert_frames_identical(want, got)

    def test_exactness_fallbacks(self):
        """Shapes whose bit-identity cannot be proven must not compile."""
        ints = _force_compress(Column.from_ints([1, 1, 2, 2]), RunLengthEncoding())
        floats = _force_compress(
            Column.from_floats([1.25, 1.25, 2.5, 2.5]), RunLengthEncoding()
        )
        packed = _force_compress(Column.from_ints([1, 1, 2, 2]), BitPackedEncoding())
        table = _table_of({"k": ints, "f": floats, "p": packed})

        # Float SUM: accumulation order is not provably identical.
        assert prepare_aggregate(table, ["k"], {"s": sum_(col("f"))}) is None
        # Non-RLE input: no run structure to reduce over.
        assert prepare_aggregate(table, ["k"], {"s": sum_(col("p"))}) is None
        # Multi-key grouping falls back.
        assert prepare_aggregate(
            table, ["k", "p"], {"c": count_star()}
        ) is None
        # Sums near 2**53 lose exactness in float64 partials.
        huge = _force_compress(
            Column.from_ints([2**52, 2**52, 2**52]), RunLengthEncoding()
        )
        table2 = _table_of({"k": ints.to_column(), "h": huge})
        assert prepare_aggregate(table2, [], {"s": sum_(col("h"))}) is None
        # Empty tables fall back (nothing to prove anything against).
        empty = _table_of({"v": Column.from_ints([])})
        assert prepare_aggregate(empty, [], {"c": count_star()}) is None
