"""Fuzz wall for the SQL front-end's never-crash contract.

Whatever the input — arbitrary unicode, keyword soup, or real queries
chewed up by random mutations — ``sql(db, text)`` must either return a
plan or raise :class:`SqlError`, and never the ``internal=True`` guard
variant (which would mean an unexpected exception type escaped the
parser or planner and was caught only by the last-resort wrapper).
Explicit adversarial inputs (deep nesting, long flat chains, hostile
literals) are pinned as regular tests so they stay covered even at low
example counts.

Profiles: the default runs a few hundred examples per property for the
tier-1 suite; CI sets ``HYPOTHESIS_PROFILE=ci`` for the 10k-case run
(fixed seed via ``derandomize``, per-example deadline bounded).
"""

from __future__ import annotations

import os
import string

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.adevents import ADEVENTS_QUERIES
from repro.adevents import generate as adevents_generate
from repro.engine import Column, Database, Executor, Table
from repro.engine.sql import MAX_DEPTH, SqlError, sql, tokenize
from repro.tpch import generate as tpch_generate
from repro.tpch.sqltext import SQL_QUERY_NUMBERS, sql_text

settings.register_profile(
    "ci",
    max_examples=2500,  # 4 properties x 2500 = the 10k-case CI wall
    derandomize=True,
    deadline=1000,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large,
                           HealthCheck.filter_too_much],
)
settings.register_profile(
    "dev",
    max_examples=150,
    derandomize=True,
    deadline=None,
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))


def _fuzz_db() -> Database:
    """One catalog holding both workloads' tables (tiny scales), so
    mutated queries from either corpus still resolve their FROM clauses."""
    db = Database("fuzz")
    for source in (tpch_generate(0.001, seed=3), adevents_generate(0.05, seed=3)):
        for name in source.table_names:
            db.add(source.table(name))
    db.add(Table("t", {
        "k": Column.from_ints([1, 2, 3]),
        "v": Column.from_floats([10.0, 20.0, 30.0]),
        "s": Column.from_strings(["a", "b", "a"]),
        "d": Column.from_dates(["1994-01-01", "1995-06-01", "1996-01-01"]),
    }))
    return db


DB = _fuzz_db()

CORPUS = tuple(
    sql_text(number, {"sf": 0.001}) for number in SQL_QUERY_NUMBERS
) + tuple(ADEVENTS_QUERIES.values())

# Splice material for grammar-aware mutations.
TOKENS = (
    "SELECT", "FROM", "WHERE", "GROUP BY", "HAVING", "ORDER BY", "LIMIT",
    "JOIN", "LEFT JOIN", "ON", "AND", "OR", "NOT", "IN", "EXISTS",
    "BETWEEN", "LIKE", "CASE", "WHEN", "THEN", "ELSE", "END", "UNION",
    "ALL", "AS", "IS", "NULL", "DISTINCT", "SUM", "AVG", "MIN", "MAX",
    "COUNT", "EXTRACT", "SUBSTRING", "UPPER", "LOWER", "CONCAT",
    "INTERVAL", "DATE", "YEAR", "(", ")", ",", "*", "+", "-", "/", "=",
    "<>", "<=", ">=", "<", ">", ".", ";", "'", "''", "0", "1", "42",
    "3.14", ".5", "'abc'", "l_orderkey", "ev_type", "t", "lineitem",
    "events", "missing_column", "missing_table",
)


def _assert_parses_or_sql_error(text: str) -> None:
    try:
        sql(DB, text)
    except SqlError as err:
        assert not err.internal, (
            f"internal-error guard fired (never-crash contract violated) "
            f"for input {text!r}: {err}"
        )


@given(st.text(max_size=300))
def test_arbitrary_unicode_never_crashes(text):
    _assert_parses_or_sql_error(text)


@given(
    st.lists(st.sampled_from(TOKENS), max_size=60).map(" ".join)
)
def test_token_soup_never_crashes(text):
    _assert_parses_or_sql_error(text)


@st.composite
def _mutated_query(draw):
    text = draw(st.sampled_from(CORPUS))
    for _ in range(draw(st.integers(1, 4))):
        if not text:
            break
        kind = draw(st.integers(0, 3))
        i = draw(st.integers(0, len(text) - 1))
        j = draw(st.integers(i, min(len(text), i + 25)))
        if kind == 0:  # delete a span
            text = text[:i] + text[j:]
        elif kind == 1:  # duplicate a span
            text = text[:j] + text[i:j] + text[j:]
        elif kind == 2:  # overwrite a span with a random token
            text = text[:i] + " " + draw(st.sampled_from(TOKENS)) + " " + text[j:]
        else:  # insert printable noise
            noise = draw(st.text(alphabet=string.printable, max_size=6))
            text = text[:i] + noise + text[i:]
    return text


@given(_mutated_query())
def test_mutated_real_queries_never_crash(text):
    _assert_parses_or_sql_error(text)


@given(st.text(alphabet=string.printable, max_size=300))
def test_printable_soup_never_crashes(text):
    _assert_parses_or_sql_error(text)


class TestAdversarialInputs:
    """Pinned hostile inputs: each must fail fast with a plain SqlError."""

    def test_deep_paren_nesting_is_depth_bounded(self):
        depth = MAX_DEPTH * 4
        text = "SELECT k FROM t WHERE " + "(" * depth + "1" + ")" * depth + " > 0"
        with pytest.raises(SqlError, match="nested too deeply"):
            sql(DB, text)

    def test_deep_not_chain_is_depth_bounded(self):
        text = "SELECT k FROM t WHERE " + "NOT " * (MAX_DEPTH * 4) + "1 > 0"
        with pytest.raises(SqlError, match="nested too deeply"):
            sql(DB, text)

    def test_deep_unary_minus_chain_is_depth_bounded(self):
        text = "SELECT " + "- " * (MAX_DEPTH * 4) + "1 FROM t"
        with pytest.raises(SqlError, match="nested too deeply"):
            sql(DB, text)

    def test_long_flat_and_chain_plans_fine(self):
        # Flat chains are not nesting: thousands of conjuncts must plan
        # without blowing the stack (conjuncts and the left-deep spine
        # walk are both iterative).
        text = "SELECT k FROM t WHERE " + " AND ".join(["k > 0"] * 3000)
        sql(DB, text)

    def test_long_flat_arithmetic_chain_plans_fine(self):
        text = "SELECT " + " + ".join(["1"] * 3000) + " AS n FROM t"
        sql(DB, text)

    def test_long_union_chain_plans_fine(self):
        text = " UNION ALL ".join(["SELECT k FROM t"] * 300)
        sql(DB, text)

    def test_overlong_statement_rejected(self):
        with pytest.raises(SqlError, match="too long"):
            sql(DB, "SELECT 1 FROM t -- " + "x" * 2_000_000)

    def test_overlong_numeric_literal_rejected(self):
        with pytest.raises(SqlError, match="numeric literal too long"):
            sql(DB, "SELECT " + "9" * 5000 + " AS n FROM t")

    def test_non_string_input_rejected(self):
        with pytest.raises(SqlError, match="must be a string"):
            sql(DB, None)

    def test_interval_overflow_is_sql_error(self):
        with pytest.raises(SqlError, match="date arithmetic"):
            sql(DB, "SELECT k FROM t WHERE d < DATE '1994-01-01' "
                    "+ INTERVAL '999999999' YEAR")

    def test_invalid_date_literal_is_sql_error(self):
        with pytest.raises(SqlError, match="invalid DATE literal"):
            sql(DB, "SELECT k FROM t WHERE d < DATE 'not-a-date'")

    def test_tokenizer_never_stalls_on_comment_at_eof(self):
        assert tokenize("SELECT 1 --")[-1].kind == "EOF"


# -- the same contract through the serving front door -------------------
#
# The server multiplexes untrusted request payloads over shared worker
# threads; its never-crash surface is wider than the parser's — the
# allowed outcomes are rows or one of the typed serve/engine errors,
# and a hostile request must never kill a worker or wedge the server.

from repro.engine.cancel import QueryInterrupted  # noqa: E402
from repro.serve import (  # noqa: E402
    AdmissionPolicy,
    CircuitBreaker,
    Overloaded,
    QueryFailed,
    QueryServer,
    RetryPolicy,
)


@pytest.fixture(scope="module")
def fuzz_server():
    server = QueryServer(
        DB,
        workers=2,
        # The fuzz stream legitimately contains failing inputs; the
        # breaker must not trip mid-run and taint later examples.
        breaker=CircuitBreaker(failure_threshold=10**9),
        retry=RetryPolicy(max_retries=0),
        admission=AdmissionPolicy(
            max_concurrent=2, queue_capacity=64, max_queue_delay_s=1e9
        ),
    )
    yield server
    server.close()


class TestServerNeverCrashes:
    SMOKE = "SELECT COUNT(*) AS n FROM t"

    @given(_mutated_query())
    @settings(max_examples=50, deadline=None, derandomize=True)
    def test_mutated_queries_through_server(self, fuzz_server, text):
        try:
            fuzz_server.query(text, timeout_s=10.0)
        except SqlError as err:
            assert not err.internal, (
                f"internal-error guard fired through the server for "
                f"{text!r}: {err}"
            )
        except (Overloaded, QueryFailed, QueryInterrupted):
            pass  # typed serving outcomes: allowed, never a crash

    @given(st.text(max_size=200))
    @settings(max_examples=50, deadline=None, derandomize=True)
    def test_arbitrary_unicode_through_server(self, fuzz_server, text):
        try:
            fuzz_server.query(text, timeout_s=10.0)
        except SqlError as err:
            assert not err.internal
        except (Overloaded, QueryFailed, QueryInterrupted):
            pass

    def test_server_still_healthy_after_fuzzing(self, fuzz_server):
        # Ordering note: runs after the properties in file order, and is
        # also independently meaningful on its own.
        result = fuzz_server.query(self.SMOKE)
        assert result.rows == [(3,)]
        assert fuzz_server.stats()["breaker"] == "closed"


@pytest.fixture(scope="module")
def rollup_fuzz_server():
    """A server over a catalog with materialized rollups, so mutated
    queries exercise the router, the semantic cache, and the routed
    execution path — none of which may widen the crash surface."""
    from repro.rollup import enable_rollups

    db = _fuzz_db()
    enable_rollups(db)
    server = QueryServer(
        db,
        workers=2,
        breaker=CircuitBreaker(failure_threshold=10**9),
        retry=RetryPolicy(max_retries=0),
        admission=AdmissionPolicy(
            max_concurrent=2, queue_capacity=64, max_queue_delay_s=1e9
        ),
    )
    yield server
    server.close()


class TestServerNeverCrashesWithRollups:
    """The never-crash contract must survive rollup routing: every
    mutated query either routes soundly, declines conservatively, or
    fails with the same typed errors as the base path."""

    @given(_mutated_query())
    @settings(max_examples=50, deadline=None, derandomize=True)
    def test_mutated_queries_route_or_decline(self, rollup_fuzz_server, text):
        try:
            rollup_fuzz_server.query(text, timeout_s=10.0)
        except SqlError as err:
            assert not err.internal, (
                f"internal-error guard fired through the rollup-routed "
                f"server for {text!r}: {err}"
            )
        except (Overloaded, QueryFailed, QueryInterrupted):
            pass

    @given(st.text(max_size=200))
    @settings(max_examples=50, deadline=None, derandomize=True)
    def test_arbitrary_unicode_with_rollups(self, rollup_fuzz_server, text):
        try:
            rollup_fuzz_server.query(text, timeout_s=10.0)
        except SqlError as err:
            assert not err.internal
        except (Overloaded, QueryFailed, QueryInterrupted):
            pass

    def test_routed_results_match_base_after_fuzzing(self, rollup_fuzz_server):
        # A query the cubes provably subsume must still answer
        # correctly after the fuzz barrage, and identically to the
        # fuzz server that has no rollups at all.
        text = ("SELECT ev_type, COUNT(*) AS n FROM events "
                "GROUP BY ev_type ORDER BY ev_type")
        routed = rollup_fuzz_server.query(text)
        base = Executor(DB).execute(sql(DB, text))
        assert sorted(routed.rows) == sorted(base.rows)
        assert rollup_fuzz_server.stats()["breaker"] == "closed"
