"""Operator-level tests: scan, filter, project, sort, limit, distinct."""

import numpy as np
import pytest

from repro.engine import Q, agg, col, execute


class TestScan:
    def test_scan_all_columns(self, toy_db):
        result = execute(toy_db, Q(toy_db).scan("t"), optimize=False)
        assert result.column_names == ["k", "v", "s", "d"]
        assert len(result) == 6

    def test_scan_subset(self, toy_db):
        result = execute(toy_db, Q(toy_db).scan("t", ["k", "v"]))
        assert result.column_names == ["k", "v"]

    def test_scan_unknown_table(self, toy_db):
        with pytest.raises(KeyError, match="unknown table"):
            Q(toy_db).scan("nope")

    def test_scan_records_bytes(self, toy_db):
        result = execute(toy_db, Q(toy_db).scan("t", ["k"]), optimize=False)
        scan_work = result.profile.operators[0]
        assert scan_work.operator == "scan"
        assert scan_work.seq_bytes == 6 * 8
        assert scan_work.tuples_in == 6


class TestFilter:
    def test_basic(self, toy_db):
        result = execute(toy_db, Q(toy_db).scan("t").filter(col("k") > 3))
        assert result.column("k") == [4, 5, 6]

    def test_empty_result(self, toy_db):
        result = execute(toy_db, Q(toy_db).scan("t").filter(col("k") > 100))
        assert len(result) == 0

    def test_all_pass(self, toy_db):
        result = execute(toy_db, Q(toy_db).scan("t").filter(col("k") >= 1))
        assert len(result) == 6

    def test_stacked_filters_conjunction(self, toy_db):
        both = execute(
            toy_db,
            Q(toy_db).scan("t").filter(col("k") > 1).filter(col("k") < 4),
        )
        single = execute(
            toy_db,
            Q(toy_db).scan("t").filter((col("k") > 1) & (col("k") < 4)),
        )
        assert both.rows == single.rows

    def test_tuples_accounting(self, toy_db):
        result = execute(toy_db, Q(toy_db).scan("t").filter(col("k") > 3))
        filter_work = [op for op in result.profile.operators if op.operator == "filter"][0]
        assert filter_work.tuples_in == 6
        assert filter_work.tuples_out == 3


class TestProject:
    def test_compute_expression(self, toy_db):
        result = execute(toy_db, Q(toy_db).scan("t").project(double=col("v") * 2))
        assert result.column("double") == [20.0, 40.0, 60.0, 80.0, 100.0, 120.0]

    def test_string_shorthand(self, toy_db):
        result = execute(toy_db, Q(toy_db).scan("t").project(key="k"))
        assert result.column_names == ["key"]
        assert result.column("key") == [1, 2, 3, 4, 5, 6]

    def test_select_narrows(self, toy_db):
        result = execute(toy_db, Q(toy_db).scan("t").select("s", "k"))
        assert result.column_names == ["s", "k"]

    def test_projection_is_exact_output(self, toy_db):
        result = execute(toy_db, Q(toy_db).scan("t").project(a="k", b="v"))
        assert set(result.column_names) == {"a", "b"}


class TestSort:
    def test_ascending_default(self, toy_db):
        result = execute(toy_db, Q(toy_db).scan("t").sort(("v", "desc")))
        assert result.column("v") == [60.0, 50.0, 40.0, 30.0, 20.0, 10.0]

    def test_multi_key_with_directions(self, toy_db):
        result = execute(toy_db, Q(toy_db).scan("t").sort("s", ("k", "desc")))
        assert result.column("s") == ["a", "a", "a", "b", "b", "c"]
        assert result.column("k")[:3] == [6, 3, 1]

    def test_string_sort_is_lexicographic(self, toy_db):
        result = execute(toy_db, Q(toy_db).scan("u").sort("name"))
        assert result.column("name") == sorted(["one", "two", "two-b", "seven"])

    def test_date_sort(self, toy_db):
        result = execute(toy_db, Q(toy_db).scan("t").sort("d"))
        dates = result.column("d")
        assert dates == sorted(dates)

    def test_invalid_direction(self, toy_db):
        with pytest.raises(ValueError, match="asc/desc"):
            Q(toy_db).scan("t").sort(("k", "up"))

    def test_empty_input(self, toy_db):
        result = execute(
            toy_db, Q(toy_db).scan("t").filter(col("k") > 100).sort("k")
        )
        assert len(result) == 0


class TestLimit:
    def test_truncates(self, toy_db):
        result = execute(toy_db, Q(toy_db).scan("t").sort("k").limit(2))
        assert result.column("k") == [1, 2]

    def test_limit_larger_than_input(self, toy_db):
        result = execute(toy_db, Q(toy_db).scan("t").limit(100))
        assert len(result) == 6

    def test_limit_zero(self, toy_db):
        result = execute(toy_db, Q(toy_db).scan("t").limit(0))
        assert len(result) == 0


class TestDistinct:
    def test_distinct_single_column(self, toy_db):
        result = execute(toy_db, Q(toy_db).scan("t").select("s").distinct())
        assert sorted(result.column("s")) == ["a", "b", "c"]

    def test_distinct_on_subset_keeps_first_row(self, toy_db):
        result = execute(toy_db, Q(toy_db).scan("t").distinct("s"))
        # First occurrence of each s value in table order: k=1(a), 2(b), 4(c)
        assert sorted(result.column("k")) == [1, 2, 4]

    def test_distinct_multi_column(self, toy_db):
        result = execute(toy_db, Q(toy_db).scan("u").distinct("k2"))
        assert sorted(result.column("k2")) == [1, 2, 7]


class TestResult:
    def test_rows_and_dicts(self, toy_db):
        result = execute(toy_db, Q(toy_db).scan("u").sort("k2").limit(1))
        assert result.rows == [(1, 100.0, "one")]
        assert result.to_dicts() == [{"k2": 1, "w": 100.0, "name": "one"}]

    def test_scalar_requires_1x1(self, toy_db):
        good = execute(toy_db, Q(toy_db).scan("t").aggregate(n=agg.count_star()))
        assert good.scalar() == 6
        bad = execute(toy_db, Q(toy_db).scan("t").select("k", "v"))
        with pytest.raises(ValueError, match="1x1"):
            bad.scalar()

    def test_empty_plan_rejected(self, toy_db):
        with pytest.raises(ValueError, match="empty plan"):
            execute(toy_db, Q(toy_db))

    def test_builder_requires_scan_first(self, toy_db):
        with pytest.raises(ValueError, match="scan"):
            Q(toy_db).filter(col("k") > 1)
