"""Tests for the expression AST and its vectorized evaluation."""

import numpy as np
import pytest

from repro.engine import Column, Frame, case, col, lit
from repro.engine.executor import ExecContext
from repro.engine.profile import WorkProfile
from repro.engine.types import BOOL, DATE, FLOAT64, INT64, STRING


class _Ctx:
    """Minimal evaluation context: a fresh profile with one operator."""

    def __init__(self):
        self.profile = WorkProfile()
        self.work = self.profile.new_operator("test")

    def scalar(self, plan):  # pragma: no cover - not used here
        raise NotImplementedError


@pytest.fixture
def frame():
    return Frame({
        "i": Column.from_ints([1, 2, 3, 4]),
        "f": Column.from_floats([1.5, 2.5, 3.5, 4.5]),
        "s": Column.from_strings(["apple", "banana", "apple", "cherry"]),
        "d": Column.from_dates(["1994-01-01", "1995-06-15", "1993-12-31", "1994-12-31"]),
    })


def ev(expr, frame):
    return expr.evaluate(frame, _Ctx())


class TestArithmetic:
    def test_add_ints_stays_int(self, frame):
        out = ev(col("i") + col("i"), frame)
        assert out.dtype is INT64
        assert out.values.tolist() == [2, 4, 6, 8]

    def test_int_plus_float_promotes(self, frame):
        out = ev(col("i") + col("f"), frame)
        assert out.dtype is FLOAT64
        assert out.values.tolist() == [2.5, 4.5, 6.5, 8.5]

    def test_division_always_float(self, frame):
        out = ev(col("i") / 2, frame)
        assert out.dtype is FLOAT64
        assert out.values.tolist() == [0.5, 1.0, 1.5, 2.0]

    def test_scalar_broadcast_left_and_right(self, frame):
        assert ev(2 * col("i"), frame).values.tolist() == [2, 4, 6, 8]
        assert ev(col("i") - 1, frame).values.tolist() == [0, 1, 2, 3]
        assert ev(10 - col("i"), frame).values.tolist() == [9, 8, 7, 6]

    def test_revenue_expression_shape(self, frame):
        out = ev(col("f") * (1.0 - col("f") * 0.0), frame)
        assert out.values.tolist() == [1.5, 2.5, 3.5, 4.5]

    def test_ops_are_counted(self, frame):
        ctx = _Ctx()
        (col("i") + col("i")).evaluate(frame, ctx)
        assert ctx.work.ops == 4


class TestComparison:
    def test_int_literal(self, frame):
        assert ev(col("i") > 2, frame).values.tolist() == [False, False, True, True]

    def test_le_ge(self, frame):
        assert ev(col("i") <= 2, frame).values.tolist() == [True, True, False, False]
        assert ev(col("i") >= 4, frame).values.tolist() == [False, False, False, True]

    def test_ne(self, frame):
        assert ev(col("i") != 2, frame).values.tolist() == [True, False, True, True]

    def test_date_iso_string_literal(self, frame):
        out = ev(col("d") >= "1994-01-01", frame)
        assert out.values.tolist() == [True, True, False, True]

    def test_string_equality_through_dictionary(self, frame):
        out = ev(col("s") == "apple", frame)
        assert out.values.tolist() == [True, False, True, False]

    def test_string_absent_literal_all_false(self, frame):
        assert ev(col("s") == "durian", frame).values.tolist() == [False] * 4

    def test_string_inequality_lexicographic(self, frame):
        out = ev(col("s") >= "banana", frame)
        assert out.values.tolist() == [False, True, False, True]

    def test_column_vs_column(self, frame):
        out = ev(col("f") > col("i"), frame)
        assert out.values.tolist() == [True, True, True, True]

    def test_null_comparisons_false(self):
        frame = Frame({
            "x": Column(INT64, np.array([1, 2]), valid=np.array([True, False])),
        })
        assert ev(col("x") == 2, frame).values.tolist() == [False, False]
        assert ev(col("x") == 1, frame).values.tolist() == [True, False]


class TestBoolean:
    def test_and_or_not(self, frame):
        both = (col("i") > 1) & (col("i") < 4)
        assert ev(both, frame).values.tolist() == [False, True, True, False]
        either = (col("i") == 1) | (col("i") == 4)
        assert ev(either, frame).values.tolist() == [True, False, False, True]
        assert ev(~(col("i") == 1), frame).values.tolist() == [False, True, True, True]

    def test_between_inclusive(self, frame):
        out = ev(col("i").between(2, 3), frame)
        assert out.values.tolist() == [False, True, True, False]

    def test_non_expr_operand_raises(self, frame):
        with pytest.raises(TypeError):
            (col("i") > 1) & True  # noqa: B015


class TestInList:
    def test_ints(self, frame):
        out = ev(col("i").isin([2, 4, 9]), frame)
        assert out.values.tolist() == [False, True, False, True]

    def test_strings(self, frame):
        out = ev(col("s").isin(["apple", "cherry"]), frame)
        assert out.values.tolist() == [True, False, True, True]

    def test_dates_accept_iso_strings(self, frame):
        out = ev(col("d").isin(["1994-01-01"]), frame)
        assert out.values.tolist() == [True, False, False, False]

    def test_empty_list(self, frame):
        assert ev(col("i").isin([]), frame).values.tolist() == [False] * 4


class TestLike:
    def test_prefix(self, frame):
        assert ev(col("s").like("ap%"), frame).values.tolist() == [True, False, True, False]

    def test_suffix_and_infix(self, frame):
        assert ev(col("s").like("%rry"), frame).values.tolist() == [False, False, False, True]
        assert ev(col("s").like("%nan%"), frame).values.tolist() == [False, True, False, False]

    def test_underscore_single_char(self, frame):
        assert ev(col("s").like("appl_"), frame).values.tolist() == [True, False, True, False]

    def test_not_like(self, frame):
        assert ev(col("s").not_like("%a%"), frame).values.tolist() == [False, False, False, True]

    def test_regex_metacharacters_are_literal(self):
        frame = Frame({"s": Column.from_strings(["a.b", "axb"])})
        assert ev(col("s").like("a.b"), frame).values.tolist() == [True, False]

    def test_like_requires_strings(self, frame):
        with pytest.raises(TypeError):
            ev(col("i").like("%1%"), frame)

    def test_like_charges_string_bytes(self, frame):
        ctx = _Ctx()
        col("s").like("%a%").evaluate(frame, ctx)
        assert ctx.work.seq_bytes > 0  # string heap traffic is costed


class TestStringFunctions:
    def test_substring_is_one_based(self, frame):
        out = ev(col("s").substring(1, 2), frame)
        assert out.to_list() == ["ap", "ba", "ap", "ch"]

    def test_substring_past_end(self):
        frame = Frame({"s": Column.from_strings(["ab"])})
        assert ev(col("s").substring(1, 10), frame).to_list() == ["ab"]

    def test_extract_year(self, frame):
        out = ev(col("d").year(), frame)
        assert out.values.tolist() == [1994, 1995, 1993, 1994]
        assert out.dtype is INT64

    def test_year_requires_date(self, frame):
        with pytest.raises(TypeError):
            ev(col("i").year(), frame)


class TestCase:
    def test_first_match_wins(self, frame):
        expr = case([
            (col("i") < 3, lit(1.0)),
            (col("i") < 5, lit(2.0)),
        ], 0.0)
        assert ev(expr, frame).values.tolist() == [1.0, 1.0, 2.0, 2.0]

    def test_else_branch(self, frame):
        expr = case([(col("i") == 99, lit(1.0))], -1.0)
        assert ev(expr, frame).values.tolist() == [-1.0] * 4

    def test_bare_number_values(self, frame):
        expr = case([(col("s") == "apple", col("f"))], 0)
        assert ev(expr, frame).values.tolist() == [1.5, 0.0, 3.5, 0.0]


class TestNullPredicates:
    def test_is_null_and_not_null(self):
        frame = Frame({
            "x": Column(FLOAT64, np.array([1.0, 2.0]), valid=np.array([False, True])),
            "y": Column.from_ints([1, 2]),
        })
        assert ev(col("x").is_null(), frame).values.tolist() == [True, False]
        assert ev(col("x").is_not_null(), frame).values.tolist() == [False, True]
        assert ev(col("y").is_null(), frame).values.tolist() == [False, False]


class TestLiterals:
    def test_int_float_string_bool(self, frame):
        assert ev(lit(7), frame).dtype is INT64
        assert ev(lit(7.5), frame).dtype is FLOAT64
        assert ev(lit("x"), frame).dtype is STRING
        assert ev(lit(True), frame).dtype is BOOL

    def test_unsupported_literal(self, frame):
        with pytest.raises(TypeError):
            ev(lit(object()), frame)

    def test_references(self):
        expr = (col("a") + col("b")) * (1.0 - col("c"))
        assert expr.references() == {"a", "b", "c"}
        assert lit(1).references() == set()
