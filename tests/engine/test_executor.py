"""Executor-level tests: scalar subqueries, profiles, frames."""

import pytest

from repro.engine import Frame, Q, WorkProfile, agg, col, execute, scalar
from repro.engine.profile import OperatorWork


class TestScalarSubquery:
    def test_used_as_filter_threshold(self, toy_db):
        avg_v = Q(toy_db).scan("t").aggregate(a=agg.avg(col("v")))
        result = execute(
            toy_db, Q(toy_db).scan("t").filter(col("v") > scalar(avg_v))
        )
        assert sorted(result.column("v")) == [40.0, 50.0, 60.0]

    def test_subquery_profile_merged_into_parent(self, toy_db):
        avg_v = Q(toy_db).scan("t").aggregate(a=agg.avg(col("v")))
        with_sub = execute(
            toy_db, Q(toy_db).scan("t").filter(col("v") > scalar(avg_v))
        )
        without = execute(toy_db, Q(toy_db).scan("t").filter(col("v") > 30.0))
        assert len(with_sub.profile.operators) > len(without.profile.operators)

    def test_subquery_evaluated_once(self, toy_db):
        avg_v = Q(toy_db).scan("t").aggregate(a=agg.avg(col("v")))
        threshold = scalar(avg_v)
        # Reference the same subquery twice: cache must dedupe.
        plan = Q(toy_db).scan("t").filter(
            (col("v") > threshold) | (col("v") > threshold)
        )
        result = execute(toy_db, plan)
        subquery_scans = [
            op for op in result.profile.operators if op.operator == "aggregate"
        ]
        assert len(subquery_scans) == 1

    def test_non_scalar_subquery_rejected(self, toy_db):
        multi = Q(toy_db).scan("t").select("k", "v")
        with pytest.raises(ValueError, match="1x1"):
            execute(toy_db, Q(toy_db).scan("t").filter(col("v") > scalar(multi)))


class TestProfiles:
    def test_every_operator_appears(self, toy_db):
        result = execute(
            toy_db,
            Q(toy_db).scan("t").filter(col("k") > 1)
            .join("u", on=[("k", "k2")])
            .aggregate(by=["s"], n=agg.count_star())
            .sort("s").limit(2),
        )
        kinds = [op.operator for op in result.profile.operators]
        # sort + limit fuse into the physical top-k operator
        for expected in ("scan", "filter", "hashjoin", "aggregate", "topk"):
            assert expected in kinds

    def test_bare_sort_and_limit_stay_separate(self, toy_db):
        sorted_only = execute(toy_db, Q(toy_db).scan("t").sort("k"))
        assert "sort" in [op.operator for op in sorted_only.profile.operators]
        limited_only = execute(toy_db, Q(toy_db).scan("t").limit(2))
        assert "limit" in [op.operator for op in limited_only.profile.operators]

    def test_profile_scaling(self):
        profile = WorkProfile([OperatorWork("scan", seq_bytes=100, ops=10, tuples_in=5)])
        scaled = profile.scaled(3.0)
        assert scaled.seq_bytes == 300
        assert scaled.ops == 30
        assert scaled.tuples == 15
        # original untouched
        assert profile.seq_bytes == 100

    def test_profile_merge(self):
        a = WorkProfile([OperatorWork("scan", ops=1)])
        b = WorkProfile([OperatorWork("filter", ops=2)])
        merged = a.merged(b)
        assert merged.ops == 3
        assert len(merged.operators) == 2

    def test_summary_keys(self):
        summary = WorkProfile([OperatorWork("scan", ops=5)]).summary()
        assert set(summary) == {
            "seq_bytes", "rand_accesses", "ops", "tuples", "out_bytes", "n_operators",
        }

    def test_result_bytes_is_last_operator(self):
        profile = WorkProfile([
            OperatorWork("scan", out_bytes=100),
            OperatorWork("aggregate", out_bytes=8),
        ])
        assert profile.result_bytes == 8


class TestFrame:
    def test_length_mismatch_rejected(self):
        from repro.engine import Column

        with pytest.raises(ValueError, match="rows"):
            Frame({"a": Column.from_ints([1, 2]), "b": Column.from_ints([1])})

    def test_missing_column_message(self, toy_db):
        frame = Frame({"a": __import__("repro.engine", fromlist=["Column"]).Column.from_ints([1])})
        with pytest.raises(KeyError, match="available"):
            frame.column("zzz")

    def test_renamed(self):
        from repro.engine import Column

        frame = Frame({"a": Column.from_ints([1])})
        assert "b" in frame.renamed({"a": "b"})
