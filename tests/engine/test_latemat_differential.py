"""Differential suite: late materialization on vs off across all 22 queries.

Every TPC-H query at SF 0.01 runs four ways — serial and 4-worker
morsel-parallel, each with selection-vector (late) execution enabled
(the default) and disabled (the ``--no-latemat`` ablation) — and all
four must agree with each other and with the committed goldens. A
selection vector that drops or duplicates a row id, a gather that reads
through the wrong base column, or a morsel boundary that forgets to
densify shows up as a row-level diff here.

Also hosted here, because they guard the same machinery:

* a Hypothesis property that the dictionary-code predicate kernels
  (equality, range, IN, LIKE over int codes) agree with naive decoded
  evaluation on random string columns — including NULLs and probe
  values that are not dictionary-resident;
* the ``combine_codes`` overflow regression (mixed-radix key mixing
  falls back to lexicographic factorization instead of wrapping int64);
* the NULL-sentinel boundary test (grouping columns holding the int64
  extremes must keep NULL as its own group);
* unit tests for the process-wide join-key factorization cache.
"""

from __future__ import annotations

import json
import math
import threading
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import Column, Executor, Frame, OptimizerSettings, ParallelExecutor, col
from repro.engine.keycache import KeyCache, combine_codes, key_cache
from repro.engine.operators.aggregate import count_star, execute_aggregate, sum_
from repro.engine.plan import LimitNode, SortNode
from repro.engine.profile import WorkProfile
from repro.engine.table import Database, Table
from repro.tpch import ALL_QUERY_NUMBERS, get_query

GOLDEN = json.loads(
    (Path(__file__).parent.parent / "tpch" / "data" / "golden_sf001_seed42.json").read_text()
)

MORSEL_ROWS = 2048  # force real multi-morsel execution at SF 0.01
WORKERS = 4

LATE = OptimizerSettings()
EAGER = LATE.without_latemat()


class _Ctx:
    """Minimal evaluation context: a fresh profile with one operator."""

    def __init__(self):
        self.profile = WorkProfile()
        self.work = self.profile.new_operator("test")

    def scalar(self, plan):  # pragma: no cover - not used here
        raise NotImplementedError


def _is_ordered(plan) -> bool:
    node = plan.node
    while isinstance(node, LimitNode):
        node = node.child
    return isinstance(node, SortNode)


def _assert_values_equal(expected_rows, actual_rows, label):
    assert len(expected_rows) == len(actual_rows), label
    for i, (expected, actual) in enumerate(zip(expected_rows, actual_rows)):
        assert len(expected) == len(actual)
        for a, b in zip(expected, actual):
            if isinstance(a, float) and isinstance(b, float):
                if math.isnan(a) and math.isnan(b):
                    continue
                assert b == pytest.approx(a, rel=1e-9, abs=1e-9), (
                    f"{label} row {i}: {a!r} != {b!r}"
                )
            else:
                assert a == b, f"{label} row {i}: {a!r} != {b!r}"


def _canonical(rows):
    def norm(v):
        if isinstance(v, float):
            return "nan" if math.isnan(v) else round(v, 7)
        return v

    return sorted(tuple(norm(v) for v in row) for row in rows)


def _numeric_sum(rows) -> float:
    total = 0.0
    for row in rows:
        for value in row:
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                if isinstance(value, float) and math.isnan(value):
                    continue
                total += float(value)
    return total


def _assert_same(plan, reference, candidate, label):
    assert candidate.column_names == reference.column_names
    if _is_ordered(plan):
        _assert_values_equal(reference.rows, candidate.rows, label)
    else:
        assert _canonical(candidate.rows) == _canonical(reference.rows), label


@pytest.fixture(scope="module")
def latemat_executors(tpch_db):
    made = {
        "late": ParallelExecutor(
            tpch_db, workers=WORKERS, morsel_rows=MORSEL_ROWS, cache_size=0,
            settings=LATE,
        ),
        "eager": ParallelExecutor(
            tpch_db, workers=WORKERS, morsel_rows=MORSEL_ROWS, cache_size=0,
            settings=EAGER,
        ),
    }
    yield made
    for executor in made.values():
        executor.close()


class TestLatematDifferential:
    @pytest.mark.parametrize("number", ALL_QUERY_NUMBERS)
    def test_four_way_agreement(
        self, tpch_db, tpch_params, latemat_executors, number
    ):
        plan = get_query(number).build(tpch_db, tpch_params)
        serial_eager = Executor(tpch_db, EAGER).execute(plan)
        serial_late = Executor(tpch_db, LATE).execute(plan)
        parallel_late = latemat_executors["late"].execute(plan)
        parallel_eager = latemat_executors["eager"].execute(plan)

        _assert_same(plan, serial_eager, serial_late, f"Q{number} serial late-vs-eager")
        _assert_same(plan, serial_late, parallel_late, f"Q{number} parallel-late")
        _assert_same(plan, serial_eager, parallel_eager, f"Q{number} parallel-eager")

    @pytest.mark.parametrize("number", ALL_QUERY_NUMBERS)
    def test_latemat_with_and_without_skipping(self, tpch_db, tpch_params, number):
        """The latemat axis composes with the skipping axis: disabling
        pushdown/skipping under late execution still matches eager."""
        plan = get_query(number).build(tpch_db, tpch_params)
        reference = Executor(tpch_db, EAGER).execute(plan)
        no_skip_late = Executor(tpch_db, OptimizerSettings.disabled()).execute(plan)
        _assert_same(plan, reference, no_skip_late, f"Q{number} no-skip late")

    @pytest.mark.parametrize("number", ALL_QUERY_NUMBERS)
    def test_latemat_matches_golden(
        self, tpch_db, tpch_params, latemat_executors, number
    ):
        expected = GOLDEN[str(number)]
        plan = get_query(number).build(tpch_db, tpch_params)
        result = latemat_executors["late"].execute(plan)
        assert len(result) == expected["rows"]
        assert result.column_names == expected["columns"]
        assert _numeric_sum(result.rows) == pytest.approx(
            expected["numeric_sum"], rel=1e-6, abs=0.02
        )
        if expected["first_row"] and _is_ordered(plan):
            for actual, pinned in zip(result.rows[0], expected["first_row"]):
                try:
                    pinned_value = float(pinned)
                except ValueError:
                    assert str(actual) == pinned
                else:
                    assert float(actual) == pytest.approx(
                        pinned_value, rel=1e-9, abs=1e-9
                    )

    def test_late_run_reports_savings(self, tpch_db, tpch_params):
        """A selective scan under late execution must record avoided
        rewrite bytes; the eager run must record none."""
        plan = get_query(6).build(tpch_db, tpch_params)
        late = Executor(tpch_db, LATE).execute(plan)
        eager = Executor(tpch_db, EAGER).execute(plan)
        assert late.profile.saved_bytes > 0
        assert eager.profile.saved_bytes == 0
        assert eager.profile.gather_bytes == 0


# ----------------------------------------------------------------------
# Dictionary-code predicate kernels vs decoded evaluation
# ----------------------------------------------------------------------

_WORDS = ["apple", "banana", "cherry", "kiwi", "mango", "plum", ""]
# Probe values beyond the generated vocabulary: never dictionary-resident.
_PROBES = _WORDS + ["durian", "aaa", "zzz", "ap", "apple pie"]


def _string_column(words: list[str], null_mask: list[bool]) -> Column:
    base = Column.from_strings(words)
    valid = np.asarray([not n for n in null_mask], dtype=np.bool_)
    if valid.all():
        return base
    return Column(base.dtype, base.values, dictionary=base.dictionary, valid=valid)


def _decoded_list(column: Column) -> list:
    out = column.decoded().tolist()
    if column.valid is not None:
        return [v if ok else None for v, ok in zip(out, column.valid.tolist())]
    return out


@st.composite
def _column_and_probe(draw):
    n = draw(st.integers(min_value=0, max_value=40))
    words = draw(st.lists(st.sampled_from(_WORDS), min_size=n, max_size=n))
    nulls = draw(st.lists(st.booleans(), min_size=n, max_size=n))
    probe = draw(st.sampled_from(_PROBES))
    return words, nulls, probe


class TestDictionaryKernelsAgree:
    """The code-mapped kernels must agree with per-row decoded semantics,
    with NULL comparing false everywhere."""

    @settings(max_examples=120, deadline=None)
    @given(data=_column_and_probe(), op=st.sampled_from(["==", "!=", "<", "<=", ">", ">="]))
    def test_comparisons(self, data, op):
        words, nulls, probe = data
        column = _string_column(words, nulls)
        frame = Frame({"s": column}, len(words))
        expr = {
            "==": col("s") == probe, "!=": col("s") != probe,
            "<": col("s") < probe, "<=": col("s") <= probe,
            ">": col("s") > probe, ">=": col("s") >= probe,
        }[op]
        got = expr.evaluate(frame, _Ctx()).values.tolist()
        py_op = {
            "==": lambda v: v == probe, "!=": lambda v: v != probe,
            "<": lambda v: v < probe, "<=": lambda v: v <= probe,
            ">": lambda v: v > probe, ">=": lambda v: v >= probe,
        }[op]
        want = [v is not None and py_op(v) for v in _decoded_list(column)]
        assert got == want

    @settings(max_examples=120, deadline=None)
    @given(
        data=_column_and_probe(),
        extra=st.lists(st.sampled_from(_PROBES), min_size=0, max_size=4),
    )
    def test_isin(self, data, extra):
        words, nulls, probe = data
        column = _string_column(words, nulls)
        frame = Frame({"s": column}, len(words))
        wanted = [probe] + extra
        got = col("s").isin(wanted).evaluate(frame, _Ctx()).values.tolist()
        want = [v is not None and v in set(wanted) for v in _decoded_list(column)]
        assert got == want

    @settings(max_examples=120, deadline=None)
    @given(
        data=_column_and_probe(),
        pattern=st.sampled_from(
            ["%an%", "a%", "%y", "_pple", "%", "", "ap_le", "%a%a%", "zzz%"]
        ),
    )
    def test_like(self, data, pattern):
        words, nulls, _ = data
        column = _string_column(words, nulls)
        frame = Frame({"s": column}, len(words))
        got = col("s").like(pattern).evaluate(frame, _Ctx()).values.tolist()

        def like(value: str) -> bool:
            import re

            regex = "^" + "".join(
                ".*" if c == "%" else "." if c == "_" else re.escape(c) for c in pattern
            ) + "$"
            return re.match(regex, value, re.DOTALL) is not None

        want = [v is not None and like(v) for v in _decoded_list(column)]
        assert got == want

    @settings(max_examples=80, deadline=None)
    @given(
        n=st.integers(min_value=0, max_value=30),
        data=st.data(),
    )
    def test_shared_dictionary_column_equality(self, n, data):
        left = data.draw(st.lists(st.sampled_from(_WORDS), min_size=n, max_size=n))
        base = Column.from_strings(left + _WORDS)  # one dictionary for both
        lcol = base.slice(0, n)
        # Right side: a shuffled view over the same dictionary object.
        perm = data.draw(st.permutations(list(range(n))))
        rcol = lcol.take(np.asarray(perm, dtype=np.int64)) if n else lcol
        assert lcol.dictionary is rcol.dictionary
        frame = Frame({"a": lcol, "b": rcol}, n)
        got_eq = (col("a") == col("b")).evaluate(frame, _Ctx()).values.tolist()
        got_ne = (col("a") != col("b")).evaluate(frame, _Ctx()).values.tolist()
        la, lb = lcol.decoded().tolist(), rcol.decoded().tolist()
        assert got_eq == [a == b for a, b in zip(la, lb)]
        assert got_ne == [a != b for a, b in zip(la, lb)]


# ----------------------------------------------------------------------
# combine_codes overflow regression (satellite: _combine_keys wrapping)
# ----------------------------------------------------------------------

class TestCombineCodesOverflow:
    def test_small_cardinalities_use_mixed_radix(self):
        a = np.asarray([0, 1, 1, 0], dtype=np.int64)
        b = np.asarray([2, 0, 2, 2], dtype=np.int64)
        combined = combine_codes([a, b], [2, 3])
        assert combined.tolist() == [2, 3, 5, 2]

    def test_huge_cardinality_product_does_not_wrap(self):
        """cards whose product exceeds 2**63 must not silently wrap; the
        lexicographic fallback keeps distinct tuples distinct and
        preserves tuple order."""
        rng = np.random.default_rng(7)
        n = 500
        a = rng.integers(0, 2**32, size=n).astype(np.int64)
        b = rng.integers(0, 2**32, size=n).astype(np.int64)
        cards = [2**32, 2**32]  # product = 2**64 >= 2**63
        combined = combine_codes([a, b], cards)
        tuples = list(zip(a.tolist(), b.tolist()))
        # Same tuple <-> same code; distinct tuple <-> distinct code.
        seen: dict[tuple, int] = {}
        for t, c in zip(tuples, combined.tolist()):
            assert seen.setdefault(t, c) == c
        assert len(set(seen.values())) == len(seen)
        # Codes rank tuples lexicographically, like mixed-radix would.
        by_code = sorted(zip(combined.tolist(), tuples))
        assert [t for _, t in by_code] == sorted(tuples)

    def test_wrapping_collision_scenario(self):
        """The exact naive failure: two different tuples whose naive
        mixed-radix keys collide mod 2**64."""
        card = 2**62
        a = np.asarray([0, 4], dtype=np.int64)
        b = np.asarray([0, 0], dtype=np.int64)
        # naive: 0*card+0 = 0 and 4*card+0 = 2**64 ≡ 0 (wrapped) — collision.
        naive = (a * np.int64(card) + b).tolist() if card < 2**62 else None
        combined = combine_codes([a, b], [card, card])
        assert combined[0] != combined[1]

    def test_group_by_across_overflow_boundary_matches_reference(self):
        """End-to-end: an 8-column GROUP BY whose per-column cardinalities
        multiply past 2**63 still aggregates correctly."""
        rng = np.random.default_rng(11)
        n = 400
        names = [f"k{i}" for i in range(8)]
        cols = {}
        arrays = {}
        for name in names:
            # ~256 distinct values per column: 256**8 = 2**64 >= 2**63.
            values = rng.integers(0, 256, size=n).astype(np.int64)
            # Force full cardinality so the product genuinely overflows.
            values[:256] = np.arange(256)
            arrays[name] = values
            cols[name] = Column.from_ints(values.tolist())
        weights = rng.random(n)
        cols["w"] = Column.from_floats(weights.tolist())
        frame = Frame(cols, n)
        ctx = _Ctx()
        out = execute_aggregate(
            frame, names, {"total": sum_(col("w")), "cnt": count_star()}, ctx
        )
        reference: dict[tuple, list] = {}
        for i in range(n):
            key = tuple(int(arrays[name][i]) for name in names)
            entry = reference.setdefault(key, [0.0, 0])
            entry[0] += float(weights[i])
            entry[1] += 1
        assert out.nrows == len(reference)
        got = {}
        key_cols = [out.column(name).values for name in names]
        totals = out.column("total").values
        counts = out.column("cnt").values
        for i in range(out.nrows):
            key = tuple(int(k[i]) for k in key_cols)
            got[key] = (totals[i], int(counts[i]))
        for key, (total, cnt) in reference.items():
            assert got[key][1] == cnt
            assert got[key][0] == pytest.approx(total, rel=1e-9)


# ----------------------------------------------------------------------
# NULL group sentinel at the int64 boundary (satellite: _group_ids)
# ----------------------------------------------------------------------

class TestNullSentinelBoundary:
    _MIN = np.iinfo(np.int64).min
    _MAX = np.iinfo(np.int64).max

    def _frame(self, values, valid):
        column = Column(
            Column.from_ints([0]).dtype,
            np.asarray(values, dtype=np.int64),
            valid=np.asarray(valid, dtype=np.bool_),
        )
        return Frame({"k": column, "v": Column.from_floats([1.0] * len(values))},
                     len(values))

    def test_null_group_survives_dtype_minimum(self):
        """A grouping column holding int64 min: the old ``min() - 1``
        sentinel wraps to int64 max and merges NULLs into the wrong
        group. NULL must stay its own group."""
        frame = self._frame(
            [self._MIN, self._MAX, self._MAX, self._MIN],
            [True, True, False, True],
        )
        out = execute_aggregate(
            frame, ["k"], {"cnt": count_star(), "s": sum_(col("v"))}, _Ctx()
        )
        # Groups: NULL (1 row), MIN (2 rows), MAX (1 row).
        assert out.nrows == 3
        counts = dict(zip(out.column("k").to_list(), out.column("cnt").to_list()))
        assert counts[self._MIN] == 2
        assert counts[self._MAX] == 1

    def test_nulls_sort_before_valid_values(self):
        """NULL keeps the position the old sentinel gave it: first in the
        factorized group order."""
        frame = self._frame([5, self._MIN, 7], [True, True, False])
        out = execute_aggregate(frame, ["k"], {"cnt": count_star()}, _Ctx())
        keys = out.column("k").values.tolist()
        valid = out.column("k").valid
        # Row 0 is the NULL group, then MIN, then 5.
        assert out.nrows == 3
        assert keys[1:] == [self._MIN, 5]
        if valid is not None:
            assert not bool(valid[0])

    def test_all_null_column_single_group(self):
        frame = self._frame([1, 2, 3], [False, False, False])
        out = execute_aggregate(frame, ["k"], {"cnt": count_star()}, _Ctx())
        assert out.nrows == 1
        assert out.column("cnt").to_list() == [3]


# ----------------------------------------------------------------------
# Join-key factorization cache
# ----------------------------------------------------------------------

class TestKeyCache:
    def test_factorize_identity_hit(self):
        cache = KeyCache()
        arr = np.asarray([3, 1, 3, 2], dtype=np.int64)
        u1, c1 = cache.factorize(arr)
        u2, c2 = cache.factorize(arr)
        assert u1 is u2 and c1 is c2
        assert u1.tolist() == [1, 2, 3]
        assert c1.tolist() == [2, 0, 2, 1]
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1

    def test_equal_but_distinct_arrays_miss(self):
        cache = KeyCache()
        a = np.asarray([1, 2], dtype=np.int64)
        b = a.copy()
        cache.factorize(a)
        cache.factorize(b)
        assert cache.stats()["misses"] == 2

    def test_sort_order_cached_and_stable(self):
        cache = KeyCache()
        arr = np.asarray([2, 1, 2, 0], dtype=np.int64)
        o1 = cache.sort_order(arr)
        o2 = cache.sort_order(arr)
        assert o1 is o2
        assert o1.tolist() == [3, 1, 0, 2]

    def test_entry_count_bound(self):
        cache = KeyCache(max_entries=3)
        kept = [np.arange(4, dtype=np.int64) + i for i in range(6)]
        for arr in kept:
            cache.factorize(arr)
        assert cache.stats()["entries"] <= 3
        # Oldest entries were evicted; newest still hits.
        cache.factorize(kept[-1])
        assert cache.stats()["hits"] == 1

    def test_byte_budget_bound(self):
        cache = KeyCache(max_bytes=4096)
        big = np.arange(10_000, dtype=np.int64)  # 80KB source alone
        cache.factorize(big)
        assert cache.stats()["entries"] == 0  # too large to admit
        small = np.arange(8, dtype=np.int64)
        cache.factorize(small)
        assert cache.stats()["entries"] == 1
        assert cache.stats()["bytes"] <= 4096

    def test_thread_safety_smoke(self):
        cache = KeyCache()
        arrays = [np.arange(64, dtype=np.int64) + i for i in range(8)]
        errors = []

        def worker():
            try:
                for _ in range(50):
                    for arr in arrays:
                        uniques, codes = cache.factorize(arr)
                        assert len(uniques) == 64 and len(codes) == 64
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors

    def test_process_wide_cache_hits_on_repeated_join(self):
        """Two executions of the same join against immutable tables hit
        the factorization cache the second time."""
        db = Database("kc")
        n = 10_000
        rng = np.random.default_rng(3)
        db.add(Table("l", {
            "k": Column.from_ints(rng.integers(0, 500, size=n).tolist()),
            "x": Column.from_floats(rng.random(n).tolist()),
        }))
        db.add(Table("r", {
            "k2": Column.from_ints(list(range(500))),
            "y": Column.from_floats([float(i) for i in range(500)]),
        }))
        from repro.engine.plan import Q

        plan = Q(db).scan("l").join(Q(db).scan("r"), on=[("k", "k2")])
        executor = Executor(db)
        executor.execute(plan)
        before = key_cache.stats()["hits"]
        executor.execute(plan)
        assert key_cache.stats()["hits"] > before
