"""Zone maps: statistics correctness (plain + every encoding) and block
classification soundness, including hypothesis properties asserting that
data skipping can never change a filter's output."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import (
    Column,
    Database,
    Executor,
    OptimizerSettings,
    Q,
    Table,
    col,
    lit,
)
from repro.engine.compression import (
    BitPackedEncoding,
    DeltaEncoding,
    FrameOfReferenceEncoding,
    RunLengthEncoding,
    compress_column,
)
from repro.engine.zonemap import (
    BLOCK_EVAL,
    BLOCK_SKIP,
    BLOCK_TAKE,
    ZONE_MAP_BLOCK_ROWS,
    SargableConjunct,
    build_zone_map,
    classify_blocks,
    conjoin,
    extract_sargable,
    split_conjuncts,
)


def _expected_stats(values, block_rows):
    """Naive per-block min/max reference."""
    mins, maxs = [], []
    for start in range(0, len(values), block_rows):
        chunk = values[start:start + block_rows]
        mins.append(min(chunk))
        maxs.append(max(chunk))
    return mins, maxs


class TestZoneStats:
    def test_plain_int_blocks(self):
        values = list(range(100, 0, -1))
        column = Column.from_ints(values)
        mins, maxs, nulls = column.zone_stats(16)
        exp_min, exp_max = _expected_stats(values, 16)
        assert list(mins) == exp_min
        assert list(maxs) == exp_max
        assert nulls.sum() == 0
        assert len(mins) == -(-100 // 16)  # partial last block included

    def test_plain_string_blocks(self):
        values = ["delta", "alpha", "echo", "bravo", "charlie"]
        column = Column.from_strings(values)
        mins, maxs, _ = column.zone_stats(2)
        assert list(mins) == ["alpha", "bravo", "charlie"]
        assert list(maxs) == ["delta", "echo", "charlie"]

    def test_nullable_numeric_neutral_fill(self):
        column = Column(
            Column.from_ints([5, 100, 7, 3]).dtype,
            np.asarray([5, 100, 7, 3], dtype=np.int64),
            valid=np.asarray([True, False, True, True]),
        )
        mins, maxs, nulls = column.zone_stats(2)
        # The invalid 100 must not pollute block 0's max.
        assert list(mins) == [5, 3]
        assert list(maxs) == [5, 7]
        assert list(nulls) == [1, 0]

    def test_nullable_bool_unsupported(self):
        column = Column(
            Column.from_bools([True, False]).dtype,
            np.asarray([True, False]),
            valid=np.asarray([True, False]),
        )
        assert column.zone_stats(2) is None

    def test_nullable_string_unsupported(self):
        base = Column.from_strings(["a", "b"])
        column = Column(
            base.dtype, base.values, dictionary=base.dictionary,
            valid=np.asarray([True, False]),
        )
        assert column.zone_stats(2) is None
        assert build_zone_map(column, 2) is None

    @pytest.mark.parametrize(
        "encoding",
        [BitPackedEncoding(), FrameOfReferenceEncoding(), RunLengthEncoding(),
         DeltaEncoding()],
        ids=lambda e: e.name,
    )
    def test_compressed_matches_decoded(self, encoding):
        rng = np.random.default_rng(7)
        # Clustered-ish data with runs so RLE stays applicable.
        values = np.repeat(rng.integers(0, 50, size=700), 17)[:9000]
        plain = Column.from_ints(values)
        compressed = compress_column(plain, encodings=(encoding,))
        if isinstance(compressed, Column):
            pytest.skip(f"{encoding.name} did not beat plain on this data")
        c_mins, c_maxs, c_nulls = compressed.zone_stats(ZONE_MAP_BLOCK_ROWS)
        p_mins, p_maxs, p_nulls = plain.zone_stats(ZONE_MAP_BLOCK_ROWS)
        assert list(c_mins) == list(p_mins)
        assert list(c_maxs) == list(p_maxs)
        assert list(c_nulls) == list(p_nulls)

    def test_compressed_fixed_point_float(self):
        values = np.round(np.linspace(1.0, 90.0, 9000), 2)
        plain = Column.from_floats(values)
        compressed = compress_column(plain)
        if isinstance(compressed, Column):
            pytest.skip("float column did not compress")
        c_mins, c_maxs, _ = compressed.zone_stats(ZONE_MAP_BLOCK_ROWS)
        p_mins, p_maxs, _ = plain.zone_stats(ZONE_MAP_BLOCK_ROWS)
        np.testing.assert_allclose(np.asarray(c_mins, dtype=float), p_mins)
        np.testing.assert_allclose(np.asarray(c_maxs, dtype=float), p_maxs)

    def test_rle_block_min_max_nonaligned_runs(self):
        # Runs straddling block boundaries must contribute to both blocks.
        values = [1] * 10 + [9] * 10 + [2] * 10
        plain = Column.from_ints(values)
        compressed = compress_column(plain, encodings=(RunLengthEncoding(),))
        assert not isinstance(compressed, Column)
        mins, maxs, _ = compressed.zone_stats(8)
        p_mins, p_maxs, _ = plain.zone_stats(8)
        assert list(mins) == list(p_mins)
        assert list(maxs) == list(p_maxs)

    def test_table_zone_map_cached(self):
        table = Table("t", {"k": Column.from_ints(list(range(10)))})
        first = table.zone_map("k", 4)
        assert table.zone_map("k", 4) is first
        assert first.covering_blocks(5, 9) == (1, 3)
        table.build_zone_maps(4)  # idempotent


class TestSargable:
    def test_comparison_both_orders(self):
        assert extract_sargable(col("x") < lit(5)) == SargableConjunct("x", "<", (5,))
        assert extract_sargable(lit(5) < col("x")) == SargableConjunct("x", ">", (5,))

    def test_numpy_scalars_normalized(self):
        got = extract_sargable(col("x") <= lit(np.int64(9)))
        assert got == SargableConjunct("x", "<=", (9,))
        assert type(got.values[0]) is int

    def test_in_list(self):
        got = extract_sargable(col("s").isin(["a", "b"]))
        assert got == SargableConjunct("s", "in", ("a", "b"))

    def test_non_sargable(self):
        assert extract_sargable(col("x") < col("y")) is None
        assert extract_sargable(col("x").like("a%")) is None

    def test_split_conjoin_roundtrip(self):
        expr = (col("a") > 1) & (col("b") < 2) & (col("c") == 3)
        parts = split_conjuncts(expr)
        assert len(parts) == 3
        rebuilt = conjoin(parts)
        assert split_conjuncts(rebuilt) == parts
        assert conjoin([]) is None


class TestClassifyBlocks:
    def _table(self, values, block_rows=4):
        # Use a non-default block size through explicit zone_map builds.
        table = Table("t", {"k": Column.from_ints(values)})
        table.zone_map("k", block_rows)
        return table

    def test_three_way_classification(self):
        # blocks: [0..3], [4..7], [8..11]
        table = self._table(list(range(12)))
        codes, probes = classify_blocks(
            table, [SargableConjunct("k", "<", (4,))], 0, 12, block_rows=4
        )
        assert list(codes) == [BLOCK_TAKE, BLOCK_SKIP, BLOCK_SKIP]
        assert probes == 3

    def test_eval_when_straddling(self):
        table = self._table(list(range(12)))
        codes, _ = classify_blocks(
            table, [SargableConjunct("k", "<=", (5,))], 0, 12, block_rows=4
        )
        assert list(codes) == [BLOCK_TAKE, BLOCK_EVAL, BLOCK_SKIP]

    def test_conjunction_intersects(self):
        table = self._table(list(range(12)))
        codes, _ = classify_blocks(
            table,
            [SargableConjunct("k", ">=", (4,)), SargableConjunct("k", "<", (8,))],
            0, 12, block_rows=4,
        )
        assert list(codes) == [BLOCK_SKIP, BLOCK_TAKE, BLOCK_SKIP]

    def test_date_string_coercion(self):
        table = Table("t", {"d": Column.from_dates(
            ["1994-01-01", "1994-02-01", "1995-01-01", "1995-02-01"]
        )})
        codes, _ = classify_blocks(
            table, [SargableConjunct("d", "<", ("1995-01-01",))], 0, 4, block_rows=2
        )
        assert list(codes) == [BLOCK_TAKE, BLOCK_SKIP]

    def test_in_classification(self):
        table = self._table([1, 1, 5, 6, 9, 9], block_rows=2)
        codes, _ = classify_blocks(
            table, [SargableConjunct("k", "in", (1, 9))], 0, 6, block_rows=2
        )
        assert list(codes) == [BLOCK_TAKE, BLOCK_SKIP, BLOCK_TAKE]

    def test_missing_zone_map_falls_back_to_eval(self):
        base = Column.from_strings(["a", "b"])
        table = Table("t", {"s": Column(
            base.dtype, base.values, dictionary=base.dictionary,
            valid=np.asarray([True, False]),
        )})
        codes, probes = classify_blocks(
            table, [SargableConjunct("s", "==", ("a",))], 0, 2, block_rows=2
        )
        assert list(codes) == [BLOCK_EVAL]
        assert probes == 0

    def test_all_null_block_skips(self):
        table = Table("t", {"k": Column(
            Column.from_ints([1, 2, 3, 4]).dtype,
            np.asarray([1, 2, 3, 4], dtype=np.int64),
            valid=np.asarray([False, False, True, True]),
        )})
        codes, _ = classify_blocks(
            table, [SargableConjunct("k", ">", (0,))], 0, 4, block_rows=2
        )
        # NULLs compare false: the all-null block is provably empty, and
        # nulls in a block always break take-proofs.
        assert list(codes)[0] == BLOCK_SKIP
        assert list(codes)[1] == BLOCK_TAKE

    def test_subrange_alignment(self):
        table = self._table(list(range(16)))
        codes, _ = classify_blocks(
            table, [SargableConjunct("k", "<", (4,))], 6, 14, block_rows=4
        )
        # Covers blocks 1..3 (rows 4..16); first code is block 1.
        assert list(codes) == [BLOCK_SKIP, BLOCK_SKIP, BLOCK_SKIP]


# ----------------------------------------------------------------------
# Hypothesis: skipping never changes query output
# ----------------------------------------------------------------------

_OPS = ["<", "<=", ">", ">=", "==", "!="]


@st.composite
def _column_and_predicate(draw):
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    nblocks = draw(st.integers(min_value=1, max_value=4))
    sortedness = draw(st.sampled_from(["sorted", "clustered", "random"]))
    op = draw(st.sampled_from(_OPS + ["in", "between"]))
    rng = np.random.default_rng(seed)
    n = nblocks * ZONE_MAP_BLOCK_ROWS - draw(st.integers(0, 100))
    values = rng.integers(0, 500, size=max(1, n))
    if sortedness == "sorted":
        values = np.sort(values)
    elif sortedness == "clustered":
        values = np.sort(values)
        # Shuffle within local neighbourhoods: clustered but not sorted.
        for start in range(0, len(values), 1024):
            rng.shuffle(values[start:start + 1024])
    pivot = int(draw(st.integers(min_value=-10, max_value=510)))
    return values, op, pivot


@settings(max_examples=25, deadline=None)
@given(_column_and_predicate())
def test_skipping_never_changes_filter_output(case):
    values, op, pivot = case
    db = Database("prop")
    db.add(Table("t", {
        "k": Column.from_ints(values),
        "row": Column.from_ints(np.arange(len(values))),
    }))
    k = col("k")
    if op == "in":
        predicate = k.isin([pivot, pivot + 3, pivot + 50])
    elif op == "between":
        predicate = k.between(pivot, pivot + 64)
    else:
        predicate = {"<": k < pivot, "<=": k <= pivot, ">": k > pivot,
                     ">=": k >= pivot, "==": k == pivot, "!=": k != pivot}[op]
    plan = Q(db).scan("t").filter(predicate)
    on = Executor(db).execute(plan)
    off = Executor(db, OptimizerSettings.disabled()).execute(plan)
    assert on.rows == off.rows
    # The skipping run must never stream more than the ablation run.
    assert on.profile.seq_bytes <= off.profile.seq_bytes + 1e-6


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=0, max_value=2**31 - 1),
       st.integers(min_value=2, max_value=64))
def test_classification_is_sound(seed, block_rows):
    """SKIP blocks contain no matches; TAKE blocks contain only matches."""
    rng = np.random.default_rng(seed)
    values = np.sort(rng.integers(0, 100, size=int(rng.integers(1, 400))))
    pivot = int(rng.integers(-5, 105))
    table = Table("t", {"k": Column.from_ints(values)})
    conjunct = SargableConjunct("k", "<", (pivot,))
    codes, _ = classify_blocks(table, [conjunct], 0, len(values), block_rows)
    truth = values < pivot
    for i, kind in enumerate(codes):
        chunk = truth[i * block_rows:(i + 1) * block_rows]
        if kind == BLOCK_SKIP:
            assert not chunk.any()
        elif kind == BLOCK_TAKE:
            assert chunk.all()
