"""SQL round-trip property: ``render(parse(text))`` must reparse to an
equivalent statement.

Two layers of evidence:

* every real query text in the repo (22 TPC-H + the ad-events family)
  survives parse -> render -> reparse with an identical plan fingerprint
  (:func:`repro.engine.fingerprint.plan_fingerprint`, which hashes the
  optimized plan tree);
* a hypothesis grammar generates random *valid* SELECT statements over
  the toy schema and checks the same property, so the renderer can't
  quietly drop parentheses, aliases, or clause order for shapes the
  hand-written corpus doesn't cover.

Fingerprint equality (not text equality) is the contract: the renderer
normalizes whitespace and parenthesization, so the rendered text may
differ from the input while meaning exactly the same plan.
"""

from __future__ import annotations

import os

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adevents import ADEVENTS_QUERIES
from repro.adevents import generate as adevents_generate
from repro.engine import Column, Database, Table
from repro.engine.fingerprint import plan_fingerprint
from repro.engine.sql import parse_statement, plan_statement, render
from repro.tpch import generate as tpch_generate
from repro.tpch.sqltext import SQL_QUERY_NUMBERS, sql_text

import pytest

settings.register_profile("ci-roundtrip", max_examples=1000, derandomize=True,
                          deadline=1000)
settings.register_profile("dev-roundtrip", max_examples=100, derandomize=True,
                          deadline=None)
settings.load_profile(
    "ci-roundtrip" if os.environ.get("HYPOTHESIS_PROFILE") == "ci"
    else "dev-roundtrip"
)


def _catalog() -> Database:
    db = Database("roundtrip")
    for source in (tpch_generate(0.001, seed=3), adevents_generate(0.05, seed=3)):
        for name in source.table_names:
            db.add(source.table(name))
    db.add(Table("t", {
        "k": Column.from_ints([1, 2, 3]),
        "v": Column.from_floats([10.0, 20.0, 30.0]),
        "s": Column.from_strings(["a", "b", "a"]),
        "d": Column.from_dates(["1994-01-01", "1995-06-01", "1996-01-01"]),
    }))
    return db


DB = _catalog()

CORPUS = [
    pytest.param(sql_text(number, {"sf": 0.001}), id=f"tpch-q{number:02d}")
    for number in SQL_QUERY_NUMBERS
] + [
    pytest.param(text, id=f"adevents-{name}")
    for name, text in ADEVENTS_QUERIES.items()
]


def _assert_roundtrips(text: str) -> None:
    first = parse_statement(text)
    rendered = render(first)
    second = parse_statement(rendered)
    fp_first = plan_fingerprint(plan_statement(DB, first))
    fp_second = plan_fingerprint(plan_statement(DB, second))
    assert fp_first == fp_second, (
        f"round-trip changed the plan\n  original: {text!r}\n"
        f"  rendered: {rendered!r}"
    )
    # Rendering must also be a fixed point: render(reparse(render(x)))
    # == render(x), otherwise the renderer is not canonical.
    assert render(second) == rendered


@pytest.mark.parametrize("text", CORPUS)
def test_real_queries_roundtrip(text):
    _assert_roundtrips(text)


# --- grammar for random valid SELECTs over toy table t(k, v, s, d) ---

_NUM_ATOMS = st.sampled_from(["k", "v", "1", "2", "0.5", "3.25", "10"])

_num_expr = st.recursive(
    _NUM_ATOMS,
    lambda children: st.one_of(
        st.tuples(children, st.sampled_from(["+", "-", "*"]), children).map(
            lambda t: f"({t[0]} {t[1]} {t[2]})"
        ),
        st.tuples(children, children, children).map(
            lambda t: f"CASE WHEN {t[0]} > {t[1]} THEN {t[1]} ELSE {t[2]} END"
        ),
        children.map(lambda e: f"(- {e})"),
    ),
    max_leaves=6,
)

_CMP = st.sampled_from(["=", "<>", "<", "<=", ">", ">="])

_bool_atom = st.one_of(
    st.tuples(_num_expr, _CMP, _num_expr).map(lambda t: f"{t[0]} {t[1]} {t[2]}"),
    st.sampled_from([
        "s = 'a'", "s <> 'b'", "s LIKE '%a%'", "s IS NOT NULL",
        "k BETWEEN 1 AND 4", "k NOT BETWEEN 2 AND 3",
        "k IN (1, 2, 3)", "v NOT IN (10, 20)",
        "d < DATE '1995-06-01'",
        "d >= DATE '1994-01-01' + INTERVAL '3' MONTH",
    ]),
)

_bool_expr = st.recursive(
    _bool_atom,
    lambda children: st.one_of(
        st.tuples(children, st.sampled_from(["AND", "OR"]), children).map(
            lambda t: f"({t[0]} {t[1]} {t[2]})"
        ),
        children.map(lambda e: f"NOT ({e})"),
    ),
    max_leaves=4,
)


@st.composite
def _random_select(draw):
    n_items = draw(st.integers(1, 3))
    items = ", ".join(
        f"{draw(_num_expr)} AS c{i}" for i in range(n_items)
    )
    text = f"SELECT {items} FROM t"
    if draw(st.booleans()):
        text += f" WHERE {draw(_bool_expr)}"
    if draw(st.booleans()):
        text += " ORDER BY c0"
        if draw(st.booleans()):
            text += " DESC"
    if draw(st.booleans()):
        text += f" LIMIT {draw(st.integers(1, 5))}"
    return text


@st.composite
def _random_grouped_select(draw):
    agg_fn = draw(st.sampled_from(["SUM", "AVG", "MIN", "MAX", "COUNT"]))
    text = (
        f"SELECT s AS grp, {agg_fn}({draw(_num_expr)}) AS a0 FROM t"
    )
    if draw(st.booleans()):
        text += f" WHERE {draw(_bool_expr)}"
    text += " GROUP BY s"
    if draw(st.booleans()):
        text += f" HAVING {draw(st.sampled_from(['SUM(v)', 'COUNT(*)', 'MIN(k)']))} > 0"
    text += " ORDER BY grp"
    return text


@given(_random_select())
def test_generated_selects_roundtrip(text):
    _assert_roundtrips(text)


@given(_random_grouped_select())
def test_generated_grouped_selects_roundtrip(text):
    _assert_roundtrips(text)


@given(_random_select(), _random_select())
def test_generated_unions_roundtrip(left, right):
    # Align output arity: both sides project c0..c{n}; trim to 1 column
    # by wrapping in a derived table so UNION inputs always match.
    text = (
        f"SELECT c0 FROM ({left}) AS lhs UNION ALL "
        f"SELECT c0 FROM ({right}) AS rhs"
    )
    _assert_roundtrips(text)
