"""Concurrency tests: result cache single-flight and WorkProfile safety.

One :class:`ParallelExecutor` is hammered from many client threads while
its own morsel pool also runs; the assertions are the ones that break
under lost updates or duplicated work:

* at most one execution per cached plan fingerprint (single-flight);
* every client sees the identical result frame;
* no lost or duplicated work counts in concurrently-built profiles.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.engine import (
    Executor,
    ParallelExecutor,
    ResultCache,
    WorkProfile,
    plan_fingerprint,
)
from repro.tpch import get_query

CLIENT_THREADS = 8
MORSEL_ROWS = 2048


def _assert_rows_equal(actual, expected):
    """Row equality with float tolerance (partial sums reorder float adds)."""
    assert len(actual) == len(expected)
    for row_a, row_e in zip(actual, expected):
        assert len(row_a) == len(row_e)
        for a, e in zip(row_a, row_e):
            if isinstance(e, float):
                assert a == pytest.approx(e, rel=1e-9, abs=1e-9)
            else:
                assert a == e


def _hammer(n_threads, fn):
    """Run ``fn(i)`` on n threads, released simultaneously by a barrier."""
    barrier = threading.Barrier(n_threads)
    results = [None] * n_threads
    errors = []

    def work(i):
        barrier.wait()
        try:
            results[i] = fn(i)
        except BaseException as exc:  # surface, don't swallow
            errors.append(exc)

    threads = [threading.Thread(target=work, args=(i,)) for i in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if errors:
        raise errors[0]
    return results


class TestResultCacheSingleFlight:
    def test_one_execution_per_key(self):
        cache = ResultCache(capacity=8)
        runs = []
        gate = threading.Event()

        def run():
            runs.append(1)  # append is atomic; duplicates would show
            gate.wait(timeout=5)
            return "value"

        def client(i):
            return cache.get_or_run("k", run)

        # The owner blocks on the gate until every waiter has had a chance
        # to pile up on the in-flight entry; release shortly after start.
        releaser = threading.Timer(0.2, gate.set)
        releaser.start()
        results = _hammer(CLIENT_THREADS, client)
        releaser.cancel()

        assert len(runs) == 1
        assert all(value == "value" for value, _ in results)
        assert sum(1 for _, was_cached in results if not was_cached) == 1
        assert cache.misses == 1
        assert cache.hits == CLIENT_THREADS - 1

    def test_failed_run_is_retryable(self):
        cache = ResultCache(capacity=8)

        def boom():
            raise RuntimeError("transient")

        with pytest.raises(RuntimeError):
            cache.get_or_run("k", boom)
        value, was_cached = cache.get_or_run("k", lambda: 42)
        assert (value, was_cached) == (42, False)

    def test_capacity_evicts_completed_entries_only(self):
        cache = ResultCache(capacity=2)
        for i in range(5):
            cache.get_or_run(f"k{i}", lambda i=i: i)
        assert len(cache) == 2
        # Most recent keys survive.
        assert cache.get_or_run("k4", lambda: -1) == (4, True)


class TestParallelExecutorConcurrency:
    def test_hammered_executor_single_flight_and_identical_results(
        self, tpch_db, tpch_params
    ):
        plan = get_query(6).build(tpch_db, tpch_params)
        with ParallelExecutor(
            tpch_db, workers=2, morsel_rows=MORSEL_ROWS, cache_size=8
        ) as executor:
            results = _hammer(CLIENT_THREADS, lambda i: executor.execute(plan))

            # At-most-one execution per fingerprint: one owner, rest cached.
            assert executor.cache.misses == 1
            assert executor.cache.hits == CLIENT_THREADS - 1
            assert sum(1 for r in results if not r.cached) == 1

            serial = Executor(tpch_db).execute(plan).rows
            for r in results:
                _assert_rows_equal(r.rows, serial)

    def test_distinct_plans_each_execute_once(self, tpch_db, tpch_params):
        numbers = [1, 3, 6, 14]
        plans = [get_query(n).build(tpch_db, tpch_params) for n in numbers]
        fingerprints = {plan_fingerprint(p) for p in plans}
        assert len(fingerprints) == len(plans)

        with ParallelExecutor(
            tpch_db, workers=2, morsel_rows=MORSEL_ROWS, cache_size=8
        ) as executor:
            # 2 client threads per plan, all racing.
            results = _hammer(
                2 * len(plans),
                lambda i: executor.execute(plans[i % len(plans)]),
            )
            assert executor.cache.misses == len(plans)
            assert executor.cache.hits == len(plans)
            assert sum(1 for r in results if not r.cached) == len(plans)

    def test_uncached_concurrent_runs_do_not_corrupt_profiles(
        self, tpch_db, tpch_params
    ):
        """Without the cache every client runs the morsel pipeline itself;
        each result's profile must match a solo parallel run's totals
        exactly (no counts lost to, or duplicated from, a concurrent
        execution). The merge phase adds a little work over serial — one
        partial row per morsel — so the serial profile is only checked for
        operator shape."""
        plan = get_query(6).build(tpch_db, tpch_params)
        serial = Executor(tpch_db).execute(plan).profile.summary()
        with ParallelExecutor(
            tpch_db, workers=2, morsel_rows=MORSEL_ROWS, cache_size=0
        ) as executor:
            solo = executor.execute(plan).profile.summary()
            results = _hammer(4, lambda i: executor.execute(plan))
        assert solo["n_operators"] == serial["n_operators"]
        for r in results:
            got = r.profile.summary()
            assert got["n_operators"] == solo["n_operators"]
            assert got["tuples"] == pytest.approx(solo["tuples"], rel=1e-12)
            assert got["seq_bytes"] == pytest.approx(solo["seq_bytes"], rel=1e-12)
            assert got["ops"] == pytest.approx(solo["ops"], rel=1e-12)
            assert got["out_bytes"] == pytest.approx(solo["out_bytes"], rel=1e-12)


class TestWorkProfileThreadSafety:
    def test_concurrent_new_operator_loses_nothing(self):
        profile = WorkProfile()
        per_thread = 200

        def client(i):
            for _ in range(per_thread):
                work = profile.new_operator(f"op{i}")
                work.ops += 1.0

        _hammer(CLIENT_THREADS, client)
        assert len(profile.operators) == CLIENT_THREADS * per_thread
        assert profile.ops == CLIENT_THREADS * per_thread

    def test_concurrent_absorb_loses_nothing(self):
        shared = WorkProfile()
        per_thread = 50

        def client(i):
            for _ in range(per_thread):
                local = WorkProfile()
                work = local.new_operator("scan")
                work.tuples_in = 3.0
                shared.absorb(local)

        _hammer(CLIENT_THREADS, client)
        assert len(shared.operators) == CLIENT_THREADS * per_thread
        assert shared.tuples == CLIENT_THREADS * per_thread * 3.0
