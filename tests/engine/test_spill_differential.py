"""Differential + property wall for out-of-core (spill) execution.

Two layers of defense for the "never change an answer" guarantee:

* **Differential suite.** Every TPC-H query (SF 0.01) and every
  ad-events query (x1.0) runs under three memory budgets — unlimited,
  tight (256 KB), and pathological (1 byte, which forces Grace
  partitioning and recursive re-partitioning at every depth) — serially
  and 4-worker morsel-parallel. Each budgeted run must be *bit-identical*
  to the same execution mode without a budget (same values, dtypes,
  validity masks — not approximately equal), and must still reproduce
  the committed goldens. Unlimited budgets must spill zero bytes; the
  pathological budget must spill on every plan that contains a join or a
  grouped aggregate.

* **Property wall.** Hypothesis drives the spill primitives directly:
  hash partitioning is an exact order-preserving permutation of its
  input for every key dtype (including NaN and signed-zero floats);
  spill-file write→read round-trips are bit-identical for every dtype
  including NULL masks, NaN payloads, dictionary identity, and empty
  frames; and recursive re-partitioning terminates on adversarial
  single-key skew (no progress → execute in memory, never loop).
"""

from __future__ import annotations

import json
import math
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adevents import QUERY_NAMES as ADEVENTS_NAMES
from repro.adevents import build as adevents_build
from repro.adevents import generate as adevents_generate
from repro.engine import (
    DEFAULT_SETTINGS,
    Column,
    Executor,
    Frame,
    MemoryBudget,
    MemoryBudgetExceeded,
    ParallelExecutor,
    col,
    optimize_plan,
)
from repro.engine.explain import explain, explain_profile
from repro.engine.operators.aggregate import count_star, execute_aggregate, sum_
from repro.engine.operators.join import execute_join
from repro.engine.plan import AggregateNode, JoinNode, LimitNode, SortNode
from repro.engine.profile import WorkProfile
from repro.engine.spill import (
    MAX_SPILL_DEPTH,
    SpillSet,
    _partition_frame,
    _partition_ids,
    _to_uint64,
    choose_partitions,
    maybe_spill_aggregate,
    maybe_spill_join,
)
from repro.engine.types import BOOL, DATE, FLOAT64, INT64, STRING
from repro.tpch import ALL_QUERY_NUMBERS, get_query

GOLDEN = json.loads(
    (Path(__file__).parent.parent / "tpch" / "data" / "golden_sf001_seed42.json").read_text()
)
ADEVENTS_GOLDEN = json.loads(
    (Path(__file__).parent.parent / "adevents" / "data" / "golden_x1_seed7.json").read_text()
)

WORKERS = 4
TPCH_MORSEL_ROWS = 2048
ADEVENTS_MORSEL_ROWS = 4096

BUDGETS = {
    "unlimited": None,
    "tight": 256 * 1024,
    "pathological": 1,
}


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------


class _SpillCtx:
    """Minimal execution context for driving spill dispatch directly."""

    def __init__(self, budget=None, spilling=True, cancel=None):
        self.budget = budget
        self.spilling = spilling
        self.cancel = cancel
        self.profile = WorkProfile()
        self.work = self.profile.new_operator("test")


def _is_ordered(plan) -> bool:
    node = plan.node
    while isinstance(node, LimitNode):
        node = node.child
    return isinstance(node, SortNode)


def _numeric_sum(rows) -> float:
    total = 0.0
    for row in rows:
        for value in row:
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                if isinstance(value, float) and math.isnan(value):
                    continue
                total += float(value)
    return total


def _assert_golden(plan, result, expected):
    assert len(result) == expected["rows"]
    assert list(result.column_names) == expected["columns"]
    assert _numeric_sum(result.rows) == pytest.approx(
        expected["numeric_sum"], rel=1e-6, abs=0.02
    )
    if expected["first_row"] and _is_ordered(plan):
        for actual, pinned in zip(result.rows[0], expected["first_row"]):
            try:
                pinned_value = float(pinned)
            except ValueError:
                assert str(actual) == pinned
            else:
                assert float(actual) == pytest.approx(pinned_value, rel=1e-9, abs=1e-9)


def _assert_frames_bitwise(want: Frame, got: Frame, label: str):
    """Bit-identical frame equality: same column names, dtypes, raw
    values (NaN == NaN, last ulp included), and validity masks."""
    assert list(got.columns) == list(want.columns), label
    assert got.nrows == want.nrows, label
    for name in want.columns:
        a, b = want.column(name), got.column(name)
        assert b.dtype is a.dtype, f"{label}: {name} dtype"
        if a.dtype is STRING:
            assert b.to_list() == a.to_list(), f"{label}: {name}"
        else:
            av, bv = np.asarray(a.values), np.asarray(b.values)
            equal_nan = av.dtype.kind == "f"
            assert np.array_equal(av, bv, equal_nan=equal_nan), f"{label}: {name}"
        a_valid = a.valid if a.valid is not None else np.ones(len(a), dtype=bool)
        b_valid = b.valid if b.valid is not None else np.ones(len(b), dtype=bool)
        assert np.array_equal(a_valid, b_valid), f"{label}: {name} valid"


def _has_spillable_operator(node) -> bool:
    if isinstance(node, JoinNode):
        return True
    if isinstance(node, AggregateNode) and node.group_by:
        return True
    return any(_has_spillable_operator(child) for child in node.children())


# ----------------------------------------------------------------------
# Differential: all 22 TPC-H queries under every budget, serial + parallel
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def tpch_baselines(tpch_db, tpch_params):
    """Unbudgeted reference results, computed once per (query, mode)."""
    cache: dict[tuple[int, str], object] = {}
    parallel = ParallelExecutor(
        tpch_db, workers=WORKERS, morsel_rows=TPCH_MORSEL_ROWS, cache_size=0
    )

    def get(number: int, mode: str):
        key = (number, mode)
        if key not in cache:
            plan = get_query(number).build(tpch_db, tpch_params)
            if mode == "serial":
                cache[key] = Executor(tpch_db).execute(plan)
            else:
                cache[key] = parallel.execute(plan)
        return cache[key]

    yield get
    parallel.close()


class TestTpchSpillDifferential:
    @pytest.mark.parametrize("budget_name", list(BUDGETS))
    @pytest.mark.parametrize("number", ALL_QUERY_NUMBERS)
    def test_budgeted_matches_unbudgeted(
        self, tpch_db, tpch_params, tpch_baselines, number, budget_name
    ):
        limit = BUDGETS[budget_name]
        plan = get_query(number).build(tpch_db, tpch_params)
        spillable = _has_spillable_operator(
            optimize_plan(plan.node, tpch_db, DEFAULT_SETTINGS)
        )

        serial = Executor(tpch_db, memory_budget=limit).execute(plan)
        _assert_frames_bitwise(
            tpch_baselines(number, "serial").frame, serial.frame,
            f"Q{number} serial {budget_name}",
        )
        with ParallelExecutor(
            tpch_db, workers=WORKERS, morsel_rows=TPCH_MORSEL_ROWS,
            cache_size=0, memory_budget=limit,
        ) as executor:
            parallel = executor.execute(plan)
        _assert_frames_bitwise(
            tpch_baselines(number, "parallel").frame, parallel.frame,
            f"Q{number} parallel {budget_name}",
        )

        for result in (serial, parallel):
            _assert_golden(plan, result, GOLDEN[str(number)])
        if limit is None:
            assert serial.profile.spilled_bytes == 0
            assert parallel.profile.spilled_bytes == 0
        elif budget_name == "pathological" and spillable:
            # One byte of budget: every join and grouped aggregate in the
            # plan must have gone out-of-core.
            assert serial.profile.spilled_bytes > 0, f"Q{number}"
            assert serial.profile.spill_partitions > 0, f"Q{number}"
            assert parallel.profile.spilled_bytes > 0, f"Q{number}"


def test_pathological_budget_reaches_recursive_repartition(tpch_db, tpch_params):
    """The headline wall requires at least one recursive re-partition:
    Q9 (the deepest join tree at this scale) must re-split partitions
    that still exceed a 1-byte budget — and stay bit-identical."""
    plan = get_query(9).build(tpch_db, tpch_params)
    budgeted = Executor(tpch_db, memory_budget=1).execute(plan)
    baseline = Executor(tpch_db).execute(plan)
    _assert_frames_bitwise(baseline.frame, budgeted.frame, "Q9 recursive")
    assert budgeted.profile.respill_depth >= 1
    assert budgeted.profile.spilled_bytes > 0


# ----------------------------------------------------------------------
# Differential: all 11 ad-events queries under every budget
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def adevents_db():
    return adevents_generate(1.0, seed=7)


@pytest.fixture(scope="module")
def adevents_baselines(adevents_db):
    cache: dict[tuple[str, str], object] = {}
    parallel = ParallelExecutor(
        adevents_db, workers=WORKERS, morsel_rows=ADEVENTS_MORSEL_ROWS, cache_size=0
    )

    def get(name: str, mode: str):
        key = (name, mode)
        if key not in cache:
            plan = adevents_build(adevents_db, name)
            if mode == "serial":
                cache[key] = Executor(adevents_db).execute(plan)
            else:
                cache[key] = parallel.execute(plan)
        return cache[key]

    yield get
    parallel.close()


class TestAdEventsSpillDifferential:
    @pytest.mark.parametrize("budget_name", list(BUDGETS))
    @pytest.mark.parametrize("name", ADEVENTS_NAMES)
    def test_budgeted_matches_unbudgeted(
        self, adevents_db, adevents_baselines, name, budget_name
    ):
        limit = BUDGETS[budget_name]
        plan = adevents_build(adevents_db, name)
        spillable = _has_spillable_operator(
            optimize_plan(plan.node, adevents_db, DEFAULT_SETTINGS)
        )

        serial = Executor(adevents_db, memory_budget=limit).execute(plan)
        _assert_frames_bitwise(
            adevents_baselines(name, "serial").frame, serial.frame,
            f"{name} serial {budget_name}",
        )
        with ParallelExecutor(
            adevents_db, workers=WORKERS, morsel_rows=ADEVENTS_MORSEL_ROWS,
            cache_size=0, memory_budget=limit,
        ) as executor:
            parallel = executor.execute(plan)
        _assert_frames_bitwise(
            adevents_baselines(name, "parallel").frame, parallel.frame,
            f"{name} parallel {budget_name}",
        )

        for result in (serial, parallel):
            _assert_golden(plan, result, ADEVENTS_GOLDEN[name])
        if limit is None:
            assert serial.profile.spilled_bytes == 0
            assert parallel.profile.spilled_bytes == 0
        elif budget_name == "pathological" and spillable:
            assert serial.profile.spilled_bytes > 0, name
            assert parallel.profile.spilled_bytes > 0, name


# ----------------------------------------------------------------------
# Dispatch semantics
# ----------------------------------------------------------------------


class TestBudgetDispatch:
    def test_no_spill_raises_typed_error(self, tpch_db, tpch_params):
        plan = get_query(3).build(tpch_db, tpch_params)
        executor = Executor(
            tpch_db, DEFAULT_SETTINGS.without_spilling(), memory_budget=1
        )
        with pytest.raises(MemoryBudgetExceeded):
            executor.execute(plan)

    def test_global_aggregates_never_spill(self, tpch_db, tpch_params):
        # Q6 is scan + filter + global aggregate: O(1) state, no spilling
        # even under a 1-byte budget.
        plan = get_query(6).build(tpch_db, tpch_params)
        result = Executor(tpch_db, memory_budget=1).execute(plan)
        assert result.profile.spilled_bytes == 0

    def test_explain_tags_over_budget_operators(self, tpch_db, tpch_params):
        plan = get_query(3).build(tpch_db, tpch_params)
        text = explain(plan, tpch_db, memory_budget=256 * 1024)
        assert "[spill: join" in text
        assert "[spill: agg" in text
        # Without a budget (or with spilling disabled) no tags appear.
        assert "[spill" not in explain(plan, tpch_db)
        assert "[spill" not in explain(
            plan, tpch_db,
            settings=DEFAULT_SETTINGS.without_spilling(),
            memory_budget=256 * 1024,
        )

    def test_explain_profile_reports_spilling(self, tpch_db, tpch_params):
        plan = get_query(3).build(tpch_db, tpch_params)
        result = Executor(tpch_db, memory_budget=1).execute(plan)
        assert "spilling:" in explain_profile(result)
        clean = Executor(tpch_db).execute(plan)
        assert "spilling:" not in explain_profile(clean)

    def test_budget_tracks_peak_and_spilled(self, tpch_db, tpch_params):
        budget = MemoryBudget(limit_bytes=256 * 1024)
        plan = get_query(3).build(tpch_db, tpch_params)
        Executor(tpch_db, memory_budget=budget).execute(plan)
        assert budget.spilled_bytes > 0
        assert budget.peak_bytes > 0
        assert budget.used_bytes == 0  # all charges released


# ----------------------------------------------------------------------
# Property wall: partitioning is an order-preserving permutation
# ----------------------------------------------------------------------


_EXTREME_INTS = [
    0, 1, -1, 2**62, -(2**62),
    int(np.iinfo(np.int64).max), int(np.iinfo(np.int64).min),
]


class TestPartitioningProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        values=st.lists(
            st.integers(-(2**63), 2**63 - 1) | st.sampled_from(_EXTREME_INTS),
            max_size=200,
        ),
        n_partitions=st.sampled_from([2, 4, 8, 16]),
        depth=st.integers(0, MAX_SPILL_DEPTH - 1),
    )
    def test_int_partitioning_is_a_stable_permutation(
        self, values, n_partitions, depth
    ):
        n = len(values)
        frame = Frame(
            {
                "k": Column(INT64, np.asarray(values, dtype=np.int64)),
                "rowid": Column(INT64, np.arange(n, dtype=np.int64)),
            },
            n,
        )
        pids = _partition_ids(
            _to_uint64(frame.column("k").values), n_partitions, depth
        )
        parts = _partition_frame(frame, pids, n_partitions)
        assert len(parts) == n_partitions
        assert sum(p.nrows for p in parts) == n
        seen = []
        for index, part in enumerate(parts):
            rowids = np.asarray(part.column("rowid").values)
            # Original relative order is preserved inside each partition
            # (this is what makes float re-accumulation bit-identical).
            assert np.all(np.diff(rowids) > 0) or len(rowids) <= 1
            assert np.all(pids[rowids] == index)
            seen.append(rowids)
        # The union of partitions is exactly the input — a permutation.
        assert np.array_equal(np.sort(np.concatenate(seen) if seen else []),
                              np.arange(n))

    @settings(max_examples=40, deadline=None)
    @given(
        values=st.lists(
            st.floats(allow_nan=True, allow_infinity=True, width=64)
            | st.sampled_from([0.0, -0.0, math.nan, math.inf, -math.inf]),
            max_size=100,
        ),
        n_partitions=st.sampled_from([2, 4, 8]),
        depth=st.integers(0, MAX_SPILL_DEPTH - 1),
    )
    def test_float_equal_keys_land_together(self, values, n_partitions, depth):
        """The join treats NaN == NaN and -0.0 == +0.0; partitioning must
        agree or equal keys would straddle partitions and lose matches."""
        arr = np.asarray(values, dtype=np.float64)
        pids = _partition_ids(_to_uint64(arr), n_partitions, depth)
        nan_pids = pids[np.isnan(arr)]
        assert len(set(nan_pids.tolist())) <= 1
        zero_pids = pids[arr == 0.0]
        assert len(set(zero_pids.tolist())) <= 1

    @settings(max_examples=40, deadline=None)
    @given(
        estimate=st.floats(min_value=1.0, max_value=1e15),
        available=st.floats(min_value=1.0, max_value=1e12),
        nrows=st.integers(1, 10**8),
        depth=st.integers(0, MAX_SPILL_DEPTH - 1),
    )
    def test_choose_partitions_is_bounded(self, estimate, available, nrows, depth):
        p = choose_partitions(estimate, available, nrows, depth)
        assert 2 <= p <= 64
        assert p & (p - 1) == 0  # power of two
        if depth > 0:
            assert p <= 4


# ----------------------------------------------------------------------
# Property wall: spill files round-trip bit-identically
# ----------------------------------------------------------------------


@st.composite
def _spill_frame(draw) -> Frame:
    n = draw(st.integers(0, 60))
    columns: dict[str, Column] = {}

    ints = draw(st.lists(
        st.integers(-(2**63), 2**63 - 1) | st.sampled_from(_EXTREME_INTS),
        min_size=n, max_size=n,
    ))
    if draw(st.booleans()):
        valid = np.asarray(
            draw(st.lists(st.booleans(), min_size=n, max_size=n)), dtype=bool
        )
        columns["i"] = Column(INT64, np.asarray(ints, dtype=np.int64), valid=valid)
    else:
        columns["i"] = Column(INT64, np.asarray(ints, dtype=np.int64))

    floats = draw(st.lists(
        st.floats(allow_nan=True, allow_infinity=True, width=64)
        | st.sampled_from([0.0, -0.0, math.nan]),
        min_size=n, max_size=n,
    ))
    fvalid = None
    if draw(st.booleans()):
        fvalid = np.asarray(
            draw(st.lists(st.booleans(), min_size=n, max_size=n)), dtype=bool
        )
    columns["f"] = Column(
        FLOAT64, np.asarray(floats, dtype=np.float64), valid=fvalid
    )

    days = draw(st.lists(st.integers(-(2**31), 2**31 - 1), min_size=n, max_size=n))
    columns["d"] = Column(DATE, np.asarray(days, dtype=np.int32))

    words = draw(st.lists(
        st.sampled_from(["alpha", "beta", "gamma", ""]), min_size=n, max_size=n
    ))
    scol = Column.from_strings(words)
    if draw(st.booleans()):
        svalid = np.asarray(
            draw(st.lists(st.booleans(), min_size=n, max_size=n)), dtype=bool
        )
        scol = Column(STRING, scol.values, dictionary=scol.dictionary, valid=svalid)
    columns["s"] = scol

    bools = draw(st.lists(st.booleans(), min_size=n, max_size=n))
    columns["b"] = Column(BOOL, np.asarray(bools, dtype=bool))

    return Frame(columns, n)


class TestSpillRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(frame=_spill_frame())
    def test_write_read_is_bit_identical(self, frame):
        spills = SpillSet()
        try:
            ref = spills.write_frame(frame)
            back = spills.read_frame(ref)
        finally:
            spills.cleanup()
        _assert_frames_bitwise(frame, back, "round-trip")
        # Dictionary *identity*, not just equality: Column.concat's
        # shared-dictionary fast path (and therefore post-spill string
        # collation) depends on the object being the same.
        assert back.column("s").dictionary is frame.column("s").dictionary

    def test_cleanup_removes_directory_and_is_idempotent(self):
        spills = SpillSet()
        frame = Frame({"x": Column.from_ints([1, 2, 3])}, 3)
        ref = spills.write_frame(frame)
        assert Path(ref.path).exists()
        spills.cleanup()
        assert not Path(spills.directory).exists()
        spills.cleanup()  # second call is a no-op


# ----------------------------------------------------------------------
# Property wall: adversarial skew terminates
# ----------------------------------------------------------------------


class TestSkewTermination:
    @settings(max_examples=20, deadline=None)
    @given(
        n=st.integers(1, 3000),
        key=st.sampled_from([0, 7, -1, 2**40]),
    )
    def test_single_key_aggregate_skew_terminates(self, n, key, tmp_path_factory):
        """Every row shares one group key: no partition pass can make
        progress, so the Grace path must fall through to the in-memory
        kernel (over budget but correct) instead of recursing forever."""
        base = str(tmp_path_factory.mktemp("skew"))
        frame = Frame(
            {
                "k": Column(INT64, np.full(n, key, dtype=np.int64)),
                "v": Column(FLOAT64, np.arange(n, dtype=np.float64)),
            },
            n,
        )
        aggs = {"total": sum_(col("v")), "cnt": count_star()}
        ctx = _SpillCtx(budget=MemoryBudget(limit_bytes=1, spill_dir=base))
        got = maybe_spill_aggregate(frame, ["k"], aggs, ctx)
        want = execute_aggregate(frame, ["k"], dict(aggs), _SpillCtx())
        _assert_frames_bitwise(want, got, "skew aggregate")
        # Bounded recursion: strictly fewer re-partitions than the hard
        # depth cap times the fan-out could ever produce.
        assert ctx.work.respill_depth <= MAX_SPILL_DEPTH * 64

    @settings(max_examples=20, deadline=None)
    @given(n=st.integers(1, 120))
    def test_single_key_join_skew_terminates(self, n, tmp_path_factory):
        base = str(tmp_path_factory.mktemp("skewj"))
        left = Frame(
            {
                "k": Column(INT64, np.zeros(n, dtype=np.int64)),
                "a": Column(INT64, np.arange(n, dtype=np.int64)),
            },
            n,
        )
        right = Frame(
            {
                "k": Column(INT64, np.zeros(n, dtype=np.int64)),
                "b": Column(INT64, np.arange(n, dtype=np.int64)),
            },
            n,
        )
        ctx = _SpillCtx(budget=MemoryBudget(limit_bytes=1, spill_dir=base))
        got = maybe_spill_join(left, right, ["k"], ["k"], "inner", ctx)
        want = execute_join(left, right, ["k"], ["k"], "inner", _SpillCtx())
        _assert_frames_bitwise(want, got, "skew join")
        assert got.nrows == n * n
