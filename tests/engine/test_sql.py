"""SQL front-end tests: lexer, parser features, TPC-H equivalence,
errors."""

import pytest

from repro.engine import execute
from repro.engine.sql import SqlSyntaxError, sql, tokenize
from repro.tpch import get_query


class TestLexer:
    def test_keywords_case_insensitive(self):
        kinds = [t.kind for t in tokenize("select From WHERE")]
        assert kinds == ["SELECT", "FROM", "WHERE", "EOF"]

    def test_strings_with_escaped_quotes(self):
        tokens = tokenize("'it''s'")
        assert tokens[0].value == "it's"

    def test_numbers(self):
        tokens = tokenize("42 3.14 .5")
        assert [t.value for t in tokens[:-1]] == ["42", "3.14", ".5"]

    def test_two_char_operators(self):
        kinds = [t.kind for t in tokenize("<= >= <> !=")]
        assert kinds[:-1] == ["LE", "GE", "NE", "NE"]

    def test_comments_stripped(self):
        kinds = [t.kind for t in tokenize("select -- comment\n 1")]
        assert kinds == ["SELECT", "NUMBER", "EOF"]

    def test_unterminated_string(self):
        with pytest.raises(SqlSyntaxError, match="unterminated"):
            tokenize("'oops")

    def test_bad_character(self):
        with pytest.raises(SqlSyntaxError, match="unexpected character"):
            tokenize("select @")


class TestBasicSelect:
    def test_select_star(self, toy_db):
        result = execute(toy_db, sql(toy_db, "SELECT * FROM u"))
        assert result.column_names == ["k2", "w", "name"]
        assert len(result) == 4

    def test_projection_with_aliases(self, toy_db):
        result = execute(toy_db, sql(toy_db, "SELECT k AS key, v * 2 AS double FROM t"))
        assert result.column_names == ["key", "double"]
        assert result.column("double")[0] == 20.0

    def test_where_filters(self, toy_db):
        result = execute(toy_db, sql(toy_db, "SELECT k FROM t WHERE k > 3"))
        assert result.column("k") == [4, 5, 6]

    def test_order_and_limit(self, toy_db):
        result = execute(
            toy_db, sql(toy_db, "SELECT k FROM t ORDER BY k DESC LIMIT 2")
        )
        assert result.column("k") == [6, 5]

    def test_qualified_names_accepted(self, toy_db):
        result = execute(toy_db, sql(toy_db, "SELECT t.k FROM t AS t WHERE t.k = 1"))
        assert result.column("k") == [1]

    def test_string_comparison(self, toy_db):
        result = execute(toy_db, sql(toy_db, "SELECT k FROM t WHERE s = 'a'"))
        assert sorted(result.column("k")) == [1, 3, 6]

    def test_between_and_in(self, toy_db):
        between = execute(toy_db, sql(toy_db, "SELECT k FROM t WHERE k BETWEEN 2 AND 4"))
        assert between.column("k") == [2, 3, 4]
        in_list = execute(toy_db, sql(toy_db, "SELECT k FROM t WHERE k IN (1, 5, 9)"))
        assert sorted(in_list.column("k")) == [1, 5]

    def test_not_in_list(self, toy_db):
        result = execute(toy_db, sql(toy_db, "SELECT k FROM t WHERE k NOT IN (1, 2, 3, 4)"))
        assert sorted(result.column("k")) == [5, 6]

    def test_like(self, toy_db):
        result = execute(toy_db, sql(toy_db, "SELECT name FROM u WHERE name LIKE 'two%'"))
        assert sorted(result.column("name")) == ["two", "two-b"]

    def test_date_literals_and_intervals(self, toy_db):
        result = execute(toy_db, sql(
            toy_db,
            "SELECT k FROM t WHERE d >= DATE '1995-01-01' - INTERVAL '1' YEAR "
            "AND d < DATE '1994-01-01' + INTERVAL '12' MONTH",
        ))
        assert sorted(result.column("k")) == [1, 2, 6]

    def test_negative_numbers(self, toy_db):
        result = execute(toy_db, sql(toy_db, "SELECT k FROM t WHERE k > -1 AND k < 2"))
        assert result.column("k") == [1]


class TestJoins:
    def test_inner_join(self, toy_db):
        result = execute(toy_db, sql(
            toy_db, "SELECT k, w FROM t JOIN u ON k = k2 ORDER BY k, w"
        ))
        assert result.rows == [(1, 100.0), (2, 200.0), (2, 201.0)]

    def test_join_orientation_is_automatic(self, toy_db):
        # ON written "right = left" still works.
        result = execute(toy_db, sql(
            toy_db, "SELECT k FROM t JOIN u ON k2 = k"
        ))
        assert sorted(result.column("k")) == [1, 2, 2]

    def test_left_join(self, toy_db):
        result = execute(toy_db, sql(
            toy_db, "SELECT k, w FROM t LEFT JOIN u ON k = k2 WHERE w IS NULL"
        ))
        assert sorted(result.column("k")) == [3, 4, 5, 6]

    def test_semi_and_anti_join(self, toy_db):
        semi = execute(toy_db, sql(toy_db, "SELECT k FROM t SEMI JOIN u ON k = k2"))
        anti = execute(toy_db, sql(toy_db, "SELECT k FROM t ANTI JOIN u ON k = k2"))
        assert sorted(semi.column("k") + anti.column("k")) == [1, 2, 3, 4, 5, 6]


class TestAggregation:
    def test_global_aggregate(self, toy_db):
        assert execute(toy_db, sql(toy_db, "SELECT SUM(v) AS s FROM t")).scalar() == 210.0

    def test_group_by_with_having(self, toy_db):
        result = execute(toy_db, sql(
            toy_db,
            "SELECT s, COUNT(*) AS n FROM t GROUP BY s HAVING COUNT(*) > 1 ORDER BY s",
        ))
        assert result.rows == [("a", 3), ("b", 2)]

    def test_expression_over_aggregates(self, toy_db):
        result = execute(toy_db, sql(
            toy_db, "SELECT SUM(v) / COUNT(*) AS mean FROM t"
        ))
        assert result.scalar() == pytest.approx(35.0)

    def test_count_distinct(self, toy_db):
        assert execute(
            toy_db, sql(toy_db, "SELECT COUNT(DISTINCT s) AS n FROM t")
        ).scalar() == 3

    def test_group_by_computed_alias(self, toy_db):
        result = execute(toy_db, sql(
            toy_db,
            "SELECT EXTRACT(YEAR FROM d) AS yr, COUNT(*) AS n "
            "FROM t GROUP BY yr ORDER BY yr",
        ))
        years = result.column("yr")
        assert years == sorted(years)
        assert sum(result.column("n")) == 6

    def test_case_inside_aggregate(self, toy_db):
        result = execute(toy_db, sql(
            toy_db,
            "SELECT SUM(CASE WHEN s = 'a' THEN v ELSE 0 END) AS a_total FROM t",
        ))
        assert result.scalar() == 100.0


class TestSubqueries:
    def test_scalar_subquery(self, toy_db):
        result = execute(toy_db, sql(
            toy_db, "SELECT k FROM t WHERE v > (SELECT AVG(v) FROM t)"
        ))
        assert sorted(result.column("k")) == [4, 5, 6]

    def test_in_subquery_becomes_semi_join(self, toy_db):
        result = execute(toy_db, sql(
            toy_db, "SELECT k FROM t WHERE k IN (SELECT k2 FROM u)"
        ))
        assert sorted(result.column("k")) == [1, 2]

    def test_not_in_subquery_becomes_anti_join(self, toy_db):
        result = execute(toy_db, sql(
            toy_db, "SELECT k FROM t WHERE k NOT IN (SELECT k2 FROM u) AND k < 6"
        ))
        assert sorted(result.column("k")) == [3, 4, 5]

    def test_in_subquery_mixed_with_predicates(self, toy_db):
        result = execute(toy_db, sql(
            toy_db, "SELECT k FROM t WHERE k IN (SELECT k2 FROM u) AND v > 15"
        ))
        assert result.column("k") == [2]


class TestTPCHEquivalence:
    """Queries written in actual SQL match the builder-defined plans."""

    def _rows_equal(self, a, b):
        assert len(a) == len(b)
        for ra, rb in zip(a, b):
            for x, y in zip(ra, rb):
                if isinstance(x, float):
                    assert x == pytest.approx(y, rel=1e-9)
                else:
                    assert x == y

    def test_q01(self, tpch_db, tpch_params):
        plan = sql(tpch_db, """
            SELECT l_returnflag, l_linestatus,
                   SUM(l_quantity) AS sum_qty,
                   SUM(l_extendedprice) AS sum_base_price,
                   SUM(l_extendedprice * (1 - l_discount)) AS sum_disc_price,
                   SUM(l_extendedprice * (1 - l_discount) * (1 + l_tax)) AS sum_charge,
                   AVG(l_quantity) AS avg_qty,
                   AVG(l_extendedprice) AS avg_price,
                   AVG(l_discount) AS avg_disc,
                   COUNT(*) AS count_order
            FROM lineitem
            WHERE l_shipdate <= DATE '1998-12-01' - INTERVAL '90' DAY
            GROUP BY l_returnflag, l_linestatus
            ORDER BY l_returnflag, l_linestatus
        """)
        builder = execute(tpch_db, get_query(1).build(tpch_db, tpch_params))
        self._rows_equal(execute(tpch_db, plan).rows, builder.rows)

    def test_q06(self, tpch_db, tpch_params):
        plan = sql(tpch_db, """
            SELECT SUM(l_extendedprice * l_discount) AS revenue
            FROM lineitem
            WHERE l_shipdate >= DATE '1994-01-01'
              AND l_shipdate < DATE '1994-01-01' + INTERVAL '1' YEAR
              AND l_discount BETWEEN 0.049 AND 0.071
              AND l_quantity < 24
        """)
        builder = execute(tpch_db, get_query(6).build(tpch_db, tpch_params))
        assert execute(tpch_db, plan).scalar() == pytest.approx(builder.scalar())

    def test_q04(self, tpch_db, tpch_params):
        plan = sql(tpch_db, """
            SELECT o_orderpriority, COUNT(*) AS order_count
            FROM orders
            WHERE o_orderdate >= DATE '1993-07-01'
              AND o_orderdate < DATE '1993-07-01' + INTERVAL '3' MONTH
              AND o_orderkey IN (
                  SELECT l_orderkey FROM lineitem WHERE l_commitdate < l_receiptdate)
            GROUP BY o_orderpriority
            ORDER BY o_orderpriority
        """)
        builder = execute(tpch_db, get_query(4).build(tpch_db, tpch_params))
        self._rows_equal(execute(tpch_db, plan).rows, builder.rows)

    def test_q14(self, tpch_db, tpch_params):
        plan = sql(tpch_db, """
            SELECT 100.00 * SUM(CASE WHEN p_type LIKE 'PROMO%'
                                     THEN l_extendedprice * (1 - l_discount)
                                     ELSE 0 END)
                   / SUM(l_extendedprice * (1 - l_discount)) AS promo_revenue
            FROM lineitem JOIN part ON l_partkey = p_partkey
            WHERE l_shipdate >= DATE '1995-09-01'
              AND l_shipdate < DATE '1995-09-01' + INTERVAL '1' MONTH
        """)
        builder = execute(tpch_db, get_query(14).build(tpch_db, tpch_params))
        assert execute(tpch_db, plan).scalar() == pytest.approx(builder.scalar())

    def test_q19_style_disjunction(self, tpch_db, tpch_params):
        plan = sql(tpch_db, """
            SELECT SUM(l_extendedprice * (1 - l_discount)) AS revenue
            FROM lineitem JOIN part ON l_partkey = p_partkey
            WHERE l_shipmode IN ('AIR', 'AIR REG')
              AND l_shipinstruct = 'DELIVER IN PERSON'
              AND ((p_brand = 'Brand#12' AND l_quantity BETWEEN 1 AND 11
                    AND p_size BETWEEN 1 AND 5
                    AND p_container IN ('SM CASE', 'SM BOX', 'SM PACK', 'SM PKG'))
                OR (p_brand = 'Brand#23' AND l_quantity BETWEEN 10 AND 20
                    AND p_size BETWEEN 1 AND 10
                    AND p_container IN ('MED BAG', 'MED BOX', 'MED PKG', 'MED PACK'))
                OR (p_brand = 'Brand#34' AND l_quantity BETWEEN 20 AND 30
                    AND p_size BETWEEN 1 AND 15
                    AND p_container IN ('LG CASE', 'LG BOX', 'LG PACK', 'LG PKG')))
        """)
        builder = execute(tpch_db, get_query(19).build(tpch_db, tpch_params))
        assert execute(tpch_db, plan).scalar() == pytest.approx(builder.scalar())


class TestDerivedTables:
    def test_from_subquery(self, toy_db):
        result = execute(toy_db, sql(toy_db, """
            SELECT s, total FROM (
                SELECT s, SUM(v) AS total FROM t GROUP BY s
            ) AS sums
            WHERE total > 50 ORDER BY s
        """))
        assert result.rows == [("a", 100.0), ("b", 70.0)]

    def test_join_against_subquery(self, toy_db):
        result = execute(toy_db, sql(toy_db, """
            SELECT k, w FROM t
            JOIN (SELECT k2, w FROM u WHERE w < 500) AS cheap ON k = k2
            ORDER BY k, w
        """))
        assert result.rows == [(1, 100.0), (2, 200.0), (2, 201.0)]

    def test_left_join_filtered_subquery_q13_pattern(self, toy_db):
        """Filtering the right side *before* a left join — the Q13 shape
        that plain WHERE cannot express."""
        result = execute(toy_db, sql(toy_db, """
            SELECT k, n FROM (
                SELECT k, COUNT(w) AS n FROM t
                LEFT JOIN (SELECT k2, w FROM u WHERE w > 150) AS big
                  ON k = k2
                GROUP BY k
            ) AS counted ORDER BY k
        """))
        counts = dict(result.rows)
        assert counts[2] == 2 and counts[1] == 0

    def test_nested_aggregation_two_levels(self, toy_db):
        result = execute(toy_db, sql(toy_db, """
            SELECT COUNT(*) AS groups FROM (
                SELECT s, COUNT(*) AS n FROM t GROUP BY s
            ) AS per_s
        """))
        assert result.scalar() == 3


class TestUnionAll:
    def test_union_all_concatenates(self, tpch_db):
        plan = sql(tpch_db, """
            SELECT n_name AS name FROM nation WHERE n_regionkey = 0
            UNION ALL
            SELECT r_name AS name FROM region
        """)
        result = execute(tpch_db, plan)
        assert len(result) == 10  # 5 African nations + 5 regions
        assert "AFRICA" in result.column("name")

    def test_union_with_aggregates_per_branch(self, tpch_db):
        plan = sql(tpch_db, """
            SELECT COUNT(*) AS n FROM nation
            UNION ALL
            SELECT COUNT(*) AS n FROM region
        """)
        result = execute(tpch_db, plan)
        assert sorted(result.column("n")) == [5, 25]


class TestErrors:
    def test_unknown_table(self, toy_db):
        with pytest.raises(SqlSyntaxError, match="unknown table"):
            sql(toy_db, "SELECT * FROM missing")

    def test_trailing_garbage(self, toy_db):
        with pytest.raises(SqlSyntaxError, match="trailing"):
            sql(toy_db, "SELECT k FROM t extra stuff here")

    def test_star_with_aggregation(self, toy_db):
        with pytest.raises(SqlSyntaxError):
            sql(toy_db, "SELECT *, COUNT(*) AS n FROM t GROUP BY s")

    def test_group_by_unknown_column(self, toy_db):
        with pytest.raises(SqlSyntaxError, match="not in scope"):
            sql(toy_db, "SELECT COUNT(*) AS n FROM t GROUP BY nothing")

    def test_in_subquery_needs_plain_column(self, toy_db):
        with pytest.raises(SqlSyntaxError, match="plain column"):
            sql(toy_db, "SELECT k FROM t WHERE k + 1 IN (SELECT k2 FROM u)")

    def test_in_subquery_multiple_columns(self, toy_db):
        with pytest.raises(SqlSyntaxError, match="one column"):
            sql(toy_db, "SELECT k FROM t WHERE k IN (SELECT k2, w FROM u)")

    def test_missing_from(self, toy_db):
        with pytest.raises(SqlSyntaxError, match="expected FROM"):
            sql(toy_db, "SELECT 1")
