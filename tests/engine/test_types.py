"""Tests for the engine type system and date helpers."""

import datetime

import numpy as np
import pytest

from repro.engine.types import (
    BOOL, DATE, FLOAT64, INT64, STRING, date_to_days, days_to_date,
)


class TestDataTypes:
    def test_widths_match_physical_layout(self):
        assert INT64.width == 8
        assert FLOAT64.width == 8
        assert DATE.width == 4
        assert STRING.width == 4  # dictionary codes
        assert BOOL.width == 1

    def test_numpy_dtypes(self):
        assert INT64.numpy_dtype == np.dtype(np.int64)
        assert DATE.numpy_dtype == np.dtype(np.int32)
        assert STRING.numpy_dtype == np.dtype(np.int32)

    def test_names_are_stable(self):
        assert INT64.name == "int64"
        assert STRING.name == "string"

    def test_types_are_hashable_and_comparable(self):
        assert len({INT64, FLOAT64, DATE, STRING, BOOL}) == 5
        assert INT64 == INT64
        assert INT64 != FLOAT64


class TestDateConversion:
    def test_epoch_is_zero(self):
        assert date_to_days("1970-01-01") == 0

    def test_next_day(self):
        assert date_to_days("1970-01-02") == 1

    def test_pre_epoch_is_negative(self):
        assert date_to_days("1969-12-31") == -1

    def test_accepts_date_objects(self):
        assert date_to_days(datetime.date(1970, 1, 11)) == 10

    def test_roundtrip(self):
        for iso in ["1992-01-01", "1995-06-17", "1998-08-02", "2000-02-29"]:
            assert days_to_date(date_to_days(iso)).isoformat() == iso

    def test_tpch_date_range_ordering(self):
        assert date_to_days("1992-01-01") < date_to_days("1998-08-02")

    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            date_to_days("not-a-date")
