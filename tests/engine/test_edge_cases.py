"""Engine edge cases: empty inputs through every operator, single rows,
degenerate joins, SF-stability of generated selectivities."""

import numpy as np
import pytest

from repro.engine import Column, Database, Q, Table, agg, col, execute
from repro.engine.types import INT64


@pytest.fixture
def empty_db():
    db = Database()
    db.add(Table("e", {
        "k": Column.from_ints([1]),  # tables need >= 1 column; filter to empty
        "s": Column.from_strings(["x"]),
    }))
    return db


def _empty(db):
    """A plan producing zero rows."""
    return Q(db).scan("e").filter(col("k") > 100)


class TestEmptyInputs:
    def test_filter_on_empty(self, empty_db):
        result = execute(empty_db, _empty(empty_db).filter(col("k") < 5))
        assert len(result) == 0

    def test_project_on_empty(self, empty_db):
        result = execute(empty_db, _empty(empty_db).project(x=col("k") * 2))
        assert len(result) == 0
        assert result.column_names == ["x"]

    def test_join_empty_probe_side(self, empty_db):
        right = Q(empty_db).scan("e").project(k2="k", v="k")
        result = execute(
            empty_db, _empty(empty_db).join(right, on=[("k", "k2")], how="inner")
        )
        assert len(result) == 0

    def test_self_join_with_colliding_columns_rejected(self, empty_db):
        with pytest.raises(ValueError, match="duplicate"):
            execute(empty_db, Q(empty_db).scan("e").join("e", on=[("k", "k")]))

    def test_left_join_against_empty_build_side(self, empty_db):
        plan = (
            Q(empty_db).scan("e")
            .join(_empty(empty_db).project(k2="k", s2="s"), on=[("k", "k2")], how="left")
        )
        result = execute(empty_db, plan)
        assert len(result) == 1
        assert result.to_dicts()[0]["k2"] is None
        assert result.to_dicts()[0]["s2"] is None

    def test_anti_join_against_empty_keeps_all(self, empty_db):
        plan = (
            Q(empty_db).scan("e")
            .join(_empty(empty_db).project(k2="k"), on=[("k", "k2")], how="anti")
        )
        assert len(execute(empty_db, plan)) == 1

    def test_grouped_aggregate_on_empty_has_no_groups(self, empty_db):
        result = execute(
            empty_db, _empty(empty_db).aggregate(by=["s"], n=agg.count_star())
        )
        assert len(result) == 0

    def test_sort_limit_distinct_on_empty(self, empty_db):
        for plan in (
            _empty(empty_db).sort("k"),
            _empty(empty_db).limit(5),
            _empty(empty_db).distinct("s"),
        ):
            assert len(execute(empty_db, plan)) == 0

    def test_string_filter_on_empty(self, empty_db):
        result = execute(empty_db, _empty(empty_db).filter(col("s").like("x%")))
        assert len(result) == 0

    def test_count_distinct_on_empty(self, empty_db):
        result = execute(
            empty_db, _empty(empty_db).aggregate(n=agg.count_distinct(col("s")))
        )
        assert result.scalar() == 0


class TestSingleRow:
    def test_whole_pipeline_on_one_row(self, empty_db):
        right = Q(empty_db).scan("e").project(k2="k")
        plan = (
            Q(empty_db).scan("e")
            .filter(col("k") == 1)
            .join(right, on=[("k", "k2")])
            .aggregate(by=["s"], n=agg.count_star())
            .sort("s").limit(1)
        )
        result = execute(empty_db, plan)
        assert result.rows == [("x", 1)]


class TestDegenerateJoins:
    def test_all_rows_same_key_cross_product(self):
        db = Database()
        db.add(Table("a", {"k": Column.from_ints([7] * 10)}))
        db.add(Table("b", {"k2": Column.from_ints([7] * 10),
                           "v": Column.from_ints(range(10))}))
        result = execute(db, Q(db).scan("a").join("b", on=[("k", "k2")]))
        assert len(result) == 100  # 10x10 expansion

    def test_join_on_negative_keys(self):
        db = Database()
        db.add(Table("a", {"k": Column.from_ints([-5, -1, 0])}))
        db.add(Table("b", {"k2": Column.from_ints([-1, 0, 3]),
                           "v": Column.from_ints([10, 20, 30])}))
        result = execute(db, Q(db).scan("a").join("b", on=[("k", "k2")]).sort("k"))
        assert result.column("v") == [10, 20]


class TestSelectivityStability:
    """Generated selectivities must be stable across scale factors —
    the assumption behind profile extrapolation (DESIGN.md §5)."""

    def test_q6_aggregate_scales_roughly_linearly(self):
        from repro.tpch import generate, get_query

        small_db = generate(0.005, seed=123)
        large_db = generate(0.02, seed=123)
        small = execute(small_db, get_query(6).build(small_db, {"sf": 0.005}))
        large = execute(large_db, get_query(6).build(large_db, {"sf": 0.02}))
        ratio = large.scalar() / small.scalar()
        assert 3.0 < ratio < 5.0  # (Q19 is too selective to be stable at tiny SF)

    def test_q1_group_structure_stable(self):
        from repro.tpch import generate, get_query

        for sf in (0.005, 0.02):
            db = generate(sf, seed=123)
            result = execute(db, get_query(1).build(db, {"sf": sf}))
            assert [r[:2] for r in result.rows] == [
                ("A", "F"), ("N", "F"), ("N", "O"), ("R", "F"),
            ]

    def test_profile_bytes_scale_linearly_with_sf(self):
        from repro.tpch import generate, get_query

        dbs = {sf: generate(sf, seed=9) for sf in (0.005, 0.02)}
        bytes_by_sf = {}
        for sf, db in dbs.items():
            result = execute(db, get_query(6).build(db, {"sf": sf}))
            bytes_by_sf[sf] = result.profile.seq_bytes
        ratio = bytes_by_sf[0.02] / bytes_by_sf[0.005]
        assert 3.5 < ratio < 4.5
