"""Predicate pushdown: plan-shape rewrites, legality boundaries,
fingerprint/cache interaction, and the scan-level accounting the
pushed-down predicates enable."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import (
    DEFAULT_SETTINGS,
    Executor,
    OptimizerSettings,
    ParallelExecutor,
    Q,
    agg,
    col,
    execute,
    lit,
    plan_fingerprint,
)
from repro.engine.explain import explain
from repro.engine.optimizer import (
    optimize_plan,
    prune_columns,
    pushdown_predicates,
)
from repro.engine.plan import (
    DistinctNode,
    FilterNode,
    JoinNode,
    ProjectNode,
    ScanNode,
    SortNode,
)


def _find(node, cls):
    """All nodes of ``cls`` in the subtree, preorder."""
    found = [node] if isinstance(node, cls) else []
    for child in node.children():
        found.extend(_find(child, cls))
    return found


class TestPushdownShapes:
    def test_filter_becomes_scan_predicate(self, toy_db):
        plan = Q(toy_db).scan("t").filter(col("k") > 3).node
        out = pushdown_predicates(plan, toy_db)
        assert isinstance(out, ScanNode)
        assert out.predicate is not None
        assert not _find(out, FilterNode)

    def test_conjuncts_split_and_merge(self, toy_db):
        plan = (
            Q(toy_db).scan("t")
            .filter(col("k") > 1)
            .filter((col("v") < 50) & (col("s") == lit("a")))
            .node
        )
        out = pushdown_predicates(plan, toy_db)
        assert isinstance(out, ScanNode)
        from repro.engine.zonemap import split_conjuncts

        assert len(split_conjuncts(out.predicate)) == 3

    def test_pushes_through_passthrough_project(self, toy_db):
        plan = (
            Q(toy_db).scan("t")
            .project(key="k", double=col("v") * 2)
            .filter(col("key") > 3)
            .node
        )
        out = pushdown_predicates(plan, toy_db)
        assert isinstance(out, ProjectNode)
        scan = out.child
        assert isinstance(scan, ScanNode)
        # The alias got rewritten back into the base column name.
        assert scan.predicate.references() == {"k"}

    def test_computed_output_blocks_descent(self, toy_db):
        plan = (
            Q(toy_db).scan("t")
            .project(double=col("v") * 2)
            .filter(col("double") > 50)
            .node
        )
        out = pushdown_predicates(plan, toy_db)
        # The filter reads a computed column: it must stay above.
        assert isinstance(out, FilterNode)
        assert isinstance(out.child, ProjectNode)

    def test_join_routes_conjuncts_by_side(self, toy_db):
        plan = (
            Q(toy_db).scan("t")
            .join("u", on=[("k", "k2")])
            .filter((col("v") > 15) & (col("w") < 300))
            .node
        )
        out = pushdown_predicates(plan, toy_db)
        assert isinstance(out, JoinNode)
        left, right = out.left, out.right
        assert isinstance(left, ScanNode) and left.predicate is not None
        assert isinstance(right, ScanNode) and right.predicate is not None
        assert left.predicate.references() == {"v"}
        assert right.predicate.references() == {"w"}

    def test_left_join_keeps_right_side_filter_above(self, toy_db):
        plan = (
            Q(toy_db).scan("t")
            .join("u", on=[("k", "k2")], how="left")
            .filter(col("w") < 300)
            .node
        )
        out = pushdown_predicates(plan, toy_db)
        # Filtering u before a left join would turn non-matches into NULL
        # rows instead of removing them; the filter must stay above.
        assert isinstance(out, FilterNode)
        join = out.child
        assert isinstance(join, JoinNode)
        assert all(s.predicate is None for s in _find(join, ScanNode))

    def test_semi_join_pushes_probe_side(self, toy_db):
        plan = (
            Q(toy_db).scan("t")
            .join("u", on=[("k", "k2")], how="semi")
            .filter(col("v") > 15)
            .node
        )
        out = pushdown_predicates(plan, toy_db)
        assert isinstance(out, JoinNode)
        assert isinstance(out.left, ScanNode)
        assert out.left.predicate is not None

    def test_cross_side_conjunct_stays_above_join(self, toy_db):
        plan = (
            Q(toy_db).scan("t")
            .join("u", on=[("k", "k2")])
            .filter(col("v") < col("w"))
            .node
        )
        out = pushdown_predicates(plan, toy_db)
        assert isinstance(out, FilterNode)

    def test_sort_commutes(self, toy_db):
        plan = (
            Q(toy_db).scan("t").sort("k").filter(col("k") > 2).node
        )
        out = pushdown_predicates(plan, toy_db)
        assert isinstance(out, SortNode)
        assert isinstance(out.child, ScanNode)
        assert out.child.predicate is not None

    def test_whole_row_distinct_commutes_subset_does_not(self, toy_db):
        base = Q(toy_db).scan("t")
        whole = pushdown_predicates(
            base.distinct().filter(col("k") > 2).node, toy_db
        )
        assert isinstance(whole, DistinctNode)
        assert isinstance(whole.child, ScanNode)
        subset = pushdown_predicates(
            base.distinct("s").filter(col("k") > 2).node, toy_db
        )
        assert isinstance(subset, FilterNode)
        assert isinstance(subset.child, DistinctNode)

    def test_aggregate_is_a_barrier_but_descent_restarts(self, toy_db):
        plan = (
            Q(toy_db).scan("t")
            .filter(col("k") > 1)           # below the aggregate: sinks
            .aggregate(by=["s"], n=agg.count_star())
            .filter(col("n") > 0)            # HAVING: stays above
            .node
        )
        out = pushdown_predicates(plan, toy_db)
        assert isinstance(out, FilterNode)
        scans = _find(out, ScanNode)
        assert len(scans) == 1 and scans[0].predicate is not None

    def test_prune_preserves_scan_predicate(self, toy_db):
        plan = (
            Q(toy_db).scan("t").filter(col("k") > 3).select("v").node
        )
        out = optimize_plan(plan, toy_db)
        scan = _find(out, ScanNode)[0]
        assert scan.predicate is not None
        # Predicate-only columns are streamed for evaluation, not emitted.
        assert scan.columns == ("v",)

    def test_disabled_settings_keep_plan_shape(self, toy_db):
        plan = Q(toy_db).scan("t").filter(col("k") > 3).node
        out = optimize_plan(plan, toy_db, OptimizerSettings.disabled())
        assert isinstance(out, FilterNode)
        assert _find(out, ScanNode)[0].predicate is None


class TestExplainAndFingerprint:
    def test_explain_shows_scan_filter(self, toy_db):
        plan = Q(toy_db).scan("t").filter(col("k") > 3).select("v")
        text = explain(plan.node, toy_db)
        assert "Filter (" in text
        off = explain(plan.node, toy_db, settings=OptimizerSettings.disabled())
        assert "Scan t" in off

    def test_fingerprint_distinguishes_settings(self, toy_db):
        plan = Q(toy_db).scan("t").filter(col("k") > 3).node
        on = plan_fingerprint(plan, DEFAULT_SETTINGS)
        off = plan_fingerprint(plan, OptimizerSettings.disabled())
        bare = plan_fingerprint(plan)
        assert len({on, off, bare}) == 3

    def test_fingerprint_normalizes_numpy_scalars(self, toy_db):
        a = Q(toy_db).scan("t").filter(col("k") > lit(np.int64(3))).node
        b = Q(toy_db).scan("t").filter(col("k") > lit(3)).node
        assert plan_fingerprint(a) == plan_fingerprint(b)

    def test_parallel_cache_never_aliases_settings(self, tpch_db):
        from repro.tpch import get_query

        plan = get_query(6).build(tpch_db, {"sf": 0.01})
        with ParallelExecutor(tpch_db, workers=2) as on_ex, \
                ParallelExecutor(
                    tpch_db, workers=2, settings=OptimizerSettings.disabled()
                ) as off_ex:
            r_on = on_ex.execute(plan)
            r_off = off_ex.execute(plan)
        assert r_on.rows == r_off.rows


class TestScanAccounting:
    def test_scan_reports_post_skip_tuples(self, toy_db):
        # Clustered ints over >1 block so skipping has something to prove.
        import numpy as np

        from repro.engine import Column, Database, Table

        db = Database("acct")
        db.add(Table("big", {"x": Column.from_ints(np.arange(20_000))}))
        plan = Q(db).scan("big").filter(col("x") < 1000).node

        on = Executor(db).execute(plan)
        scan_op = on.profile.operators[0]
        assert scan_op.operator == "scan"
        # Post-skip cardinality: only surviving blocks' rows, not 20 000.
        assert scan_op.tuples_out < 20_000
        assert on.profile.skipped_bytes > 0
        assert on.profile.zone_probes > 0
        assert on.profile.blocks_skipped > 0

        off = Executor(db, OptimizerSettings.disabled()).execute(plan)
        assert off.profile.skipped_bytes == 0
        assert off.profile.zone_probes == 0
        assert on.rows == off.rows
        # Skipping strictly reduces streamed bytes on clustered data.
        assert on.profile.seq_bytes < off.profile.seq_bytes

    def test_pushdown_without_skipping_streams_everything(self, toy_db):
        import numpy as np

        from repro.engine import Column, Database, Table

        db = Database("acct2")
        db.add(Table("big", {"x": Column.from_ints(np.arange(20_000))}))
        plan = Q(db).scan("big").filter(col("x") < 1000).node
        settings = OptimizerSettings(predicate_pushdown=True, zone_map_skipping=False)
        result = Executor(db, settings).execute(plan)
        assert result.profile.skipped_bytes == 0
        assert result.profile.blocks_skipped == 0
        assert len(result) == 1000

    def test_module_execute_accepts_settings(self, toy_db):
        plan = Q(toy_db).scan("t").filter(col("k") > 3)
        on = execute(toy_db, plan)
        off = execute(toy_db, plan, settings=OptimizerSettings.disabled())
        assert on.rows == off.rows
        assert len(on) == 3


class TestPushdownDoesNotChangeResults:
    @pytest.mark.parametrize("how", ["inner", "left", "semi", "anti"])
    def test_join_filter_results_stable(self, toy_db, how):
        predicate = (col("k") > 1) if how in ("semi", "anti") else (
            (col("k") > 1) & (col("w") < 300)
        ) if how == "inner" else (col("k") > 1)
        plan = (
            Q(toy_db).scan("t")
            .join("u", on=[("k", "k2")], how=how)
            .filter(predicate)
            .node
        )
        on = Executor(toy_db).execute(plan)
        off = Executor(toy_db, OptimizerSettings.disabled()).execute(plan)
        assert on.rows == off.rows
