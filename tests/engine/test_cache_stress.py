"""Concurrency stress for the engine's two shared caches.

Morsel workers and serving threads hammer :class:`ResultCache` and
:class:`KeyCache` simultaneously; these tests drive both with thread
storms well past their capacities and assert the invariants that keep
them safe to share: values are always correct, single-flight really is
single-flight, bounds hold, and the accounting (hits + misses, byte
totals) stays exact under interleaving.
"""

from __future__ import annotations

import random
import threading

import numpy as np
import pytest

from repro.engine.cache import ResultCache
from repro.engine.keycache import KeyCache


def _run_threads(n: int, target) -> None:
    barrier = threading.Barrier(n)

    def wrapped(i):
        barrier.wait()
        target(i)

    threads = [threading.Thread(target=wrapped, args=(i,)) for i in range(n)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()


class TestResultCacheStress:
    N_THREADS = 8
    N_KEYS = 16
    ROUNDS = 60
    CAPACITY = 4

    def test_storm_returns_correct_values_and_exact_accounting(self):
        cache = ResultCache(capacity=self.CAPACITY)
        runs_per_key = [0] * self.N_KEYS
        runs_lock = threading.Lock()
        errors = []

        def compute(k: int):
            def run():
                with runs_lock:
                    runs_per_key[k] += 1
                return ("value", k * 10)

            return run

        def client(i: int):
            rng = random.Random(1000 + i)
            try:
                for _ in range(self.ROUNDS):
                    k = rng.randrange(self.N_KEYS)
                    value, _ = cache.get_or_run(f"k{k}", compute(k))
                    assert value == ("value", k * 10)
            except BaseException as exc:  # pragma: no cover - diagnostics
                errors.append(exc)

        _run_threads(self.N_THREADS, client)
        assert not errors

        stats = cache.stats()
        total_calls = self.N_THREADS * self.ROUNDS
        # Every call recorded exactly one hit or one miss...
        assert stats["hits"] + stats["misses"] == total_calls
        # ...and every miss corresponds to exactly one run() execution
        # (single-flight: concurrent requests for a key share one run).
        assert stats["misses"] == sum(runs_per_key)

        # One quiet insert lets eviction settle; the bound then holds.
        cache.get_or_run("settle", lambda: None)
        assert len(cache) <= self.CAPACITY

    def test_single_flight_under_contention(self):
        """All threads ask for ONE key at once: exactly one run."""
        cache = ResultCache(capacity=4)
        runs = []
        release = threading.Event()

        def slow_run():
            runs.append(1)
            assert release.wait(timeout=10)
            return "shared"

        results = [None] * self.N_THREADS
        barrier = threading.Barrier(self.N_THREADS + 1)

        def client(i):
            barrier.wait()
            results[i] = cache.get_or_run("hot", slow_run)

        threads = [
            threading.Thread(target=client, args=(i,))
            for i in range(self.N_THREADS)
        ]
        for t in threads:
            t.start()
        barrier.wait()  # all clients racing for the same key
        release.set()
        for t in threads:
            t.join(timeout=10)

        assert len(runs) == 1
        assert all(value == "shared" for value, _ in results)
        # Exactly one miss (the owner); everyone else piggybacked.
        assert [r for _, r in results].count(False) == 1

    def test_in_flight_entries_survive_eviction_pressure(self):
        """A slow in-flight entry must not be evicted by faster keys
        churning the LRU past capacity around it."""
        cache = ResultCache(capacity=2)
        release = threading.Event()
        outcome = {}

        def slow_run():
            assert release.wait(timeout=10)
            return "slow"

        def slow_client():
            outcome["slow"] = cache.get_or_run("slow-key", slow_run)

        thread = threading.Thread(target=slow_client)
        thread.start()
        # Churn many completed entries through the cache meanwhile.
        for i in range(20):
            cache.get_or_run(f"churn-{i}", lambda i=i: i)
        release.set()
        thread.join(timeout=10)
        assert outcome["slow"] == ("slow", False)
        # And the hot key is still servable (recompute or hit, both fine).
        value, _ = cache.get_or_run("slow-key", lambda: "slow")
        assert value == "slow"


class TestKeyCacheStress:
    N_THREADS = 8
    ROUNDS = 40

    @pytest.fixture()
    def arrays(self):
        rng = np.random.default_rng(7)
        return [
            rng.integers(0, 50, size=200 + 37 * i, dtype=np.int64)
            for i in range(12)
        ]

    def test_concurrent_factorize_matches_numpy(self, arrays):
        cache = KeyCache(max_entries=4, max_bytes=1 << 20)
        expected = [np.unique(a, return_inverse=True) for a in arrays]
        errors = []

        def client(i: int):
            rng = random.Random(i)
            try:
                for _ in range(self.ROUNDS):
                    j = rng.randrange(len(arrays))
                    uniques, codes = cache.factorize(arrays[j])
                    exp_uniques, exp_codes = expected[j]
                    np.testing.assert_array_equal(uniques, exp_uniques)
                    np.testing.assert_array_equal(
                        codes, exp_codes.reshape(arrays[j].shape)
                    )
            except BaseException as exc:  # pragma: no cover - diagnostics
                errors.append(exc)

        _run_threads(self.N_THREADS, client)
        assert not errors

        stats = cache.stats()
        assert stats["entries"] <= 4
        assert stats["hits"] + stats["misses"] == self.N_THREADS * self.ROUNDS

    def test_concurrent_sort_order_matches_numpy(self, arrays):
        cache = KeyCache(max_entries=4, max_bytes=1 << 20)
        expected = [np.argsort(a, kind="stable") for a in arrays]
        errors = []

        def client(i: int):
            rng = random.Random(100 + i)
            try:
                for _ in range(self.ROUNDS):
                    j = rng.randrange(len(arrays))
                    np.testing.assert_array_equal(
                        cache.sort_order(arrays[j]), expected[j]
                    )
            except BaseException as exc:  # pragma: no cover - diagnostics
                errors.append(exc)

        _run_threads(self.N_THREADS, client)
        assert not errors
        assert cache.stats()["entries"] <= 4

    def test_mixed_kinds_share_the_bound(self, arrays):
        cache = KeyCache(max_entries=6, max_bytes=1 << 20)
        errors = []

        def client(i: int):
            rng = random.Random(200 + i)
            try:
                for _ in range(self.ROUNDS):
                    j = rng.randrange(len(arrays))
                    if rng.random() < 0.5:
                        cache.factorize(arrays[j])
                    else:
                        cache.sort_order(arrays[j])
            except BaseException as exc:  # pragma: no cover - diagnostics
                errors.append(exc)

        _run_threads(self.N_THREADS, client)
        assert not errors
        stats = cache.stats()
        assert stats["entries"] <= 6
        assert stats["bytes"] <= 1 << 20

    def test_byte_accounting_is_exact_after_storm(self, arrays):
        """bytes must equal the recomputed payload sizes of the
        surviving entries — no drift from concurrent insert/evict."""
        cache = KeyCache(max_entries=4, max_bytes=1 << 20)
        errors = []

        def client(i: int):
            rng = random.Random(300 + i)
            try:
                for _ in range(self.ROUNDS):
                    cache.factorize(arrays[rng.randrange(len(arrays))])
            except BaseException as exc:  # pragma: no cover - diagnostics
                errors.append(exc)

        _run_threads(self.N_THREADS, client)
        assert not errors
        with cache._lock:
            recomputed = sum(
                cache._payload_bytes(source, value)
                for source, value in cache._entries.values()
            )
            assert cache._bytes == recomputed

    def test_oversized_payload_is_not_cached(self):
        cache = KeyCache(max_entries=4, max_bytes=128)
        big = np.arange(1000, dtype=np.int64)
        order = cache.sort_order(big)
        np.testing.assert_array_equal(order, np.argsort(big, kind="stable"))
        assert cache.stats()["entries"] == 0
