"""Aggregation tests: every function, grouping shapes, nulls, empties."""

import math

import numpy as np
import pytest

from repro.engine import Column, Database, Q, Table, agg, col, execute
from repro.engine.types import INT64


@pytest.fixture
def db():
    db = Database()
    db.add(Table("sales", {
        "region": Column.from_strings(["east", "west", "east", "east", "west"]),
        "product": Column.from_strings(["a", "a", "b", "a", "b"]),
        "amount": Column.from_floats([10.0, 20.0, 30.0, 40.0, 50.0]),
        "units": Column.from_ints([1, 2, 3, 4, 5]),
    }))
    return db


class TestGlobalAggregates:
    def test_sum(self, db):
        assert execute(db, Q(db).scan("sales").aggregate(s=agg.sum(col("amount")))).scalar() == 150.0

    def test_avg(self, db):
        assert execute(db, Q(db).scan("sales").aggregate(a=agg.avg(col("amount")))).scalar() == 30.0

    def test_count_star(self, db):
        assert execute(db, Q(db).scan("sales").aggregate(n=agg.count_star())).scalar() == 5

    def test_min_max(self, db):
        r = execute(db, Q(db).scan("sales").aggregate(
            lo=agg.min(col("amount")), hi=agg.max(col("amount"))))
        assert r.rows == [(10.0, 50.0)]

    def test_min_max_ints_stay_int(self, db):
        r = execute(db, Q(db).scan("sales").aggregate(
            lo=agg.min(col("units")), hi=agg.max(col("units"))))
        assert r.rows == [(1, 5)]

    def test_count_distinct(self, db):
        r = execute(db, Q(db).scan("sales").aggregate(
            n=agg.count_distinct(col("region"))))
        assert r.scalar() == 2

    def test_aggregate_of_expression(self, db):
        r = execute(db, Q(db).scan("sales").aggregate(
            s=agg.sum(col("amount") * 2.0)))
        assert r.scalar() == 300.0

    def test_global_aggregate_always_one_row(self, db):
        r = execute(db, Q(db).scan("sales").filter(col("amount") > 1e9)
                    .aggregate(s=agg.sum(col("amount")), n=agg.count_star()))
        assert len(r) == 1
        assert r.rows[0][1] == 0  # COUNT over empty input is 0
        assert r.rows[0][0] == 0.0  # SUM over empty input is 0 (numpy bincount)


class TestGroupedAggregates:
    def test_single_key(self, db):
        r = execute(db, Q(db).scan("sales")
                    .aggregate(by=["region"], total=agg.sum(col("amount")))
                    .sort("region"))
        assert r.rows == [("east", 80.0), ("west", 70.0)]

    def test_multi_key(self, db):
        r = execute(db, Q(db).scan("sales")
                    .aggregate(by=["region", "product"], n=agg.count_star())
                    .sort("region", "product"))
        assert r.rows == [("east", "a", 2), ("east", "b", 1),
                          ("west", "a", 1), ("west", "b", 1)]

    def test_count_distinct_per_group(self, db):
        r = execute(db, Q(db).scan("sales")
                    .aggregate(by=["region"], np_=agg.count_distinct(col("product")))
                    .sort("region"))
        assert r.rows == [("east", 2), ("west", 2)]

    def test_avg_per_group(self, db):
        r = execute(db, Q(db).scan("sales")
                    .aggregate(by=["product"], a=agg.avg(col("amount")))
                    .sort("product"))
        assert r.rows == [("a", pytest.approx(70.0 / 3)), ("b", 40.0)]

    def test_group_keys_preserved_types(self, db):
        r = execute(db, Q(db).scan("sales")
                    .aggregate(by=["units"], n=agg.count_star()))
        assert all(isinstance(v, int) for v in r.column("units"))

    def test_many_aggregates_q1_style(self, db):
        r = execute(db, Q(db).scan("sales").aggregate(
            by=["region"],
            s=agg.sum(col("amount")),
            a=agg.avg(col("amount")),
            n=agg.count_star(),
            lo=agg.min(col("units")),
            hi=agg.max(col("units")),
        ).sort("region"))
        assert r.rows[0] == ("east", 80.0, pytest.approx(80.0 / 3), 3, 1, 4)


class TestNullAwareAggregates:
    @pytest.fixture
    def null_db(self):
        db = Database()
        db.add(Table("t", {
            "g": Column.from_strings(["x", "x", "y"]),
            "v": Column(INT64, np.array([1, 2, 3]), valid=np.array([True, False, True])),
        }))
        return db

    def test_count_skips_nulls(self, null_db):
        r = execute(null_db, Q(null_db).scan("t")
                    .aggregate(by=["g"], n=agg.count(col("v"))).sort("g"))
        assert r.rows == [("x", 1), ("y", 1)]

    def test_count_star_includes_nulls(self, null_db):
        r = execute(null_db, Q(null_db).scan("t")
                    .aggregate(by=["g"], n=agg.count_star()).sort("g"))
        assert r.rows == [("x", 2), ("y", 1)]

    def test_sum_skips_nulls(self, null_db):
        r = execute(null_db, Q(null_db).scan("t")
                    .aggregate(by=["g"], s=agg.sum(col("v"))).sort("g"))
        assert r.rows == [("x", 1.0), ("y", 3.0)]

    def test_avg_skips_nulls(self, null_db):
        r = execute(null_db, Q(null_db).scan("t")
                    .aggregate(by=["g"], a=agg.avg(col("v"))).sort("g"))
        assert r.rows == [("x", 1.0), ("y", 3.0)]

    def test_min_max_skip_nulls(self, null_db):
        r = execute(null_db, Q(null_db).scan("t")
                    .aggregate(lo=agg.min(col("v")), hi=agg.max(col("v"))))
        assert r.rows == [(1, 3)]


class TestValidation:
    def test_aggregate_requires_aggspec(self, db):
        with pytest.raises(TypeError, match="agg namespace"):
            Q(db).scan("sales").aggregate(s=col("amount"))

    def test_stacked_aggregates_q13_style(self, db):
        r = execute(db, Q(db).scan("sales")
                    .aggregate(by=["region"], n=agg.count_star())
                    .aggregate(by=["n"], dist=agg.count_star())
                    .sort("n"))
        # east has 3 rows, west has 2 -> one group of each count
        assert r.rows == [(2, 1), (3, 1)]
