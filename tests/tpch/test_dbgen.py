"""dbgen tests: determinism, cardinalities, key integrity, distributions."""

import re

import numpy as np
import pytest

from repro.engine.types import STRING
from repro.tpch import BASE_ROWS, TPCH_SCHEMAS, generate, generate_table, rows_at_sf
from repro.tpch.dbgen import CURRENT_DATE


class TestCardinalities:
    def test_fixed_tables(self, tpch_db):
        assert tpch_db.table("region").nrows == 5
        assert tpch_db.table("nation").nrows == 25

    def test_scaling_tables(self, tpch_db):
        assert tpch_db.table("supplier").nrows == 100
        assert tpch_db.table("part").nrows == 2000
        assert tpch_db.table("partsupp").nrows == 8000
        assert tpch_db.table("customer").nrows == 1500
        assert tpch_db.table("orders").nrows == 15000

    def test_lineitem_about_four_per_order(self, tpch_db):
        ratio = tpch_db.table("lineitem").nrows / tpch_db.table("orders").nrows
        assert 3.5 < ratio < 4.5

    def test_rows_at_sf(self):
        assert rows_at_sf("lineitem", 1.0) == 6_000_000
        assert rows_at_sf("nation", 100.0) == 25
        assert rows_at_sf("supplier", 0.001) >= 1

    def test_invalid_sf(self):
        with pytest.raises(ValueError):
            generate(0)


class TestSchemaConformance:
    def test_all_tables_present(self, tpch_db):
        assert set(tpch_db.table_names) == set(TPCH_SCHEMAS)

    @pytest.mark.parametrize("table", list(TPCH_SCHEMAS))
    def test_columns_match_schema(self, tpch_db, table):
        schema = TPCH_SCHEMAS[table]
        tab = tpch_db.table(table)
        assert tab.column_names == schema.names
        for name, dtype in schema.fields:
            assert tab.column(name).dtype is dtype, (table, name)


class TestDeterminism:
    def test_same_seed_same_data(self):
        a = generate(0.002, seed=7)
        b = generate(0.002, seed=7)
        for table in a.table_names:
            ta, tb = a.table(table), b.table(table)
            for name in ta.column_names:
                assert np.array_equal(ta.column(name).values, tb.column(name).values), (table, name)

    def test_different_seed_different_data(self):
        a = generate(0.002, seed=1)
        b = generate(0.002, seed=2)
        assert not np.array_equal(
            a.table("lineitem").column("l_quantity").values,
            b.table("lineitem").column("l_quantity").values,
        )

    def test_generate_table_matches_full_generate(self):
        full = generate(0.002, seed=9)
        solo = generate_table("lineitem", 0.002, seed=9)
        assert np.array_equal(
            full.table("lineitem").column("l_orderkey").values,
            solo.column("l_orderkey").values,
        )


class TestKeyIntegrity:
    def test_primary_keys_dense(self, tpch_db):
        for table, key in [("supplier", "s_suppkey"), ("part", "p_partkey"),
                           ("customer", "c_custkey"), ("orders", "o_orderkey")]:
            values = tpch_db.table(table).column(key).values
            assert values.min() == 1
            assert values.max() == len(values)
            assert len(np.unique(values)) == len(values)

    def test_lineitem_orderkeys_exist(self, tpch_db):
        lkeys = tpch_db.table("lineitem").column("l_orderkey").values
        assert lkeys.min() >= 1
        assert lkeys.max() <= tpch_db.table("orders").nrows

    def test_every_order_has_lineitems(self, tpch_db):
        lkeys = set(np.unique(tpch_db.table("lineitem").column("l_orderkey").values).tolist())
        assert len(lkeys) == tpch_db.table("orders").nrows

    def test_partsupp_four_suppliers_per_part(self, tpch_db):
        ps = tpch_db.table("partsupp")
        counts = np.bincount(ps.column("ps_partkey").values)
        assert (counts[1:] == 4).all()
        pairs = set(zip(ps.column("ps_partkey").values.tolist(),
                        ps.column("ps_suppkey").values.tolist()))
        assert len(pairs) == ps.nrows  # (part, supp) pairs are unique

    def test_lineitem_supplier_pairs_in_partsupp(self, tpch_db):
        ps = tpch_db.table("partsupp")
        pairs = set(zip(ps.column("ps_partkey").values.tolist(),
                        ps.column("ps_suppkey").values.tolist()))
        li = tpch_db.table("lineitem")
        lp = zip(li.column("l_partkey").values.tolist(),
                 li.column("l_suppkey").values.tolist())
        assert all(pair in pairs for pair in lp)

    def test_customers_divisible_by_three_have_no_orders(self, tpch_db):
        custkeys = tpch_db.table("orders").column("o_custkey").values
        assert (custkeys % 3 != 0).all()

    def test_nation_region_mapping(self, tpch_db):
        regions = tpch_db.table("nation").column("n_regionkey").values
        assert regions.min() >= 0 and regions.max() <= 4


class TestValueDistributions:
    def test_quantity_range(self, tpch_db):
        q = tpch_db.table("lineitem").column("l_quantity").values
        assert q.min() >= 1 and q.max() <= 50

    def test_discount_and_tax_ranges(self, tpch_db):
        li = tpch_db.table("lineitem")
        assert 0 <= li.column("l_discount").values.min()
        assert li.column("l_discount").values.max() <= 0.10 + 1e-9
        assert li.column("l_tax").values.max() <= 0.08 + 1e-9

    def test_date_derivations(self, tpch_db):
        li = tpch_db.table("lineitem")
        orders = tpch_db.table("orders")
        odate = orders.column("o_orderdate").values
        okey_to_date = dict(zip(orders.column("o_orderkey").values.tolist(), odate.tolist()))
        lkeys = li.column("l_orderkey").values
        base = np.array([okey_to_date[k] for k in lkeys.tolist()])
        ship = li.column("l_shipdate").values
        receipt = li.column("l_receiptdate").values
        commit = li.column("l_commitdate").values
        assert (ship > base).all()
        assert (ship - base <= 121).all()
        assert (receipt > ship).all()
        assert (receipt - ship <= 30).all()
        assert (commit - base >= 30).all() and (commit - base <= 90).all()

    def test_returnflag_consistent_with_receiptdate(self, tpch_db):
        li = tpch_db.table("lineitem")
        receipt = li.column("l_receiptdate").values
        flags = np.asarray(li.column("l_returnflag").to_list())
        assert set(flags[receipt > CURRENT_DATE]) == {"N"}
        assert set(flags[receipt <= CURRENT_DATE]) <= {"A", "R"}

    def test_linestatus_consistent_with_shipdate(self, tpch_db):
        li = tpch_db.table("lineitem")
        ship = li.column("l_shipdate").values
        status = np.asarray(li.column("l_linestatus").to_list())
        assert set(status[ship > CURRENT_DATE]) == {"O"}
        assert set(status[ship <= CURRENT_DATE]) == {"F"}

    def test_orderstatus_derived_from_lines(self, tpch_db):
        li = tpch_db.table("lineitem")
        orders = tpch_db.table("orders")
        status = np.asarray(li.column("l_linestatus").to_list())
        open_count = {}
        total_count = {}
        for key, st in zip(li.column("l_orderkey").values.tolist(), status):
            total_count[key] = total_count.get(key, 0) + 1
            if st == "O":
                open_count[key] = open_count.get(key, 0) + 1
        o_status = orders.column("o_orderstatus").to_list()
        for key, st in zip(orders.column("o_orderkey").values.tolist(), o_status):
            opened = open_count.get(key, 0)
            if opened == 0:
                assert st == "F"
            elif opened == total_count[key]:
                assert st == "O"
            else:
                assert st == "P"

    def test_totalprice_matches_lineitems(self, tpch_db):
        li = tpch_db.table("lineitem")
        price = (li.column("l_extendedprice").values
                 * (1.0 + li.column("l_tax").values)
                 * (1.0 - li.column("l_discount").values))
        sums = np.bincount(li.column("l_orderkey").values, weights=price,
                           minlength=tpch_db.table("orders").nrows + 1)[1:]
        total = tpch_db.table("orders").column("o_totalprice").values
        assert np.allclose(total, sums, atol=0.01)

    def test_brand_format(self, tpch_db):
        brands = set(tpch_db.table("part").column("p_brand").to_list())
        assert all(re.match(r"^Brand#[1-5][1-5]$", b) for b in brands)

    def test_phone_country_code_is_nationkey_plus_10(self, tpch_db):
        cust = tpch_db.table("customer")
        phones = cust.column("c_phone").to_list()
        nations = cust.column("c_nationkey").values
        for phone, nation in zip(phones[:200], nations[:200]):
            assert phone.startswith(f"{nation + 10}-")

    def test_mktsegment_domain(self, tpch_db):
        segments = set(tpch_db.table("customer").column("c_mktsegment").to_list())
        assert segments <= {"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"}

    def test_special_requests_frequency(self, tpch_db):
        comments = tpch_db.table("orders").column("o_comment").to_list()
        frac = sum(bool(re.search("special.*requests", c)) for c in comments) / len(comments)
        assert 0.002 < frac < 0.03  # Q13 must exclude a small, nonzero slice

    def test_complaints_suppliers_exist_but_rare(self, tpch_db):
        comments = tpch_db.table("supplier").column("s_comment").to_list()
        n = sum(bool(re.search("Customer.*Complaints", c)) for c in comments)
        assert 1 <= n <= len(comments) // 10

    def test_retailprice_formula(self, tpch_db):
        part = tpch_db.table("part")
        keys = part.column("p_partkey").values
        expected = (90000 + (keys // 10) % 20001 + 100 * (keys % 1000)) / 100.0
        assert np.allclose(part.column("p_retailprice").values, expected)

    def test_extendedprice_is_qty_times_retail(self, tpch_db):
        li = tpch_db.table("lineitem")
        part = tpch_db.table("part")
        retail = part.column("p_retailprice").values
        expected = li.column("l_quantity").values * retail[li.column("l_partkey").values - 1]
        assert np.allclose(li.column("l_extendedprice").values, expected, atol=0.01)
