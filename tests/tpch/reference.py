"""Independent naive reimplementations of the chokepoint queries.

These deliberately avoid the engine: each works on decoded numpy arrays
with straightforward (slow) logic, giving the test suite a second,
structurally different path to the same answers.
"""

from __future__ import annotations

import re
from collections import defaultdict

import numpy as np

from repro.engine.types import date_to_days


def _arrays(db, table, *columns):
    tab = db.table(table)
    return [np.asarray(tab.column(c).to_list(), dtype=object)
            if tab.column(c).dtype.name == "string"
            else tab.column(c).values
            for c in columns]


def q01(db, cutoff="1998-09-02"):
    flag, status = _arrays(db, "lineitem", "l_returnflag", "l_linestatus")
    li = db.table("lineitem")
    ship = li.column("l_shipdate").values
    qty = li.column("l_quantity").values
    price = li.column("l_extendedprice").values
    disc = li.column("l_discount").values
    tax = li.column("l_tax").values
    mask = ship <= date_to_days(cutoff)
    groups = defaultdict(lambda: [0.0, 0.0, 0.0, 0.0, 0])
    for i in np.flatnonzero(mask):
        g = groups[(flag[i], status[i])]
        g[0] += qty[i]
        g[1] += price[i]
        g[2] += price[i] * (1 - disc[i])
        g[3] += price[i] * (1 - disc[i]) * (1 + tax[i])
        g[4] += 1
    out = []
    for (f, s), (sq, sp, sd, sc, n) in sorted(groups.items()):
        out.append((f, s, sq, sp, sd, sc, sq / n, sp / n, n))
    return out


def q06(db, start="1994-01-01", end="1995-01-01", discount=0.06, quantity=24):
    li = db.table("lineitem")
    ship = li.column("l_shipdate").values
    qty = li.column("l_quantity").values
    price = li.column("l_extendedprice").values
    disc = li.column("l_discount").values
    mask = (
        (ship >= date_to_days(start))
        & (ship < date_to_days(end))
        & (disc >= discount - 0.011)
        & (disc <= discount + 0.011)
        & (qty < quantity)
    )
    return float((price[mask] * disc[mask]).sum())


def q04(db, start="1993-07-01", end="1993-10-01"):
    orders = db.table("orders")
    li = db.table("lineitem")
    late_orders = set(
        li.column("l_orderkey").values[
            li.column("l_commitdate").values < li.column("l_receiptdate").values
        ].tolist()
    )
    odate = orders.column("o_orderdate").values
    okey = orders.column("o_orderkey").values
    prio = orders.column("o_orderpriority").to_list()
    mask = (odate >= date_to_days(start)) & (odate < date_to_days(end))
    counts = defaultdict(int)
    for i in np.flatnonzero(mask):
        if okey[i] in late_orders:
            counts[prio[i]] += 1
    return sorted(counts.items())


def q13(db, word1="special", word2="requests"):
    orders = db.table("orders")
    pattern = re.compile(f".*{word1}.*{word2}.*")
    keep = [not pattern.match(c) for c in orders.column("o_comment").to_list()]
    per_customer = defaultdict(int)
    custkeys = orders.column("o_custkey").values
    for i, ok in enumerate(keep):
        if ok:
            per_customer[custkeys[i]] += 1
    n_customers = db.table("customer").nrows
    counts = defaultdict(int)
    for key in db.table("customer").column("c_custkey").values.tolist():
        counts[per_customer.get(key, 0)] += 1
    return sorted(counts.items(), key=lambda kv: (-kv[1], -kv[0]))


def q03(db, segment="BUILDING", date="1995-03-15"):
    cutoff = date_to_days(date)
    cust = db.table("customer")
    building = {
        key
        for key, seg in zip(
            cust.column("c_custkey").values.tolist(),
            cust.column("c_mktsegment").to_list(),
        )
        if seg == segment
    }
    orders = db.table("orders")
    order_info = {}
    for key, custkey, odate, prio in zip(
        orders.column("o_orderkey").values.tolist(),
        orders.column("o_custkey").values.tolist(),
        orders.column("o_orderdate").values.tolist(),
        orders.column("o_shippriority").values.tolist(),
    ):
        if custkey in building and odate < cutoff:
            order_info[key] = (odate, prio)
    li = db.table("lineitem")
    revenue = defaultdict(float)
    for okey, ship, price, disc in zip(
        li.column("l_orderkey").values.tolist(),
        li.column("l_shipdate").values.tolist(),
        li.column("l_extendedprice").values.tolist(),
        li.column("l_discount").values.tolist(),
    ):
        if okey in order_info and ship > cutoff:
            revenue[okey] += price * (1 - disc)
    rows = [
        (okey, order_info[okey][0], order_info[okey][1], rev)
        for okey, rev in revenue.items()
    ]
    rows.sort(key=lambda r: (-r[3], r[1]))
    return rows[:10]


def q05(db, region="ASIA", start="1994-01-01", end="1995-01-01"):
    nations = db.table("nation")
    regions = db.table("region")
    region_key = [
        k for k, name in zip(regions.column("r_regionkey").values.tolist(),
                             regions.column("r_name").to_list())
        if name == region
    ][0]
    nation_names = {}
    for nk, name, rk in zip(
        nations.column("n_nationkey").values.tolist(),
        nations.column("n_name").to_list(),
        nations.column("n_regionkey").values.tolist(),
    ):
        if rk == region_key:
            nation_names[nk] = name
    cust_nation = dict(zip(
        db.table("customer").column("c_custkey").values.tolist(),
        db.table("customer").column("c_nationkey").values.tolist(),
    ))
    supp_nation = dict(zip(
        db.table("supplier").column("s_suppkey").values.tolist(),
        db.table("supplier").column("s_nationkey").values.tolist(),
    ))
    orders = db.table("orders")
    lo, hi = date_to_days(start), date_to_days(end)
    order_cust = {}
    for okey, ckey, odate in zip(
        orders.column("o_orderkey").values.tolist(),
        orders.column("o_custkey").values.tolist(),
        orders.column("o_orderdate").values.tolist(),
    ):
        if lo <= odate < hi:
            order_cust[okey] = ckey
    li = db.table("lineitem")
    revenue = defaultdict(float)
    for okey, skey, price, disc in zip(
        li.column("l_orderkey").values.tolist(),
        li.column("l_suppkey").values.tolist(),
        li.column("l_extendedprice").values.tolist(),
        li.column("l_discount").values.tolist(),
    ):
        ckey = order_cust.get(okey)
        if ckey is None:
            continue
        c_nation = cust_nation[ckey]
        if supp_nation[skey] == c_nation and c_nation in nation_names:
            revenue[nation_names[c_nation]] += price * (1 - disc)
    return sorted(revenue.items(), key=lambda kv: -kv[1])


def q14(db, start="1995-09-01", end="1995-10-01"):
    li = db.table("lineitem")
    part = db.table("part")
    types = part.column("p_type").to_list()
    is_promo = np.asarray([t.startswith("PROMO") for t in types])
    ship = li.column("l_shipdate").values
    mask = (ship >= date_to_days(start)) & (ship < date_to_days(end))
    price = li.column("l_extendedprice").values
    disc = li.column("l_discount").values
    pkeys = li.column("l_partkey").values
    rev = price[mask] * (1 - disc[mask])
    promo = rev[is_promo[pkeys[mask] - 1]].sum()
    return 100.0 * float(promo) / float(rev.sum())


def q19(db):
    li = db.table("lineitem")
    part = db.table("part")
    brand = np.asarray(part.column("p_brand").to_list(), dtype=object)
    container = np.asarray(part.column("p_container").to_list(), dtype=object)
    size = part.column("p_size").values
    qty = li.column("l_quantity").values
    price = li.column("l_extendedprice").values
    disc = li.column("l_discount").values
    mode = np.asarray(li.column("l_shipmode").to_list(), dtype=object)
    instruct = np.asarray(li.column("l_shipinstruct").to_list(), dtype=object)
    pk = li.column("l_partkey").values - 1

    common = np.isin(mode, ["AIR", "AIR REG"]) & (instruct == "DELIVER IN PERSON")
    sm = {"SM CASE", "SM BOX", "SM PACK", "SM PKG"}
    med = {"MED BAG", "MED BOX", "MED PKG", "MED PACK"}
    lg = {"LG CASE", "LG BOX", "LG PACK", "LG PKG"}
    total = 0.0
    for i in np.flatnonzero(common):
        p = pk[i]
        if (brand[p] == "Brand#12" and container[p] in sm and 1 <= qty[i] <= 11
                and 1 <= size[p] <= 5):
            total += price[i] * (1 - disc[i])
        elif (brand[p] == "Brand#23" and container[p] in med and 10 <= qty[i] <= 20
                and 1 <= size[p] <= 10):
            total += price[i] * (1 - disc[i])
        elif (brand[p] == "Brand#34" and container[p] in lg and 20 <= qty[i] <= 30
                and 1 <= size[p] <= 15):
            total += price[i] * (1 - disc[i])
    return total
