"""Every SQL-text TPC-H query must produce the same answer as its
builder-plan reference implementation."""

import math

import pytest

from repro.engine import execute
from repro.tpch import get_query
from repro.tpch.sqltext import SQL_QUERIES, SQL_QUERY_NUMBERS, build_from_sql


class TestSqlTextRegistry:
    def test_covers_all_queries(self):
        assert set(SQL_QUERY_NUMBERS) == set(range(1, 23))

    def test_unsupported_query_raises_helpfully(self, tpch_db):
        with pytest.raises(KeyError, match="no SQL text"):
            build_from_sql(tpch_db, 99)

    @pytest.mark.parametrize("number", SQL_QUERY_NUMBERS)
    def test_sql_matches_builder(self, tpch_db, tpch_params, number):
        via_sql = execute(tpch_db, build_from_sql(tpch_db, number, tpch_params))
        via_builder = execute(tpch_db, get_query(number).build(tpch_db, tpch_params))
        assert len(via_sql) == len(via_builder), number
        for sql_row, builder_row in zip(via_sql.rows, via_builder.rows):
            assert len(sql_row) == len(builder_row)
            for a, b in zip(sql_row, builder_row):
                if isinstance(a, float) or isinstance(b, float):
                    af, bf = float(a), float(b)
                    if math.isnan(af) and math.isnan(bf):
                        continue
                    assert af == pytest.approx(bf, rel=1e-9), number
                else:
                    assert a == b, number
