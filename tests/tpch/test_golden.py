"""Golden-result regression pins: all 22 queries at SF 0.01, seed 42.

Any behavioural drift in dbgen, the expression evaluator, an operator,
or a query definition changes a checksum here. If a change is
*intentional*, regenerate the file (see its header note in git history /
the generation snippet in docs/GUIDE.md) and review the diff.
"""

import json
import math
from pathlib import Path

import pytest

from repro.engine import execute
from repro.tpch import ALL_QUERY_NUMBERS, get_query

GOLDEN = json.loads(
    (Path(__file__).parent / "data" / "golden_sf001_seed42.json").read_text()
)


def _numeric_sum(rows) -> float:
    total = 0.0
    for row in rows:
        for value in row:
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                if isinstance(value, float) and math.isnan(value):
                    continue
                total += float(value)
    return total


class TestGoldenResults:
    def test_golden_file_covers_all_queries(self):
        assert set(GOLDEN) == {str(n) for n in ALL_QUERY_NUMBERS}

    @pytest.mark.parametrize("number", ALL_QUERY_NUMBERS)
    def test_query_matches_golden(self, tpch_db, tpch_params, number):
        expected = GOLDEN[str(number)]
        result = execute(tpch_db, get_query(number).build(tpch_db, tpch_params))
        assert len(result) == expected["rows"]
        assert result.column_names == expected["columns"]
        assert _numeric_sum(result.rows) == pytest.approx(
            expected["numeric_sum"], rel=1e-6, abs=0.02
        )
        if expected["first_row"]:
            assert [str(v) for v in result.rows[0]] == expected["first_row"]
