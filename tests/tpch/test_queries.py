"""All 22 TPC-H queries: execution, output schemas, semantic spot checks,
and cross-validation against independent naive reimplementations."""

import math

import pytest

from repro.engine import execute
from repro.tpch import ALL_QUERY_NUMBERS, CHOKEPOINTS, QUERIES, get_query

from . import reference


class TestRegistry:
    def test_all_22_registered(self):
        assert set(QUERIES) == set(range(1, 23))

    def test_chokepoints_subset(self):
        assert CHOKEPOINTS == (1, 3, 4, 5, 6, 13, 14, 19)
        assert set(CHOKEPOINTS) <= set(QUERIES)

    def test_unknown_query_number(self):
        with pytest.raises(KeyError, match="1-22"):
            get_query(23)

    def test_lineitem_flags(self):
        assert not QUERIES[2].uses_lineitem
        assert not QUERIES[11].uses_lineitem
        assert not QUERIES[13].uses_lineitem
        assert not QUERIES[16].uses_lineitem
        assert not QUERIES[22].uses_lineitem
        assert QUERIES[1].uses_lineitem
        assert QUERIES[6].uses_lineitem


class TestAllQueriesExecute:
    @pytest.mark.parametrize("number", ALL_QUERY_NUMBERS)
    def test_runs_and_profiles(self, tpch_db, tpch_params, number):
        result = execute(tpch_db, get_query(number).build(tpch_db, tpch_params))
        assert result.profile.operators, f"Q{number} produced no profile"
        assert result.profile.seq_bytes > 0
        # Global-aggregate queries always return exactly one row.
        if number in (6, 14, 17, 19):
            assert len(result) == 1


class TestOutputSchemas:
    def test_q1_columns(self, tpch_db, tpch_params):
        result = execute(tpch_db, get_query(1).build(tpch_db, tpch_params))
        assert result.column_names == [
            "l_returnflag", "l_linestatus", "sum_qty", "sum_base_price",
            "sum_disc_price", "sum_charge", "avg_qty", "avg_price",
            "avg_disc", "count_order",
        ]
        assert len(result) == 4  # AF, NF, NO, RF at the test cutoff

    def test_q3_limit_10(self, tpch_db, tpch_params):
        result = execute(tpch_db, get_query(3).build(tpch_db, tpch_params))
        assert len(result) <= 10
        revenue = result.column("revenue")
        assert revenue == sorted(revenue, reverse=True)

    def test_q4_priorities_sorted(self, tpch_db, tpch_params):
        result = execute(tpch_db, get_query(4).build(tpch_db, tpch_params))
        priorities = result.column("o_orderpriority")
        assert priorities == sorted(priorities)
        assert len(priorities) == 5

    def test_q10_top20_by_revenue(self, tpch_db, tpch_params):
        result = execute(tpch_db, get_query(10).build(tpch_db, tpch_params))
        assert len(result) == 20
        revenue = result.column("revenue")
        assert revenue == sorted(revenue, reverse=True)

    def test_q16_counts_descending(self, tpch_db, tpch_params):
        result = execute(tpch_db, get_query(16).build(tpch_db, tpch_params))
        counts = result.column("supplier_cnt")
        assert counts == sorted(counts, reverse=True)

    def test_q22_seven_country_codes(self, tpch_db, tpch_params):
        result = execute(tpch_db, get_query(22).build(tpch_db, tpch_params))
        codes = result.column("cntrycode")
        assert codes == sorted(codes)
        assert set(codes) <= {"13", "31", "23", "29", "30", "18", "17"}
        assert all(n > 0 for n in result.column("numcust"))


class TestSemantics:
    def test_q1_covers_nearly_all_lineitems(self, tpch_db, tpch_params):
        result = execute(tpch_db, get_query(1).build(tpch_db, tpch_params))
        counted = sum(result.column("count_order"))
        total = tpch_db.table("lineitem").nrows
        assert counted / total > 0.95  # the spec's ~98% coverage

    def test_q2_min_cost_property(self, tpch_db, tpch_params):
        """Every returned supplier must offer the region-wide minimum cost
        for its part (spot-check via re-derivation)."""
        result = execute(tpch_db, get_query(2).build(tpch_db, tpch_params))
        assert result.column_names[0] == "s_acctbal"
        balances = result.column("s_acctbal")
        assert balances == sorted(balances, reverse=True)

    def test_q6_matches_manual_computation(self, tpch_db, tpch_params):
        result = execute(tpch_db, get_query(6).build(tpch_db, tpch_params))
        assert result.scalar() == pytest.approx(reference.q06(tpch_db), rel=1e-9)

    def test_q11_threshold_scales_with_sf(self, tpch_db):
        loose = execute(tpch_db, get_query(11).build(tpch_db, {"sf": 1.0}))
        tight = execute(tpch_db, get_query(11).build(tpch_db, {"fraction": 0.05}))
        assert len(loose) >= len(tight)

    def test_q12_two_ship_modes(self, tpch_db, tpch_params):
        result = execute(tpch_db, get_query(12).build(tpch_db, tpch_params))
        assert result.column("l_shipmode") == ["MAIL", "SHIP"]
        assert all(v >= 0 for v in result.column("high_line_count"))

    def test_q13_largest_group_is_zero_orders(self, tpch_db, tpch_params):
        """A third of customers never order, so c_count=0 is the biggest
        distribution bucket."""
        result = execute(tpch_db, get_query(13).build(tpch_db, tpch_params))
        top = result.rows[0]
        assert top[0] == 0
        assert top[1] >= tpch_db.table("customer").nrows // 3

    def test_q14_is_percentage(self, tpch_db, tpch_params):
        value = execute(tpch_db, get_query(14).build(tpch_db, tpch_params)).scalar()
        assert 0.0 < value < 100.0

    def test_q15_supplier_has_max_revenue(self, tpch_db, tpch_params):
        result = execute(tpch_db, get_query(15).build(tpch_db, tpch_params))
        assert len(result) >= 1
        revenues = result.column("total_revenue")
        assert len(set(revenues)) == 1  # all returned rows tie at the max

    def test_q17_avg_yearly_nonnegative(self, tpch_db, tpch_params):
        value = execute(tpch_db, get_query(17).build(tpch_db, tpch_params)).scalar()
        assert value >= 0.0 or math.isnan(value)

    def test_q21_waiting_supplier_invariant(self, tpch_db, tpch_params):
        result = execute(tpch_db, get_query(21).build(tpch_db, tpch_params))
        assert all(n >= 1 for n in result.column("numwait"))

    def test_q22_customers_have_no_orders(self, tpch_db, tpch_params):
        """Anti-join check: recompute which country codes can appear."""
        result = execute(tpch_db, get_query(22).build(tpch_db, tpch_params))
        ordering_customers = set(
            tpch_db.table("orders").column("o_custkey").values.tolist()
        )
        all_customers = set(tpch_db.table("customer").column("c_custkey").values.tolist())
        assert all_customers - ordering_customers  # some exist to be counted
        assert sum(result.column("numcust")) <= len(all_customers - ordering_customers)


class TestAgainstReference:
    def test_q01(self, tpch_db, tpch_params):
        result = execute(tpch_db, get_query(1).build(tpch_db, tpch_params))
        expected = reference.q01(tpch_db)
        assert len(result) == len(expected)
        for row, exp in zip(result.rows, expected):
            assert row[0] == exp[0] and row[1] == exp[1]
            assert row[2] == pytest.approx(exp[2])          # sum_qty
            assert row[3] == pytest.approx(exp[3])          # sum_base_price
            assert row[4] == pytest.approx(exp[4])          # sum_disc_price
            assert row[5] == pytest.approx(exp[5])          # sum_charge
            assert row[6] == pytest.approx(exp[6])          # avg_qty
            assert row[7] == pytest.approx(exp[7])          # avg_price
            assert row[9] == exp[8]                         # count_order

    def test_q03(self, tpch_db, tpch_params):
        result = execute(tpch_db, get_query(3).build(tpch_db, tpch_params))
        expected = reference.q03(tpch_db)
        assert len(result) == len(expected)
        for row, exp in zip(result.rows, expected):
            assert row[0] == exp[0]                       # l_orderkey
            assert row[3] == pytest.approx(exp[3])        # revenue

    def test_q04(self, tpch_db, tpch_params):
        result = execute(tpch_db, get_query(4).build(tpch_db, tpch_params))
        assert [(p, c) for p, c in zip(result.column("o_orderpriority"),
                                       result.column("order_count"))] == reference.q04(tpch_db)

    def test_q05(self, tpch_db, tpch_params):
        result = execute(tpch_db, get_query(5).build(tpch_db, tpch_params))
        expected = reference.q05(tpch_db)
        assert len(result) == len(expected)
        for row, exp in zip(result.rows, expected):
            assert row[0] == exp[0]
            assert row[1] == pytest.approx(exp[1])

    def test_q13(self, tpch_db, tpch_params):
        result = execute(tpch_db, get_query(13).build(tpch_db, tpch_params))
        ours = list(zip(result.column("c_count"), result.column("custdist")))
        assert ours == reference.q13(tpch_db)

    def test_q14(self, tpch_db, tpch_params):
        result = execute(tpch_db, get_query(14).build(tpch_db, tpch_params))
        assert result.scalar() == pytest.approx(reference.q14(tpch_db), rel=1e-9)

    def test_q19(self, tpch_db, tpch_params):
        result = execute(tpch_db, get_query(19).build(tpch_db, tpch_params))
        assert result.scalar() == pytest.approx(reference.q19(tpch_db), rel=1e-9)
