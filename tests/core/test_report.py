"""Full-report rendering tests."""

import pytest

from repro.core import ExperimentStudy, StudyConfig
from repro.core.report import full_report


@pytest.fixture(scope="module")
def report():
    study = ExperimentStudy(StudyConfig(base_sf=0.01, cluster_sizes=(4, 24)))
    return full_report(study)


class TestFullReport:
    def test_contains_every_artifact_section(self, report):
        for section in (
            "Table I — hardware",
            "Fig. 2 — microbenchmarks",
            "Table II — TPC-H SF 1",
            "Table III — TPC-H SF 10",
            "Fig. 4 — execution strategies",
            "Figs. 5-7 — normalized comparisons",
        ):
            assert section in report, section

    def test_all_platforms_listed(self, report):
        for key in ("op-e5", "op-gold", "pi3b+", "c6g.metal"):
            assert key in report

    def test_paper_comparison_statistics_present(self, report):
        assert "vs paper: median factor" in report
        assert "rank corr" in report

    def test_wimpi_rows_present(self, report):
        assert "pi3b+ x4" in report and "pi3b+ x24" in report

    def test_network_figure(self, report):
        assert "220 Mbps" in report

    def test_extensions_optional(self, report):
        assert "Extensions" not in report  # default off

    def test_extensions_included_when_asked(self):
        study = ExperimentStudy(StudyConfig(base_sf=0.01, cluster_sizes=(4,)))
        text = full_report(study, include_extensions=True)
        assert "compression: lineitem ratio" in text
        assert "NAM:" in text
        assert "power gating:" in text
