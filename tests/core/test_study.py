"""Study-harness tests: experiment registry, and the paper's Section III
claims evaluated on our reproduced figures (5, 6, 7) and Table III."""

import statistics

import pytest

from repro.core import EXPERIMENT_IDS, ExperimentStudy, StudyConfig
from repro.hardware import CLOUD, ON_PREMISES, PI_KEY
from repro.tpch import CHOKEPOINTS


@pytest.fixture(scope="module")
def study():
    return ExperimentStudy(StudyConfig(base_sf=0.02, cluster_sizes=(4, 8, 12, 16, 20, 24)))


class TestHarness:
    def test_experiment_registry(self, study):
        assert len(EXPERIMENT_IDS) == 10
        with pytest.raises(KeyError):
            study.run("fig99")

    def test_table1_rows(self, study):
        rows = study.table1()
        assert len(rows) == 10
        names = [r["name"] for r in rows]
        assert "pi3b+" in names and "op-e5" in names

    def test_table2_dimensions(self, study):
        table2 = study.table2()
        assert len(table2) == 10
        assert all(len(per) == 22 for per in table2.values())

    def test_table3_dimensions(self, study):
        data = study.table3()
        assert len(data["servers"]) == 9
        assert set(data["wimpi"]) == {4, 8, 12, 16, 20, 24}
        assert all(set(per) == set(CHOKEPOINTS) for per in data["wimpi"].values())

    def test_results_cached(self, study):
        assert study.table2() is study.table2()

    def test_run_all_returns_every_id(self, study):
        results = study.run_all()
        assert set(results) == set(EXPERIMENT_IDS)


class TestFig3Claims:
    def test_sf1_pi_never_faster_than_best_server(self, study):
        speedups = study.fig3_sf1()
        medians = [statistics.median(per.values()) for per in speedups.values()]
        assert all(m < 1.0 for m in medians)

    def test_sf10_wimpi_beats_a_server_somewhere(self, study):
        """'in five of the eight tested queries it can even outperform at
        least one of the comparison points' — require at least 3 with
        model slack."""
        speedups = study.fig3_sf10()[24]
        winning_queries = {
            q
            for per in speedups.values()
            for q, s in per.items()
            if s > 1.0
        }
        assert len(winning_queries) >= 3

    def test_sf10_large_clusters_more_competitive(self, study):
        small = study.fig3_sf10()[4]
        large = study.fig3_sf10()[24]
        for server in small:
            for q in (1, 3, 5):
                assert large[server][q] > small[server][q]


class TestFig5Claims:
    def test_sf1_pi_always_beats_servers_on_msrp(self, study):
        """'For SF 1, the single Raspberry Pi 3B+ always outperforms the
        traditional servers' in MSRP-normalized terms."""
        fig5 = study.fig5()
        for server in ON_PREMISES:
            assert all(v > 1.0 for v in fig5["sf1"][server].values()), server

    def test_sf1_median_improvement_band(self, study):
        """Paper medians: 22x over op-e5, 29x over op-gold (slack 5-80)."""
        fig5 = study.fig5()
        for server in ON_PREMISES:
            median = statistics.median(fig5["sf1"][server].values())
            assert 5 < median < 80, (server, median)

    def test_sf10_q13_never_breaks_even(self, study):
        """'in the case of Q13, the traditional servers are always
        better, irrespective of cluster size'."""
        fig5 = study.fig5()
        for server in ON_PREMISES:
            for nodes, per in fig5["sf10"][server].items():
                assert per[13] < 1.0, (server, nodes)

    def test_sf10_most_queries_eventually_break_even(self, study):
        """WIMPI shows improvements on most of the 8 queries once enough
        nodes wipe out the thrash cliff."""
        fig5 = study.fig5()
        for server in ON_PREMISES:
            at_24 = fig5["sf10"][server][24]
            winners = [q for q, v in at_24.items() if v > 1.0]
            assert len(winners) >= 5, (server, winners)

    def test_sf10_small_clusters_below_break_even_on_thrashy_queries(self, study):
        fig5 = study.fig5()
        at_4 = fig5["sf10"]["op-e5"][4]
        assert at_4[1] < 1.0 and at_4[3] < 1.0 and at_4[5] < 1.0


class TestFig6Claims:
    def test_pi_beats_every_cloud_instance_on_every_query(self, study):
        """'the Raspberry Pi 3B+ outperforms all Cloud servers for all
        queries in both settings'. Known deviation: our model
        under-predicts the servers' Q13 runtime (see EXPERIMENTS.md), so
        the paper's thinnest SF 10 margin (Q13, 3-10x) lands below 1
        here; every other query must win outright."""
        fig6 = study.fig6()
        for server in CLOUD:
            assert all(v > 1.0 for v in fig6["sf1"][server].values()), server
            for nodes, per in fig6["sf10"][server].items():
                non_q13 = {q: v for q, v in per.items() if q != 13}
                assert all(v > 1.0 for v in non_q13.values()), (server, nodes)

    def test_sf1_improvements_reach_thousands(self, study):
        fig6 = study.fig6()
        best = max(v for server in CLOUD for v in fig6["sf1"][server].values())
        assert best > 1000

    def test_q13_worst_case_order_of_magnitude(self, study):
        """Paper: Q13 at 24 nodes still wins 3-10x on hourly cost. Our
        server-side Q13 runtime is under-predicted ~3-5x (EXPERIMENTS.md),
        so we assert the margin stays within one order of magnitude of
        break-even rather than above it."""
        fig6 = study.fig6()
        for server in CLOUD:
            assert fig6["sf10"][server][24][13] > 0.1


class TestFig7Claims:
    def test_sf1_energy_band(self, study):
        """'between 2-22x better energy efficiency' (slack 1.5-40)."""
        fig7 = study.fig7()
        values = [v for server in ON_PREMISES for v in fig7["sf1"][server].values()]
        assert min(values) > 1.0
        assert max(values) < 45

    def test_sf1_median_energy_improvement(self, study):
        """'a median improvement of around 10x' (slack 3-25)."""
        fig7 = study.fig7()
        medians = [
            statistics.median(fig7["sf1"][server].values()) for server in ON_PREMISES
        ]
        assert all(3 < m < 25 for m in medians)

    def test_sf10_wimpi_better_on_majority(self, study):
        """'better energy efficiency on six of the eight queries' —
        require at least 4 at the best cluster size with model slack."""
        fig7 = study.fig7()
        for server in ON_PREMISES:
            best_per_query = {
                q: max(fig7["sf10"][server][n][q] for n in (4, 8, 12, 16, 20, 24))
                for q in CHOKEPOINTS
            }
            winners = [q for q, v in best_per_query.items() if v > 1.0]
            assert len(winners) >= 4, (server, best_per_query)

    def test_selective_queries_best_energy(self, study):
        """'highly selective queries (e.g., Q6) ... show the best
        improvement in energy consumption' — Q6 beats Q1 at SF 1."""
        fig7 = study.fig7()
        for server in ON_PREMISES:
            assert fig7["sf1"][server][6] > fig7["sf1"][server][1]
