"""Extension-experiment tests: compression study, NAM study,
energy-proportionality study."""

import pytest

from repro.core.extensions import compression_study, nam_study, proportionality_study


@pytest.fixture(scope="module")
def compression():
    return compression_study(base_sf=0.01, queries=(1, 6))


class TestCompressionStudy:
    def test_ratio_reported(self, compression):
        assert compression["ratio"] > 2.0

    def test_pi_speedups_exceed_server(self, compression):
        by_query = {}
        for r in compression["single_node"]:
            by_query.setdefault(r.query, {})[r.platform] = r.speedup
        for query, per in by_query.items():
            assert per["pi3b+"] > per["op-e5"], query

    def test_cliff_softens(self, compression):
        cliff = compression["cliff"]
        assert cliff["compressed"]["seconds"] < cliff["plain"]["seconds"]
        assert cliff["compressed"]["pressure"] < cliff["plain"]["pressure"]


class TestNamStudy:
    @pytest.fixture(scope="class")
    def nam(self):
        return nam_study(base_sf=0.01, queries=(1, 13))

    def test_nam_fixes_thrash_queries(self, nam):
        for q, row in nam["queries"].items():
            assert row["nam_seconds"] < row["plain_seconds"], q

    def test_offload_counts(self, nam):
        assert nam["queries"][1]["offloaded_nodes"] == 4
        assert nam["queries"][13]["offloaded_nodes"] == 1

    def test_cost_tradeoff_is_visible(self, nam):
        assert nam["nam_msrp"] > nam["plain_msrp"]
        assert nam["nam_power_w"] > nam["plain_power_w"]


class TestProportionalityStudy:
    @pytest.fixture(scope="class")
    def prop(self):
        return proportionality_study()

    def test_scaling_saves_versus_always_on(self, prop):
        assert prop["cluster_scaled_wh"] < prop["cluster_always_on_wh"]
        assert prop["savings_vs_always_on"] > 0.3

    def test_cluster_beats_server_on_bursty_load(self, prop):
        assert prop["cluster_scaled_wh"] < prop["server_wh"]

    def test_custom_trace(self):
        flat = proportionality_study(utilization_trace=[1.0] * 4)
        # At constant full load there is nothing to save.
        assert flat["savings_vs_always_on"] == pytest.approx(0.0)

    def test_idle_trace_near_zero_energy(self):
        idle = proportionality_study(utilization_trace=[0.0] * 4)
        assert idle["cluster_scaled_wh"] == pytest.approx(0.0)
        assert idle["server_wh"] > 0  # the server cannot power off
