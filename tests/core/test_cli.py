"""CLI tests (invoked in-process through repro.cli.main)."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_experiments_registered(self):
        parser = build_parser()
        for experiment_id in ("table2", "fig7", "ext-nam", "dbgen", "query", "list"):
            args = parser.parse_args(
                [experiment_id] + (["--out", "x"] if experiment_id == "dbgen" else [])
                + (["6"] if experiment_id == "query" else [])
            )
            assert args.command == experiment_id

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table2" in out and "ext-compression" in out

    def test_query_with_explain_and_profile(self, capsys):
        assert main(["query", "6", "--sf", "0.005", "--explain", "--profile"]) == 0
        out = capsys.readouterr().out
        assert "Scan lineitem" in out
        assert "Q6: 1 rows" in out
        assert "aggregate" in out  # profile table

    def test_experiment_to_json(self, tmp_path, capsys):
        path = tmp_path / "fig2.json"
        assert main(["fig2", "--json", str(path)]) == 0
        data = json.loads(path.read_text())
        assert data["network_mbps"] == 220.0

    def test_dbgen_writes_csvs(self, tmp_path, capsys):
        out_dir = tmp_path / "tpch"
        assert main(["dbgen", "--sf", "0.002", "--out", str(out_dir)]) == 0
        assert (out_dir / "lineitem.csv").exists()
        assert (out_dir / "nation.csv").exists()

    def test_extension_runs(self, capsys):
        assert main(["ext-proportionality"]) == 0
        out = capsys.readouterr().out
        assert "savings_vs_server" in out

    def test_cluster_command(self, capsys):
        assert main(["cluster", "6", "--nodes", "4", "--base-sf", "0.005"]) == 0
        out = capsys.readouterr().out
        assert "Q6 on 4 nodes" in out and "wall-clock" in out

    def test_cluster_command_with_nam(self, capsys):
        assert main([
            "cluster", "13", "--nodes", "4", "--base-sf", "0.005", "--nam",
        ]) == 0
        out = capsys.readouterr().out
        assert "offloaded fragments" in out

    def test_sql_command(self, capsys):
        assert main([
            "sql", "SELECT COUNT(*) AS n FROM nation", "--sf", "0.005",
        ]) == 0
        out = capsys.readouterr().out
        assert "(25,)" in out

    def test_sql_command_with_explain(self, capsys):
        assert main([
            "sql", "SELECT n_name FROM nation LIMIT 1", "--sf", "0.005", "--explain",
        ]) == 0
        out = capsys.readouterr().out
        assert "Scan nation" in out
