"""Shape tests against the paper's Table III (SF 10, WIMPI)."""

import pytest

from repro.core import ExperimentStudy, StudyConfig, TABLE3_WIMPI_RUNTIMES
from repro.core.paperdata import SF10_QUERIES


@pytest.fixture(scope="module")
def study():
    return ExperimentStudy(StudyConfig(base_sf=0.02))


@pytest.fixture(scope="module")
def wimpi(study):
    return study.table3()["wimpi"]


class TestWimpiShape:
    def test_cliff_queries_jump_10_to_100x(self, wimpi):
        """'we observed extremely poor performance at the initial cluster
        size of four nodes, followed by a huge jump (as much as 10-100x)
        after doubling or tripling the number of nodes' — for Q1/Q3/Q5."""
        jumps = {q: wimpi[4][q] / wimpi[12][q] for q in (1, 3, 5)}
        assert all(j > 5 for j in jumps.values()), jumps
        assert max(jumps.values()) > 10

    def test_q13_exactly_flat(self, wimpi):
        values = [wimpi[n][13] for n in (4, 8, 12, 16, 20, 24)]
        assert max(values) == pytest.approx(min(values))

    def test_q13_magnitude_near_paper(self, wimpi):
        """Paper: 103.6 s on a single thrashing node; ours within 2x."""
        assert 50 < wimpi[24][13] < 210

    def test_q6_q14_diminishing_returns(self, wimpi):
        """'increasing the cluster size beyond a certain point had
        diminishing returns, since network latency becomes the
        bottleneck'."""
        for q in (6, 14):
            gain_early = wimpi[4][q] / wimpi[12][q]
            gain_late = wimpi[16][q] / wimpi[24][q]
            assert gain_late < gain_early, q
            assert gain_late < 1.6, q

    def test_monotone_improvement_on_bound_queries(self, wimpi):
        for q in (1, 3, 4, 5):
            assert wimpi[24][q] < wimpi[8][q] < wimpi[4][q]

    def test_24_node_runtimes_same_order_as_paper(self, wimpi):
        """Every 24-node runtime within ~5x of the published value."""
        for q in SF10_QUERIES:
            ratio = wimpi[24][q] / TABLE3_WIMPI_RUNTIMES[24][q]
            assert 0.2 < ratio < 5.0, (q, ratio)

    def test_wimpi_competitive_with_servers_at_scale(self, study):
        """'With larger cluster sizes, WIMPI can often achieve greater
        than 0.5x the performance of the traditional servers' — require
        at least half the queries at 24 nodes vs op-e5."""
        data = study.table3()
        e5 = data["servers"]["op-e5"]
        at_24 = data["wimpi"][24]
        competitive = [q for q in SF10_QUERIES if e5[q] / at_24[q] > 0.5]
        assert len(competitive) >= 4, competitive

    def test_wimpi_beats_a1_metal_on_scan_queries(self, study):
        """The Graviton1 instance is the weakest comparison point; the
        full cluster should beat it on Q1 (the paper's WIMPI beats
        several platforms there)."""
        data = study.table3()
        assert data["wimpi"][24][1] < data["servers"]["a1.metal"][1]


class TestServersSF10:
    def test_sf10_roughly_10x_sf1(self, study):
        table2 = study.table2()
        servers = study.table3()["servers"]
        for key in ("op-e5", "m5.metal"):
            for q in (1, 6):
                growth = servers[key][q] / table2[key][q]
                assert 5 < growth < 15, (key, q, growth)

    def test_a1_among_slowest_servers_on_q1(self, study):
        """Paper: a1.metal is the slowest on Q1 (2.97 s), z1d next among
        the cloud; our model may swap those two, so assert a1 is in the
        slowest pair."""
        servers = study.table3()["servers"]
        q1 = {k: per[1] for k, per in servers.items()}
        slowest_two = sorted(q1, key=q1.get, reverse=True)[:2]
        assert "a1.metal" in slowest_two
