"""Tests for paper data, shape comparison, profiler, and serialization."""

import json
import math

import pytest

from repro.core import (
    TABLE2_SF1_RUNTIMES,
    TABLE3_SF10_RUNTIMES,
    TABLE3_WIMPI_RUNTIMES,
    TPCHProfiler,
    agreement_on_winner,
    compare_grids,
    geometric_mean_ratio,
    runtimes_to_csv,
    save_json,
    to_jsonable,
)
from repro.core.paperdata import INTERPOLATED_CELLS, SF10_QUERIES


class TestPaperData:
    def test_table2_complete(self):
        assert len(TABLE2_SF1_RUNTIMES) == 10
        for per in TABLE2_SF1_RUNTIMES.values():
            assert set(per) == set(range(1, 23))
            assert all(v > 0 for v in per.values())

    def test_table3_complete(self):
        assert len(TABLE3_SF10_RUNTIMES) == 9
        for per in TABLE3_SF10_RUNTIMES.values():
            assert set(per) == set(SF10_QUERIES)

    def test_wimpi_rows(self):
        assert set(TABLE3_WIMPI_RUNTIMES) == {4, 8, 12, 16, 20, 24}
        # Q13 flat at 103.604 in the paper
        assert all(per[13] == 103.604 for per in TABLE3_WIMPI_RUNTIMES.values())

    def test_known_anchor_cells(self):
        assert TABLE2_SF1_RUNTIMES["op-e5"][1] == 0.161
        assert TABLE2_SF1_RUNTIMES["pi3b+"][13] == 1.771
        assert TABLE3_WIMPI_RUNTIMES[4][1] == 57.814

    def test_interpolated_cells_flagged(self):
        assert ("table2", "m4.16xlarge", 11) in INTERPOLATED_CELLS


class TestCompare:
    def test_identical_grids(self):
        grid = {"a": {1: 1.0, 2: 2.0}, "b": {1: 3.0, 2: 4.0}}
        comparison = compare_grids(grid, grid)
        assert comparison.median_factor == pytest.approx(1.0)
        assert comparison.spearman_like == pytest.approx(1.0)

    def test_scaled_grid_measures_factor(self):
        grid = {"a": {1: 1.0, 2: 2.0}}
        doubled = {"a": {1: 2.0, 2: 4.0}}
        comparison = compare_grids(doubled, grid)
        assert comparison.median_factor == pytest.approx(2.0)
        assert comparison.spearman_like == pytest.approx(1.0)  # order preserved

    def test_disjoint_grids_rejected(self):
        with pytest.raises(ValueError):
            compare_grids({"a": {1: 1.0}}, {"b": {2: 1.0}})

    def test_agreement_on_winner(self):
        published = {"a": {1: 1.0, 2: 9.0}, "b": {1: 5.0, 2: 2.0}}
        perfect = agreement_on_winner(published, published)
        assert perfect == 1.0
        flipped = {"a": {1: 9.0, 2: 1.0}, "b": {1: 2.0, 2: 5.0}}
        assert agreement_on_winner(flipped, published) == 0.0

    def test_geometric_mean_ratio(self):
        assert geometric_mean_ratio({1: 2.0, 2: 8.0}, {1: 1.0, 2: 2.0}) == pytest.approx(
            math.sqrt(8.0)
        )


class TestProfiler:
    def test_caching(self):
        profiler = TPCHProfiler(base_sf=0.005)
        first = profiler.profile(6, 1.0)
        second = profiler.profile(6, 1.0)
        assert first is second

    def test_scaling_factor_applied(self):
        profiler = TPCHProfiler(base_sf=0.005)
        sf1 = profiler.profile(6, 1.0).profile
        sf10 = profiler.profile(6, 10.0).profile
        assert sf10.seq_bytes == pytest.approx(10 * sf1.seq_bytes)

    def test_result_rows_are_real(self):
        profiler = TPCHProfiler(base_sf=0.005)
        profiled = profiler.profile(1, 1.0)
        assert len(profiled.result) >= 3  # Q1's return-flag groups

    def test_db_generated_lazily_once(self):
        profiler = TPCHProfiler(base_sf=0.005)
        assert profiler.db is profiler.db


class TestSerialization:
    def test_to_jsonable_handles_nested(self):
        from repro.engine.profile import OperatorWork

        value = {"a": [OperatorWork("scan", ops=1.0)], 3: (1, 2)}
        out = to_jsonable(value)
        assert out["a"][0]["operator"] == "scan"
        assert out["3"] == [1, 2]
        json.dumps(out)  # must be serializable

    def test_save_json(self, tmp_path):
        path = save_json({"x": 1}, tmp_path / "out.json")
        assert json.loads(path.read_text()) == {"x": 1}

    def test_runtimes_to_csv(self, tmp_path):
        path = runtimes_to_csv({"pi": {1: 0.5, 2: 0.25}}, tmp_path / "t.csv")
        lines = path.read_text().strip().splitlines()
        assert lines[0] == "platform,q1,q2"
        assert lines[1].startswith("pi,0.5")
