"""Claims-registry tests: the full scorecard must pass, and the
machinery must degrade gracefully."""

import pytest

from repro.core import ExperimentStudy, StudyConfig
from repro.core.claims import CLAIMS, Claim, ClaimResult, evaluate_claims


@pytest.fixture(scope="module")
def study():
    return ExperimentStudy(StudyConfig(base_sf=0.02))


class TestRegistry:
    def test_fifteen_claims_registered(self):
        assert len(CLAIMS) == 15
        assert len({c.claim_id for c in CLAIMS}) == 15

    def test_every_paper_section_represented(self):
        sections = {c.claim_id.split("-")[0] for c in CLAIMS}
        assert sections == {"II", "III"}

    def test_all_claims_pass_on_default_study(self, study):
        results = evaluate_claims(study)
        failed = [r for r in results if not r.passed]
        assert not failed, [(r.claim_id, r.detail) for r in failed]

    def test_results_carry_details(self, study):
        results = evaluate_claims(study)
        assert all(isinstance(r, ClaimResult) and r.detail for r in results)

    def test_crashing_check_reports_failure_not_exception(self, study):
        def broken(_):
            raise RuntimeError("boom")

        results = evaluate_claims(
            study, claims=(Claim("X-1", "broken check", broken),)
        )
        assert len(results) == 1
        assert not results[0].passed
        assert "boom" in results[0].detail

    def test_cli_validate_exits_zero(self, capsys):
        from repro.cli import main

        assert main(["validate", "--base-sf", "0.02"]) == 0
        out = capsys.readouterr().out
        assert "15/15 claims reproduced" in out
