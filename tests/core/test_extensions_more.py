"""Additional coverage for extension studies and serialization edges."""

import numpy as np
import pytest

from repro.core.extensions import compression_study, nam_study
from repro.core.results import to_jsonable


class TestCompressionStudyOptions:
    def test_custom_platform_set(self):
        result = compression_study(
            base_sf=0.005, queries=(6,), platforms=("pi3b+", "op-gold"),
        )
        platforms = {r.platform for r in result["single_node"]}
        assert platforms == {"pi3b+", "op-gold"}

    def test_speedup_property(self):
        result = compression_study(base_sf=0.005, queries=(6,))
        for r in result["single_node"]:
            assert r.speedup == pytest.approx(r.plain_seconds / r.compressed_seconds)


class TestNamStudyOptions:
    def test_larger_cluster_offloads_less(self):
        small = nam_study(base_sf=0.005, n_nodes=4, queries=(1,))
        large = nam_study(base_sf=0.005, n_nodes=24, queries=(1,))
        assert (large["queries"][1]["offloaded_nodes"]
                <= small["queries"][1]["offloaded_nodes"])


class TestSerializationEdges:
    def test_numpy_scalars(self):
        out = to_jsonable({"a": np.float64(1.5), "b": np.int32(7)})
        assert out == {"a": 1.5, "b": 7}

    def test_numpy_arrays_fall_back_to_repr(self):
        out = to_jsonable(np.array([1, 2]))
        assert isinstance(out, str)

    def test_none_and_bool(self):
        assert to_jsonable({"x": None, "y": True}) == {"x": None, "y": True}

    def test_nested_tuples_of_dataclasses(self):
        from repro.cluster.reliability import MemoryOutcome

        out = to_jsonable((MemoryOutcome(0, 0.5, "ok"),))
        assert out[0]["outcome"] == "ok"


class TestStrategiesRunnerOptions:
    def test_custom_platform_subset(self, profiler):
        from repro.strategies import run_matrix

        runs = run_matrix(profiler, platforms=("pi3b+",), queries=(6,))
        assert len(runs) == 3  # 1 platform x 3 strategies x 1 query
        assert {r.platform for r in runs} == {"pi3b+"}


class TestSchedulerConstructors:
    def test_for_server_never_gates(self):
        from repro.cluster.scheduler import QueryArrival, WorkloadSimulator

        sim = WorkloadSimulator.for_server("op-gold")
        result = sim.run([QueryArrival(0, 1), QueryArrival(10_000, 1)])
        assert result.gated_s == 0.0
        assert sim.active_w == pytest.approx(330.0)

    def test_for_wimpi_scales_power_with_nodes(self):
        from repro.cluster.scheduler import WorkloadSimulator

        small = WorkloadSimulator.for_wimpi(4)
        large = WorkloadSimulator.for_wimpi(24)
        assert large.active_w == pytest.approx(6 * small.active_w)
