"""Analysis-module tests: speedups, cost/energy normalization, rendering."""

import pytest

from repro.analysis import (
    break_even_nodes,
    energy_improvement,
    energy_joules,
    hourly_improvement,
    median_relative,
    msrp_improvement,
    normalized_improvement,
    relative_performance,
    render_matrix,
    render_runtime_table,
    render_series,
    speedup_table,
)


class TestSpeedup:
    def test_relative_performance(self):
        assert relative_performance(2.0, 1.0) == 2.0
        assert relative_performance(0.5, 1.0) == 0.5

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            relative_performance(0.0, 1.0)

    def test_speedup_table(self):
        servers = {"s1": {1: 2.0, 2: 4.0}, "s2": {1: 1.0}}
        pi = {1: 1.0, 2: 2.0}
        table = speedup_table(servers, pi)
        assert table["s1"] == {1: 2.0, 2: 2.0}
        assert table["s2"] == {1: 1.0}

    def test_median_relative(self):
        table = {"s1": {1: 1.0, 2: 3.0, 3: 2.0}}
        assert median_relative(table) == {"s1": 2.0}


class TestCostNormalization:
    def test_break_even_definition(self):
        """A 5x cost improvement can mean 5x faster at equal cost, or 2x
        slower at 10x lower cost (the paper's example)."""
        same_cost = normalized_improvement(5.0, 100.0, 1.0, 100.0)
        cheap_slow = normalized_improvement(1.0, 100.0, 2.0, 10.0)
        assert same_cost == pytest.approx(5.0)
        assert cheap_slow == pytest.approx(5.0)

    def test_msrp_uses_dual_socket_price(self):
        # op-e5: $1389 x 2 sockets vs one $35 Pi.
        improvement = msrp_improvement("op-e5", 1.0, 1.0, n_nodes=1)
        assert improvement == pytest.approx(2 * 1389 / 35)

    def test_msrp_cluster_scales_price(self):
        one = msrp_improvement("op-e5", 1.0, 1.0, n_nodes=1)
        twentyfour = msrp_improvement("op-e5", 1.0, 1.0, n_nodes=24)
        assert one == pytest.approx(24 * twentyfour)

    def test_msrp_rejects_cloud(self):
        with pytest.raises(ValueError, match="MSRP"):
            msrp_improvement("m5.metal", 1.0, 1.0)

    def test_hourly_rejects_on_premises(self):
        with pytest.raises(ValueError, match="hourly"):
            hourly_improvement("op-e5", 1.0, 1.0)

    def test_hourly_improvement_is_enormous(self):
        """Equal runtimes: the Pi's electricity vs EC2 on-demand is a
        ~1000-10000x gap (the paper's Fig. 6 scale)."""
        improvement = hourly_improvement("m5.metal", 1.0, 1.0)
        assert improvement > 1000

    def test_break_even_nodes(self):
        # server: 1 s at $2778; Pi at $35/node. 4 nodes at 25 s miss the
        # threshold (2778 / (25 x 140) < 1); 8 nodes at 1 s cross it.
        cluster = {4: 25.0, 8: 1.0, 12: 0.5}
        nodes = break_even_nodes("op-e5", 1.0, cluster, metric="msrp")
        assert nodes == 8

    def test_break_even_none_when_never_crossed(self):
        cluster = {4: 1e9, 8: 1e9}
        assert break_even_nodes("op-e5", 1.0, cluster) is None


class TestEnergyNormalization:
    def test_energy_joules(self):
        assert energy_joules("op-gold", 2.0) == pytest.approx(2 * 330.0)

    def test_improvement(self):
        # Equal runtimes: 190 W dual-socket vs 5.1 W board.
        assert energy_improvement("op-e5", 1.0, 1.0) == pytest.approx(190 / 5.1)

    def test_cluster_energy_scales(self):
        single = energy_improvement("op-e5", 1.0, 1.0, n_nodes=1)
        cluster = energy_improvement("op-e5", 1.0, 1.0, n_nodes=24)
        assert single == pytest.approx(24 * cluster)

    def test_cloud_rejected(self):
        with pytest.raises(ValueError):
            energy_joules("c6g.metal", 1.0)


class TestRendering:
    def test_runtime_table_contains_all_cells(self):
        text = render_runtime_table({"pi": {1: 0.5, 6: 0.099}}, title="T")
        assert "pi" in text and "Q1" in text and "Q6" in text and "0.099" in text

    def test_series_with_break_even(self):
        text = render_series({"Q1": {4: 0.5, 8: 2.0}}, "Fig", x_label="n", break_even=1.0)
        assert "break" not in text  # phrasing check: uses 'favor' wording
        assert "favor" in text and "Q1" in text

    def test_matrix(self):
        text = render_matrix([("a", 1.0), ("b", 2.5)], ["name", "value"], title="M")
        assert "name" in text and "2.5" in text

    def test_empty_table(self):
        assert "empty" in render_runtime_table({}, title="T")
