"""TCO sensitivity tests — verifying the paper's §III-A3 assertion across
the plausible parameter space, not at one point."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.tco import TcoAssumptions, estimate_tco, tco_advantage


class TestEstimates:
    def test_pi_node_breakdown(self):
        estimate = estimate_tco("pi3b+", TcoAssumptions(years=1.0, utilization=1.0))
        assert estimate.hardware_usd == pytest.approx(47.5)
        assert estimate.cooling_usd == 0.0
        # 5.1 W for a year
        assert estimate.energy_usd == pytest.approx(
            5.1 / 1000 * 8760 * TcoAssumptions().kwh_price_usd, rel=0.01
        )

    def test_server_includes_components_and_cooling(self):
        estimate = estimate_tco("op-e5")
        assert estimate.hardware_usd == pytest.approx(2 * 1389 * 2.5)
        assert estimate.cooling_usd > 0

    def test_cluster_scales_linearly(self):
        one = estimate_tco("pi3b+", n_nodes=1).total_usd
        many = estimate_tco("pi3b+", n_nodes=24).total_usd
        assert many == pytest.approx(24 * one)

    def test_cloud_rejected(self):
        with pytest.raises(ValueError):
            estimate_tco("m5.metal")


class TestPaperClaim:
    def test_advantage_at_paper_operating_point(self):
        """24-node WIMPI ~1.3x slower than op-e5 at SF 10 overall: the
        TCO advantage should be large."""
        assert tco_advantage("op-e5", 24, performance_ratio=1.3) > 3.0

    def test_claim_holds_across_parameter_grid(self):
        """Sweep every knob over its documented range: the Pi cluster
        must win at every corner — the paper's 'would have heavily
        favored' assertion."""
        grid = itertools.product(
            (1.0, 3.0, 5.0),          # years
            (0.05, 0.10, 0.20),       # $/kWh
            (1.0, 2.0, 3.0),          # server components factor
            (10.0, 15.0),             # pi peripherals
            (0.2, 0.5, 0.8),          # cooling overhead
            (0.1, 0.5, 1.0),          # utilization
        )
        for years, kwh, comp, peri, cool, util in grid:
            assumptions = TcoAssumptions(
                years=years, kwh_price_usd=kwh, server_components_factor=comp,
                pi_peripherals_usd=peri, cooling_overhead=cool, utilization=util,
            )
            advantage = tco_advantage("op-e5", 24, 1.3, assumptions)
            assert advantage > 1.0, (years, kwh, comp, peri, cool, util, advantage)

    @given(
        years=st.floats(1.0, 6.0),
        kwh=st.floats(0.04, 0.30),
        comp=st.floats(1.0, 3.0),
        cool=st.floats(0.1, 0.9),
        util=st.floats(0.05, 1.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_claim_holds_under_random_assumptions(self, years, kwh, comp, cool, util):
        assumptions = TcoAssumptions(
            years=years, kwh_price_usd=kwh, server_components_factor=comp,
            cooling_overhead=cool, utilization=util,
        )
        assert tco_advantage("op-gold", 24, 1.5, assumptions) > 1.0

    def test_break_even_performance_ratio_is_extreme(self):
        """How much slower would the cluster have to be before TCO flips?
        It takes an enormous slowdown — quantifying 'heavily favored'."""
        assumptions = TcoAssumptions()
        ratio = 1.0
        while tco_advantage("op-e5", 24, ratio, assumptions) > 1.0 and ratio < 100:
            ratio *= 1.5
        assert ratio > 3.0

    def test_invalid_ratio(self):
        with pytest.raises(ValueError):
            tco_advantage("op-e5", 24, 0.0)
