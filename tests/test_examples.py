"""Smoke-run the fastest example scripts end to end (the full set takes
minutes; the remaining examples exercise the same code paths that unit
and bench tests already cover)."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def _run(name: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True, text=True, timeout=240,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


class TestExamples:
    def test_all_examples_exist(self):
        present = {p.name for p in EXAMPLES.glob("*.py")}
        assert {
            "quickstart.py", "tpch_single_node.py", "wimpi_scaling.py",
            "cost_energy_report.py", "custom_analytics.py",
            "sql_interface.py", "extensions_tour.py", "full_study_report.py",
        } <= present

    def test_every_example_compiles(self):
        import py_compile

        for path in EXAMPLES.glob("*.py"):
            py_compile.compile(str(path), doraise=True)

    def test_quickstart_runs(self):
        out = _run("quickstart.py")
        assert "Q6 revenue" in out
        assert "predicted SF 1 runtimes" in out
        assert "220 Mbps" in out

    def test_sql_interface_runs(self):
        out = _run("sql_interface.py")
        assert "revenue =" in out
        assert "top nations" in out
