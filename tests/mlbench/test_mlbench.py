"""ML-extension tests: kernel correctness, profiles, platform pricing,
distributed scaling (§V future work)."""

import numpy as np
import pytest

from repro.mlbench import (
    distributed_training_time,
    kmeans,
    lineitem_features,
    logistic_regression,
    ml_study,
)


@pytest.fixture(scope="module")
def blobs():
    rng = np.random.default_rng(3)
    centers = np.array([[0.0, 0.0], [10.0, 10.0], [0.0, 10.0]])
    points = np.concatenate([
        rng.normal(c, 0.5, size=(200, 2)) for c in centers
    ])
    return points, centers


class TestKmeans:
    def test_recovers_separated_clusters(self, blobs):
        points, centers = blobs
        fit = kmeans(points, k=3, max_iterations=30)
        found = sorted(fit.model.round(0).tolist())
        assert found == sorted(centers.tolist())

    def test_inertia_decreases_with_more_clusters(self, blobs):
        points, _ = blobs
        loose = kmeans(points, k=2, max_iterations=20).metric
        tight = kmeans(points, k=3, max_iterations=20).metric
        assert tight < loose

    def test_profile_scales_with_data(self, blobs):
        points, _ = blobs
        small = kmeans(points[:100], k=3, max_iterations=5)
        # fix iterations by comparing per-iteration work
        large = kmeans(points, k=3, max_iterations=5)
        per_small = small.profile.ops / small.iterations / 100
        per_large = large.profile.ops / large.iterations / len(points)
        assert per_small == pytest.approx(per_large)

    def test_converges_early_on_tolerance(self, blobs):
        points, _ = blobs
        fit = kmeans(points, k=3, max_iterations=100)
        assert fit.iterations < 100

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            kmeans(np.empty((0, 2)))


class TestLogisticRegression:
    def test_learns_separable_labels(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(500, 3))
        y = (x[:, 0] + 2 * x[:, 1] > 0).astype(int)
        fit = logistic_regression(x, y, iterations=200, learning_rate=0.5)
        assert fit.metric > 0.95

    def test_profile_linear_in_iterations(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(100, 4))
        y = (x[:, 0] > 0).astype(int)
        short = logistic_regression(x, y, iterations=10)
        long = logistic_regression(x, y, iterations=40)
        assert long.profile.ops == pytest.approx(4 * short.profile.ops)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            logistic_regression(np.zeros((5, 2)), np.zeros(4))


class TestWorkload:
    def test_features_from_real_lineitem(self, tpch_db):
        features, labels = lineitem_features(tpch_db)
        assert features.shape == (tpch_db.table("lineitem").nrows, 4)
        # Median split gives a balanced target.
        assert 0.45 < labels.mean() < 0.55

    def test_limit(self, tpch_db):
        features, labels = lineitem_features(tpch_db, limit=100)
        assert len(features) == len(labels) == 100


class TestDistributedTraining:
    def test_scales_then_plateaus(self):
        times = {
            n: distributed_training_time(100.0, n, iterations=50, weight_bytes=40)
            for n in (1, 4, 16, 64)
        }
        assert times[4] < times[1]
        assert times[16] < times[4]
        # latency floor: 64 nodes barely beat (or lose to) 16
        assert times[64] > times[16] * 0.5

    def test_network_floor_grows_with_iterations(self):
        few = distributed_training_time(10.0, 24, iterations=10, weight_bytes=40)
        many = distributed_training_time(10.0, 24, iterations=1000, weight_bytes=40)
        assert many > few

    def test_invalid_nodes(self):
        with pytest.raises(ValueError):
            distributed_training_time(1.0, 0, 1, 1.0)


class TestMlStudy:
    @pytest.fixture(scope="class")
    def study(self):
        return ml_study(base_sf=0.005, cluster_sizes=(4, 24))

    def test_pi_slower_absolute(self, study):
        by_key = {(r.kernel, r.platform): r.seconds for r in study["platforms"]}
        for kernel in ("kmeans", "logreg"):
            assert by_key[(kernel, "pi3b+")] > by_key[(kernel, "op-e5")]

    def test_pi_wins_per_dollar(self, study):
        """The paper's thesis carried into ML: compute-dense work makes
        the Pi's price-normalized advantage large."""
        by_key = {(r.kernel, r.platform): r.msrp_seconds_usd for r in study["platforms"]}
        for kernel in ("kmeans", "logreg"):
            assert by_key[(kernel, "pi3b+")] < by_key[(kernel, "op-e5")] / 3

    def test_compute_gap_not_bandwidth_gap(self, study):
        """Pi/op-e5 ML gap tracks Fig 2's compute ratios (well under the
        20-99x bandwidth gap that governs Q1)."""
        by_key = {(r.kernel, r.platform): r.seconds for r in study["platforms"]}
        gap = by_key[("logreg", "pi3b+")] / by_key[("logreg", "op-e5")]
        assert 2 < gap < 20

    def test_cluster_scaling_reported(self, study):
        cluster = study["cluster"]
        assert cluster["by_nodes"][24] < cluster["by_nodes"][4]
        assert cluster["by_nodes"][4] < cluster["single_pi_seconds"]

    def test_models_actually_trained(self, study):
        assert study["fits"]["logreg"].metric > 0.8
        assert study["fits"]["kmeans"].metric > 0
