"""MetricsRegistry semantics and the deduped cache hit/miss bookkeeping."""

import pytest

from repro.engine import Database, Executor, Q, Table, agg, col
from repro.engine.cache import ResultCache
from repro.engine.column import Column
from repro.engine.keycache import KeyCache
from repro.obs.metrics import (
    Counter, Gauge, Histogram, HitMissStats, MetricsRegistry, metrics,
)

import numpy as np


class TestCounter:
    def test_monotonic(self):
        c = Counter("c")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("c").inc(-1)

    def test_reset(self):
        c = Counter("c")
        c.inc(7)
        c.reset()
        assert c.value == 0.0


class TestGauge:
    def test_set_and_add(self):
        g = Gauge("g")
        g.set(10)
        g.add(-3)
        assert g.value == 7.0


class TestHistogram:
    def test_bucketing(self):
        h = Histogram("h", buckets=(1.0, 10.0))
        for v in (0.5, 5.0, 50.0, 0.1):
            h.observe(v)
        d = h.describe()
        assert d["buckets"] == [2, 1, 1]
        assert d["count"] == 4
        assert d["min"] == 0.1 and d["max"] == 50.0
        assert d["sum"] == pytest.approx(55.6)

    def test_describe_keys_sorted(self):
        d = Histogram("h").describe()
        assert list(d) == sorted(d)

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=(2.0, 1.0))


class TestMetricsRegistry:
    def test_get_or_create_returns_same_object(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("b") is reg.gauge("b")
        assert reg.histogram("c") is reg.histogram("c")

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(TypeError):
            reg.gauge("a")
        with pytest.raises(TypeError):
            reg.histogram("a")

    def test_snapshot_sorted_and_plain(self):
        reg = MetricsRegistry()
        reg.counter("z.last").inc(2)
        reg.counter("a.first").inc(1)
        reg.gauge("m.middle").set(5)
        snap = reg.snapshot()
        assert list(snap) == sorted(snap)
        assert snap["a.first"] == 1.0
        assert snap["z.last"] == 2.0
        assert snap["m.middle"] == 5.0

    def test_reset_in_place_keeps_references(self):
        reg = MetricsRegistry()
        c = reg.counter("a")
        c.inc(9)
        reg.reset()
        assert c.value == 0.0
        assert reg.counter("a") is c

    def test_global_registry_exists(self):
        assert isinstance(metrics, MetricsRegistry)


class TestHitMissStats:
    def test_local_counts(self):
        reg = MetricsRegistry()
        s = HitMissStats("test.cache", registry=reg)
        s.hit()
        s.hit()
        s.miss()
        assert (s.hits, s.misses) == (2, 1)
        assert reg.counter("test.cache.hits").value == 2.0
        assert reg.counter("test.cache.misses").value == 1.0

    def test_reset_local_keeps_global_cumulative(self):
        reg = MetricsRegistry()
        s = HitMissStats("test.cache", registry=reg)
        s.hit()
        s.miss()
        s.reset_local()
        assert (s.hits, s.misses) == (0, 0)
        assert reg.counter("test.cache.hits").value == 1.0
        assert reg.counter("test.cache.misses").value == 1.0

    def test_two_instances_share_global_counters(self):
        reg = MetricsRegistry()
        a = HitMissStats("shared", registry=reg)
        b = HitMissStats("shared", registry=reg)
        a.hit()
        b.hit()
        assert a.hits == 1 and b.hits == 1
        assert reg.counter("shared.hits").value == 2.0


class TestCacheStatsDedup:
    def test_result_cache_counts_and_registry(self):
        before_hits = metrics.counter("engine.result_cache.hits").value
        before_misses = metrics.counter("engine.result_cache.misses").value
        cache = ResultCache(capacity=4)
        cache.get_or_run("k", lambda: 1)
        cache.get_or_run("k", lambda: 1)
        assert cache.misses == 1 and cache.hits == 1
        assert metrics.counter("engine.result_cache.hits").value == before_hits + 1
        assert metrics.counter("engine.result_cache.misses").value == before_misses + 1

    def test_result_cache_stats_key_order(self):
        stats = ResultCache(capacity=4).stats()
        assert list(stats) == sorted(stats)
        assert list(stats) == ["capacity", "entries", "hits", "misses"]

    def test_key_cache_counts_and_registry(self):
        before_hits = metrics.counter("engine.key_cache.hits").value
        before_misses = metrics.counter("engine.key_cache.misses").value
        kc = KeyCache()
        arr = np.array([3, 1, 2, 1], dtype=np.int64)
        kc.factorize(arr)
        kc.factorize(arr)
        assert kc.misses == 1 and kc.hits == 1
        assert metrics.counter("engine.key_cache.hits").value == before_hits + 1
        assert metrics.counter("engine.key_cache.misses").value == before_misses + 1

    def test_key_cache_stats_key_order(self):
        stats = KeyCache().stats()
        assert list(stats) == sorted(stats)
        assert list(stats) == ["bytes", "entries", "hits", "misses"]

    def test_key_cache_clear_resets_local_only(self):
        before = metrics.counter("engine.key_cache.misses").value
        kc = KeyCache()
        kc.factorize(np.array([1, 2], dtype=np.int64))
        kc.clear()
        assert kc.misses == 0
        assert metrics.counter("engine.key_cache.misses").value == before + 1


class TestEngineCountersFlow:
    def test_zone_probe_counters_advance_on_skipping_scan(self):
        db = Database("m")
        db.add(Table("t", {
            "k": Column.from_ints(list(range(4096))),
            "v": Column.from_floats([float(i % 7) for i in range(4096)]),
        }))
        db.build_zone_maps()
        before = metrics.counter("engine.zonemap.probes").value
        Executor(db).execute(
            Q(db).scan("t").filter(col("k") < 10).aggregate(s=agg.sum(col("v")))
        )
        assert metrics.counter("engine.zonemap.probes").value > before
