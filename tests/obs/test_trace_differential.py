"""Differential tests: tracing must be an observer, not a participant.

Every TPC-H query runs serial and morsel-parallel, each with tracing on
and off; the traced run must return byte-identical rows and an equal
WorkProfile, and the trace itself must reconcile exactly with that
profile. The NullTracer must record nothing.
"""

import pytest

from repro.engine import Executor
from repro.engine.parallel import ParallelExecutor
from repro.obs.export import trace_to_dict, validate_trace
from repro.obs.trace import NULL_TRACER, WORK_FIELDS, NullTracer, Tracer, iter_spans
from repro.tpch import ALL_QUERY_NUMBERS, get_query

from ..conftest import TEST_SF


@pytest.fixture(scope="module")
def parallel_pair(tpch_db):
    """One untraced and one traced 4-worker executor, shared across
    queries (cache disabled so every run really executes)."""
    with ParallelExecutor(tpch_db, workers=4, cache_size=0) as plain, \
         ParallelExecutor(tpch_db, workers=4, cache_size=0) as traced:
        yield plain, traced


def _operator_spans(root):
    return [s for s in iter_spans(root)
            if s.kind == "operator" and not s.attrs.get("fragment")]


def _assert_reconciles(root, profile):
    spans = _operator_spans(root)
    assert [s.name for s in spans] == [o.operator for o in profile.operators]
    for span, op in zip(spans, profile.operators):
        for field in WORK_FIELDS:
            assert span.attrs.get(field, 0) == getattr(op, field), (
                f"{span.name}.{field}"
            )


@pytest.mark.parametrize("number", ALL_QUERY_NUMBERS)
def test_serial_tracing_is_pure(tpch_db, tpch_params, number):
    plan = get_query(number).build(tpch_db, tpch_params)
    plain = Executor(tpch_db).execute(plan)
    tracer = Tracer()
    traced = Executor(tpch_db, tracer=tracer).execute(plan, label=f"Q{number}")

    assert traced.rows == plain.rows
    assert traced.profile.operators == plain.profile.operators
    assert len(tracer.roots) == 1
    root = tracer.roots[0]
    assert root.kind == "query" and root.name == f"Q{number}"
    assert root.attrs["rows"] == len(plain.rows)
    _assert_reconciles(root, traced.profile)


@pytest.mark.parametrize("number", ALL_QUERY_NUMBERS)
def test_parallel_tracing_is_pure(tpch_db, tpch_params, parallel_pair, number):
    plain_ex, traced_ex = parallel_pair
    traced_ex.tracer = Tracer()
    plan = get_query(number).build(tpch_db, tpch_params)
    plain = plain_ex.execute(plan)
    traced = traced_ex.execute(plan, label=f"Q{number}")

    assert traced.rows == plain.rows
    assert traced.profile.operators == plain.profile.operators
    root = traced_ex.tracer.roots[-1]
    assert root.kind == "query" and root.name == f"Q{number}"
    _assert_reconciles(root, traced.profile)


def test_null_tracer_records_nothing(tpch_db, tpch_params):
    plan = get_query(6).build(tpch_db, tpch_params)
    null = NullTracer()
    res = Executor(tpch_db, tracer=null).execute(plan)
    assert null.roots == ()
    assert res.rows == Executor(tpch_db).execute(plan).rows
    # the default executor shares the same disabled path
    assert Executor(tpch_db).tracer is NULL_TRACER


def test_traces_export_and_validate(tpch_db, tpch_params):
    tracer = Tracer()
    executor = Executor(tpch_db, tracer=tracer)
    for number in (1, 6):
        executor.execute(get_query(number).build(tpch_db, tpch_params),
                         label=f"Q{number}")
    doc = trace_to_dict(tracer, meta={"sf": TEST_SF})
    validate_trace(doc)  # raises on schema violation
    assert [s["name"] for s in doc["spans"]] == ["Q1", "Q6"]
    assert doc["meta"]["sf"] == TEST_SF
