"""Property tests over randomly generated plans: trace spans form a
proper tree, EXPLAIN operators appear exactly once per pipeline, and
non-fragment operator spans reconcile exactly with the WorkProfile."""

import collections

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import Database, Executor, Q, Table, agg, col
from repro.engine.column import Column
from repro.engine.explain import explain
from repro.engine.parallel import ParallelExecutor
from repro.obs.trace import WORK_FIELDS, Tracer, iter_spans

N_ROWS = 600


def _build_db() -> Database:
    rng = np.random.default_rng(7)
    db = Database("inv")
    db.add(Table("t", {
        "k": Column.from_ints(rng.integers(0, 5, N_ROWS).tolist()),
        "v": Column.from_ints(rng.integers(0, 100, N_ROWS).tolist()),
        "w": Column.from_floats(np.round(rng.random(N_ROWS), 3).tolist()),
    }))
    db.add(Table("u", {
        "k2": Column.from_ints(list(range(5))),
        "tag": Column.from_ints([10, 20, 30, 40, 50]),
    }))
    db.build_zone_maps()
    return db


DB = _build_db()


@pytest.fixture(scope="module")
def parallel():
    with ParallelExecutor(DB, workers=3, morsel_rows=128, cache_size=0,
                          min_parallel_rows=1) as ex:
        yield ex


# -- plan generation --------------------------------------------------------

plan_specs = st.fixed_dictionaries({
    "filter": st.one_of(st.none(), st.integers(min_value=0, max_value=100)),
    "filter_op": st.sampled_from(["lt", "ge"]),
    "join": st.booleans(),
    "shape": st.sampled_from(["none", "project", "distinct"]),
    "agg": st.sampled_from(["none", "global", "by_k"]),
    "tail": st.sampled_from(["none", "sort", "limit", "topk"]),
})


def build_plan(spec) -> Q:
    q = Q(DB).scan("t")
    if spec["filter"] is not None:
        pred = (col("v") < spec["filter"] if spec["filter_op"] == "lt"
                else col("v") >= spec["filter"])
        q = q.filter(pred)
    if spec["join"]:
        q = q.join("u", on=[("k", "k2")])
    value_col = "v"  # a numeric column guaranteed to exist downstream
    if spec["shape"] == "project":
        q = q.project(k="k", vv=col("v") * 2)
        value_col = "vv"
    elif spec["shape"] == "distinct":
        q = q.distinct("k")
        value_col = "k"
    if spec["agg"] == "global":
        q = q.aggregate(total=agg.sum(col(value_col)))
        sort_key = "total"
    elif spec["agg"] == "by_k":
        q = q.aggregate(["k"], n=agg.count_star())
        sort_key = "k"
    else:
        sort_key = "k"
    if spec["tail"] == "sort":
        q = q.sort((sort_key, "desc"))
    elif spec["tail"] == "limit":
        q = q.limit(10)
    elif spec["tail"] == "topk":
        q = q.sort((sort_key, "desc")).limit(5)
    return q


# -- invariant helpers ------------------------------------------------------

def assert_span_tree(root):
    """Spans nest properly: children inside parents, same-thread
    siblings strictly ordered without overlap."""
    for span in iter_spans(root):
        assert span.end_s is not None, f"unfinished span {span.kind}:{span.name}"
        assert span.end_s >= span.start_s
        for child in span.children:
            assert child.start_s >= span.start_s
            assert child.end_s <= span.end_s
        by_thread = collections.defaultdict(list)
        for child in span.children:
            by_thread[child.thread].append(child)
        for siblings in by_thread.values():
            ordered = sorted(siblings, key=lambda s: (s.start_s, s.end_s))
            for prev, nxt in zip(ordered, ordered[1:]):
                assert prev.end_s <= nxt.start_s, (
                    f"same-thread siblings overlap: {prev.name} / {nxt.name}"
                )


def explain_operator_multiset(plan, db, settings=None):
    """Canonical operator names the EXPLAIN tree predicts, with the
    executor's physical fusions applied (scan+pushed filter, top-k)."""
    text = explain(plan, db, optimize=True, settings=settings)
    parsed = []
    for line in text.splitlines():
        stripped = line.lstrip()
        if not stripped.startswith("-> "):
            continue
        depth = (len(line) - len(stripped)) // 2
        parsed.append((depth, stripped[3:]))
    names: list[str] = []
    skip = set()
    for i, (depth, desc) in enumerate(parsed):
        if i in skip:
            continue
        if desc.startswith("Limit") and i + 1 < len(parsed):
            ndepth, ndesc = parsed[i + 1]
            if ndepth == depth + 1 and ndesc.startswith("Sort"):
                names.append("topk")
                skip.add(i + 1)
                continue
        if desc.startswith("Scan"):
            names.append("scan")
            if " Filter (" in desc:
                names.append("filter")
        elif desc.startswith("Filter"):
            names.append("filter")
        elif desc.startswith("Project"):
            names.append("project")
        elif desc.startswith("HashJoin"):
            names.append("hashjoin")
        elif desc.startswith("Aggregate"):
            names.append("aggregate")
        elif desc.startswith("Sort"):
            names.append("sort")
        elif desc.startswith("Limit"):
            names.append("limit")
        elif desc.startswith("Distinct"):
            names.append("distinct")
        elif desc.startswith("UnionAll"):
            names.append("unionall")
        else:  # pragma: no cover - new operator without a mapping
            raise AssertionError(f"unmapped EXPLAIN line: {desc}")
    return collections.Counter(names)


def operator_spans(root):
    return [s for s in iter_spans(root)
            if s.kind == "operator" and not s.attrs.get("fragment")]


def assert_reconciles(root, profile):
    """Non-fragment operator spans correspond 1:1, in order, with the
    profile's operators — every work field matches exactly."""
    spans = operator_spans(root)
    assert [s.name for s in spans] == [o.operator for o in profile.operators]
    for span, op in zip(spans, profile.operators):
        for field in WORK_FIELDS:
            assert span.attrs.get(field, 0) == getattr(op, field), (
                f"{span.name}.{field}: span={span.attrs.get(field, 0)} "
                f"profile={getattr(op, field)}"
            )
    for field in WORK_FIELDS:
        assert sum(s.attrs.get(field, 0) for s in spans) == sum(
            getattr(o, field) for o in profile.operators
        )


def run_and_check(executor, plan, check_explain=True):
    tracer = executor.tracer
    before = len(tracer.roots)
    res = executor.execute(plan)
    assert len(tracer.roots) == before + 1
    root = tracer.roots[-1]
    assert root.kind == "query"
    assert_span_tree(root)
    assert_reconciles(root, res.profile)
    pipelines = [s for s in iter_spans(root) if s.kind == "pipeline"]
    assert pipelines and pipelines[0].name == "main"
    if check_explain:
        got = collections.Counter(s.name for s in operator_spans(root))
        assert got == explain_operator_multiset(plan, DB, executor.settings)
    return res


# -- properties -------------------------------------------------------------

@settings(max_examples=40, deadline=None)
@given(spec=plan_specs)
def test_serial_trace_invariants(spec):
    executor = Executor(DB, tracer=Tracer())
    run_and_check(executor, build_plan(spec))


@settings(max_examples=25, deadline=None)
@given(spec=plan_specs)
def test_parallel_trace_invariants(spec, parallel):
    parallel.tracer = Tracer()
    res = run_and_check(parallel, build_plan(spec))
    root = parallel.tracer.roots[-1]
    morsels = [s for s in iter_spans(root) if s.kind == "morsel"]
    for m in morsels:
        assert all(c.kind == "operator" and c.attrs.get("fragment")
                   for c in m.children)


def test_union_all_traced():
    left = Q(DB).scan("t").filter(col("v") < 50).select("k", "v")
    right = Q(DB).scan("t").filter(col("v") >= 50).select("k", "v")
    plan = left.union_all(right).aggregate(["k"], n=agg.count_star())
    executor = Executor(DB, tracer=Tracer())
    res = run_and_check(executor, plan)
    assert res.frame.nrows == 5


def test_fragment_spans_sum_to_coalesced_span_or_less(parallel):
    """Per-morsel fragment spans cover the parallel portion of each
    operator's work; the coalesced marker holds the merged total, which
    also includes merge-phase and boundary charges."""
    parallel.tracer = Tracer()
    res = parallel.execute(
        Q(DB).scan("t").filter(col("v") < 70).aggregate(["k"], s=agg.sum(col("w")))
    )
    root = parallel.tracer.roots[-1]
    frags = collections.defaultdict(float)
    for s in iter_spans(root):
        if s.kind == "operator" and s.attrs.get("fragment"):
            frags[s.name] += s.attrs.get("tuples_in", 0)
    coalesced = {s.name: s for s in iter_spans(root)
                 if s.kind == "operator" and s.attrs.get("coalesced")}
    assert coalesced, "parallel segment emitted no coalesced markers"
    for name, span in coalesced.items():
        assert span.end_s == span.start_s  # zero-length marker
        assert frags[name] <= span.attrs.get("tuples_in", 0) or frags[name] == 0
    assert_reconciles(root, res.profile)
