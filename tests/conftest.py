"""Shared fixtures: a small deterministic TPC-H database and helpers."""

from __future__ import annotations

import pytest

from repro.core.profiler import TPCHProfiler
from repro.engine import Column, Database, Table
from repro.tpch import generate

TEST_SF = 0.01


@pytest.fixture(scope="session")
def tpch_db() -> Database:
    """One TPC-H database at SF 0.01 shared across the whole run."""
    return generate(TEST_SF, seed=42)


@pytest.fixture(scope="session")
def profiler() -> TPCHProfiler:
    """A profiler bound to the shared scale factor."""
    return TPCHProfiler(base_sf=TEST_SF, seed=42)


@pytest.fixture(scope="session")
def tpch_params() -> dict:
    return {"sf": TEST_SF}


@pytest.fixture
def toy_db() -> Database:
    """A tiny hand-written database for operator-level tests."""
    db = Database("toy")
    db.add(Table("t", {
        "k": Column.from_ints([1, 2, 3, 4, 5, 6]),
        "v": Column.from_floats([10.0, 20.0, 30.0, 40.0, 50.0, 60.0]),
        "s": Column.from_strings(["a", "b", "a", "c", "b", "a"]),
        "d": Column.from_dates([
            "1994-01-01", "1994-06-01", "1995-01-01",
            "1993-01-01", "1996-05-05", "1994-12-31",
        ]),
    }))
    db.add(Table("u", {
        "k2": Column.from_ints([1, 2, 2, 7]),
        "w": Column.from_floats([100.0, 200.0, 201.0, 700.0]),
        "name": Column.from_strings(["one", "two", "two-b", "seven"]),
    }))
    return db
