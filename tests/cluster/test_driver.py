"""Distributed driver tests: distributed answers equal single-node
answers for every chokepoint query."""

import math

import pytest

from repro.cluster import Driver, concat_frames, partition_database
from repro.engine import Column, Frame, execute
from repro.tpch import CHOKEPOINTS, get_query


def _normalized(rows):
    out = []
    for row in rows:
        norm = []
        for value in row:
            if isinstance(value, float):
                norm.append(round(value, 4))
            else:
                norm.append(value)
        out.append(tuple(norm))
    return out


@pytest.fixture(scope="module")
def driver(tpch_db):
    return Driver(partition_database(tpch_db, 4))


class TestDistributedCorrectness:
    @pytest.mark.parametrize("number", CHOKEPOINTS)
    def test_matches_single_node(self, tpch_db, tpch_params, driver, number):
        single = execute(tpch_db, get_query(number).build(tpch_db, tpch_params))
        distributed = driver.run(get_query(number), tpch_params)
        single_rows = _normalized(single.rows)
        distributed_rows = _normalized(distributed.result.rows)
        assert len(single_rows) == len(distributed_rows)
        for srow, drow in zip(single_rows, distributed_rows):
            for s, d in zip(srow, drow):
                if isinstance(s, float) or isinstance(d, float):
                    assert math.isclose(float(s), float(d), rel_tol=1e-6, abs_tol=1e-6)
                else:
                    assert s == d

    def test_q13_runs_single_node(self, driver, tpch_params):
        run = driver.run(get_query(13), tpch_params)
        assert run.single_node
        assert run.partial_bytes_per_node == []

    def test_q6_partials_one_row_per_node(self, driver, tpch_params):
        run = driver.run(get_query(6), tpch_params)
        assert not run.single_node
        assert run.node_results_rows == [1, 1, 1, 1]
        assert len(run.node_profiles) == 4

    def test_partial_bytes_are_small(self, driver, tpch_params):
        """Partial aggregates are tiny compared to base data — the whole
        point of the paper's driver strategy."""
        run = driver.run(get_query(1), tpch_params)
        assert all(b < 10_000 for b in run.partial_bytes_per_node)

    def test_non_lineitem_query_single_node(self, driver, tpch_params):
        run = driver.run(get_query(11), tpch_params)
        assert run.single_node

    def test_one_node_cluster_bypasses_rewrite(self, tpch_db, tpch_params):
        solo = Driver(partition_database(tpch_db, 1))
        run = solo.run(get_query(6), tpch_params)
        assert run.single_node


class TestConcatFrames:
    def test_stacks_rows(self):
        a = Frame({"x": Column.from_ints([1, 2])})
        b = Frame({"x": Column.from_ints([3])})
        table = concat_frames([a, b])
        assert table.nrows == 3
        assert table.column("x").values.tolist() == [1, 2, 3]

    def test_schema_mismatch_rejected(self):
        a = Frame({"x": Column.from_ints([1])})
        b = Frame({"y": Column.from_ints([1])})
        with pytest.raises(ValueError, match="mismatch"):
            concat_frames([a, b])

    def test_schema_mismatch_names_offender(self):
        """The error pinpoints which node diverged and how — both column
        lists, so a mixed-schema gather is debuggable from the message."""
        a = Frame({"x": Column.from_ints([1])})
        b = Frame({"x": Column.from_ints([2])})
        c = Frame({"x": Column.from_ints([3]), "y": Column.from_ints([4])})
        with pytest.raises(ValueError) as excinfo:
            concat_frames([a, b, c])
        message = str(excinfo.value)
        assert "node 2" in message
        assert "['x']" in message
        assert "['x', 'y']" in message

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            concat_frames([])

    def test_driver_requires_nodes(self):
        with pytest.raises(ValueError):
            Driver([])
