"""Per-node memory model tests."""

import pytest

from repro.cluster import MemoryModel, NodeSpec, collect_scan_columns
from repro.engine import Q, agg, col
from repro.engine.optimizer import prune_columns
from repro.engine.profile import OperatorWork, WorkProfile


class TestNodeSpec:
    def test_defaults_are_a_pi(self):
        spec = NodeSpec()
        assert spec.memory_bytes == 1e9
        assert spec.platform.key == "pi3b+"
        assert 0 < spec.available_bytes < spec.memory_bytes


class TestScanCollection:
    def test_collects_pruned_columns(self, tpch_db):
        plan = prune_columns(
            Q(tpch_db).scan("lineitem").filter(col("l_quantity") < 10)
            .aggregate(s=agg.sum(col("l_extendedprice"))).node,
            tpch_db,
        )
        cols = collect_scan_columns(plan)
        assert cols == {"lineitem": {"l_quantity", "l_extendedprice"}}

    def test_unpruned_scan_is_star(self, tpch_db):
        cols = collect_scan_columns(Q(tpch_db).scan("lineitem").node)
        assert cols == {"lineitem": {"*"}}

    def test_join_collects_both_tables(self, tpch_db):
        plan = prune_columns(
            Q(tpch_db).scan("lineitem").join("part", on=[("l_partkey", "p_partkey")])
            .aggregate(s=agg.sum(col("l_extendedprice"))).node,
            tpch_db,
        )
        cols = collect_scan_columns(plan)
        assert set(cols) == {"lineitem", "part"}


class TestFootprint:
    def test_numeric_column_bytes(self, tpch_db):
        mm = MemoryModel()
        per_row = mm.column_bytes_per_row(tpch_db, "lineitem", "l_quantity")
        assert per_row == pytest.approx(8.0)

    def test_comment_column_costs_spec_heap(self, tpch_db):
        """o_comment must be charged its real ~49 B/row (pooling in our
        dbgen would otherwise make Q13's footprint vanish)."""
        mm = MemoryModel()
        per_row = mm.column_bytes_per_row(tpch_db, "orders", "o_comment")
        assert 50 < per_row < 56  # 4 B code + 49 B heap

    def test_low_cardinality_string_is_cheap(self, tpch_db):
        mm = MemoryModel()
        per_row = mm.column_bytes_per_row(tpch_db, "lineitem", "l_shipmode")
        assert per_row < 6  # hash-consed

    def test_footprint_scales_with_sf(self, tpch_db):
        mm = MemoryModel()
        plan = prune_columns(
            Q(tpch_db).scan("lineitem").aggregate(s=agg.sum(col("l_quantity"))).node,
            tpch_db,
        )
        at_1x = mm.base_column_footprint(tpch_db, plan, 1.0)
        at_10x = mm.base_column_footprint(tpch_db, plan, 10.0)
        assert at_10x == pytest.approx(10 * at_1x)

    def test_nation_region_do_not_scale(self, tpch_db):
        mm = MemoryModel()
        plan = prune_columns(
            Q(tpch_db).scan("nation").aggregate(n=agg.count_star()).node, tpch_db
        )
        assert mm.base_column_footprint(tpch_db, plan, 10.0) == pytest.approx(
            mm.base_column_footprint(tpch_db, plan, 1.0)
        )

    def test_intermediates_are_summed(self):
        mm = MemoryModel()
        profile = WorkProfile([
            OperatorWork("scan", out_bytes=100),
            OperatorWork("hashjoin", out_bytes=300),
        ])
        assert mm.peak_intermediate_bytes(profile) == 400

    def test_pressure_ratio_positive(self, tpch_db):
        mm = MemoryModel()
        plan = prune_columns(
            Q(tpch_db).scan("lineitem").aggregate(s=agg.sum(col("l_quantity"))).node,
            tpch_db,
        )
        profile = WorkProfile([OperatorWork("scan", out_bytes=1e6)])
        ratio = mm.pressure_ratio(tpch_db, plan, profile, 1000.0)
        assert ratio > 0
