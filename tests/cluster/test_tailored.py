"""Tailored (heterogeneous) cluster tests — paper §III-C1's node-mix idea."""

import pytest

from repro.cluster import NodeSpec, WimPiCluster
from repro.cluster.tailored import PI4_NODE, TailoredCluster
from repro.hardware import PI4_KEY, get_platform


@pytest.fixture(scope="module")
def clusters(tpch_db):
    uniform = WimPiCluster(24, base_sf=0.01, target_sf=10.0, db=tpch_db)
    mixed = TailoredCluster(
        [NodeSpec()] * 20 + [PI4_NODE] * 4,
        base_sf=0.01, target_sf=10.0, db=tpch_db,
    )
    return uniform, mixed


class TestPi4Platform:
    def test_spec_values(self):
        pi4 = get_platform(PI4_KEY)
        assert pi4.msrp_usd == 75.0
        assert pi4.cores == 4
        assert pi4.category == "sbc"

    def test_pi4_node_has_8gb(self):
        assert PI4_NODE.memory_bytes == 8e9
        assert PI4_NODE.available_bytes > 7e9

    def test_pi4_excluded_from_the_papers_testbed(self):
        from repro.hardware import ALL_KEYS

        assert PI4_KEY not in ALL_KEYS  # extension, not a Table I row


class TestTailoring:
    def test_q13_moves_to_the_big_node_and_stops_thrashing(self, clusters):
        uniform, mixed = clusters
        u = uniform.run_query(13)
        m = mixed.run_query(13)
        assert max(m.node_pressure) < 1.0 < max(u.node_pressure)
        assert m.total_seconds < u.total_seconds / 10

    def test_parallel_queries_unaffected(self, clusters):
        uniform, mixed = clusters
        for q in (1, 6):
            u = uniform.run_query(q)
            m = mixed.run_query(q)
            # Pi 4 nodes are no slower, so max-node time cannot rise.
            assert m.total_seconds <= u.total_seconds * 1.01

    def test_results_identical(self, clusters):
        uniform, mixed = clusters
        assert mixed.run_query(13).result.rows == uniform.run_query(13).result.rows

    def test_single_node_placement_picks_largest_memory(self, clusters):
        _, mixed = clusters
        host = mixed.single_node_index(None)
        assert mixed.node_specs[host] is PI4_NODE

    def test_cost_and_power_reflect_the_mix(self, clusters):
        uniform, mixed = clusters
        assert mixed.total_msrp_usd == pytest.approx(20 * 35 + 4 * 75)
        assert mixed.peak_power_w == pytest.approx(20 * 5.1 + 4 * 7.6)
        assert mixed.total_msrp_usd > uniform.total_msrp_usd

    def test_tailoring_is_cheaper_than_all_pi4(self, tpch_db):
        all_pi4 = TailoredCluster([PI4_NODE] * 24, base_sf=0.01,
                                  target_sf=10.0, db=tpch_db)
        mixed = TailoredCluster([NodeSpec()] * 20 + [PI4_NODE] * 4,
                                base_sf=0.01, target_sf=10.0, db=tpch_db)
        assert mixed.total_msrp_usd < all_pi4.total_msrp_usd
        # ...while solving the same Q13 memory problem.
        assert max(mixed.run_query(13).node_pressure) < 1.0

    def test_empty_composition_rejected(self, tpch_db):
        with pytest.raises(ValueError):
            TailoredCluster([], db=tpch_db)
