"""Distributed rewrite tests: partial-aggregation decomposition."""

import pytest

from repro.cluster import NotDistributableError, split_for_partial_aggregation
from repro.engine import Executor, Q, agg, col
from repro.engine.plan import AggregateNode
from repro.tpch import get_query


class TestSplit:
    def test_sum_becomes_sum_of_sums(self, toy_db):
        plan = Q(toy_db).scan("t").aggregate(by=["s"], total=agg.sum(col("v")))
        split = split_for_partial_aggregation(plan.node)
        assert isinstance(split.local, AggregateNode)
        local_specs = dict(split.local.aggs)
        assert local_specs["total"].func == "sum"

    def test_avg_decomposes_into_sum_and_count(self, toy_db):
        plan = Q(toy_db).scan("t").aggregate(by=["s"], mean=agg.avg(col("v")))
        split = split_for_partial_aggregation(plan.node)
        names = [name for name, _ in split.local.aggs]
        assert names == ["mean__sum", "mean__cnt"]

    def test_count_distinct_not_distributable(self, toy_db):
        plan = Q(toy_db).scan("t").aggregate(n=agg.count_distinct(col("s")))
        with pytest.raises(NotDistributableError):
            split_for_partial_aggregation(plan.node)

    def test_non_aggregate_root_not_distributable(self, toy_db):
        plan = Q(toy_db).scan("t").join("u", on=[("k", "k2")])
        with pytest.raises(NotDistributableError):
            split_for_partial_aggregation(plan.node)

    def test_chain_above_aggregate_is_rebuilt(self, toy_db):
        plan = (
            Q(toy_db).scan("t")
            .aggregate(by=["s"], total=agg.sum(col("v")))
            .sort(("total", "desc")).limit(2)
        )
        split = split_for_partial_aggregation(plan.node)
        # Execute partials on the full db (single "node") and finalize.
        partial = Executor(toy_db).execute(split.local)
        from repro.cluster import concat_frames
        from repro.engine import Database

        driver_db = Database("driver")
        driver_db.add(concat_frames([partial.frame]))
        final = Executor(driver_db).execute(split.build_final(driver_db), optimize=False)
        direct = Executor(toy_db).execute(plan)
        assert final.rows == direct.rows

    def test_all_chokepoints_split_except_q13(self, tpch_db, tpch_params):
        for number in (1, 3, 4, 5, 6, 14, 19):
            plan = get_query(number).build(tpch_db, tpch_params)
            split = split_for_partial_aggregation(plan.node)
            assert split.local is not None, number

    def test_having_filter_above_aggregate(self, toy_db):
        plan = (
            Q(toy_db).scan("t")
            .aggregate(by=["s"], total=agg.sum(col("v")))
            .filter(col("total") > 50.0)
        )
        split = split_for_partial_aggregation(plan.node)
        assert split.local is not None
