"""WimPiCluster tests: Table III shapes — thrash cliff, Q13 flatness,
network plateau, cost/energy properties."""

import pytest

from repro.cluster import FaultPlan, InjectedFault, WimPiCluster, thrash_multiplier
from repro.tpch import CHOKEPOINTS


@pytest.fixture(scope="module")
def clusters(tpch_db):
    """Clusters over the shared SF 0.01 db at three sizes."""
    return {
        n: WimPiCluster(n, base_sf=0.01, target_sf=10.0, db=tpch_db)
        for n in (4, 12, 24)
    }


@pytest.fixture(scope="module")
def runs(clusters):
    return {
        n: {q: cluster.run_query(q) for q in CHOKEPOINTS}
        for n, cluster in clusters.items()
    }


class TestThrashMultiplier:
    def test_no_penalty_below_threshold(self):
        assert thrash_multiplier(0.5) == 1.0
        assert thrash_multiplier(0.9) == 1.0

    def test_monotone_above_threshold(self):
        values = [thrash_multiplier(r) for r in (1.0, 1.2, 1.5, 2.0)]
        assert values == sorted(values)
        assert values[0] > 1.0

    def test_capped(self):
        assert thrash_multiplier(10.0) == thrash_multiplier(50.0)


class TestTableIIIShape:
    def test_memory_cliff_at_four_nodes(self, runs):
        """Q1/Q3/Q5 at 4 nodes are catastrophically slower than at 12
        (the paper's 10-100x jump)."""
        for q in (1, 3, 5):
            jump = runs[4][q].total_seconds / runs[12][q].total_seconds
            assert jump > 5.0, (q, jump)

    def test_pressure_decreases_with_nodes(self, runs):
        for q in (1, 3, 5):
            assert max(runs[4][q].node_pressure) > max(runs[24][q].node_pressure)

    def test_q13_flat_across_cluster_sizes(self, runs):
        times = [runs[n][13].total_seconds for n in (4, 12, 24)]
        assert max(times) == pytest.approx(min(times), rel=1e-9)

    def test_q13_is_single_node(self, runs):
        assert runs[24][13].run.single_node

    def test_selective_queries_hit_network_floor(self, runs):
        """Q6/Q14 stop improving with more nodes: the sequential gather
        latency grows with N (diminishing returns in the paper)."""
        for q in (6, 14):
            improvement = runs[12][q].total_seconds / runs[24][q].total_seconds
            assert improvement < 2.0, q

    def test_gather_time_grows_with_cluster(self, runs):
        assert runs[24][6].gather_seconds > runs[4][6].gather_seconds

    def test_large_cluster_beats_small_on_bound_queries(self, runs):
        for q in (1, 3, 4, 5):
            assert runs[24][q].total_seconds < runs[4][q].total_seconds

    def test_energy_proportional_to_nodes_and_time(self, runs):
        run = runs[12][6]
        expected = run.total_seconds * 5.1 * 12
        assert run.energy_joules == pytest.approx(expected)


class TestClusterProperties:
    def test_cost_model(self, clusters):
        cluster = clusters[24]
        assert cluster.total_msrp_usd == pytest.approx(840.0)  # the paper's figure
        assert cluster.peak_power_w == pytest.approx(122.4)
        assert cluster.hourly_usd < 0.01

    def test_scale_property(self, clusters):
        assert clusters[4].scale == pytest.approx(1000.0)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            WimPiCluster(0)

    def test_results_are_real_rows(self, runs):
        result = runs[12][1].result
        assert result.column_names[0] == "l_returnflag"
        assert len(result) == 4


class TestChaosCluster:
    """The resilient runtime wired through the Table III model."""

    @pytest.fixture(scope="class")
    def chaos_cluster(self, tpch_db):
        plan = FaultPlan((
            InjectedFault("oom", 1),
            InjectedFault("straggler", 3, slowdown=40.0),
        ))
        return WimPiCluster(
            4, base_sf=0.01, target_sf=10.0, db=tpch_db,
            replication=2, fault_plan=plan,
        )

    def test_recovers_and_matches_clean_results(self, chaos_cluster, runs):
        run = chaos_cluster.run_query(1)
        assert run.coverage == 1.0
        assert run.result.rows == runs[4][1].result.rows

    def test_recovery_charges_inflate_runtime(self, chaos_cluster, tpch_db):
        clean = WimPiCluster(
            4, base_sf=0.01, target_sf=10.0, db=tpch_db, replication=2,
        )
        chaos_run = chaos_cluster.run_query(6)
        clean_run = clean.run_query(6)
        assert chaos_run.recovery_seconds > 0
        assert chaos_run.total_seconds > clean_run.total_seconds
        assert clean_run.recovery_seconds == 0.0

    def test_recovery_log_surfaces(self, chaos_cluster):
        run = chaos_cluster.run_query(6)
        assert run.recovery_log is not None
        assert run.recovery_log.count("failover") >= 1

    def test_replication_without_faults_is_clean(self, tpch_db, runs):
        cluster = WimPiCluster(
            4, base_sf=0.01, target_sf=10.0, db=tpch_db, replication=2,
        )
        run = cluster.run_query(3)
        assert run.coverage == 1.0
        assert run.recovery_log.events == []
        assert run.result.rows == runs[4][3].result.rows

    def test_compression_incompatible_with_resilient_runtime(self, tpch_db):
        with pytest.raises(ValueError, match="compress"):
            WimPiCluster(
                4, base_sf=0.01, target_sf=10.0, db=tpch_db,
                replication=2, compress=True,
            )
