"""Reliability / failure-injection tests (paper §III-C4)."""

import pytest

from repro.cluster import WimPiCluster
from repro.cluster.reliability import (
    MemoryOutcome,
    NodeUnresponsiveError,
    QueryOutOfMemoryError,
    SwapPolicy,
    classify_pressure,
    reliability_report,
)


class TestClassification:
    def test_fits_is_ok_under_both_policies(self):
        for policy in SwapPolicy:
            assert classify_pressure(0, 0.8, policy).outcome == "ok"

    def test_overcommit_with_swap_thrashes(self):
        outcome = classify_pressure(0, 1.5, SwapPolicy.SWAP)
        assert outcome.outcome == "thrash"
        assert outcome.completes

    def test_overcommit_without_swap_ooms(self):
        outcome = classify_pressure(0, 1.5, SwapPolicy.NO_SWAP)
        assert outcome.outcome == "oom"
        assert not outcome.completes

    def test_extreme_overcommit_with_swap_kills_node(self):
        assert classify_pressure(0, 4.0, SwapPolicy.SWAP).outcome == "unresponsive"

    def test_extreme_overcommit_without_swap_is_still_just_oom(self):
        """The paper's fix: swap off converts node deaths into isolated
        per-query errors."""
        assert classify_pressure(0, 4.0, SwapPolicy.NO_SWAP).outcome == "oom"

    def test_negative_pressure_rejected(self):
        with pytest.raises(ValueError):
            classify_pressure(0, -1.0, SwapPolicy.SWAP)

    def test_oom_boundary_is_inclusive(self):
        """Exactly at the OOM ratio the allocation has already failed."""
        assert classify_pressure(0, 1.05, SwapPolicy.NO_SWAP).outcome == "oom"
        assert classify_pressure(0, 1.0499999, SwapPolicy.NO_SWAP).outcome == "ok"

    def test_unresponsive_boundary_is_inclusive(self):
        assert classify_pressure(0, 3.0, SwapPolicy.SWAP).outcome == "unresponsive"
        assert classify_pressure(0, 2.9999999, SwapPolicy.SWAP).outcome == "thrash"

    def test_exactly_full_memory_still_fits(self):
        """pressure == 1.0 completes cleanly under both policies: the
        thrash boundary is exclusive."""
        for policy in SwapPolicy:
            assert classify_pressure(0, 1.0, policy).outcome == "ok"

    def test_report_covers_all_nodes(self):
        report = reliability_report({1: [0.5, 1.2], 6: [0.3, 0.4]}, SwapPolicy.SWAP)
        assert [o.outcome for o in report[1]] == ["ok", "thrash"]
        assert all(o.outcome == "ok" for o in report[6])


class TestClusterIntegration:
    def test_swap_cluster_completes_thrashy_query(self, tpch_db):
        cluster = WimPiCluster(4, base_sf=0.01, target_sf=10.0, db=tpch_db)
        run = cluster.run_query(1)  # thrashes but completes (Table III)
        assert run.total_seconds > 0

    def test_no_swap_cluster_raises_oom(self, tpch_db):
        cluster = WimPiCluster(
            4, base_sf=0.01, target_sf=10.0, db=tpch_db,
            swap_policy=SwapPolicy.NO_SWAP,
        )
        with pytest.raises(QueryOutOfMemoryError) as excinfo:
            cluster.run_query(1)
        assert excinfo.value.pressure > 1.0

    def test_no_swap_cluster_still_runs_light_queries(self, tpch_db):
        cluster = WimPiCluster(
            4, base_sf=0.01, target_sf=10.0, db=tpch_db,
            swap_policy=SwapPolicy.NO_SWAP,
        )
        run = cluster.run_query(6)  # fits per node comfortably
        assert len(run.result) == 1

    def test_more_nodes_avoid_the_oom(self, tpch_db):
        cluster = WimPiCluster(
            24, base_sf=0.01, target_sf=10.0, db=tpch_db,
            swap_policy=SwapPolicy.NO_SWAP,
        )
        run = cluster.run_query(1)  # per-node share now fits
        assert len(run.result) == 4

    def test_compression_rescues_no_swap_cluster(self, tpch_db):
        """Composing the two extensions: compressed base data shrinks the
        working set below the OOM limit at 4 nodes."""
        cluster = WimPiCluster(
            4, base_sf=0.01, target_sf=10.0, db=tpch_db,
            swap_policy=SwapPolicy.NO_SWAP, compress=True,
        )
        run = cluster.run_query(1)
        assert len(run.result) == 4
