"""Shuffle/repartitioned-execution tests — the paper's deferred
distributed-join future work, implemented."""

import pytest

from repro.cluster import WimPiCluster
from repro.cluster.shuffle import repartition_database, run_repartitioned
from repro.engine import execute
from repro.tpch import get_query

Q13_KEYS = {"orders": "o_custkey", "customer": "c_custkey"}


class TestRepartitioning:
    def test_co_partitioning_is_disjoint_and_aligned(self, tpch_db):
        node_dbs = repartition_database(tpch_db, 6, Q13_KEYS)
        total_orders = sum(d.table("orders").nrows for d in node_dbs)
        assert total_orders == tpch_db.table("orders").nrows
        for node, node_db in enumerate(node_dbs):
            custkeys = node_db.table("customer").column("c_custkey").values
            orderkeys = node_db.table("orders").column("o_custkey").values
            assert set(custkeys % 6) <= {node}
            assert set(orderkeys % 6) <= {node}

    def test_unlisted_tables_replicated(self, tpch_db):
        node_dbs = repartition_database(tpch_db, 4, Q13_KEYS)
        for node_db in node_dbs:
            assert node_db.table("nation") is tpch_db.table("nation")


class TestQ13Distribution:
    @pytest.fixture(scope="class")
    def single(self, tpch_db, tpch_params):
        return execute(tpch_db, get_query(13).build(tpch_db, tpch_params))

    @pytest.mark.parametrize("n_nodes", [4, 12, 24])
    def test_results_identical(self, tpch_db, single, n_nodes):
        run = run_repartitioned(13, n_nodes, Q13_KEYS, base_sf=0.01, db=tpch_db)
        assert [tuple(r) for r in run.result.rows] == [tuple(r) for r in single.rows]

    def test_q13_now_scales_with_cluster_size(self, tpch_db):
        """The paper's flat 103 s line becomes a scaling curve."""
        small = run_repartitioned(13, 4, Q13_KEYS, base_sf=0.01, db=tpch_db)
        large = run_repartitioned(13, 24, Q13_KEYS, base_sf=0.01, db=tpch_db)
        assert large.total_seconds < small.total_seconds

    def test_beats_single_node_fallback_by_an_order_of_magnitude(self, tpch_db):
        plain = WimPiCluster(24, base_sf=0.01, target_sf=10.0, db=tpch_db).run_query(13)
        shuffled = run_repartitioned(13, 24, Q13_KEYS, base_sf=0.01, db=tpch_db)
        assert shuffled.total_seconds < plain.total_seconds / 10

    def test_repartitioning_defuses_memory_pressure(self, tpch_db):
        plain = WimPiCluster(4, base_sf=0.01, target_sf=10.0, db=tpch_db).run_query(13)
        shuffled = run_repartitioned(13, 4, Q13_KEYS, base_sf=0.01, db=tpch_db)
        assert max(shuffled.node_pressure) < max(plain.node_pressure)

    def test_prepartitioned_layout_skips_shuffle(self, tpch_db):
        with_shuffle = run_repartitioned(13, 12, Q13_KEYS, base_sf=0.01, db=tpch_db)
        without = run_repartitioned(
            13, 12, Q13_KEYS, base_sf=0.01, db=tpch_db, include_shuffle=False
        )
        assert without.shuffle_seconds == 0.0
        assert without.total_seconds < with_shuffle.total_seconds

    def test_shuffle_volume_decreases_per_node(self, tpch_db):
        few = run_repartitioned(13, 4, Q13_KEYS, base_sf=0.01, db=tpch_db)
        many = run_repartitioned(13, 24, Q13_KEYS, base_sf=0.01, db=tpch_db)
        assert many.shuffle_seconds < few.shuffle_seconds


class TestOtherQueries:
    def test_q3_correct_under_custkey_partitioning(self, tpch_db, tpch_params):
        """Q3 stays correct when customer/orders are co-partitioned on
        the customer key and lineitem is replicated: every lineitem row
        meets its order on exactly one node."""
        single = execute(tpch_db, get_query(3).build(tpch_db, tpch_params))
        run = run_repartitioned(3, 8, Q13_KEYS, base_sf=0.01, db=tpch_db)
        assert len(run.result.rows) == len(single.rows)
        for a, b in zip(run.result.rows, single.rows):
            assert a[0] == b[0]
            assert a[3] == pytest.approx(b[3])  # revenue

    def test_global_scalar_subqueries_are_a_known_caveat(self, tpch_db, tpch_params):
        """Q22's scalar AVG over *partitioned* customers evaluates
        per-node and diverges — choosing semantically safe partition
        keys is the caller's responsibility (documented in the module).
        This test pins the caveat so it is never silently 'fixed'
        without a real global-subquery implementation."""
        single = execute(tpch_db, get_query(22).build(tpch_db, tpch_params))
        run = run_repartitioned(22, 8, Q13_KEYS, base_sf=0.01, db=tpch_db)
        totals_single = sum(r[1] for r in single.rows)
        totals_dist = sum(r[1] for r in run.result.rows)
        assert totals_dist != totals_single

    def test_non_decomposable_query_raises(self, tpch_db):
        # Q2's top level is sort/limit over projections of a join, not a
        # decomposable aggregate chain.
        with pytest.raises(ValueError, match="not .*decomposable|did not distribute"):
            run_repartitioned(2, 4, {"part": "p_partkey"}, base_sf=0.01, db=tpch_db)
