"""Network model tests."""

import pytest

from repro.cluster import NetworkModel


class TestNetworkModel:
    def test_default_matches_iperf(self):
        assert NetworkModel().bandwidth_mbps == pytest.approx(220.0)

    def test_transfer_time_structure(self):
        net = NetworkModel(bandwidth_mbps=100.0, message_latency_s=0.001)
        assert net.transfer_time(0) == pytest.approx(0.001)
        # 1 MB at 100 Mbps = 80 ms of serialization
        assert net.transfer_time(1_000_000) == pytest.approx(0.001 + 0.08)

    def test_gather_is_sequential(self):
        """The paper's simple Python driver collects node by node, so
        latency accumulates linearly with cluster size — the cause of
        Q6/Q14's diminishing returns."""
        net = NetworkModel(message_latency_s=0.002)
        small = net.gather_time([100.0] * 4)
        large = net.gather_time([100.0] * 24)
        assert large == pytest.approx(6 * small)

    def test_broadcast(self):
        net = NetworkModel(message_latency_s=0.001)
        assert net.broadcast_time(0, 10) == pytest.approx(0.01)

    def test_negative_payload(self):
        with pytest.raises(ValueError):
            NetworkModel().transfer_time(-5)

    def test_resend_time_scales_with_retries(self):
        net = NetworkModel(message_latency_s=0.002)
        assert net.resend_time() == pytest.approx(0.002)
        assert net.resend_time(3) == pytest.approx(0.006)
        assert net.resend_time(0) == 0.0

    def test_resend_time_rejects_negative(self):
        with pytest.raises(ValueError):
            NetworkModel().resend_time(-1)
