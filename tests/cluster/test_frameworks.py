"""Framework-overhead model tests (§III-C1's Spark-on-WIMPI finding)."""

import pytest

from repro.cluster.frameworks import (
    FRAMEWORKS,
    Framework,
    feasible_cluster_size,
    framework_pressure,
)
from repro.cluster.node import NodeSpec


class TestFrameworkPressure:
    def test_spark_leaves_about_half_the_memory(self):
        """The paper: JVM + Spark runtime consumed ~500 MB of the 1 GB."""
        spark = FRAMEWORKS["spark"]
        node = NodeSpec()
        usable = node.available_bytes - spark.runtime_overhead_bytes
        assert 300e6 < usable < 500e6

    def test_same_working_set_higher_pressure_under_spark(self):
        ws = 300e6
        assert framework_pressure("spark", ws) > framework_pressure("monetdb", ws)

    def test_pressure_scales_linearly(self):
        assert framework_pressure("monetdb", 400e6) == pytest.approx(
            2 * framework_pressure("monetdb", 200e6)
        )

    def test_overhead_larger_than_node_is_infeasible(self):
        bloated = Framework("bloat", runtime_overhead_bytes=2e9, data_overhead_factor=1.0)
        assert framework_pressure(bloated, 1.0) == float("inf")


class TestFeasibility:
    # TPC-H SF 10-ish: ~3 GB of referenced lineitem columns partitioned,
    # ~400 MB of replicated orders columns.
    PARTITIONED = 3e9
    REPLICATED = 400e6

    def test_monetdb_needs_fewer_nodes_than_spark(self):
        monetdb = feasible_cluster_size("monetdb", self.PARTITIONED, 100e6)
        spark = feasible_cluster_size("spark", self.PARTITIONED, 100e6)
        assert monetdb is not None and spark is not None
        assert monetdb < spark

    def test_sf10_replication_already_sinks_spark(self):
        """At the paper's SF 10 working sets, the replicated orders
        columns alone exceed Spark's post-JVM budget — the setup simply
        cannot run, matching the paper's Spark experience."""
        assert feasible_cluster_size("spark", self.PARTITIONED, self.REPLICATED) is None
        assert feasible_cluster_size("monetdb", self.PARTITIONED, self.REPLICATED) == 8

    def test_replicated_data_can_make_spark_infeasible(self):
        """Replicated tables do not shrink with the cluster; once they
        exceed Spark's post-JVM budget, no cluster size helps — the
        crash regime earlier JVM-based studies hit."""
        result = feasible_cluster_size("spark", 1e9, replicated_bytes=360e6)
        assert result is None
        # MonetDB on the same data is fine.
        assert feasible_cluster_size("monetdb", 1e9, replicated_bytes=360e6) is not None

    def test_single_node_feasible_for_tiny_data(self):
        assert feasible_cluster_size("spark", 50e6, 10e6) == 1

    def test_returns_smallest_size(self):
        n = feasible_cluster_size("monetdb", self.PARTITIONED, self.REPLICATED)
        share = self.PARTITIONED / (n - 1) + self.REPLICATED if n > 1 else None
        if share is not None:
            assert framework_pressure("monetdb", share) > 1.0
