"""NAM hybrid-cluster tests (§III-C1 extension)."""

import pytest

from repro.cluster import WimPiCluster
from repro.cluster.nam import NamCluster


@pytest.fixture(scope="module")
def pair(tpch_db):
    plain = WimPiCluster(4, base_sf=0.01, target_sf=10.0, db=tpch_db)
    hybrid = NamCluster(4, base_sf=0.01, target_sf=10.0, db=tpch_db)
    return plain, hybrid


class TestOffloading:
    def test_thrashing_fragments_offload(self, pair):
        _, hybrid = pair
        run = hybrid.run_query(1)  # Q1 at 4 nodes is in the thrash regime
        assert run.offloaded
        assert run.total_seconds < 5.0

    def test_nam_eliminates_the_cliff(self, pair):
        plain, hybrid = pair
        for q in (1, 5):
            base = plain.run_query(q)
            nam = hybrid.run_query(q)
            assert nam.total_seconds < base.total_seconds / 5, q

    def test_light_fragments_stay_on_pis(self, pair):
        _, hybrid = pair
        run = hybrid.run_query(6)  # Q6 fits comfortably per node
        assert not run.offloaded
        assert run.total_seconds == pytest.approx(run.base.total_seconds)

    def test_q13_single_node_offloads(self, pair):
        _, hybrid = pair
        run = hybrid.run_query(13)
        assert run.offloaded_nodes == [0]
        assert run.total_seconds < run.base.total_seconds

    def test_results_identical_to_plain(self, pair):
        plain, hybrid = pair
        assert hybrid.run_query(1).result.rows == plain.run_query(1).result.rows


class TestHonestAccounting:
    def test_msrp_includes_server(self, pair):
        plain, hybrid = pair
        assert hybrid.total_msrp_usd == pytest.approx(
            plain.total_msrp_usd + 2 * 1389.0
        )

    def test_power_includes_server(self, pair):
        plain, hybrid = pair
        assert hybrid.peak_power_w == pytest.approx(plain.peak_power_w + 190.0)

    def test_custom_server_platform(self, tpch_db):
        hybrid = NamCluster(
            4, memory_server="op-gold", base_sf=0.01, target_sf=10.0, db=tpch_db
        )
        assert hybrid.memory_server.key == "op-gold"
