"""Partitioning tests: disjoint cover of lineitem, replication of the rest."""

import numpy as np
import pytest

from repro.cluster import partition_database, partition_table, replicate_database


class TestPartitionTable:
    def test_disjoint_cover(self, tpch_db):
        li = tpch_db.table("lineitem")
        shards = partition_table(li, 4, "l_orderkey")
        assert sum(s.nrows for s in shards) == li.nrows

    def test_order_locality(self, tpch_db):
        """All lines of one order land on one node (the property the
        driver's correctness depends on)."""
        shards = partition_table(tpch_db.table("lineitem"), 6, "l_orderkey")
        seen: dict[int, int] = {}
        for node, shard in enumerate(shards):
            for key in np.unique(shard.column("l_orderkey").values).tolist():
                assert seen.setdefault(key, node) == node

    def test_roughly_even(self, tpch_db):
        shards = partition_table(tpch_db.table("lineitem"), 8, "l_orderkey")
        sizes = [s.nrows for s in shards]
        assert max(sizes) < 1.2 * min(sizes)

    def test_single_node(self, tpch_db):
        shards = partition_table(tpch_db.table("lineitem"), 1, "l_orderkey")
        assert len(shards) == 1
        assert shards[0].nrows == tpch_db.table("lineitem").nrows

    def test_invalid_node_count(self, tpch_db):
        with pytest.raises(ValueError):
            partition_table(tpch_db.table("lineitem"), 0, "l_orderkey")


class TestPartitionDatabase:
    def test_non_lineitem_tables_shared(self, tpch_db):
        node_dbs = partition_database(tpch_db, 4)
        for node_db in node_dbs:
            for name in tpch_db.table_names:
                if name == "lineitem":
                    assert node_db.table(name).nrows < tpch_db.table(name).nrows
                else:
                    # replicated by reference, not copied
                    assert node_db.table(name) is tpch_db.table(name)

    def test_node_count(self, tpch_db):
        assert len(partition_database(tpch_db, 24)) == 24


class TestReplicatedLayout:
    def test_buddy_holders(self, tpch_db):
        layout = replicate_database(tpch_db, 4, replication=2)
        assert layout.holders == [[0, 1], [1, 2], [2, 3], [3, 0]]

    def test_replication_one_matches_paper_layout(self, tpch_db):
        """replication=1 is the paper's single-copy placement: every
        shard lives only on its own node."""
        layout = replicate_database(tpch_db, 4, replication=1)
        assert layout.holders == [[0], [1], [2], [3]]
        classic = partition_database(tpch_db, 4)
        for node, node_db in enumerate(layout.node_dbs):
            assert (
                node_db.table("lineitem").nrows
                == classic[node].table("lineitem").nrows
            )

    def test_shards_cover_lineitem(self, tpch_db):
        layout = replicate_database(tpch_db, 6, replication=3)
        assert layout.total_rows == tpch_db.table("lineitem").nrows

    def test_db_for_serves_replicas(self, tpch_db):
        layout = replicate_database(tpch_db, 4, replication=2)
        primary = layout.db_for(1, 1)
        buddy = layout.db_for(1, 2)
        assert primary.table("lineitem") is buddy.table("lineitem")
        # Replicated tables are shared by reference with the base catalog.
        assert primary.table("nation") is tpch_db.table("nation")

    def test_db_for_rejects_non_holder(self, tpch_db):
        layout = replicate_database(tpch_db, 4, replication=2)
        with pytest.raises(ValueError, match="does not hold"):
            layout.db_for(0, 3)

    def test_db_for_caches(self, tpch_db):
        layout = replicate_database(tpch_db, 4, replication=2)
        assert layout.db_for(2, 3) is layout.db_for(2, 3)

    def test_replication_bounds(self, tpch_db):
        with pytest.raises(ValueError, match="replication factor"):
            replicate_database(tpch_db, 4, replication=0)
        with pytest.raises(ValueError, match="replication factor"):
            replicate_database(tpch_db, 4, replication=5)

    def test_full_replication(self, tpch_db):
        layout = replicate_database(tpch_db, 3, replication=3)
        for shard in range(3):
            assert sorted(layout.holders[shard]) == [0, 1, 2]
