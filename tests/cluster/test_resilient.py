"""Resilient driver tests: retries, failover, speculation, degradation.

Everything here runs real executions under scripted faults; correctness
is judged against plain single-node execution of the same query.
"""

import math

import pytest

from repro.cluster import (
    FaultPlan,
    InjectedFault,
    RecoveryPolicy,
    ResilientDriver,
    replicate_database,
)
from repro.engine import execute
from repro.tpch import ALL_QUERY_NUMBERS, get_query


def _rows_close(a, b):
    assert len(a) == len(b)
    for ra, rb in zip(a, b):
        assert len(ra) == len(rb)
        for va, vb in zip(ra, rb):
            if isinstance(va, float) or isinstance(vb, float):
                assert math.isclose(float(va), float(vb), rel_tol=1e-6, abs_tol=1e-6)
            else:
                assert va == vb


@pytest.fixture(scope="module")
def layout(tpch_db):
    return replicate_database(tpch_db, 4, replication=2)


def make_driver(layout, faults=(), **policy_kwargs):
    return ResilientDriver(
        layout,
        fault_plan=FaultPlan(tuple(faults)),
        policy=RecoveryPolicy(**policy_kwargs) if policy_kwargs else None,
    )


class TestRecoveryPolicy:
    def test_backoff_doubles_and_caps(self):
        policy = RecoveryPolicy(backoff_base_s=0.1, backoff_cap_s=0.3)
        assert policy.backoff_s(0) == pytest.approx(0.1)
        assert policy.backoff_s(1) == pytest.approx(0.2)
        assert policy.backoff_s(2) == pytest.approx(0.3)  # capped
        assert policy.backoff_s(10) == pytest.approx(0.3)

    def test_validation(self):
        with pytest.raises(ValueError):
            RecoveryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RecoveryPolicy(backoff_base_s=-0.1)
        with pytest.raises(ValueError):
            RecoveryPolicy(backoff_base_s=1.0, backoff_cap_s=0.5)
        with pytest.raises(ValueError):
            RecoveryPolicy(timeout_factor=1.0)
        with pytest.raises(ValueError):
            RecoveryPolicy(fallback_timeout_s=0.0)
        with pytest.raises(ValueError):
            RecoveryPolicy(max_workers=0)


class TestFaultFree:
    def test_matches_single_node(self, tpch_db, tpch_params, layout):
        driver = make_driver(layout)
        run = driver.run(get_query(6), tpch_params)
        single = execute(tpch_db, get_query(6).build(tpch_db, tpch_params))
        _rows_close(run.result.rows, single.rows)
        assert run.coverage == 1.0
        assert not run.degraded
        assert run.recovery.events == []
        assert all(o.status == "ok" for o in run.shard_outcomes)
        assert run.exec_nodes == [0, 1, 2, 3]  # primaries

    def test_zero_overhead_without_faults(self, tpch_params, layout):
        run = make_driver(layout).run(get_query(1), tpch_params)
        assert all(o.overhead_s == 0.0 for o in run.shard_outcomes)


class TestTransientRetry:
    def test_drop_retried_on_same_node(self, tpch_db, tpch_params, layout):
        driver = make_driver(layout, [InjectedFault("drop", 1, drops=2)])
        run = driver.run(get_query(6), tpch_params)
        single = execute(tpch_db, get_query(6).build(tpch_db, tpch_params))
        _rows_close(run.result.rows, single.rows)
        assert run.coverage == 1.0
        assert run.recovery.count("retry") == 2
        assert run.recovery.count("failover") == 0
        outcome = run.shard_outcomes[1]
        assert outcome.status == "ok"  # primary eventually answered
        assert outcome.winner.node == 1
        assert outcome.winner.attempt == 2

    def test_backoff_charged_as_fixed_overhead(self, tpch_params, layout):
        driver = make_driver(layout, [InjectedFault("drop", 1, drops=2)])
        run = driver.run(get_query(6), tpch_params)
        outcome = run.shard_outcomes[1]
        policy, net = driver.policy, driver.network
        expected = sum(policy.backoff_s(a) + net.resend_time() for a in (0, 1))
        assert outcome.overhead_fixed_s == pytest.approx(expected)
        assert outcome.overhead_scaled_s == 0.0

    def test_drops_beyond_retry_budget_fail_over(self, tpch_db, tpch_params, layout):
        driver = make_driver(
            layout, [InjectedFault("drop", 1, drops=3)], max_retries=2
        )
        run = driver.run(get_query(6), tpch_params)
        assert run.coverage == 1.0
        assert run.shard_outcomes[1].status == "recovered"
        assert run.shard_outcomes[1].winner.node == 2  # buddy replica
        assert run.recovery.count("failover") == 1


class TestReplicaRecovery:
    @pytest.mark.parametrize("kind,event", [("oom", "oom"), ("hang", "timeout")])
    def test_dead_primary_recovers_from_buddy(
        self, tpch_db, tpch_params, layout, kind, event
    ):
        driver = make_driver(layout, [InjectedFault(kind, 1)])
        run = driver.run(get_query(1), tpch_params)
        single = execute(tpch_db, get_query(1).build(tpch_db, tpch_params))
        _rows_close(run.result.rows, single.rows)
        assert run.coverage == 1.0
        outcome = run.shard_outcomes[1]
        assert outcome.status == "recovered"
        assert outcome.winner.node == 2
        assert run.recovery.count(event) == 1
        assert run.recovery.count("failover") == 1
        # The abandoned attempt costs estimate-derived (scaled) time.
        assert outcome.overhead_scaled_s > 0

    def test_timeout_charges_factor_times_estimate(self, tpch_params, layout):
        driver = make_driver(layout, [InjectedFault("hang", 2)], timeout_factor=6.0)
        run = driver.run(get_query(6), tpch_params)
        [timeout] = [e for e in run.recovery.events if e.kind == "timeout"]
        estimates = sorted(
            o.winner.estimate_s for o in run.shard_outcomes if o.winner is not None
        )
        median = (estimates[1] + estimates[2]) / 2 if len(estimates) == 4 else estimates[len(estimates) // 2]
        assert timeout.charged_s == pytest.approx(6.0 * median)

    def test_two_dead_nodes_still_complete(self, tpch_db, tpch_params):
        """Replication 3 survives two sticky failures on one shard's
        holders."""
        layout3 = replicate_database(tpch_db, 4, replication=3)
        driver = make_driver(
            layout3, [InjectedFault("oom", 1), InjectedFault("hang", 2)]
        )
        run = driver.run(get_query(6), tpch_params)
        single = execute(tpch_db, get_query(6).build(tpch_db, tpch_params))
        assert run.coverage == 1.0
        _rows_close(run.result.rows, single.rows)


class TestSpeculation:
    def test_straggler_gets_speculative_copy(self, tpch_db, tpch_params, layout):
        driver = make_driver(layout, [InjectedFault("straggler", 2, slowdown=50.0)])
        run = driver.run(get_query(6), tpch_params)
        single = execute(tpch_db, get_query(6).build(tpch_db, tpch_params))
        _rows_close(run.result.rows, single.rows)
        assert run.recovery.count("speculate") == 1
        outcome = run.shard_outcomes[2]
        assert outcome.status == "recovered"
        assert outcome.winner.node == 3  # buddy replica adopted
        # Adopting the copy beats riding out the straggler.
        straggler_s = next(
            r.result.simulated_s
            for r in outcome.attempts
            if r.result is not None and r.result.slowdown > 1.0
        )
        assert outcome.completion_s < straggler_s

    def test_mild_straggler_not_speculated(self, tpch_params, layout):
        """Below the timeout_factor threshold nothing happens."""
        driver = make_driver(
            layout, [InjectedFault("straggler", 2, slowdown=2.0)], timeout_factor=4.0
        )
        run = driver.run(get_query(6), tpch_params)
        assert run.recovery.count("speculate") == 0
        assert run.shard_outcomes[2].winner.node == 2

    def test_speculation_disabled(self, tpch_params, layout):
        driver = make_driver(
            layout, [InjectedFault("straggler", 2, slowdown=50.0)], speculate=False
        )
        run = driver.run(get_query(6), tpch_params)
        assert run.recovery.count("speculate") == 0
        assert run.shard_outcomes[2].winner.node == 2


class TestDegradation:
    def test_unrecoverable_shard_degrades_not_crashes(self, tpch_params, layout):
        # Both holders of shard 1 (nodes 1 and 2) are sticky-dead.
        driver = make_driver(
            layout, [InjectedFault("oom", 1), InjectedFault("hang", 2)]
        )
        run = driver.run(get_query(6), tpch_params)
        assert run.degraded
        assert 0.0 < run.coverage < 1.0
        assert run.result is not None  # partial answer, not a crash
        assert run.recovery.count("lost") >= 1
        lost = [o for o in run.shard_outcomes if o.status == "lost"]
        assert [o.shard for o in lost] == [1]
        assert run.coverage == pytest.approx(
            1.0 - layout.shards[1].nrows / layout.total_rows
        )

    def test_coverage_reported_in_report(self, tpch_params, layout):
        driver = make_driver(
            layout, [InjectedFault("oom", 1), InjectedFault("hang", 2)]
        )
        run = driver.run(get_query(6), tpch_params)
        text = run.report()
        assert "DEGRADED" in text
        assert "lost" in text
        assert f"coverage {run.coverage:.3f}" in text

    def test_all_nodes_dead_yields_no_result(self, tpch_db, tpch_params):
        layout1 = replicate_database(tpch_db, 2, replication=1)
        driver = make_driver(
            layout1, [InjectedFault("oom", 0), InjectedFault("oom", 1)]
        )
        run = driver.run(get_query(6), tpch_params)
        assert run.result is None
        assert run.coverage == 0.0
        assert run.degraded


class TestSingleNodeFallback:
    def test_non_lineitem_query_fails_over(self, tpch_db, tpch_params, layout):
        driver = make_driver(layout, [InjectedFault("oom", 0)])
        run = driver.run(get_query(11), tpch_params)  # no lineitem
        single = execute(tpch_db, get_query(11).build(tpch_db, tpch_params))
        assert run.single_node
        _rows_close(run.result.rows, single.rows)
        assert run.exec_nodes == [1]  # node 0 skipped
        assert run.recovery.count("failover") == 1

    @pytest.mark.parametrize("number", [15, 17, 20])
    def test_undistributable_lineitem_queries_use_full_catalog(
        self, tpch_db, tpch_params, layout, number
    ):
        """Q15/Q20 (nested lineitem scans) and Q17 (per-shard divergent
        nested AVG) must run against the whole table, not one shard."""
        run = make_driver(layout).run(get_query(number), tpch_params)
        single = execute(tpch_db, get_query(number).build(tpch_db, tpch_params))
        assert run.single_node
        _rows_close(run.result.rows, single.rows)


class TestDeterminism:
    def test_same_plan_same_everything(self, tpch_params, layout):
        faults = [
            InjectedFault("oom", 0),
            InjectedFault("drop", 2, drops=1),
            InjectedFault("straggler", 3, slowdown=40.0),
        ]
        runs = [
            make_driver(layout, faults).run(get_query(1), tpch_params)
            for _ in range(2)
        ]
        assert runs[0].result.rows == runs[1].result.rows  # bit-identical
        assert runs[0].recovery.signature() == runs[1].recovery.signature()
        assert runs[0].recovery.charged_s == runs[1].recovery.charged_s
        assert [o.completion_s for o in runs[0].shard_outcomes] == [
            o.completion_s for o in runs[1].shard_outcomes
        ]

    def test_chaos_seed_reproducible_end_to_end(self, tpch_db, tpch_params):
        def run_once():
            layout = replicate_database(tpch_db, 4, replication=2)
            driver = ResilientDriver(layout, fault_plan=FaultPlan.chaos(5, 4))
            return driver.run(get_query(6), tpch_params)

        a, b = run_once(), run_once()
        assert a.recovery.signature() == b.recovery.signature()
        if a.result is not None:
            assert a.result.rows == b.result.rows


class TestAllQueriesFaultFree:
    @pytest.mark.parametrize("number", ALL_QUERY_NUMBERS)
    def test_matches_single_node(self, tpch_db, tpch_params, layout, number):
        """Every one of the 22 queries agrees with plain execution under
        the resilient runtime — including Q15/Q17/Q20, which the classic
        driver's shard-local fallback would get wrong."""
        run = make_driver(layout).run(get_query(number), tpch_params)
        single = execute(tpch_db, get_query(number).build(tpch_db, tpch_params))
        _rows_close(run.result.rows, single.rows)
        assert run.coverage == 1.0
