"""Chaos tracing: under injected faults, the query trace must carry
exactly the recovery events the RecoveryLog reports — same kinds, same
shards/nodes/attempts, same order — and a same-seed replay must produce
an identical event sequence."""

import pytest

from repro.cluster import FaultPlan, ResilientDriver, replicate_database
from repro.obs.trace import Tracer, iter_spans
from repro.tpch import get_query

CHAOS_KW = dict(p_oom=0.2, p_hang=0.15, p_drop=0.2, p_straggler=0.2)


@pytest.fixture(scope="module")
def layout(tpch_db):
    return replicate_database(tpch_db, 4, replication=2)


def _run_traced(layout, plan, number, params):
    tracer = Tracer()
    driver = ResilientDriver(layout, fault_plan=plan, tracer=tracer)
    run = driver.run(get_query(number), params)
    assert len(tracer.roots) == 1
    root = tracer.roots[0]
    assert root.kind == "query" and root.name == f"cluster:Q{number}"
    return run, root


def _recovery_events(root):
    """Root-span recovery events as (kind, shard, node, attempt)."""
    return [
        (e["name"], e["attrs"]["shard"], e["attrs"]["node"], e["attrs"]["attempt"])
        for e in root.events
    ]


class TestChaosTraceMirrorsRecoveryLog:
    def test_events_match_log_exactly(self, layout, tpch_params):
        plan = FaultPlan.chaos(5, 4, **CHAOS_KW)
        run, root = _run_traced(layout, plan, 6, tpch_params)
        assert run.recovery.events, "chaos seed 5 should inject recoverable faults"
        assert tuple(_recovery_events(root)) == run.recovery.signature()
        for event, logged in zip(root.events, run.recovery.events):
            assert event["attrs"]["charged_s"] == logged.charged_s
            assert event["attrs"]["detail"] == logged.detail
        assert root.attrs["recovery_events"] == len(run.recovery.events)
        assert root.attrs["coverage"] == 1.0

    @pytest.mark.parametrize("seed", [5, 11, 23])
    def test_same_seed_replays_identically(self, layout, tpch_params, seed):
        plan = FaultPlan.chaos(seed, 4, **CHAOS_KW)
        first, root_a = _run_traced(layout, plan, 6, tpch_params)
        replay = FaultPlan.chaos(seed, 4, **CHAOS_KW)
        second, root_b = _run_traced(layout, replay, 6, tpch_params)
        assert _recovery_events(root_a) == _recovery_events(root_b)
        assert first.recovery.signature() == second.recovery.signature()
        assert first.result.rows == second.result.rows

    def test_clean_plan_has_no_recovery_events(self, layout, tpch_params):
        run, root = _run_traced(layout, FaultPlan.none(), 6, tpch_params)
        assert run.recovery.events == []
        assert root.events == []
        assert root.attrs["recovery_events"] == 0

    def test_shard_spans_record_attempts(self, layout, tpch_params):
        plan = FaultPlan.chaos(5, 4, **CHAOS_KW)
        run, root = _run_traced(layout, plan, 6, tpch_params)
        shards = [s for s in iter_spans(root) if s.kind == "shard"]
        assert len(shards) == layout.n_nodes
        for span in shards:
            attempts = [e for e in span.events if e["name"] == "attempt"]
            assert attempts, f"{span.name} recorded no attempt events"
            assert attempts[-1]["attrs"]["outcome"] in ("ok", "drop", "oom", "hang")

    def test_single_node_route_still_traced(self, layout, tpch_params):
        # Q13 avoids lineitem -> single-node path, still one query span.
        run, root = _run_traced(layout, FaultPlan.none(), 13, tpch_params)
        assert run.single_node
        assert root.attrs["single_node"] is True
        shards = [s for s in iter_spans(root) if s.kind == "shard"]
        assert len(shards) == 1 and shards[0].name == "shard:0"
