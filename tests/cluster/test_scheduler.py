"""Workload-simulator tests (§III-B2 power gating)."""

import pytest

from repro.cluster.scheduler import (
    PowerPolicy,
    QueryArrival,
    WorkloadSimulator,
    poisson_workload,
)


def _trace(*pairs):
    return [QueryArrival(arrival_s=a, runtime_s=r) for a, r in pairs]


class TestAccounting:
    def test_busy_time_is_sum_of_runtimes(self):
        sim = WorkloadSimulator(10.0, 2.0, PowerPolicy(gate_after_idle_s=None))
        result = sim.run(_trace((0, 5), (100, 3)))
        assert result.busy_s == 8.0
        assert result.queries == 2

    def test_always_on_idles_between_queries(self):
        sim = WorkloadSimulator(10.0, 2.0, PowerPolicy(gate_after_idle_s=None))
        result = sim.run(_trace((0, 5), (100, 5)))
        assert result.idle_on_s == 95.0
        assert result.gated_s == 0.0
        # energy = busy*10 + idle*2
        assert result.energy_wh == pytest.approx((10 * 10 + 95 * 2) / 3600)

    def test_gating_converts_idle_to_gated(self):
        sim = WorkloadSimulator(10.0, 2.0, PowerPolicy(gate_after_idle_s=30, boot_s=10))
        result = sim.run(_trace((0, 5), (100, 5)))
        assert result.idle_on_s == 30.0
        assert result.gated_s == 65.0
        assert result.boot_s == 10.0

    def test_gating_saves_energy_on_sparse_load(self):
        always = WorkloadSimulator(10.0, 2.0, PowerPolicy(gate_after_idle_s=None))
        gated = WorkloadSimulator(10.0, 2.0, PowerPolicy(gate_after_idle_s=30, boot_s=10))
        trace = _trace((0, 5), (1000, 5), (2000, 5))
        assert gated.run(trace).energy_wh < always.run(trace).energy_wh

    def test_gating_costs_latency(self):
        always = WorkloadSimulator(10.0, 2.0, PowerPolicy(gate_after_idle_s=None))
        gated = WorkloadSimulator(10.0, 2.0, PowerPolicy(gate_after_idle_s=30, boot_s=10))
        trace = _trace((0, 5), (1000, 5))
        assert gated.run(trace).mean_latency_s > always.run(trace).mean_latency_s

    def test_back_to_back_queries_never_gate(self):
        gated = WorkloadSimulator(10.0, 2.0, PowerPolicy(gate_after_idle_s=30, boot_s=10))
        result = gated.run(_trace((0, 5), (5, 5), (10, 5)))
        assert result.gated_s == 0.0 and result.boot_s == 0.0
        assert result.utilization == pytest.approx(1.0)

    def test_queued_arrival_during_execution(self):
        sim = WorkloadSimulator(10.0, 2.0, PowerPolicy(gate_after_idle_s=None))
        # Second query arrives while the first still runs: FIFO queueing.
        result = sim.run(_trace((0, 10), (5, 10)))
        assert result.total_time_s == 20.0
        assert result.mean_latency_s == pytest.approx((10 + 15) / 2)

    def test_empty_trace_rejected(self):
        sim = WorkloadSimulator(10.0, 2.0, PowerPolicy())
        with pytest.raises(ValueError):
            sim.run([])


class TestPaperArgument:
    def test_wimpi_gated_beats_server_on_sparse_analytics(self):
        """The §III-B2 claim: on a bursty/idle-heavy workload, a cluster
        that powers nodes off beats an always-on server on energy even
        though the server is faster per query."""
        trace = poisson_workload(duration_s=8 * 3600, queries_per_hour=6,
                                 runtime_s=2.0)
        wimpi = WorkloadSimulator.for_wimpi(24).run(trace)
        server_trace = [
            QueryArrival(q.arrival_s, q.runtime_s / 3.0) for q in trace
        ]  # the server runs each query ~3x faster
        server = WorkloadSimulator.for_server("op-e5").run(server_trace)
        assert wimpi.energy_wh < server.energy_wh

    def test_wimpi_always_on_vs_gated(self):
        trace = poisson_workload(duration_s=4 * 3600, queries_per_hour=4)
        gated = WorkloadSimulator.for_wimpi(24).run(trace)
        always = WorkloadSimulator.for_wimpi(
            24, PowerPolicy(gate_after_idle_s=None)
        ).run(trace)
        assert gated.energy_wh < always.energy_wh
        assert gated.busy_s == always.busy_s  # same work done

    def test_poisson_workload_reproducible(self):
        a = poisson_workload(3600, 10, seed=3)
        b = poisson_workload(3600, 10, seed=3)
        assert [q.arrival_s for q in a] == [q.arrival_s for q in b]
        c = poisson_workload(3600, 10, seed=4)
        assert [q.arrival_s for q in a] != [q.arrival_s for q in c]

    def test_poisson_rate_roughly_respected(self):
        trace = poisson_workload(10 * 3600, 30, seed=1)
        assert 200 < len(trace) < 400  # expectation 300

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            poisson_workload(0, 10)
        with pytest.raises(ValueError):
            WorkloadSimulator(-1.0, 2.0, PowerPolicy())


class TestValidation:
    def test_zero_active_power_rejected(self):
        with pytest.raises(ValueError, match="active power must be positive"):
            WorkloadSimulator(0.0, 2.0, PowerPolicy())

    def test_negative_idle_power_rejected(self):
        with pytest.raises(ValueError, match="idle power must be non-negative"):
            WorkloadSimulator(10.0, -0.1, PowerPolicy())

    def test_zero_idle_power_allowed(self):
        """An ideal fully-proportional machine draws nothing at idle."""
        sim = WorkloadSimulator(10.0, 0.0, PowerPolicy(gate_after_idle_s=None))
        result = sim.run(_trace((0, 5), (100, 5)))
        assert result.energy_wh == pytest.approx(10 * 10 / 3600)

    def test_power_policy_rejects_bad_fields(self):
        with pytest.raises(ValueError, match="gate_after_idle_s"):
            PowerPolicy(gate_after_idle_s=0.0)
        with pytest.raises(ValueError, match="boot_s"):
            PowerPolicy(boot_s=-1.0)
        with pytest.raises(ValueError, match="boot_power_fraction"):
            PowerPolicy(boot_power_fraction=1.5)
        with pytest.raises(ValueError, match="boot_power_fraction"):
            PowerPolicy(boot_power_fraction=-0.1)

    def test_power_policy_accepts_edges(self):
        PowerPolicy(gate_after_idle_s=None, boot_s=0.0, boot_power_fraction=0.0)
        PowerPolicy(boot_power_fraction=1.0)
