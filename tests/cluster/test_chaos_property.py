"""Property-based chaos testing (Hypothesis).

The contract the resilient runtime makes: *any* seeded fault plan that
is recoverable under replication 2 — every shard keeps at least one
holder that is not sticky-dead — yields results identical to the
committed fault-free goldens for all 22 TPC-H queries; an unrecoverable
plan degrades gracefully, reporting coverage < 1.0 instead of crashing.
"""

import json
import math
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster import FaultPlan, RecoveryPolicy, ResilientDriver, replicate_database
from repro.tpch import ALL_QUERY_NUMBERS, get_query

N_NODES = 4
REPLICATION = 2

GOLDEN = json.loads(
    (Path(__file__).parent.parent / "tpch" / "data" / "golden_sf001_seed42.json").read_text()
)


def _numeric_sum(rows) -> float:
    total = 0.0
    for row in rows:
        for value in row:
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                if isinstance(value, float) and math.isnan(value):
                    continue
                total += float(value)
    return total


def _recoverable(plan: FaultPlan, layout) -> bool:
    """True when every shard keeps at least one live holder."""
    dead = plan.dead_nodes
    return all(any(n not in dead for n in holders) for holders in layout.holders)


def _assert_matches_golden(number: int, result) -> None:
    expected = GOLDEN[str(number)]
    assert len(result) == expected["rows"]
    assert result.column_names == expected["columns"]
    assert _numeric_sum(result.rows) == pytest.approx(
        expected["numeric_sum"], rel=1e-6, abs=0.02
    )


# Chaos probabilities are cranked well above the defaults so that drawn
# plans actually exercise the machinery (and unrecoverable plans occur).
def _chaos(seed: int) -> FaultPlan:
    return FaultPlan.chaos(
        seed, N_NODES, p_oom=0.2, p_hang=0.15, p_drop=0.2, p_straggler=0.2
    )


class TestChaosProperties:
    @settings(
        max_examples=5,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_recoverable_plans_match_goldens(self, tpch_db, tpch_params, seed):
        layout = replicate_database(tpch_db, N_NODES, replication=REPLICATION)
        plan = _chaos(seed)
        if not _recoverable(plan, layout):
            # Unrecoverable draws are covered by the degradation property.
            driver = ResilientDriver(layout, fault_plan=plan)
            run = driver.run(get_query(6), tpch_params)
            assert run.degraded and run.coverage < 1.0
            return
        driver = ResilientDriver(layout, fault_plan=plan)
        for number in ALL_QUERY_NUMBERS:
            run = driver.run(get_query(number), tpch_params)
            assert run.coverage == 1.0, (
                f"Q{number} lost data under recoverable plan {plan.describe()}"
            )
            _assert_matches_golden(number, run.result)

    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_degraded_runs_report_honest_coverage(self, tpch_db, tpch_params, seed):
        """Whatever the plan, a lineitem query either covers everything
        or says exactly how much survived — never crashes, never lies."""
        layout = replicate_database(tpch_db, N_NODES, replication=REPLICATION)
        plan = _chaos(seed)
        driver = ResilientDriver(layout, fault_plan=plan)
        run = driver.run(get_query(1), tpch_params)
        if _recoverable(plan, layout):
            assert run.coverage == 1.0
        else:
            assert run.coverage < 1.0
            dead = plan.dead_nodes
            lost_rows = sum(
                layout.shards[s].nrows
                for s, holders in enumerate(layout.holders)
                if all(n in dead for n in holders)
            )
            assert run.coverage == pytest.approx(
                1.0 - lost_rows / layout.total_rows
            )

    @settings(
        max_examples=5,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_runs_are_replayable(self, tpch_db, tpch_params, seed):
        """Same seed, same layout -> same recovery log and same rows."""
        plan = _chaos(seed)
        outcomes = []
        for _ in range(2):
            layout = replicate_database(tpch_db, N_NODES, replication=REPLICATION)
            driver = ResilientDriver(
                layout, fault_plan=plan, policy=RecoveryPolicy(max_workers=3)
            )
            outcomes.append(driver.run(get_query(6), tpch_params))
        a, b = outcomes
        assert a.recovery.signature() == b.recovery.signature()
        assert a.coverage == b.coverage
        if a.result is not None:
            assert a.result.rows == b.result.rows
