"""Fault-injection layer tests: plans are deterministic values, nodes
fail exactly as scripted (paper §III-C4 failure modes)."""

import pytest

from repro.cluster import (
    FAULT_KINDS,
    FaultPlan,
    FaultingNode,
    InjectedFault,
    TransientNetworkError,
)
from repro.cluster.reliability import NodeUnresponsiveError, QueryOutOfMemoryError
from repro.engine import Result, execute
from repro.tpch import get_query


class TestInjectedFault:
    def test_valid_kinds(self):
        for kind in FAULT_KINDS:
            assert InjectedFault(kind, 0).kind == kind

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            InjectedFault("meteor", 0)

    def test_negative_node_rejected(self):
        with pytest.raises(ValueError):
            InjectedFault("oom", -1)

    def test_drop_needs_positive_drops(self):
        with pytest.raises(ValueError):
            InjectedFault("drop", 0, drops=0)

    def test_straggler_slowdown_must_exceed_one(self):
        with pytest.raises(ValueError):
            InjectedFault("straggler", 0, slowdown=1.0)

    def test_pressure_must_overcommit(self):
        with pytest.raises(ValueError):
            InjectedFault("oom", 0, pressure=0.9)

    def test_sticky(self):
        assert InjectedFault("oom", 0).sticky
        assert InjectedFault("hang", 0).sticky
        assert not InjectedFault("drop", 0).sticky
        assert not InjectedFault("straggler", 0).sticky


class TestFaultPlan:
    def test_one_fault_per_node(self):
        with pytest.raises(ValueError, match="one injected fault per node"):
            FaultPlan((InjectedFault("oom", 1), InjectedFault("drop", 1)))

    def test_fault_for(self):
        plan = FaultPlan((InjectedFault("oom", 2),))
        assert plan.fault_for(2).kind == "oom"
        assert plan.fault_for(0) is None

    def test_dead_nodes_are_sticky_only(self):
        plan = FaultPlan((
            InjectedFault("oom", 0),
            InjectedFault("hang", 1),
            InjectedFault("drop", 2),
            InjectedFault("straggler", 3),
        ))
        assert plan.dead_nodes == frozenset({0, 1})

    def test_none_plan(self):
        plan = FaultPlan.none()
        assert plan.faults == ()
        assert plan.dead_nodes == frozenset()
        assert plan.describe() == "fault plan: none"

    def test_describe_mentions_every_fault(self):
        plan = FaultPlan((
            InjectedFault("straggler", 1, slowdown=6.0),
            InjectedFault("drop", 0, drops=2),
        ))
        text = plan.describe()
        assert "node 0: drop x2" in text
        assert "node 1: straggler x6.0" in text


class TestChaos:
    def test_same_seed_same_plan(self):
        assert FaultPlan.chaos(7, 16) == FaultPlan.chaos(7, 16)

    def test_different_seeds_differ(self):
        plans = {FaultPlan.chaos(seed, 16).faults for seed in range(20)}
        assert len(plans) > 1

    def test_at_most_one_fault_per_node(self):
        for seed in range(10):
            plan = FaultPlan.chaos(seed, 24)
            nodes = [f.node for f in plan.faults]
            assert len(nodes) == len(set(nodes))

    def test_probability_zero_is_faultless(self):
        plan = FaultPlan.chaos(1, 8, p_oom=0, p_hang=0, p_drop=0, p_straggler=0)
        assert plan.faults == ()

    def test_probability_validation(self):
        with pytest.raises(ValueError):
            FaultPlan.chaos(1, 8, p_oom=0.9, p_drop=0.9)
        with pytest.raises(ValueError):
            FaultPlan.chaos(1, 8, p_oom=-0.1)
        with pytest.raises(ValueError):
            FaultPlan.chaos(1, 0)

    def test_seed_recorded(self):
        assert FaultPlan.chaos(11, 4).seed == 11


class TestFaultingNode:
    @pytest.fixture(scope="class")
    def plan6(self, tpch_db, tpch_params):
        return get_query(6).build(tpch_db, tpch_params).node

    def test_healthy_node_returns_real_result(self, tpch_db, tpch_params, plan6):
        node = FaultingNode(0)
        attempt = node.execute(tpch_db, plan6, shard=3, attempt=0)
        reference = execute(tpch_db, get_query(6).build(tpch_db, tpch_params))
        assert Result(attempt.frame, attempt.profile).rows == reference.rows
        assert attempt.shard == 3
        assert attempt.estimate_s > 0
        assert attempt.simulated_s == attempt.estimate_s  # no slowdown

    def test_oom_raises_every_attempt(self, tpch_db, plan6):
        node = FaultingNode(1, FaultPlan((InjectedFault("oom", 1, pressure=1.4),)))
        for attempt in range(3):
            with pytest.raises(QueryOutOfMemoryError) as excinfo:
                node.execute(tpch_db, plan6, attempt=attempt)
            assert excinfo.value.node == 1
            assert excinfo.value.pressure == pytest.approx(1.4)

    def test_hang_raises_every_attempt(self, tpch_db, plan6):
        node = FaultingNode(2, FaultPlan((InjectedFault("hang", 2),)))
        with pytest.raises(NodeUnresponsiveError):
            node.execute(tpch_db, plan6)

    def test_drop_recovers_after_scripted_attempts(self, tpch_db, plan6):
        node = FaultingNode(0, FaultPlan((InjectedFault("drop", 0, drops=2),)))
        for attempt in range(2):
            with pytest.raises(TransientNetworkError):
                node.execute(tpch_db, plan6, attempt=attempt)
        result = node.execute(tpch_db, plan6, attempt=2)
        assert result.frame.nrows == 1

    def test_straggler_succeeds_with_slowdown(self, tpch_db, plan6):
        node = FaultingNode(0, FaultPlan((InjectedFault("straggler", 0, slowdown=5.0),)))
        attempt = node.execute(tpch_db, plan6)
        assert attempt.slowdown == 5.0
        assert attempt.simulated_s == pytest.approx(5.0 * attempt.estimate_s)

    def test_fault_on_other_node_is_ignored(self, tpch_db, plan6):
        node = FaultingNode(0, FaultPlan((InjectedFault("oom", 1),)))
        assert node.execute(tpch_db, plan6).frame.nrows == 1
