"""Fig. 4 tests: strategy ordering, Pi gap compression, 2-19x band."""

import statistics

import pytest

from repro.core.profiler import TPCHProfiler
from repro.engine.profile import OperatorWork, WorkProfile
from repro.strategies import (
    ACCESS_AWARE, ALL_STRATEGIES, DATA_CENTRIC, HYBRID, STRATEGY_QUERIES,
    run_matrix,
)


@pytest.fixture(scope="module")
def cells():
    profiler = TPCHProfiler(base_sf=0.01)
    runs = run_matrix(profiler)
    return {(r.platform, r.strategy, r.query): r.seconds for r in runs}


class TestStrategyDefinitions:
    def test_three_strategies(self):
        assert [s.name for s in ALL_STRATEGIES] == [
            "data-centric", "hybrid", "access-aware",
        ]

    def test_eight_queries(self):
        assert STRATEGY_QUERIES == (1, 3, 4, 5, 6, 13, 14, 19)

    def test_factor_ordering_encodes_paradigms(self):
        assert DATA_CENTRIC.ops_factor > HYBRID.ops_factor > ACCESS_AWARE.ops_factor
        assert DATA_CENTRIC.rand_factor > HYBRID.rand_factor > ACCESS_AWARE.rand_factor

    def test_transform_scales_profile(self):
        profile = WorkProfile([OperatorWork("scan", ops=100, seq_bytes=100,
                                            rand_accesses=100, tuples_in=10)])
        shaped = DATA_CENTRIC.transform(profile)
        assert shaped.ops == pytest.approx(100 * DATA_CENTRIC.ops_factor)
        assert shaped.rand_accesses == pytest.approx(100 * DATA_CENTRIC.rand_factor)
        assert shaped.tuples == 10  # logical counts unchanged

    def test_transform_does_not_mutate_input(self):
        profile = WorkProfile([OperatorWork("scan", ops=100)])
        DATA_CENTRIC.transform(profile)
        assert profile.ops == 100


class TestFig4Shape:
    def test_full_matrix_size(self, cells):
        assert len(cells) == 3 * 3 * 8  # platforms x strategies x queries

    @pytest.mark.parametrize("platform", ["op-e5", "op-gold", "pi3b+"])
    @pytest.mark.parametrize("query", STRATEGY_QUERIES)
    def test_access_aware_fastest_data_centric_slowest(self, cells, platform, query):
        """'access-aware always performs the best and data-centric the
        worst, with hybrid somewhere in between' — on every platform."""
        dc = cells[(platform, "data-centric", query)]
        hy = cells[(platform, "hybrid", query)]
        aa = cells[(platform, "access-aware", query)]
        assert aa < hy < dc

    def test_pi_gap_compression(self, cells):
        """'the performance advantages of the hybrid and access-aware
        strategies on the Raspberry Pi 3B+ were less pronounced'."""
        def median_gap(platform):
            return statistics.median(
                cells[(platform, "data-centric", q)] / cells[(platform, "access-aware", q)]
                for q in STRATEGY_QUERIES
            )

        assert median_gap("pi3b+") < median_gap("op-e5")
        assert median_gap("pi3b+") < median_gap("op-gold")

    def test_pi_2_to_19x_slower_band(self, cells):
        """'runtimes for the Raspberry Pi 3B+ range between 2-19x slower
        than the same strategy executed on the traditional servers'."""
        for server in ("op-e5", "op-gold"):
            for strategy in ("data-centric", "hybrid", "access-aware"):
                for q in STRATEGY_QUERIES:
                    ratio = cells[("pi3b+", strategy, q)] / cells[(server, strategy, q)]
                    assert 2.0 <= ratio <= 19.0, (server, strategy, q, ratio)

    def test_compiled_kernels_faster_than_dbms(self, cells, profiler=None):
        """Hand-coded single-threaded kernels eliminate system overhead:
        the best strategy beats the modeled MonetDB runtime on small
        queries despite using one core."""
        from repro.hardware import PLATFORMS, PerformanceModel

        profiler = TPCHProfiler(base_sf=0.01)
        model = PerformanceModel()
        dbms_q6 = model.predict(profiler.profile(6, 1.0).profile, PLATFORMS["op-e5"])
        compiled_q6 = cells[("op-e5", "access-aware", 6)]
        assert compiled_q6 < dbms_q6 * 25  # same order of magnitude
