"""Property-based tests (hypothesis) for core data structures and
invariants: join/aggregate algebra vs. naive models, sort laws, LIKE
semantics, profile scaling, thrash monotonicity, partitioning."""

import math
import re
from collections import defaultdict

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import partition_table, thrash_multiplier
from repro.engine import Column, Database, Q, Table, agg, col, execute
from repro.engine.expr import _like_to_regex
from repro.engine.profile import OperatorWork, WorkProfile
from repro.engine.types import date_to_days, days_to_date

ints = st.lists(st.integers(min_value=-50, max_value=50), min_size=1, max_size=40)
keys = st.lists(st.integers(min_value=0, max_value=8), min_size=1, max_size=40)
floats = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, width=32)


def _table(name, **columns):
    return Table(name, columns)


class TestColumnLaws:
    @given(ints)
    def test_filter_commutes_with_decode(self, values):
        column = Column.from_ints(values)
        mask = np.asarray([v % 2 == 0 for v in values])
        assert column.filter(mask).to_list() == [v for v in values if v % 2 == 0]

    @given(ints)
    def test_take_identity_permutation(self, values):
        column = Column.from_ints(values)
        assert column.take(np.arange(len(values))).to_list() == values

    @given(ints, ints)
    def test_concat_length_and_content(self, a, b):
        out = Column.concat([Column.from_ints(a), Column.from_ints(b)])
        assert out.to_list() == a + b

    @given(st.lists(st.sampled_from(["x", "y", "zz", "w"]), min_size=1, max_size=30))
    def test_string_roundtrip_through_dictionary(self, values):
        assert Column.from_strings(values).to_list() == values

    @given(st.integers(min_value=-200_000, max_value=200_000))
    def test_date_roundtrip(self, days):
        assert date_to_days(days_to_date(days)) == days


class TestJoinAlgebra:
    @given(keys, keys)
    @settings(max_examples=50, deadline=None)
    def test_inner_join_matches_nested_loop(self, left, right):
        db = Database()
        db.add(_table("l", lk=Column.from_ints(left)))
        db.add(_table("r", rk=Column.from_ints(right),
                      rv=Column.from_ints(range(len(right)))))
        result = execute(db, Q(db).scan("l").join("r", on=[("lk", "rk")]))
        expected = sorted(
            (lv, rv, i)
            for lv in left
            for i, rv in enumerate(right)
            if lv == rv
        )
        ours = sorted(zip(result.column("lk"), result.column("rk"), result.column("rv")))
        assert ours == expected

    @given(keys, keys)
    @settings(max_examples=50, deadline=None)
    def test_semi_plus_anti_partition_left(self, left, right):
        db = Database()
        db.add(_table("l", lk=Column.from_ints(left)))
        db.add(_table("r", rk=Column.from_ints(right)))
        semi = execute(db, Q(db).scan("l").join("r", on=[("lk", "rk")], how="semi"))
        anti = execute(db, Q(db).scan("l").join("r", on=[("lk", "rk")], how="anti"))
        assert sorted(semi.column("lk") + anti.column("lk")) == sorted(left)
        right_set = set(right)
        assert all(v in right_set for v in semi.column("lk"))
        assert all(v not in right_set for v in anti.column("lk"))

    @given(keys, keys)
    @settings(max_examples=50, deadline=None)
    def test_left_join_row_count(self, left, right):
        db = Database()
        db.add(_table("l", lk=Column.from_ints(left)))
        db.add(_table("r", rk=Column.from_ints(right)))
        result = execute(db, Q(db).scan("l").join("r", on=[("lk", "rk")], how="left"))
        from collections import Counter

        right_counts = Counter(right)
        expected = sum(max(1, right_counts[v]) for v in left)
        assert len(result) == expected


class TestAggregateAlgebra:
    @given(st.lists(st.tuples(st.integers(0, 5), st.integers(-100, 100)),
                    min_size=1, max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_grouped_sum_count_match_naive(self, pairs):
        groups = [g for g, _ in pairs]
        values = [v for _, v in pairs]
        db = Database()
        db.add(_table("t", g=Column.from_ints(groups), v=Column.from_ints(values)))
        result = execute(db, Q(db).scan("t").aggregate(
            by=["g"], s=agg.sum(col("v")), n=agg.count_star()).sort("g"))
        naive_sum = defaultdict(int)
        naive_count = defaultdict(int)
        for g, v in pairs:
            naive_sum[g] += v
            naive_count[g] += 1
        assert result.column("g") == sorted(naive_sum)
        assert result.column("s") == [float(naive_sum[g]) for g in sorted(naive_sum)]
        assert result.column("n") == [naive_count[g] for g in sorted(naive_sum)]

    @given(st.lists(st.tuples(st.integers(0, 3), st.integers(-100, 100)),
                    min_size=1, max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_min_max_bound_all_values(self, pairs):
        db = Database()
        db.add(_table("t", g=Column.from_ints([g for g, _ in pairs]),
                      v=Column.from_ints([v for _, v in pairs])))
        result = execute(db, Q(db).scan("t").aggregate(
            by=["g"], lo=agg.min(col("v")), hi=agg.max(col("v"))).sort("g"))
        per_group = defaultdict(list)
        for g, v in pairs:
            per_group[g].append(v)
        for g, lo, hi in zip(result.column("g"), result.column("lo"), result.column("hi")):
            assert lo == min(per_group[g])
            assert hi == max(per_group[g])

    @given(st.lists(st.integers(-1000, 1000), min_size=1, max_size=60),
           st.integers(min_value=2, max_value=6))
    @settings(max_examples=50, deadline=None)
    def test_partial_aggregation_is_exact(self, values, n_parts):
        """sum of per-partition sums == global sum — the algebraic fact
        the distributed driver relies on."""
        parts = [values[i::n_parts] for i in range(n_parts)]
        assert sum(sum(p) for p in parts) == sum(values)
        assert min((min(p) for p in parts if p), default=None) == min(values)


class TestSortLaws:
    @given(ints)
    @settings(max_examples=50, deadline=None)
    def test_sort_is_ordered_permutation(self, values):
        db = Database()
        db.add(_table("t", v=Column.from_ints(values)))
        result = execute(db, Q(db).scan("t").sort("v"))
        out = result.column("v")
        assert out == sorted(values)

    @given(st.lists(st.tuples(st.integers(0, 3), st.integers(0, 100)),
                    min_size=1, max_size=40))
    @settings(max_examples=50, deadline=None)
    def test_multikey_sort_is_stable_lexicographic(self, pairs):
        db = Database()
        db.add(_table("t", a=Column.from_ints([a for a, _ in pairs]),
                      b=Column.from_ints([b for _, b in pairs])))
        result = execute(db, Q(db).scan("t").sort("a", ("b", "desc")))
        out = list(zip(result.column("a"), result.column("b")))
        assert out == sorted(pairs, key=lambda p: (p[0], -p[1]))


class TestLikeSemantics:
    @staticmethod
    def _naive_like(text, pattern):
        """Reference DP matcher for SQL LIKE."""
        memo = {}

        def match(i, j):
            if (i, j) in memo:
                return memo[(i, j)]
            if j == len(pattern):
                out = i == len(text)
            elif pattern[j] == "%":
                out = match(i, j + 1) or (i < len(text) and match(i + 1, j))
            elif pattern[j] == "_":
                out = i < len(text) and match(i + 1, j + 1)
            else:
                out = i < len(text) and text[i] == pattern[j] and match(i + 1, j + 1)
            memo[(i, j)] = out
            return out

        return match(0, 0)

    @given(st.text(alphabet="ab%_", min_size=0, max_size=6),
           st.text(alphabet="ab", min_size=0, max_size=8))
    @settings(max_examples=200, deadline=None)
    def test_like_regex_matches_reference(self, pattern, text):
        regex = _like_to_regex(pattern)
        assert bool(regex.match(text)) == self._naive_like(text, pattern)


class TestProfileLaws:
    @given(st.floats(min_value=0.1, max_value=1e4, allow_nan=False),
           st.floats(min_value=0.0, max_value=1e9, allow_nan=False),
           st.floats(min_value=0.0, max_value=1e9, allow_nan=False))
    def test_scaling_is_linear(self, factor, seq, ops):
        profile = WorkProfile([OperatorWork("scan", seq_bytes=seq, ops=ops)])
        scaled = profile.scaled(factor)
        assert scaled.seq_bytes == pytest.approx(seq * factor)
        assert scaled.ops == pytest.approx(ops * factor)

    @given(st.floats(min_value=0.0, max_value=5.0, allow_nan=False),
           st.floats(min_value=0.0, max_value=5.0, allow_nan=False))
    def test_thrash_multiplier_monotone(self, a, b):
        lo, hi = sorted((a, b))
        assert thrash_multiplier(lo) <= thrash_multiplier(hi)
        assert thrash_multiplier(lo) >= 1.0


class TestPartitionLaws:
    @given(st.lists(st.integers(1, 1000), min_size=1, max_size=80),
           st.integers(min_value=1, max_value=8))
    @settings(max_examples=50, deadline=None)
    def test_partition_is_disjoint_cover(self, order_keys, n_nodes):
        table = Table("lineitem", {
            "l_orderkey": Column.from_ints(order_keys),
            "x": Column.from_ints(range(len(order_keys))),
        })
        shards = partition_table(table, n_nodes, "l_orderkey")
        recombined = sorted(
            v for shard in shards for v in shard.column("x").to_list()
        )
        assert recombined == list(range(len(order_keys)))
        for shard in shards:
            assert set(np.unique(shard.column("l_orderkey").values) % n_nodes) <= {
                shards.index(shard)
            }
