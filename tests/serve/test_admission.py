"""Unit coverage for the admission controller, retry policy, and
circuit breaker — the policy layer the server composes."""

from __future__ import annotations

import threading
import time

import pytest

from repro.engine import Column, Database, Q, Table, agg, col
from repro.engine.optimizer import DEFAULT_SETTINGS
from repro.serve import (
    AdmissionController,
    AdmissionPolicy,
    CircuitBreaker,
    CircuitOpen,
    Overloaded,
    QueryServer,
    RetryPolicy,
)
from repro.serve.admission import estimate_service_cost


class TestAdmissionPolicy:
    def test_resolve_derives_limits_from_workers(self):
        policy = AdmissionPolicy().resolve(workers=4)
        assert policy.max_concurrent == 4
        assert policy.queue_capacity == 16

    def test_resolve_keeps_explicit_values(self):
        policy = AdmissionPolicy(max_concurrent=2, queue_capacity=3).resolve(8)
        assert policy.max_concurrent == 2
        assert policy.queue_capacity == 3

    def test_resolve_floors_at_one_slot(self):
        assert AdmissionPolicy().resolve(workers=0).max_concurrent == 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_concurrent": 0},
            {"queue_capacity": -1},
            {"max_queue_delay_s": 0},
            {"initial_service_s": -1.0},
        ],
    )
    def test_invalid_knobs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            AdmissionPolicy(**kwargs)

    def test_unresolved_policy_rejected_by_controller(self):
        with pytest.raises(ValueError):
            AdmissionController(AdmissionPolicy())


def _controller(**kwargs) -> AdmissionController:
    defaults = dict(
        max_concurrent=2, queue_capacity=2, max_queue_delay_s=1e9,
        initial_service_s=0.05,
    )
    defaults.update(kwargs)
    return AdmissionController(AdmissionPolicy(**defaults))


class TestAdmissionController:
    def test_admit_start_finish_accounting(self):
        ctl = _controller()
        ctl.admit()
        assert ctl.snapshot()["waiting"] == 1
        ctl.start(queued_s=0.01)
        snap = ctl.snapshot()
        assert snap["waiting"] == 0
        assert snap["running"] == 1
        ctl.finish(service_s=0.02)
        assert ctl.snapshot()["running"] == 0

    def test_queue_full_sheds(self):
        ctl = _controller(queue_capacity=2)
        ctl.admit()
        ctl.admit()
        with pytest.raises(Overloaded) as exc_info:
            ctl.admit()
        assert exc_info.value.reason == "queue-full"

    def test_projected_delay_sheds(self):
        # One waiter ahead at 10s EWMA over 2 slots projects 5s > 1ms.
        ctl = _controller(
            queue_capacity=100, max_queue_delay_s=0.001, initial_service_s=10.0
        )
        ctl.admit()
        with pytest.raises(Overloaded) as exc_info:
            ctl.admit()
        assert exc_info.value.reason == "queue-delay"

    def test_running_at_limit_does_not_count_as_backlog(self):
        ctl = _controller(
            max_concurrent=1, queue_capacity=100,
            max_queue_delay_s=0.001, initial_service_s=10.0,
        )
        ctl.admit()
        ctl.start(0.0)
        # running == max_concurrent is full utilization, not backlog:
        # the next arrival waits zero projected queue time and gets in.
        ctl.admit()
        # The one after it, though, would wait behind a real waiter.
        with pytest.raises(Overloaded) as exc_info:
            ctl.admit()
        assert exc_info.value.reason == "queue-delay"

    def test_ewma_tracks_service_times(self):
        ctl = _controller(initial_service_s=1.0)
        ctl.admit()
        ctl.start(0.0)
        ctl.finish(service_s=0.0)
        # alpha=0.3: 0.7 * 1.0 + 0.3 * 0.0
        assert ctl.snapshot()["ewma_service_s"] == pytest.approx(0.7)

    def test_negative_service_time_skips_ewma(self):
        # Shed/cancelled requests must not drag the estimate to zero.
        ctl = _controller(initial_service_s=1.0)
        ctl.admit()
        ctl.start(0.0)
        ctl.finish(service_s=-1.0)
        assert ctl.snapshot()["ewma_service_s"] == 1.0

    def test_release_unstarted_frees_the_slot(self):
        ctl = _controller(queue_capacity=1)
        ctl.admit()
        with pytest.raises(Overloaded):
            ctl.admit()
        ctl.release_unstarted()
        ctl.admit()  # slot is back

    def test_breaker_gates_the_front_door(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_s=60.0)
        ctl = AdmissionController(
            AdmissionPolicy(max_concurrent=1, queue_capacity=10), breaker=breaker
        )
        ctl.admit()
        breaker.record_failure()
        with pytest.raises(CircuitOpen):
            ctl.admit()

    def test_concurrent_admits_respect_capacity(self):
        ctl = _controller(max_concurrent=4, queue_capacity=8)
        admitted, shed = [], []
        barrier = threading.Barrier(16)

        def client(i):
            barrier.wait()
            try:
                ctl.admit()
                admitted.append(i)
            except Overloaded:
                shed.append(i)

        threads = [threading.Thread(target=client, args=(i,)) for i in range(16)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(admitted) == 8  # exactly queue_capacity made it in
        assert len(shed) == 8
        assert ctl.snapshot()["waiting"] == 8


class TestRetryPolicy:
    def test_backoff_doubles_and_caps(self):
        policy = RetryPolicy(max_retries=5, backoff_base_s=0.01, backoff_cap_s=0.05)
        assert policy.backoff_s(0) == pytest.approx(0.01)
        assert policy.backoff_s(1) == pytest.approx(0.02)
        assert policy.backoff_s(2) == pytest.approx(0.04)
        assert policy.backoff_s(3) == pytest.approx(0.05)  # capped
        assert policy.backoff_s(10) == pytest.approx(0.05)

    def test_invalid_knobs_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_base_s=0.5, backoff_cap_s=0.1)


class TestCircuitBreaker:
    def test_closed_until_threshold(self):
        breaker = CircuitBreaker(failure_threshold=3, cooldown_s=60.0)
        for _ in range(2):
            breaker.record_failure()
            assert breaker.state == "closed"
            assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()

    def test_success_resets_failure_count(self):
        breaker = CircuitBreaker(failure_threshold=2, cooldown_s=60.0)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_half_open_admits_one_probe(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_s=0.02)
        breaker.record_failure()
        assert not breaker.allow()
        time.sleep(0.03)
        assert breaker.allow()  # the probe
        assert breaker.state == "half-open"
        assert not breaker.allow()  # second caller waits for the probe

    def test_probe_success_closes(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_s=0.02)
        breaker.record_failure()
        time.sleep(0.03)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_probe_failure_reopens(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_s=0.02)
        breaker.record_failure()
        time.sleep(0.03)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()

    def test_invalid_knobs_rejected(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(cooldown_s=0)


@pytest.fixture()
def sjf_db() -> Database:
    """Two tables far enough apart in size that the modeled scan cost
    unambiguously ranks queries over them."""
    db = Database("sjf")
    db.add(Table("big", {
        "v": Column.from_ints(range(200_000)),
        "g": Column.from_ints([i % 5 for i in range(200_000)]),
    }))
    db.add(Table("small", {"v": Column.from_ints(range(10))}))
    return db


class TestServiceCostEstimate:
    def test_cost_ranks_by_scanned_bytes(self, sjf_db):
        big = estimate_service_cost(sjf_db, "SELECT SUM(v) AS s FROM big")
        small = estimate_service_cost(sjf_db, "SELECT SUM(v) AS s FROM small")
        assert big > small > 0.0

    def test_unplannable_payloads_cost_zero(self, sjf_db):
        # Resolving an error ticket is the shortest job of all: garbage
        # must sort ahead of real work, and must never raise here.
        assert estimate_service_cost(sjf_db, "SELEC oops FROM nowhere") == 0.0
        assert estimate_service_cost(sjf_db, object()) == 0.0

    def test_routed_plan_is_cheaper_than_base(self, sjf_db):
        from repro.rollup import enable_rollups

        plan = Q(sjf_db).scan("big").aggregate(by=["g"], s=agg.sum(col("v")))
        enable_rollups(sjf_db, plans=[plan])
        routed = estimate_service_cost(sjf_db, plan, DEFAULT_SETTINGS)
        base = estimate_service_cost(
            sjf_db, plan, DEFAULT_SETTINGS.without_rollups()
        )
        # The estimate prices the optimized plan, so a cube-routed
        # dashboard query is correctly predicted to be near-free and
        # sorts ahead of the equivalent base-table scan.
        assert routed < base


class _GatedServer(QueryServer):
    """Single-purpose copy of the server-test gate: executions block on
    an event so the dispatch queue builds a deterministic backlog."""

    def __init__(self, *args, **kwargs):
        self.gate = threading.Event()
        self.executed: list[str] = []
        self._order_lock = threading.Lock()
        super().__init__(*args, **kwargs)

    def _execute(self, req):
        assert self.gate.wait(timeout=30), "test gate never released"
        with self._order_lock:
            self.executed.append(req.ticket.label)
        return super()._execute(req)


class TestShortestJobFirst:
    def test_equal_priority_backlog_runs_shortest_job_first(self, sjf_db):
        server = _GatedServer(
            sjf_db,
            workers=1,
            admission=AdmissionPolicy(
                max_concurrent=1, queue_capacity=10, max_queue_delay_s=1e9
            ),
        )
        try:
            blocker = server.submit("SELECT SUM(v) AS s FROM small",
                                    label="blocker")
            deadline = time.monotonic() + 10.0
            while server.admission.snapshot()["running"] != 1:
                assert time.monotonic() < deadline
                time.sleep(0.005)
            # Submission order is expensive-first; dispatch must invert
            # it because both carry the same priority.
            expensive = server.submit("SELECT SUM(v) AS s FROM big",
                                      label="expensive")
            cheap = server.submit("SELECT SUM(v) AS s FROM small",
                                  label="cheap")
            server.gate.set()
            for ticket in (blocker, expensive, cheap):
                ticket.result(timeout=30)
            assert server.executed == ["blocker", "cheap", "expensive"]
        finally:
            server.gate.set()
            server.close()

    def test_priority_still_dominates_cost(self, sjf_db):
        server = _GatedServer(
            sjf_db,
            workers=1,
            admission=AdmissionPolicy(
                max_concurrent=1, queue_capacity=10, max_queue_delay_s=1e9
            ),
        )
        try:
            blocker = server.submit("SELECT SUM(v) AS s FROM small",
                                    label="blocker")
            deadline = time.monotonic() + 10.0
            while server.admission.snapshot()["running"] != 1:
                assert time.monotonic() < deadline
                time.sleep(0.005)
            cheap_low = server.submit("SELECT SUM(v) AS s FROM small",
                                      priority=0, label="cheap-low")
            costly_high = server.submit("SELECT SUM(v) AS s FROM big",
                                        priority=5, label="costly-high")
            server.gate.set()
            for ticket in (blocker, cheap_low, costly_high):
                ticket.result(timeout=30)
            assert server.executed == ["blocker", "costly-high", "cheap-low"]
        finally:
            server.gate.set()
            server.close()
