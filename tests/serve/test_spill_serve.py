"""Serving layer × out-of-core execution.

The wimpy-node serving story the paper implies: a node with little RAM
should *admit* a query whose hash state exceeds memory and complete it
out-of-core, not shed it or OOM. Pinned here:

* an over-budget query is admitted, spills, and returns exactly the
  rows an unbudgeted serial execution returns;
* with spilling disabled the same query fails *typed*
  (:class:`QueryFailed` wrapping :class:`MemoryBudgetExceeded`) and the
  server keeps serving;
* cancelling a request mid-spill leaves no orphaned spill directories.
"""

from __future__ import annotations

import math
from pathlib import Path

import pytest

from repro.engine import (
    CancelToken,
    DEFAULT_SETTINGS,
    Executor,
    MemoryBudget,
    MemoryBudgetExceeded,
    QueryCancelled,
)
from repro.serve import QueryFailed, QueryServer
from repro.tpch import generate as tpch_generate, get_query

COUNT_SQL = "SELECT COUNT(*) AS n FROM region"
MORSEL_ROWS = 2048


@pytest.fixture(scope="module")
def db():
    return tpch_generate(0.01, seed=42)


def _spill_dirs(base: Path) -> list[Path]:
    return sorted(base.glob("repro-spill-*"))


def _rows_equal(expected, actual) -> None:
    assert len(actual) == len(expected)
    for want, got in zip(expected, actual):
        for a, b in zip(want, got):
            if isinstance(a, float) and isinstance(b, float):
                if math.isnan(a) and math.isnan(b):
                    continue
                assert b == pytest.approx(a, rel=1e-9, abs=1e-9)
            else:
                assert a == b


class TestOverBudgetAdmission:
    def test_over_budget_query_is_admitted_and_completes(self, db, tmp_path):
        plan = get_query(3).build(db, {"sf": 0.01})
        expected = Executor(db).execute(plan).rows
        budget = MemoryBudget(limit_bytes=64 * 1024, spill_dir=str(tmp_path))
        with QueryServer(
            db, workers=2, morsel_rows=MORSEL_ROWS, cache_size=0,
            memory_budget=budget,
        ) as server:
            result = server.query(plan)
        _rows_equal(expected, result.rows)
        # It really went out-of-core — and cleaned up after itself.
        assert budget.spilled_bytes > 0
        assert _spill_dirs(tmp_path) == []

    def test_no_spill_budget_fails_typed_and_server_survives(self, db):
        plan = get_query(3).build(db, {"sf": 0.01})
        with QueryServer(
            db, workers=2, morsel_rows=MORSEL_ROWS, cache_size=0,
            settings=DEFAULT_SETTINGS.without_spilling(), memory_budget=64 * 1024,
        ) as server:
            with pytest.raises(QueryFailed) as exc_info:
                server.query(plan)
            assert isinstance(exc_info.value.__cause__, MemoryBudgetExceeded)
            # The failure is the query's, not the server's.
            assert server.query(COUNT_SQL).rows == [(5,)]


class _TrippingToken(CancelToken):
    """Cancels itself at the first check *after* bytes have hit the
    spill device — deterministically mid-spill."""

    def __init__(self, budget: MemoryBudget):
        super().__init__()
        self._budget = budget

    def check(self) -> None:
        if self._budget.spilled_bytes > 0:
            self.cancel("injected mid-spill cancellation")
        super().check()


class _CancelMidSpillServer(QueryServer):
    def _execute(self, req):
        if req.ticket.label == "doomed":
            req.token = _TrippingToken(self.memory_budget)
        return super()._execute(req)


class TestCancelMidSpill:
    def test_cancel_mid_spill_leaves_no_orphans(self, db, tmp_path):
        budget = MemoryBudget(limit_bytes=1, spill_dir=str(tmp_path))
        plan = get_query(9).build(db, {"sf": 0.01})
        with _CancelMidSpillServer(
            db, workers=2, morsel_rows=MORSEL_ROWS, cache_size=0,
            memory_budget=budget,
        ) as server:
            ticket = server.submit(plan, label="doomed")
            with pytest.raises(QueryCancelled):
                ticket.result(timeout=120)
            assert budget.spilled_bytes > 0  # it died *during* spilling
            assert _spill_dirs(tmp_path) == []
            # The node shrugs it off and keeps serving.
            assert server.query(COUNT_SQL).rows == [(5,)]
        assert _spill_dirs(tmp_path) == []
