"""Cancellation and deadlines: tokens, morsel-boundary responsiveness,
and the single-flight cache's never-retain-interrupted contract.

The acceptance property pinned here: a query cancelled mid-flight stops
scheduling new morsels within one morsel boundary — asserted by counting
``morsel`` trace spans after a cancel fired partway through — and the
engine stays fully serviceable afterwards.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.engine import Executor, ParallelExecutor
from repro.engine.cache import ResultCache
from repro.engine.cancel import (
    CancelToken,
    DeadlineExceeded,
    QueryCancelled,
    QueryInterrupted,
)
from repro.engine.sql import sql as parse_sql
from repro.obs.trace import Tracer, iter_spans
from repro.serve import QueryServer

MORSEL_ROWS = 512  # tiny morsels: many boundaries, fast cancel turnaround

LINEITEM_AGG = (
    "SELECT l_returnflag, SUM(l_quantity) AS q, COUNT(*) AS n "
    "FROM lineitem GROUP BY l_returnflag"
)


class TestCancelToken:
    def test_fresh_token_passes_checks(self):
        token = CancelToken()
        token.check()  # no-op
        assert not token.cancelled
        assert token.remaining_s() is None
        assert not token.expired

    def test_cancel_is_sticky_and_idempotent(self):
        token = CancelToken()
        token.cancel("first reason")
        token.cancel("second reason")  # first wins
        assert token.cancelled
        with pytest.raises(QueryCancelled, match="first reason"):
            token.check()

    def test_deadline_expires(self):
        token = CancelToken.from_timeout(0.0)
        assert token.expired
        with pytest.raises(DeadlineExceeded):
            token.check()

    def test_no_timeout_means_no_deadline(self):
        token = CancelToken.from_timeout(None)
        assert token.deadline_s is None
        token.check()

    def test_remaining_counts_down(self):
        token = CancelToken.from_timeout(60.0)
        remaining = token.remaining_s()
        assert remaining is not None and 0 < remaining <= 60.0

    def test_interrupted_hierarchy(self):
        # Both interruption flavors are catchable as one family, and
        # that family is distinct from ordinary errors.
        assert issubclass(QueryCancelled, QueryInterrupted)
        assert issubclass(DeadlineExceeded, QueryInterrupted)
        assert not issubclass(ValueError, QueryInterrupted)


class _CancelAfterMorsels(Tracer):
    """Flips a cancel token when the Nth morsel span starts."""

    def __init__(self, token: CancelToken, after: int):
        super().__init__()
        self.token = token
        self.after = after
        self.morsels_started = 0
        self._count_lock = threading.Lock()

    def start(self, kind, name, parent=None, start_s=None, work=None):
        if kind == "morsel":
            with self._count_lock:
                self.morsels_started += 1
                if self.morsels_started == self.after:
                    self.token.cancel("cancelled mid-flight by test")
        return super().start(kind, name, parent=parent, start_s=start_s, work=work)


class TestMorselBoundaryCancel:
    def test_cancel_stops_within_one_morsel_boundary(self, tpch_db):
        """After the cancel fires, only morsels already past their
        boundary check (at most one per engine worker) may still start."""
        workers = 2
        cancel_after = 3
        token = CancelToken()
        tracer = _CancelAfterMorsels(token, cancel_after)
        with ParallelExecutor(
            tpch_db, workers=workers, morsel_rows=MORSEL_ROWS,
            cache_size=4, tracer=tracer,
        ) as executor:
            plan = parse_sql(tpch_db, LINEITEM_AGG)
            total_morsels = -(-tpch_db.table("lineitem").nrows // MORSEL_ROWS)
            assert total_morsels > cancel_after + workers + 2, (
                "test needs enough morsels that a late cancel is detectable"
            )

            with pytest.raises(QueryCancelled):
                executor.execute(plan, cancel=token)

            started = sum(
                1
                for root in tracer.roots
                for span in iter_spans(root)
                if span.kind == "morsel"
            )
            # Every morsel past the cancel point was skipped: at most the
            # N that triggered the cancel plus one in-flight per worker.
            assert started <= cancel_after + workers
            assert started < total_morsels
            # All spans were closed despite the abort (finalize ran).
            for root in tracer.roots:
                for span in iter_spans(root):
                    assert span.end_s is not None

            # The cancelled query never populated the result cache...
            assert len(executor.cache) == 0
            # ...and the engine serves the same plan fine afterwards.
            result = executor.execute(plan)
            serial = Executor(tpch_db).execute(plan)
            assert sorted(result.rows) == sorted(serial.rows)

    def test_expired_deadline_rejects_before_any_work(self, tpch_db):
        tracer = Tracer()
        with ParallelExecutor(
            tpch_db, workers=2, morsel_rows=MORSEL_ROWS,
            cache_size=4, tracer=tracer,
        ) as executor:
            plan = parse_sql(tpch_db, LINEITEM_AGG)
            with pytest.raises(DeadlineExceeded):
                executor.execute(plan, cancel=CancelToken.from_timeout(0.0))
            assert len(executor.cache) == 0
            assert all(
                span.kind != "morsel"
                for root in tracer.roots
                for span in iter_spans(root)
            )

    def test_serial_executor_honors_cancel(self, tpch_db):
        plan = parse_sql(tpch_db, LINEITEM_AGG)
        token = CancelToken()
        token.cancel("before execution")
        with pytest.raises(QueryCancelled):
            Executor(tpch_db).execute(plan, cancel=token)


class TestServerCancellation:
    def test_client_cancel_resolves_ticket_and_frees_slot(self, tpch_db):
        gate = threading.Event()

        class _Gated(QueryServer):
            def _execute(self, req):
                assert gate.wait(timeout=30)
                return super()._execute(req)

        server = _Gated(tpch_db, workers=2, morsel_rows=MORSEL_ROWS)
        try:
            ticket = server.submit(LINEITEM_AGG, label="doomed")
            ticket.cancel("changed my mind")
            gate.set()
            with pytest.raises(QueryCancelled):
                ticket.result(timeout=30)
            assert ticket.outcome == "cancelled"
            # The slot is free and the cache holds nothing poisoned.
            result = server.query(LINEITEM_AGG)
            serial = Executor(tpch_db).execute(parse_sql(tpch_db, LINEITEM_AGG))
            assert sorted(result.rows) == sorted(serial.rows)
        finally:
            gate.set()
            server.close()

    def test_request_deadline_resolves_as_timeout(self, tpch_db):
        with QueryServer(tpch_db, workers=2, morsel_rows=MORSEL_ROWS) as server:
            ticket = server.submit(LINEITEM_AGG, timeout_s=0.0)
            with pytest.raises(DeadlineExceeded):
                ticket.result(timeout=30)
            assert ticket.outcome == "timeout"
            assert server.query("SELECT COUNT(*) AS n FROM region").rows == [(5,)]


class TestCacheInterruptionSemantics:
    """The satellite fix: failed/cancelled runs never retain entries."""

    def test_waiter_recomputes_after_owner_cancelled(self):
        cache = ResultCache(capacity=4)
        owner_running = threading.Event()
        release_owner = threading.Event()
        outcomes = {}

        def owner_run():
            owner_running.set()
            assert release_owner.wait(timeout=10)
            raise QueryCancelled("owner abandoned")

        def owner():
            try:
                cache.get_or_run("k", owner_run)
            except QueryCancelled as exc:
                outcomes["owner"] = exc

        def waiter():
            outcomes["waiter"] = cache.get_or_run("k", lambda: "fresh")

        owner_thread = threading.Thread(target=owner)
        owner_thread.start()
        assert owner_running.wait(timeout=10)
        waiter_thread = threading.Thread(target=waiter)
        waiter_thread.start()
        time.sleep(0.05)  # let the waiter actually block on the entry
        release_owner.set()
        owner_thread.join(timeout=10)
        waiter_thread.join(timeout=10)

        # The owner saw its own cancellation; the waiter did NOT inherit
        # it — it re-contended, became the new owner, and recomputed.
        assert isinstance(outcomes["owner"], QueryCancelled)
        assert outcomes["waiter"] == ("fresh", False)
        assert cache.stats()["entries"] == 1  # only the fresh value

    def test_waiters_inherit_real_errors_and_entry_is_evicted(self):
        cache = ResultCache(capacity=4)
        owner_running = threading.Event()
        release_owner = threading.Event()
        boom = ValueError("the plan is broken for everyone")
        outcomes = {}

        def owner_run():
            owner_running.set()
            assert release_owner.wait(timeout=10)
            raise boom

        def owner():
            try:
                cache.get_or_run("k", owner_run)
            except ValueError as exc:
                outcomes["owner"] = exc

        def waiter():
            try:
                cache.get_or_run("k", lambda: "never runs")
            except ValueError as exc:
                outcomes["waiter"] = exc

        owner_thread = threading.Thread(target=owner)
        owner_thread.start()
        assert owner_running.wait(timeout=10)
        waiter_thread = threading.Thread(target=waiter)
        waiter_thread.start()
        time.sleep(0.05)
        release_owner.set()
        owner_thread.join(timeout=10)
        waiter_thread.join(timeout=10)

        assert outcomes["owner"] is boom
        assert outcomes["waiter"] is boom
        assert len(cache) == 0  # nothing poisoned was retained
        # A later request recomputes from scratch.
        assert cache.get_or_run("k", lambda: 42) == (42, False)

    def test_waiters_own_deadline_fires_while_blocked(self):
        cache = ResultCache(capacity=4)
        owner_running = threading.Event()
        release_owner = threading.Event()
        outcomes = {}

        def owner_run():
            owner_running.set()
            assert release_owner.wait(timeout=10)
            return "slow value"

        def owner():
            outcomes["owner"] = cache.get_or_run("k", owner_run)

        def waiter():
            try:
                cache.get_or_run(
                    "k", lambda: "unused", cancel=CancelToken.from_timeout(0.1)
                )
            except DeadlineExceeded as exc:
                outcomes["waiter"] = exc

        owner_thread = threading.Thread(target=owner)
        owner_thread.start()
        assert owner_running.wait(timeout=10)
        waiter_thread = threading.Thread(target=waiter)
        waiter_thread.start()
        waiter_thread.join(timeout=10)
        assert isinstance(outcomes.get("waiter"), DeadlineExceeded)

        release_owner.set()
        owner_thread.join(timeout=10)
        # The owner was unaffected by the waiter's deadline.
        assert outcomes["owner"] == ("slow value", False)
