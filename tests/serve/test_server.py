"""Serving-layer behavior: correctness under concurrency, typed
overload shedding, priorities, retries, and the circuit breaker.

The differential here is the acceptance wall for the serving layer: all
22 TPC-H queries and all 11 ad-events queries submitted *concurrently*
through one server over one merged catalog must return rows identical
to serial execution and consistent with the committed goldens.
"""

from __future__ import annotations

import json
import math
import threading
import time
from pathlib import Path

import pytest

from repro.adevents import ADEVENTS_QUERIES
from repro.adevents import generate as adevents_generate
from repro.engine import Database, Executor
from repro.engine.cancel import QueryCancelled
from repro.engine.plan import LimitNode, SortNode
from repro.engine.sql import SqlError
from repro.serve import (
    AdmissionPolicy,
    CircuitBreaker,
    CircuitOpen,
    Overloaded,
    QueryFailed,
    QueryServer,
    RetryPolicy,
    ServerClosed,
    TransientServeError,
)
from repro.tpch import ALL_QUERY_NUMBERS, generate as tpch_generate, get_query

TPCH_GOLDEN = json.loads(
    (Path(__file__).parent.parent / "tpch" / "data" / "golden_sf001_seed42.json")
    .read_text()
)
ADEVENTS_GOLDEN = json.loads(
    (Path(__file__).parent.parent / "adevents" / "data" / "golden_x1_seed7.json")
    .read_text()
)

TPCH_SF = 0.01
MORSEL_ROWS = 2048  # force real multi-morsel execution at these scales


@pytest.fixture(scope="module")
def merged_db() -> Database:
    """One catalog holding both workloads (table names never collide),
    so a single server serves TPC-H plans and ad-events SQL at once."""
    db = Database("serving")
    for source in (tpch_generate(TPCH_SF, seed=42), adevents_generate(1.0, seed=7)):
        for name in source.table_names:
            db.add(source.table(name))
    return db


def _canonical(rows):
    def norm(v):
        if isinstance(v, float):
            return "nan" if math.isnan(v) else round(v, 7)
        return v

    return sorted(tuple(norm(v) for v in row) for row in rows)


def _numeric_sum(rows) -> float:
    total = 0.0
    for row in rows:
        for value in row:
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                if isinstance(value, float) and math.isnan(value):
                    continue
                total += float(value)
    return total


def _assert_rows_match(serial_rows, served_rows, ordered: bool, label: str):
    if ordered:
        assert len(serial_rows) == len(served_rows), label
        for i, (expected, actual) in enumerate(zip(serial_rows, served_rows)):
            for a, b in zip(expected, actual):
                if isinstance(a, float) and isinstance(b, float):
                    if math.isnan(a) and math.isnan(b):
                        continue
                    assert b == pytest.approx(a, rel=1e-9, abs=1e-9), (label, i)
                else:
                    assert a == b, (label, i)
    else:
        assert _canonical(served_rows) == _canonical(serial_rows), label


def _is_ordered(node) -> bool:
    while isinstance(node, LimitNode):
        node = node.child
    return isinstance(node, SortNode)


class TestConcurrentDifferential:
    """The acceptance wall: 33 queries concurrently vs serial + goldens."""

    def test_all_queries_concurrently_match_serial_and_goldens(self, merged_db):
        serial = Executor(merged_db)
        from repro.engine.sql import sql as parse_sql

        cases = []  # (label, payload, serial_rows, ordered, golden)
        for number in ALL_QUERY_NUMBERS:
            plan = get_query(number).build(merged_db, {"sf": TPCH_SF})
            rows = serial.execute(plan).rows
            cases.append((
                f"Q{number}", plan, rows, _is_ordered(plan.node),
                TPCH_GOLDEN[str(number)],
            ))
        for name, text in ADEVENTS_QUERIES.items():
            plan = parse_sql(merged_db, text)
            rows = serial.execute(plan).rows
            cases.append((
                name, text, rows, _is_ordered(plan.node),
                ADEVENTS_GOLDEN[name],
            ))

        with QueryServer(
            merged_db,
            workers=4,
            morsel_rows=MORSEL_ROWS,
            admission=AdmissionPolicy(
                max_concurrent=4, queue_capacity=len(cases), max_queue_delay_s=1e9
            ),
        ) as server:
            # Submit from several client threads at once: the queue sees
            # a real concurrent burst, not a polite serial trickle.
            n_clients = 8
            tickets = [None] * len(cases)
            barrier = threading.Barrier(n_clients)

            def client(worker: int):
                barrier.wait()
                for i in range(worker, len(cases), n_clients):
                    label, payload, _, _, _ = cases[i]
                    tickets[i] = server.submit(payload, label=label)

            threads = [
                threading.Thread(target=client, args=(w,)) for w in range(n_clients)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()

            for (label, _, serial_rows, ordered, golden), ticket in zip(
                cases, tickets
            ):
                result = ticket.result(timeout=120)
                assert ticket.outcome == "ok", label
                _assert_rows_match(serial_rows, result.rows, ordered, label)
                assert len(result.rows) == golden["rows"], label
                assert _numeric_sum(result.rows) == pytest.approx(
                    golden["numeric_sum"], rel=1e-6, abs=0.02
                ), label

    def test_identical_inflight_queries_dedupe(self, merged_db):
        plan = get_query(1).build(merged_db, {"sf": TPCH_SF})
        with QueryServer(merged_db, workers=2, morsel_rows=MORSEL_ROWS) as server:
            tickets = [server.submit(plan, label="Q1") for _ in range(6)]
            results = [t.result(timeout=60) for t in tickets]
        cached = [r.cached for r in results]
        # Single-flight: at most one real execution; the rest are cache
        # hits (either piggybacked in flight or served after).
        assert cached.count(False) == 1
        reference = results[0].rows
        for r in results[1:]:
            assert r.rows == reference


class _GatedServer(QueryServer):
    """Server whose executions block on an event until released —
    deterministic backlog for admission and priority tests."""

    def __init__(self, *args, **kwargs):
        self.gate = threading.Event()
        self.executed: list[str] = []
        self._order_lock = threading.Lock()
        super().__init__(*args, **kwargs)

    def _execute(self, req):
        assert self.gate.wait(timeout=30), "test gate never released"
        with self._order_lock:
            self.executed.append(req.ticket.label)
        return super()._execute(req)


def _wait_for(predicate, timeout_s: float = 10.0) -> None:
    deadline = time.monotonic() + timeout_s
    while not predicate():
        assert time.monotonic() < deadline, "condition never became true"
        time.sleep(0.005)


COUNT_SQL = "SELECT COUNT(*) AS n FROM region"


class TestOverload:
    def test_queue_full_sheds_typed_and_recovers(self, merged_db):
        server = _GatedServer(
            merged_db,
            workers=2,
            admission=AdmissionPolicy(
                max_concurrent=2, queue_capacity=2, max_queue_delay_s=1e9
            ),
        )
        try:
            running = [server.submit(COUNT_SQL, label=f"run-{i}") for i in range(2)]
            _wait_for(lambda: server.admission.snapshot()["running"] == 2)
            queued = [server.submit(COUNT_SQL, label=f"queue-{i}") for i in range(2)]

            with pytest.raises(Overloaded) as exc_info:
                server.submit(COUNT_SQL, label="shed-me")
            assert exc_info.value.reason == "queue-full"

            # Shedding is not collapse: release the gate and every
            # admitted request completes correctly.
            server.gate.set()
            for ticket in running + queued:
                result = ticket.result(timeout=30)
                assert result.rows == [(5,)]
            # And the server keeps serving new requests afterwards.
            assert server.query(COUNT_SQL).rows == [(5,)]
        finally:
            server.gate.set()
            server.close()

    def test_queue_delay_sheds_typed(self, merged_db):
        server = _GatedServer(
            merged_db,
            workers=2,
            admission=AdmissionPolicy(
                max_concurrent=2,
                queue_capacity=100,
                max_queue_delay_s=0.001,
                initial_service_s=10.0,  # pessimistic EWMA seed
            ),
        )
        try:
            # Saturate the workers one by one (submitting both at once
            # could race the pickup and count the first as backlog).
            for i in range(2):
                server.submit(COUNT_SQL, label=f"run-{i}")
                _wait_for(lambda n=i + 1: server.admission.snapshot()["running"] == n)
            # Workers saturated; the first *waiting* request would
            # project 10s/2 of queue delay >> 1ms: shed.
            queued = server.submit(COUNT_SQL, label="first-waiter")
            with pytest.raises(Overloaded) as exc_info:
                server.submit(COUNT_SQL, label="delayed")
            assert exc_info.value.reason == "queue-delay"
            server.gate.set()
            assert queued.result(timeout=30).rows == [(5,)]
        finally:
            server.gate.set()
            server.close()

    def test_priorities_order_the_backlog(self, merged_db):
        server = _GatedServer(
            merged_db,
            workers=1,
            admission=AdmissionPolicy(
                max_concurrent=1, queue_capacity=10, max_queue_delay_s=1e9
            ),
        )
        try:
            blocker = server.submit(COUNT_SQL, label="blocker")
            _wait_for(lambda: server.admission.snapshot()["running"] == 1)
            low = server.submit(COUNT_SQL, priority=0, label="low")
            high = server.submit(COUNT_SQL, priority=5, label="high")
            server.gate.set()
            for ticket in (blocker, low, high):
                ticket.result(timeout=30)
            assert server.executed == ["blocker", "high", "low"]
        finally:
            server.gate.set()
            server.close()


class _FlakyServer(QueryServer):
    """Fails the first ``fail_times`` execution attempts transiently."""

    def __init__(self, *args, fail_times: int = 0, **kwargs):
        self.fail_times = fail_times
        self.attempts = 0
        super().__init__(*args, **kwargs)

    def _execute(self, req):
        self.attempts += 1
        if self.attempts <= self.fail_times:
            raise TransientServeError(f"injected transient #{self.attempts}")
        return super()._execute(req)


class _BrokenServer(QueryServer):
    """Every execution attempt raises an unexpected error."""

    def _execute(self, req):
        raise RuntimeError("injected executor bug")


class TestRetriesAndBreaker:
    def test_transient_failures_retry_with_backoff(self, merged_db):
        with _FlakyServer(
            merged_db,
            workers=1,
            fail_times=2,
            retry=RetryPolicy(max_retries=2, backoff_base_s=0.001, backoff_cap_s=0.01),
        ) as server:
            result = server.query(COUNT_SQL)
            assert result.rows == [(5,)]
            assert server.attempts == 3

    def test_transients_past_budget_fail_typed(self, merged_db):
        with _FlakyServer(
            merged_db,
            workers=1,
            fail_times=10,
            retry=RetryPolicy(max_retries=1, backoff_base_s=0.001, backoff_cap_s=0.01),
        ) as server:
            with pytest.raises(QueryFailed):
                server.query(COUNT_SQL)
            # The wrapped cause is the transient error, typed and visible.
            ticket = server.submit(COUNT_SQL)
            with pytest.raises(QueryFailed) as exc_info:
                ticket.result(timeout=30)
            assert isinstance(exc_info.value.__cause__, TransientServeError)

    def test_breaker_opens_fails_fast_then_recovers(self, merged_db):
        server = _BrokenServer(
            merged_db,
            workers=1,
            retry=RetryPolicy(max_retries=0),
            breaker=CircuitBreaker(failure_threshold=2, cooldown_s=0.05),
        )
        try:
            for _ in range(2):
                with pytest.raises(QueryFailed):
                    server.query(COUNT_SQL)
            assert server.breaker.state == "open"
            with pytest.raises(CircuitOpen):
                server.submit(COUNT_SQL)
            # After the cooldown a half-open probe goes through; make the
            # executor healthy again and the breaker closes.
            time.sleep(0.06)
            server._execute = lambda req: QueryServer._execute(server, req)
            assert server.query(COUNT_SQL).rows == [(5,)]
            assert server.breaker.state == "closed"
        finally:
            server.close()


class TestFrontDoorContract:
    def test_sql_error_is_typed_and_server_survives(self, merged_db):
        with QueryServer(merged_db, workers=1) as server:
            with pytest.raises(SqlError) as exc_info:
                server.query("SELECT FROM WHERE")
            assert not exc_info.value.internal
            assert server.query(COUNT_SQL).rows == [(5,)]

    def test_unsupported_payload_is_sql_error_not_crash(self, merged_db):
        with QueryServer(merged_db, workers=1) as server:
            with pytest.raises(SqlError):
                server.query({"not": "a query"})
            assert server.query(COUNT_SQL).rows == [(5,)]

    def test_closed_server_sheds_typed(self, merged_db):
        server = QueryServer(merged_db, workers=1)
        server.close()
        with pytest.raises(ServerClosed):
            server.submit(COUNT_SQL)

    def test_close_without_drain_cancels_queued(self, merged_db):
        server = _GatedServer(
            merged_db,
            workers=1,
            admission=AdmissionPolicy(
                max_concurrent=1, queue_capacity=10, max_queue_delay_s=1e9
            ),
        )
        blocker = server.submit(COUNT_SQL, label="blocker")
        _wait_for(lambda: server.admission.snapshot()["running"] == 1)
        queued = server.submit(COUNT_SQL, label="queued")
        server.gate.set()
        server.close(drain=False)
        blocker.result(timeout=30)  # was already executing: completes
        with pytest.raises(QueryCancelled):
            queued.result(timeout=30)

    def test_result_timeout_is_a_peek_not_a_cancel(self, merged_db):
        server = _GatedServer(merged_db, workers=1)
        try:
            ticket = server.submit(COUNT_SQL)
            with pytest.raises(TimeoutError):
                ticket.result(timeout=0.01)
            server.gate.set()
            assert ticket.result(timeout=30).rows == [(5,)]
        finally:
            server.gate.set()
            server.close()
