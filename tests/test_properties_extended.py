"""Additional property-based tests: compression losslessness, CSV
roundtrips, SQL literal handling, optimizer equivalence, TCO and
scheduler invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.tco import TcoAssumptions, estimate_tco
from repro.cluster.scheduler import PowerPolicy, QueryArrival, WorkloadSimulator
from repro.engine import Column, Database, Q, Table, col, execute
from repro.engine.compression import ALL_ENCODINGS, compress_column
from repro.engine.io import read_csv, write_csv
from repro.engine.sql import sql

int_arrays = st.lists(
    st.integers(min_value=-(2**40), max_value=2**40), min_size=1, max_size=200
)


class TestCompressionProperties:
    @given(int_arrays)
    @settings(max_examples=100, deadline=None)
    def test_compress_column_is_lossless(self, values):
        column = Column.from_ints(values)
        out = compress_column(column)
        if out is column:
            return  # incompressible: stayed plain
        assert np.array_equal(out.to_column().values, column.values)

    @given(int_arrays)
    @settings(max_examples=100, deadline=None)
    def test_every_encoding_roundtrips(self, values):
        arr = np.asarray(values, dtype=np.int64)
        for encoding in ALL_ENCODINGS:
            payload = encoding.encode(arr)
            decoded = encoding.decode(payload, len(arr), np.dtype(np.int64))
            assert np.array_equal(decoded, arr), encoding.name

    @given(st.lists(st.integers(0, 100), min_size=1, max_size=100))
    @settings(max_examples=50, deadline=None)
    def test_compressed_size_never_reported_wrong(self, values):
        column = Column.from_ints(values)
        out = compress_column(column)
        if out is not column:
            assert out.nbytes < column.nbytes
            assert out.ratio > 1.0

    @given(st.lists(st.floats(min_value=-1e4, max_value=1e4, allow_nan=False),
                    min_size=1, max_size=100))
    @settings(max_examples=50, deadline=None)
    def test_float_compression_only_when_exact(self, values):
        cents = [round(v, 2) for v in values]
        column = Column.from_floats(cents)
        out = compress_column(column)
        if out is not column:
            assert np.allclose(out.to_column().values, column.values, atol=1e-9)


class TestCsvProperties:
    @given(
        st.lists(st.integers(-1000, 1000), min_size=1, max_size=30),
        st.lists(st.sampled_from(["alpha", "beta", "gamma d", "x,y", ""]),
                 min_size=1, max_size=30),
    )
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_arbitrary_tables(self, ints, strings):
        import tempfile
        from pathlib import Path

        n = min(len(ints), len(strings))
        table = Table("t", {
            "i": Column.from_ints(ints[:n]),
            "s": Column.from_strings(strings[:n]),
        })
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "t.csv"
            loaded = read_csv(write_csv(table, path))
        assert loaded.column("i").to_list() == table.column("i").to_list()
        assert loaded.column("s").to_list() == table.column("s").to_list()


class TestSqlProperties:
    @given(st.integers(-1000, 1000))
    @settings(max_examples=50, deadline=None)
    def test_integer_literals_roundtrip(self, value):
        db = Database()
        db.add(Table("t", {"x": Column.from_ints([value])}))
        result = execute(db, sql(db, f"SELECT x FROM t WHERE x = {value}"))
        assert result.column("x") == [value]

    @given(st.lists(st.integers(0, 50), min_size=1, max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_sql_filter_equals_builder_filter(self, values):
        db = Database()
        db.add(Table("t", {"x": Column.from_ints(values)}))
        via_sql = execute(db, sql(db, "SELECT x FROM t WHERE x > 25"))
        via_builder = execute(db, Q(db).scan("t").filter(col("x") > 25))
        assert via_sql.rows == via_builder.rows


class TestOptimizerEquivalence:
    @given(st.lists(st.tuples(st.integers(0, 5), st.integers(0, 100)),
                    min_size=1, max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_pruning_never_changes_answers(self, pairs):
        from repro.engine import agg

        db = Database()
        db.add(Table("t", {
            "g": Column.from_ints([g for g, _ in pairs]),
            "v": Column.from_ints([v for _, v in pairs]),
            "unused": Column.from_ints(range(len(pairs))),
        }))
        plan = Q(db).scan("t").filter(col("v") >= 0).aggregate(
            by=["g"], s=agg.sum(col("v"))).sort("g")
        assert execute(db, plan, optimize=True).rows == execute(db, plan, optimize=False).rows


class TestModelInvariants:
    @given(st.floats(min_value=1.0, max_value=6.0),
           st.floats(min_value=0.05, max_value=0.3))
    @settings(max_examples=50, deadline=None)
    def test_tco_monotone_in_horizon(self, years, kwh):
        short = estimate_tco("op-e5", TcoAssumptions(years=years, kwh_price_usd=kwh))
        longer = estimate_tco("op-e5", TcoAssumptions(years=years + 1, kwh_price_usd=kwh))
        assert longer.total_usd > short.total_usd
        assert longer.hardware_usd == short.hardware_usd  # capex fixed

    @given(st.lists(st.tuples(st.floats(0, 10_000), st.floats(0.1, 100)),
                    min_size=1, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_scheduler_conservation_of_time(self, pairs):
        trace = [QueryArrival(arrival_s=a, runtime_s=r) for a, r in pairs]
        sim = WorkloadSimulator(10.0, 2.0, PowerPolicy(gate_after_idle_s=30, boot_s=5))
        result = sim.run(trace)
        accounted = result.busy_s + result.idle_on_s + result.gated_s + result.boot_s
        assert accounted == pytest.approx(result.total_time_s, rel=1e-9)

    @given(st.lists(st.tuples(st.floats(0, 10_000), st.floats(0.1, 100)),
                    min_size=1, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_gating_energy_accounting_identity(self, pairs):
        """Gating's exact energy delta: idle watts saved while gated,
        minus boot energy paid. (A short gate right before a boot *can*
        cost more than it saves — the identity captures both directions.)
        """
        trace = [QueryArrival(arrival_s=a, runtime_s=r) for a, r in pairs]
        policy = PowerPolicy(gate_after_idle_s=60, boot_s=5, boot_power_fraction=0.8)
        result = WorkloadSimulator(10.0, 2.0, policy).run(trace)
        expected_wh = (
            result.busy_s * 10.0
            + result.idle_on_s * 2.0
            + result.boot_s * 10.0 * 0.8
        ) / 3600.0
        assert result.energy_wh == pytest.approx(expected_wh, rel=1e-9)
        # Gated seconds draw nothing; work done is trace-determined.
        assert result.busy_s == pytest.approx(sum(r for _, r in pairs))
