"""Shape tests against the paper's Table II narration (SF 1).

These assert the *claims the paper makes in prose*, evaluated on our
modeled runtimes — the reproduction's headline fidelity check.
"""

import statistics

import pytest

from repro.core.paperdata import TABLE2_SF1_RUNTIMES
from repro.core.compare import compare_grids
from repro.hardware import PI_KEY, SERVER_KEYS
from repro.tpch import ALL_QUERY_NUMBERS


@pytest.fixture(scope="module")
def table2(study):
    return study.table2()


@pytest.fixture(scope="module")
def study():
    from repro.core import ExperimentStudy, StudyConfig

    return ExperimentStudy(StudyConfig(base_sf=0.02))


class TestPaperClaims:
    def test_pi_median_relative_performance_band(self, table2):
        """'the median performance of the Raspberry Pi 3B+ relative to
        the servers ranges from about 0.1-0.3x' (with model slack:
        0.05-0.35)."""
        for server in SERVER_KEYS:
            ratios = [
                table2[server][q] / table2[PI_KEY][q] for q in ALL_QUERY_NUMBERS
            ]
            median = statistics.median(ratios)
            assert 0.05 < median < 0.40, (server, median)

    def test_pi_roughly_10x_slower_on_average(self, table2):
        all_ratios = [
            table2[PI_KEY][q] / table2[server][q]
            for server in SERVER_KEYS
            for q in ALL_QUERY_NUMBERS
        ]
        assert 3 < statistics.median(all_ratios) < 15

    def test_q1_is_among_pi_worst_queries(self, table2):
        """Q1 scans nearly all of lineitem and is memory-bound on the Pi."""
        ratios = {
            q: statistics.median(
                table2[PI_KEY][q] / table2[s][q] for s in SERVER_KEYS
            )
            for q in ALL_QUERY_NUMBERS
        }
        worst_quartile = sorted(ratios, key=ratios.get, reverse=True)[:6]
        assert 1 in worst_quartile

    def test_no_lineitem_queries_most_competitive(self, table2):
        """Q11/Q16/Q22 (no lineitem) sit in the Pi's best half."""
        ratios = {
            q: statistics.median(
                table2[PI_KEY][q] / table2[s][q] for s in SERVER_KEYS
            )
            for q in ALL_QUERY_NUMBERS
        }
        best_half = sorted(ratios, key=ratios.get)[:11]
        assert {11, 16, 22} <= set(best_half)

    def test_pi_absolute_runtimes_reasonable(self, table2):
        """'For almost all queries, the Raspberry Pi 3B+ achieves
        reasonable absolute runtimes' — sub-10s at SF 1."""
        assert all(t < 10.0 for t in table2[PI_KEY].values())

    def test_all_runtimes_positive_and_finite(self, table2):
        for per in table2.values():
            for t in per.values():
                assert 0 < t < 1e4


class TestAgainstPublishedNumbers:
    def test_cellwise_median_within_3x(self, table2):
        comparison = compare_grids(table2, TABLE2_SF1_RUNTIMES)
        assert comparison.cells == 220
        assert comparison.median_factor < 3.0

    def test_rank_correlation_positive(self, table2):
        comparison = compare_grids(table2, TABLE2_SF1_RUNTIMES)
        assert comparison.spearman_like > 0.3

    def test_per_platform_medians_track_paper(self, table2):
        """Per-server Pi-relative medians within 2x of the paper's."""
        for server in SERVER_KEYS:
            ours = statistics.median(
                table2[PI_KEY][q] / table2[server][q] for q in ALL_QUERY_NUMBERS
            )
            paper = statistics.median(
                TABLE2_SF1_RUNTIMES[PI_KEY][q] / TABLE2_SF1_RUNTIMES[server][q]
                for q in ALL_QUERY_NUMBERS
            )
            assert 0.5 < ours / paper < 2.0, (server, ours, paper)
