"""fit_constants recovery test: fitting against observations generated
by a known model must recover that model (within bounds)."""

import pytest

from repro.engine.profile import OperatorWork, WorkProfile
from repro.hardware import (
    CalibrationConstants,
    PLATFORMS,
    PerformanceModel,
    fit_constants,
)


@pytest.fixture(scope="module")
def synthetic():
    """Profiles with distinct resource mixes + observations produced by a
    known ground-truth constants instance."""
    profiles = {
        1: WorkProfile([OperatorWork("scan", ops=5e8, seq_bytes=2e9)]),
        2: WorkProfile([OperatorWork("hashjoin", ops=2e8, rand_accesses=5e7,
                                     out_bytes=2e8)]),
        3: WorkProfile([OperatorWork("aggregate", ops=1e9, seq_bytes=5e8)]),
        4: WorkProfile([OperatorWork("filter", ops=1e7, seq_bytes=1e7)]),
    }
    truth = CalibrationConstants(
        cycles_per_op=30.0, bytes_factor=2.0, rand_latency_factor=1.0,
        dispatch_ops=1e6, serial_fraction=0.05, mem_serial_fraction=0.1,
    )
    model = PerformanceModel(truth, platform_factors={})
    keys = ("op-e5", "op-gold", "pi3b+", "m5.metal")
    observed = {
        key: {n: model.predict(p, PLATFORMS[key]) for n, p in profiles.items()}
        for key in keys
    }
    platforms = {key: PLATFORMS[key] for key in keys}
    return profiles, observed, platforms, truth


class TestFitRecovery:
    def test_recovers_dominant_constants(self, synthetic):
        profiles, observed, platforms, truth = synthetic
        start = CalibrationConstants()  # deliberately different start
        fitted = fit_constants(observed, profiles, platforms, initial=start)
        # The ground truth includes platform factors of 1.0, so the fit
        # (run with the DEFAULT factors baked into PerformanceModel)
        # cannot be exact; require the right ballpark on the two most
        # identifiable constants.
        assert truth.cycles_per_op / 3 < fitted.cycles_per_op < truth.cycles_per_op * 3
        assert fitted.bytes_factor <= 12.0  # stays inside the bounds

    def test_fitted_model_predicts_observations(self, synthetic):
        profiles, observed, platforms, _ = synthetic
        fitted = fit_constants(observed, profiles, platforms)
        model = PerformanceModel(fitted, platform_factors={})
        import math

        errors = [
            abs(math.log(model.predict(profiles[n], platforms[key]) / seconds))
            for key, per in observed.items()
            for n, seconds in per.items()
        ]
        # Fitting four queries x four platforms with six constants should
        # land well within 2x per cell.
        assert max(errors) < math.log(2.0)

    def test_fit_respects_bounds(self, synthetic):
        profiles, observed, platforms, _ = synthetic
        fitted = fit_constants(observed, profiles, platforms)
        assert 4.0 <= fitted.cycles_per_op <= 120.0
        assert 1.5 <= fitted.bytes_factor <= 12.0
        assert 0.02 <= fitted.serial_fraction <= 0.50
