"""Energy model tests (§III-B methodology)."""

import pytest

from repro.hardware import EnergyModel, get_platform


@pytest.fixture
def model():
    return EnergyModel()


class TestActiveEnergy:
    def test_paper_methodology_runtime_times_tdp(self, model):
        e5 = get_platform("op-e5")
        estimate = model.query_energy(e5, runtime_s=2.0)
        assert estimate.joules == pytest.approx(2.0 * 190.0)  # dual socket

    def test_pi_whole_board(self, model):
        pi = get_platform("pi3b+")
        assert model.query_energy(pi, 10.0).joules == pytest.approx(51.0)

    def test_cluster_scales_with_nodes(self, model):
        pi = get_platform("pi3b+")
        assert model.active_power(pi, nodes=24) == pytest.approx(122.4)

    def test_wimpi_draw_below_op_gold(self, model):
        """The paper: 24 nodes at 5.1 W ≈ 122 W, below a single Gold
        6150's 165 W TDP."""
        pi = get_platform("pi3b+")
        gold = get_platform("op-gold")
        assert model.active_power(pi, nodes=24) < gold.tdp_w

    def test_cloud_tdp_unavailable(self, model):
        with pytest.raises(ValueError, match="TDP"):
            model.active_power(get_platform("m5.metal"))

    def test_energy_units(self, model):
        e = model.query_energy(get_platform("pi3b+"), 3600.0)
        assert e.watt_hours == pytest.approx(5.1)
        assert e.electricity_cost_usd > 0


class TestIdleAndProportionality:
    def test_idle_below_peak(self, model):
        for key in ("op-e5", "op-gold", "pi3b+"):
            spec = get_platform(key)
            assert model.idle_power(spec) < model.active_power(spec)

    def test_single_node_ramp_is_linear(self, model):
        pi = get_platform("pi3b+")
        curve = model.proportionality_curve(pi, [0.0, 0.5, 1.0])
        assert curve[0] == model.idle_power(pi)
        assert curve[2] == model.active_power(pi)
        assert curve[1] == pytest.approx((curve[0] + curve[2]) / 2)

    def test_cluster_steps_with_active_nodes(self, model):
        """Unused WIMPI nodes power off entirely — the paper's
        fine-grained energy proportionality argument."""
        pi = get_platform("pi3b+")
        curve = model.proportionality_curve(pi, [0.0, 0.25, 0.5, 1.0], nodes=4)
        assert curve == [0.0, 5.1, pytest.approx(10.2), pytest.approx(20.4)]

    def test_cluster_proportionality_beats_server(self, model):
        """At low utilization, a right-sized cluster draws a smaller
        fraction of its peak than an idle-hungry server."""
        pi = get_platform("pi3b+")
        e5 = get_platform("op-e5")
        cluster_frac = (
            model.proportionality_curve(pi, [0.25], nodes=24)[0]
            / model.active_power(pi, nodes=24)
        )
        server_frac = (
            model.proportionality_curve(e5, [0.25])[0] / model.active_power(e5)
        )
        assert cluster_frac < server_frac

    def test_utilization_bounds_checked(self, model):
        with pytest.raises(ValueError):
            model.proportionality_curve(get_platform("pi3b+"), [1.5])
