"""Performance-model unit tests: monotonicity, roofline behaviour,
platform factors."""

import pytest

from repro.engine.profile import OperatorWork, WorkProfile
from repro.hardware import (
    CalibrationConstants, PerformanceModel, PLATFORMS, get_platform,
)


def profile_of(**kwargs) -> WorkProfile:
    return WorkProfile([OperatorWork("scan", **kwargs)])


@pytest.fixture
def model():
    return PerformanceModel(platform_factors={})


class TestMonotonicity:
    def test_more_ops_more_time(self, model):
        pi = get_platform("pi3b+")
        small = model.predict(profile_of(ops=1e6), pi)
        large = model.predict(profile_of(ops=1e9), pi)
        assert large > small

    def test_more_bytes_more_time(self, model):
        pi = get_platform("pi3b+")
        assert model.predict(profile_of(seq_bytes=1e9), pi) > model.predict(
            profile_of(seq_bytes=1e6), pi
        )

    def test_scaling_profile_scales_dominant_term(self, model):
        pi = get_platform("pi3b+")
        base = profile_of(ops=1e9, seq_bytes=1e9)
        t1 = model.predict(base, pi)
        t10 = model.predict(base.scaled(10), pi)
        assert 5 < t10 / t1 < 15  # near-linear (dispatch is fixed)

    def test_faster_platform_is_faster(self, model):
        work = profile_of(ops=1e9, seq_bytes=1e8, rand_accesses=1e6)
        t_pi = model.predict(work, get_platform("pi3b+"))
        t_gold = model.predict(work, get_platform("op-gold"))
        assert t_gold < t_pi

    def test_more_threads_not_slower(self, model):
        e5 = get_platform("op-e5")
        work = profile_of(ops=1e9, seq_bytes=1e8)
        t1 = model.predict(work, e5, threads=1)
        t8 = model.predict(work, e5, threads=8)
        assert t8 <= t1


class TestRoofline:
    def test_memory_bound_work_insensitive_to_compute(self, model):
        pi = get_platform("pi3b+")
        mem_heavy = profile_of(seq_bytes=1e10, ops=1.0)
        mem_plus_ops = profile_of(seq_bytes=1e10, ops=1e6)
        assert model.predict(mem_plus_ops, pi) == pytest.approx(
            model.predict(mem_heavy, pi), rel=0.01
        )

    def test_breakdown_components_sum_meaningfully(self, model):
        e5 = get_platform("op-e5")
        breakdown = model.breakdown(profile_of(ops=1e9, seq_bytes=1e9), e5)
        assert breakdown.total > 0
        assert breakdown.compute > 0 and breakdown.memory > 0
        assert breakdown.total >= breakdown.dispatch

    def test_random_access_latency_hurts_pi_more(self, model):
        """The Pi's higher DRAM latency and 4-way MLP should make random
        work relatively costlier than on a Xeon."""
        work_rand = profile_of(rand_accesses=1e8, out_bytes=1e9)
        work_seq = profile_of(seq_bytes=8e8)
        pi, e5 = get_platform("pi3b+"), get_platform("op-e5")
        rand_ratio = model.predict(work_rand, pi) / model.predict(work_rand, e5)
        assert rand_ratio > 1.0

    def test_llc_resident_discount(self, model):
        e5 = get_platform("op-e5")
        small = profile_of(rand_accesses=1e8, out_bytes=1e6)   # fits in LLC
        big = profile_of(rand_accesses=1e8, out_bytes=1e9)     # does not
        assert model.predict(small, e5) < model.predict(big, e5)


class TestPlatformFactors:
    def test_factor_scales_total(self):
        work = profile_of(ops=1e9)
        e5 = get_platform("op-e5")
        base = PerformanceModel(platform_factors={}).predict(work, e5)
        doubled = PerformanceModel(platform_factors={"op-e5": 2.0}).predict(work, e5)
        assert doubled == pytest.approx(2 * base)

    def test_default_factors_cover_all_platforms(self):
        from repro.hardware import DEFAULT_PLATFORM_FACTORS

        assert set(DEFAULT_PLATFORM_FACTORS) == set(PLATFORMS)
        # Calibration factors are corrections, not rewrites.
        assert all(0.3 < f < 3.0 for f in DEFAULT_PLATFORM_FACTORS.values())

    def test_db_parallel_cap_limits_threads(self):
        z1d = get_platform("z1d.metal")
        model = PerformanceModel(platform_factors={})
        work = profile_of(ops=1e10)
        capped = model.predict(work, z1d)
        uncapped = model.predict(work, z1d, threads=z1d.db_parallel_cap)
        assert capped == pytest.approx(uncapped)


class TestConstants:
    def test_replaced(self):
        c = CalibrationConstants()
        c2 = c.replaced(cycles_per_op=99.0)
        assert c2.cycles_per_op == 99.0
        assert c.cycles_per_op != 99.0

    def test_defaults_are_frozen_sane(self):
        c = CalibrationConstants()
        assert c.cycles_per_op > 1
        assert 0 <= c.serial_fraction < 1
        assert 0 <= c.mem_serial_fraction < 1
