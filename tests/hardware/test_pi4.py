"""Raspberry Pi 4B extension-platform tests (§III-C1)."""

import pytest

from repro.engine.profile import OperatorWork, WorkProfile
from repro.hardware import PI4_KEY, PI_KEY, PerformanceModel, get_platform


class TestPi4Spec:
    def test_costs_more_draws_more(self):
        pi3, pi4 = get_platform(PI_KEY), get_platform(PI4_KEY)
        assert pi4.msrp_usd > pi3.msrp_usd
        assert pi4.tdp_w > pi3.tdp_w

    def test_faster_cores_and_memory(self):
        pi3, pi4 = get_platform(PI_KEY), get_platform(PI4_KEY)
        assert pi4.core_rate("int") > pi3.core_rate("int")
        assert pi4.mem_bw_1core_gbs > pi3.mem_bw_1core_gbs

    def test_still_wimpy_next_to_a_xeon(self):
        pi4, e5 = get_platform(PI4_KEY), get_platform("op-e5")
        assert pi4.core_rate("int") < e5.core_rate("int")
        assert pi4.mem_bw_all_gbs < e5.mem_bw_all_gbs / 5

    def test_model_ranks_it_between_pi3_and_servers(self):
        model = PerformanceModel()
        work = WorkProfile([OperatorWork("scan", ops=1e9, seq_bytes=1e9)])
        t_pi3 = model.predict(work, get_platform(PI_KEY))
        t_pi4 = model.predict(work, get_platform(PI4_KEY))
        t_e5 = model.predict(work, get_platform("op-e5"))
        assert t_e5 < t_pi4 < t_pi3

    def test_hourly_cost_derived_from_power(self):
        pi4 = get_platform(PI4_KEY)
        assert pi4.hourly_usd == pytest.approx(7.6 / 1000 * 0.0766)
