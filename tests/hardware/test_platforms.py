"""Platform catalog tests: Table I values and derived quantities."""

import pytest

from repro.hardware import (
    ALL_KEYS, CLOUD, KWH_PRICE_USD, ON_PREMISES, PI_KEY, PLATFORMS, SBC,
    get_platform,
)


class TestCatalogContents:
    def test_ten_comparison_points(self):
        assert len(ALL_KEYS) == 10
        assert len(ON_PREMISES) == 2 and len(CLOUD) == 7 and len(SBC) == 1

    def test_table1_spec_values(self):
        e5 = get_platform("op-e5")
        assert (e5.freq_ghz, e5.cores, e5.llc_mb) == (2.2, 10, 25.0)
        assert e5.msrp_usd == 1389.0 and e5.tdp_w == 95.0
        gold = get_platform("op-gold")
        assert (gold.freq_ghz, gold.cores, gold.llc_mb) == (2.7, 18, 24.75)
        assert gold.msrp_usd == 3358.0 and gold.tdp_w == 165.0
        pi = get_platform(PI_KEY)
        assert (pi.freq_ghz, pi.cores) == (1.4, 4)
        assert pi.llc_mb == 0.512 and pi.msrp_usd == 35.0 and pi.tdp_w == 5.1

    def test_cloud_hourly_prices(self):
        expected = {
            "c4.8xlarge": 1.591, "m4.10xlarge": 2.00, "m4.16xlarge": 3.20,
            "z1d.metal": 4.464, "m5.metal": 4.608, "a1.metal": 0.408,
            "c6g.metal": 2.176,
        }
        for key, price in expected.items():
            assert get_platform(key).hourly_usd == price

    def test_cloud_has_no_msrp_or_tdp(self):
        for key in CLOUD:
            spec = get_platform(key)
            assert spec.msrp_usd is None and spec.tdp_w is None

    def test_pi_hourly_cost_matches_paper(self):
        """5.1 W at the US average kWh price is < $0.0004/hour."""
        pi = get_platform(PI_KEY)
        assert pi.hourly_usd == pytest.approx(5.1 / 1000 * KWH_PRICE_USD)
        assert pi.hourly_usd < 0.0004

    def test_graviton2_has_64_cores_single_socket(self):
        c6g = get_platform("c6g.metal")
        assert c6g.cores == 64 and c6g.sockets == 1 and c6g.smt == 1

    def test_unknown_platform(self):
        with pytest.raises(KeyError, match="unknown platform"):
            get_platform("cray-1")


class TestDerived:
    def test_dual_socket_doubling(self):
        e5 = get_platform("op-e5")
        assert e5.total_cores == 20
        assert e5.total_msrp_usd == 2 * 1389.0
        assert e5.total_tdp_w == 190.0

    def test_pi_single_board(self):
        pi = get_platform(PI_KEY)
        assert pi.total_cores == 4
        assert pi.total_msrp_usd == 35.0
        assert pi.total_tdp_w == 5.1

    def test_core_rate_kinds_differ(self):
        e5 = get_platform("op-e5")
        assert e5.core_rate("int") > e5.core_rate("flt") > e5.core_rate("div")

    def test_parallel_rate_monotone_in_threads(self):
        gold = get_platform("op-gold")
        rates = [gold.parallel_rate("int", t) for t in (1, 4, 18, 36)]
        assert rates == sorted(rates)
        assert rates[0] < rates[-1]

    def test_smt_boost_only_past_physical_cores(self):
        e5 = get_platform("op-e5")
        at_cores = e5.parallel_rate("int", e5.total_cores, smt_boost=1.25)
        with_smt = e5.parallel_rate("int", e5.total_cores * 2, smt_boost=1.25)
        assert with_smt == pytest.approx(at_cores * 1.25)

    def test_arm_has_no_smt(self):
        pi = get_platform(PI_KEY)
        assert pi.parallel_rate("int", 8) == pi.parallel_rate("int", 4)

    def test_mem_bandwidth_saturation(self):
        e5 = get_platform("op-e5")
        assert e5.mem_bandwidth(1) == 10.0e9
        assert e5.mem_bandwidth(e5.total_cores) == pytest.approx(48.0e9)
        # plateau: threads beyond saturation do not increase bandwidth
        assert e5.mem_bandwidth(40) == pytest.approx(e5.mem_bandwidth(20))

    def test_pi_single_channel(self):
        """One Pi core nearly saturates the channel (paper §II-C2)."""
        pi = get_platform(PI_KEY)
        assert pi.mem_bandwidth(4) / pi.mem_bandwidth(1) < 1.3
