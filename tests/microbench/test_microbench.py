"""Microbenchmark tests: Fig. 2 shape claims + runnable host kernels."""

import pytest

from repro.hardware import ALL_KEYS, get_platform
from repro.microbench import (
    dhrystone, iperf, membw, network_bandwidth_mbps, run_all, sysbench, whetstone,
)


@pytest.fixture(scope="module")
def results():
    return run_all()


class TestFig2aWhetstone:
    def test_pi_single_core_2_to_3x_behind_op_e5(self, results):
        ratio = (results["op-e5"].whetstone_mwips_1core
                 / results["pi3b+"].whetstone_mwips_1core)
        assert 2.0 <= ratio <= 3.0

    def test_pi_up_to_5_6x_behind_high_end(self, results):
        for key in ("op-gold", "m5.metal"):
            ratio = (results[key].whetstone_mwips_1core
                     / results["pi3b+"].whetstone_mwips_1core)
            assert 4.5 <= ratio <= 6.5, key

    def test_z1d_best_single_core(self, results):
        best = max(results, key=lambda k: results[k].whetstone_mwips_1core)
        assert best == "z1d.metal"

    def test_all_core_gap_10_to_90x(self, results):
        pi = results["pi3b+"].whetstone_mwips_all
        for key, row in results.items():
            if key == "pi3b+":
                continue
            assert 10 <= row.whetstone_mwips_all / pi <= 90, key

    def test_c6g_wins_all_core_by_wide_margin(self, results):
        ranked = sorted(results.values(), key=lambda r: -r.whetstone_mwips_all)
        assert ranked[0].platform == "c6g.metal"


class TestFig2bDhrystone:
    def test_pi_single_core_2_to_3x_behind_op_e5(self, results):
        ratio = (results["op-e5"].dhrystone_dmips_1core
                 / results["pi3b+"].dhrystone_dmips_1core)
        assert 2.0 <= ratio <= 3.0

    def test_pi_dmips_absolute_plausible(self, results):
        """Cortex-A53 at 1.4 GHz is ~3k DMIPS (2.24 DMIPS/MHz)."""
        assert 2500 < results["pi3b+"].dhrystone_dmips_1core < 3800

    def test_all_core_winner_is_graviton2(self, results):
        best = max(results, key=lambda k: results[k].dhrystone_dmips_all)
        assert best == "c6g.metal"


class TestFig2cSysbench:
    def test_pi_single_core_matches_op_e5(self, results):
        """'the single-core performance of a Raspberry Pi 3B+ is nearly
        identical to the Intel E5-2660 v2'."""
        ratio = results["pi3b+"].sysbench_s_1core / results["op-e5"].sysbench_s_1core
        assert 0.8 <= ratio <= 1.25

    def test_other_servers_1_2_to_3_9x_better(self, results):
        pi = results["pi3b+"].sysbench_s_1core
        for key in ALL_KEYS:
            if key in ("pi3b+", "op-e5"):
                continue
            ratio = pi / results[key].sysbench_s_1core
            assert 1.0 <= ratio <= 4.4, (key, ratio)

    def test_all_core_gap_4_to_14x_except_c6g(self, results):
        """Paper band 4-14x with model slack (2.5-16.5); c6g.metal is the
        paper's explicit exception and must exceed the band."""
        pi = results["pi3b+"].sysbench_s_all
        for key in ALL_KEYS:
            if key in ("pi3b+", "c6g.metal"):
                continue
            ratio = pi / results[key].sysbench_s_all
            assert 2.5 <= ratio <= 16.5, (key, ratio)
        assert pi / results["c6g.metal"].sysbench_s_all > 18.0

    def test_division_count_grows_superlinearly(self):
        assert sysbench.division_count(2000) > 2 * sysbench.division_count(1000)


class TestFig2dMemoryBandwidth:
    def test_single_core_gap_5_to_11x(self, results):
        pi = results["pi3b+"].membw_gbs_1core
        for key in ALL_KEYS:
            if key == "pi3b+":
                continue
            assert 5 <= results[key].membw_gbs_1core / pi <= 11, key

    def test_all_core_gap_20_to_99x(self, results):
        pi = results["pi3b+"].membw_gbs_all
        for key in ALL_KEYS:
            if key == "pi3b+":
                continue
            assert 20 <= results[key].membw_gbs_all / pi <= 99, key

    def test_pi_single_channel_saturated_by_one_core(self, results):
        row = results["pi3b+"]
        assert row.membw_gbs_all / row.membw_gbs_1core < 1.3

    def test_wimpi_aggregate_matches_op_e5(self, results):
        """24 nodes of Pi bandwidth ≈ op-e5's machine bandwidth; tripling
        would match op-gold (paper §II-C2)."""
        aggregate_24 = 24 * results["pi3b+"].membw_gbs_all
        assert aggregate_24 == pytest.approx(results["op-e5"].membw_gbs_all, rel=0.15)
        aggregate_72 = 72 * results["pi3b+"].membw_gbs_all
        assert aggregate_72 == pytest.approx(results["op-gold"].membw_gbs_all, rel=0.15)


class TestNetwork:
    def test_220_mbps(self):
        assert network_bandwidth_mbps() == pytest.approx(220.0)

    def test_transfer_time_includes_latency(self):
        zero = iperf.simulate_transfer_s(0)
        assert zero > 0
        one_mb = iperf.simulate_transfer_s(1_000_000)
        assert one_mb > zero
        # 1 MB at 220 Mbps ≈ 36 ms of serialization
        assert one_mb - zero == pytest.approx(8_000_000 / 220e6, rel=0.01)

    def test_negative_payload_rejected(self):
        with pytest.raises(ValueError):
            iperf.simulate_transfer_s(-1)


class TestHostKernels:
    """The runnable kernels execute on this machine and return sane
    numbers — they validate the measurement code path itself."""

    def test_whetstone_kernel_runs(self):
        mwips = whetstone.run_kernel(duration_s=0.05)
        assert mwips > 1.0

    def test_dhrystone_kernel_runs(self):
        assert dhrystone.run_kernel(duration_s=0.05) > 1.0

    def test_sysbench_kernel_finds_primes(self):
        primes, seconds = sysbench.run_kernel(limit=100)
        assert primes == 24  # primes in [3, 100] (25 primes minus {2})
        assert seconds > 0

    def test_membw_kernel_measures_positive_bandwidth(self):
        assert membw.run_kernel(buffer_mb=8, passes=1) > 0.1
