"""Parallel-executor smoke benchmark: Q1 and Q6 wall clock, serial vs
morsel-parallel.

The ISSUE's acceptance target is >= 2x at 4 workers on a 4-core runner
for Q1/Q6 at SF 0.1. Hosts with fewer cores (CI containers, laptops on
battery) cannot hit that, so the hard assertion is opt-in via
``--assert-speedup X``; by default the benchmark reports the measured
curve as an artifact.

Run::

    PYTHONPATH=src python -m pytest benchmarks/bench_parallel_smoke.py -q \
        --workers 4 [--assert-speedup 2.0]
"""

from __future__ import annotations

import os
import time

import pytest

from repro.engine import Executor, ParallelExecutor
from repro.tpch import generate, get_query

from conftest import write_artifact

SMOKE_SF = 0.1
SMOKE_QUERIES = (1, 6)
REPEATS = 3


def pytest_generate_tests(metafunc):
    if "query_number" in metafunc.fixturenames:
        metafunc.parametrize("query_number", SMOKE_QUERIES)


@pytest.fixture(scope="module")
def smoke_db():
    return generate(SMOKE_SF, seed=42)


def _best_wall(run) -> float:
    return min(run() for _ in range(REPEATS))


def test_parallel_smoke(benchmark, smoke_db, output_dir, request, query_number):
    workers = int(request.config.getoption("--workers"))
    assert_speedup = request.config.getoption("--assert-speedup")
    plan = get_query(query_number).build(smoke_db, {"sf": SMOKE_SF})

    serial = Executor(smoke_db)

    def run_serial():
        start = time.perf_counter()
        serial.execute(plan)
        return time.perf_counter() - start

    t_serial = _best_wall(run_serial)

    with ParallelExecutor(smoke_db, workers=workers, cache_size=0) as parallel:
        def run_parallel():
            start = time.perf_counter()
            parallel.execute(plan)
            return time.perf_counter() - start

        benchmark.pedantic(run_parallel, rounds=1, iterations=1)
        t_parallel = _best_wall(run_parallel)

    speedup = t_serial / max(t_parallel, 1e-9)
    text = (
        f"Q{query_number} @ SF {SMOKE_SF:g} (host cores: {os.cpu_count()})\n"
        f"  serial:            {t_serial * 1e3:8.2f} ms\n"
        f"  {workers} workers: {t_parallel * 1e3:8.2f} ms\n"
        f"  speedup:           {speedup:8.2f}x"
    )
    write_artifact(output_dir, f"parallel_smoke_q{query_number}", text)
    print("\n" + text)

    if assert_speedup is not None:
        assert speedup >= float(assert_speedup), (
            f"Q{query_number}: {speedup:.2f}x < required {assert_speedup}x "
            f"at {workers} workers"
        )
