"""Fig. 4 — execution strategies (data-centric / hybrid / access-aware),
single-threaded, on op-e5, op-gold, and the Pi."""

from repro.analysis import render_matrix
from repro.strategies import STRATEGY_QUERIES

from conftest import write_artifact


def _run_fig4(study):
    study._cache.pop("fig4", None)
    return study.fig4()


def test_fig4_strategies(benchmark, study, output_dir):
    runs = benchmark.pedantic(_run_fig4, args=(study,), rounds=1, iterations=1)
    cells = {(r.platform, r.strategy, r.query): r.seconds for r in runs}
    rows = []
    for platform in ("op-e5", "op-gold", "pi3b+"):
        for strategy in ("data-centric", "hybrid", "access-aware"):
            rows.append(
                (platform, strategy)
                + tuple(round(cells[(platform, strategy, q)], 4) for q in STRATEGY_QUERIES)
            )
    text = render_matrix(
        rows,
        ["platform", "strategy"] + [f"Q{q}" for q in STRATEGY_QUERIES],
        title="Fig. 4: Execution strategy runtimes (s), single-threaded SF 1",
    )
    write_artifact(output_dir, "fig4", text)
    # access-aware < hybrid < data-centric everywhere
    for platform in ("op-e5", "op-gold", "pi3b+"):
        for q in STRATEGY_QUERIES:
            assert (
                cells[(platform, "access-aware", q)]
                < cells[(platform, "hybrid", q)]
                < cells[(platform, "data-centric", q)]
            )
