"""Fig. 5 — MSRP-normalized comparison (SF 1 and SF 10, on-premises)."""

from repro.analysis import render_runtime_table, render_series

from conftest import write_artifact


def _run_fig5(study):
    return study.fig5()


def test_fig5_msrp(benchmark, study, output_dir):
    fig5 = benchmark.pedantic(_run_fig5, args=(study,), rounds=1, iterations=1)
    text = render_runtime_table(
        fig5["sf1"],
        title="Fig. 5 (left): SF 1 MSRP-normalized improvement (>1 favors the Pi)",
    )
    for server, per_nodes in fig5["sf10"].items():
        series = {
            f"Q{q}": {n: per_nodes[n][q] for n in sorted(per_nodes)}
            for q in sorted(per_nodes[min(per_nodes)])
        }
        text += "\n\n" + render_series(
            series, f"Fig. 5 (right): SF 10 MSRP-normalized vs {server}",
            x_label="n=", break_even=1.0,
        )
    write_artifact(output_dir, "fig5", text)
    # SF 1: the single Pi always wins the MSRP comparison.
    assert all(v > 1.0 for per in fig5["sf1"].values() for v in per.values())
    # Q13 never breaks even at SF 10.
    assert all(
        per[n][13] < 1.0 for per in fig5["sf10"].values() for n in per
    )
