"""Ablation benches for the design choices DESIGN.md calls out:

* thrash model on/off — does the Table III cliff come from the memory
  pressure term alone?
* network gather latency sweep — is the Q6/Q14 plateau a latency effect?
* compression on/off at the cliff (§III-C2 extension);
* NAM offloading (§III-C1 extension).
"""

import pytest

from repro.analysis import render_matrix
from repro.cluster import NetworkModel, WimPiCluster
from repro.cluster.nam import NamCluster
from repro.tpch import generate

from conftest import write_artifact

BASE_SF = 0.02


@pytest.fixture(scope="module")
def db():
    return generate(BASE_SF)


def test_ablation_thrash_model(benchmark, db, output_dir):
    """Remove the memory-pressure multiplier: the 4-node cliff must
    disappear, proving it is the model's only source."""
    import repro.cluster.cluster as cluster_mod

    def run():
        cluster = WimPiCluster(4, base_sf=BASE_SF, target_sf=10.0, db=db)
        with_thrash = cluster.run_query(1).total_seconds
        original = cluster_mod.thrash_multiplier
        cluster_mod.thrash_multiplier = lambda *a, **k: 1.0
        try:
            cluster2 = WimPiCluster(4, base_sf=BASE_SF, target_sf=10.0, db=db)
            without = cluster2.run_query(1).total_seconds
        finally:
            cluster_mod.thrash_multiplier = original
        return with_thrash, without

    with_thrash, without = benchmark.pedantic(run, rounds=1, iterations=1)
    text = render_matrix(
        [("thrash model on", round(with_thrash, 2)),
         ("thrash model off", round(without, 2)),
         ("cliff factor", round(with_thrash / without, 1))],
        ["config", "Q1 @ 4 nodes (s)"],
        title="Ablation: memory-pressure multiplier",
    )
    write_artifact(output_dir, "ablation_thrash", text)
    assert with_thrash > 5 * without


def test_ablation_network_latency(benchmark, db, output_dir):
    """Sweep the driver's per-message latency: Q6 at 24 nodes should
    scale with it (the paper's network-bound plateau)."""

    def run():
        rows = []
        for latency_ms in (0.0, 1.0, 2.5, 5.0, 10.0):
            network = NetworkModel(message_latency_s=latency_ms / 1000.0)
            cluster = WimPiCluster(
                24, base_sf=BASE_SF, target_sf=10.0, db=db, network=network
            )
            rows.append((latency_ms, round(cluster.run_query(6).total_seconds, 3)))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = render_matrix(rows, ["latency (ms)", "Q6 @ 24 nodes (s)"],
                         title="Ablation: driver message latency")
    write_artifact(output_dir, "ablation_network", text)
    times = [t for _, t in rows]
    assert times == sorted(times)  # latency directly surfaces in runtime


def test_extension_compression_cliff(benchmark, db, output_dir):
    """§III-C2: compressed base data shrinks the working set enough to
    defuse the 4-node cliff."""

    def run():
        out = {}
        for compress in (False, True):
            cluster = WimPiCluster(
                4, base_sf=BASE_SF, target_sf=10.0, db=db, compress=compress
            )
            r = cluster.run_query(1)
            out[compress] = (r.total_seconds, max(r.node_pressure))
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    text = render_matrix(
        [("plain", round(out[False][0], 2), round(out[False][1], 2)),
         ("compressed", round(out[True][0], 2), round(out[True][1], 2))],
        ["storage", "Q1 @ 4 nodes (s)", "memory pressure"],
        title="Extension: compression vs the memory cliff (paper SIII-C2)",
    )
    write_artifact(output_dir, "extension_compression", text)
    assert out[True][0] < out[False][0] / 3


def test_extension_nam_offload(benchmark, db, output_dir):
    """§III-C1: a network-attached-memory server absorbs the fragments
    that thrash a 1 GB node."""

    def run():
        plain = WimPiCluster(4, base_sf=BASE_SF, target_sf=10.0, db=db)
        hybrid = NamCluster(4, base_sf=BASE_SF, target_sf=10.0, db=db)
        rows = []
        for q in (1, 5, 13):
            rows.append((
                f"Q{q}",
                round(plain.run_query(q).total_seconds, 2),
                round(hybrid.run_query(q).total_seconds, 2),
            ))
        return rows, plain.total_msrp_usd, hybrid.total_msrp_usd

    rows, plain_cost, nam_cost = benchmark.pedantic(run, rounds=1, iterations=1)
    text = render_matrix(rows, ["query", "WIMPI (s)", "WIMPI+NAM (s)"],
                         title="Extension: NAM hybrid cluster (paper SIII-C1)")
    text += f"\n\nhardware cost: ${plain_cost:.0f} (plain) vs ${nam_cost:.0f} (hybrid)"
    write_artifact(output_dir, "extension_nam", text)
    for _, plain_s, nam_s in rows:
        assert nam_s < plain_s


def test_extension_shuffle_q13(benchmark, db, output_dir):
    """The paper's deferred future work: repartitioned execution makes
    Q13 scale with the cluster instead of staying flat at ~103 s."""
    from repro.cluster.shuffle import run_repartitioned

    keys = {"orders": "o_custkey", "customer": "c_custkey"}

    def run():
        plain = WimPiCluster(24, base_sf=BASE_SF, target_sf=10.0, db=db)
        flat = plain.run_query(13).total_seconds
        rows = []
        for n in (4, 12, 24):
            shuffled = run_repartitioned(13, n, keys, base_sf=BASE_SF, db=db)
            pre = run_repartitioned(
                13, n, keys, base_sf=BASE_SF, db=db, include_shuffle=False
            )
            rows.append((n, round(flat, 1), round(shuffled.total_seconds, 2),
                         round(pre.total_seconds, 2)))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = render_matrix(
        rows,
        ["nodes", "paper driver (s)", "with shuffle (s)", "pre-partitioned (s)"],
        title="Extension: distributed Q13 via co-partitioning (paper SII-D2 future work)",
    )
    write_artifact(output_dir, "extension_shuffle", text)
    assert all(row[2] < row[1] for row in rows)


def test_extension_tailored_composition(benchmark, db, output_dir):
    """§III-C1: mixing a few 8 GB Pi 4B nodes into the cluster gives
    memory-bound fallback queries somewhere to live."""
    from repro.cluster import NodeSpec
    from repro.cluster.tailored import PI4_NODE, TailoredCluster

    def run():
        uniform = WimPiCluster(24, base_sf=BASE_SF, target_sf=10.0, db=db)
        mixed = TailoredCluster(
            [NodeSpec()] * 20 + [PI4_NODE] * 4,
            base_sf=BASE_SF, target_sf=10.0, db=db,
        )
        rows = []
        for q in (13, 1, 6):
            rows.append((
                f"Q{q}",
                round(uniform.run_query(q).total_seconds, 2),
                round(mixed.run_query(q).total_seconds, 2),
            ))
        return rows, uniform.total_msrp_usd, mixed.total_msrp_usd

    rows, u_cost, m_cost = benchmark.pedantic(run, rounds=1, iterations=1)
    text = render_matrix(
        rows, ["query", "24x Pi3B+ (s)", "20x Pi3B+ + 4x Pi4B-8GB (s)"],
        title="Extension: tailored node composition (paper SIII-C1)",
    )
    text += f"\n\nhardware cost: ${u_cost:.0f} vs ${m_cost:.0f}"
    write_artifact(output_dir, "extension_tailored", text)
    q13_uniform, q13_mixed = rows[0][1], rows[0][2]
    assert q13_mixed < q13_uniform / 10
