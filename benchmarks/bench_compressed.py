"""Compressed-execution benchmark: encoded-domain eval on vs off.

Compression already pays once on a wimpy node by shrinking the bytes a
scan streams (§III-C2's bandwidth-for-cycles trade). Compressed
execution collects the second payment: sargable predicates evaluate
directly on the packed/run-length payloads and predicate-free
aggregations reduce over RLE runs, so the decode cycles the first trade
*bought* are simply not spent. Both sides of every comparison here run
against the same compressed, date-clustered database — the delta is
purely encoded-domain evaluation (the default) vs decode-then-eval
(``--no-compressed-exec``).

Two query groups:

* **gated** — RLE/FoR-friendly scans and group-bys (a date-window count
  over the run-length shipdate column, a per-day group-by that reduces
  ~3M rows to ~2.5k runs, and TPC-H Q6 whose conjuncts all compile).
  At least one must reach >= 2x wall-clock with fewer decoded bytes.
* **guard** — queries dominated by joins and residual predicates (Q1,
  Q18) where encoded eval applies to little of the work. They gate only
  against regression: neither may run more than 5% slower with
  compressed execution on.

Emits ``benchmarks/output/BENCH_compressed.json``.

Run::

    PYTHONPATH=src python -m pytest benchmarks/bench_compressed.py -q
"""

from __future__ import annotations

import json
import time

import numpy as np
import pytest

from repro.engine import DEFAULT_SETTINGS, Database, Executor, Q, agg, col
from repro.engine.compression import compress_table
from repro.tpch import generate, get_query

from conftest import write_artifact

BENCH_SF = 0.5
REPEATS = 3
REQUIRED_SPEEDUP = 2.0
MAX_GUARD_SLOWDOWN = 1.05

# Date-clustering is what a time-partitioned load produces, and it is
# what gives the shipdate/orderdate columns their long runs (RLE).
_CLUSTER_KEYS = {"lineitem": "l_shipdate", "orders": "o_orderdate"}


def _rle_filter_count(db):
    """Date-window count: every conjunct compiles against the RLE
    shipdate column, and COUNT(*) needs no payload — the encoded run
    never decodes a single value."""
    return (
        Q(db)
        .scan("lineitem")
        .filter(col("l_shipdate") >= "1994-01-01")
        .filter(col("l_shipdate") < "1995-01-01")
        .aggregate(items=agg.count_star())
    )


def _rle_groupby(db):
    """Shipments per day: a predicate-free group-by on the RLE shipdate
    key reduces one value per run instead of hashing ~3M rows."""
    return (
        Q(db)
        .scan("lineitem")
        .aggregate(by=["l_shipdate"], items=agg.count_star())
    )


# (label, plan builder, kind) — kind "gated" carries the speedup floor,
# "guard" carries the no-regression ceiling for decode-fallback shapes.
BENCH_QUERIES = (
    ("rle-filter-count", _rle_filter_count, "gated"),
    ("rle-groupby", _rle_groupby, "gated"),
    ("Q6", lambda db: get_query(6).build(db, {"sf": BENCH_SF}), "gated"),
    ("Q1", lambda db: get_query(1).build(db, {"sf": BENCH_SF}), "guard"),
    ("Q18", lambda db: get_query(18).build(db, {"sf": BENCH_SF}), "guard"),
)


@pytest.fixture(scope="module")
def compressed_db():
    db = generate(BENCH_SF, seed=42)
    compressed = Database(db.name)
    for name in db.table_names:
        table = db.table(name)
        key = _CLUSTER_KEYS.get(name)
        if key is not None:
            order = np.argsort(table.column(key).values, kind="stable")
            table = table.select_rows(order)
        compressed.add(compress_table(table))
    compressed.build_zone_maps()
    return compressed


def _best_wall(executor, plan):
    best, result = float("inf"), None
    for _ in range(REPEATS):
        start = time.perf_counter()
        result = executor.execute(plan)
        best = min(best, time.perf_counter() - start)
    return best, result


def test_compressed_execution_speedup(benchmark, compressed_db, output_dir):
    enc = Executor(compressed_db)  # compressed execution is the default
    dec = Executor(compressed_db, DEFAULT_SETTINGS.without_compressed())

    entries = []
    for label, build, kind in BENCH_QUERIES:
        plan = build(compressed_db)
        t_dec, r_dec = _best_wall(dec, plan)
        t_enc, r_enc = _best_wall(enc, plan)
        assert sorted(map(str, r_enc.rows)) == sorted(map(str, r_dec.rows)), (
            f"{label}: compressed execution changed the result"
        )
        p_enc, p_dec = r_enc.profile, r_dec.profile
        entries.append({
            "query": label,
            "kind": kind,
            "seconds_decode": t_dec,
            "seconds_encoded": t_enc,
            "speedup": t_dec / max(t_enc, 1e-9),
            "decoded_bytes_decode": p_dec.decoded_bytes,
            "decoded_bytes_encoded": p_enc.decoded_bytes,
            "decode_reduction": 1.0
            - p_enc.decoded_bytes / max(p_dec.decoded_bytes, 1e-9),
            "encoded_eval_rows": p_enc.encoded_eval_rows,
            "runs_touched": p_enc.runs_touched,
        })

    benchmark.pedantic(
        lambda: enc.execute(_rle_groupby(compressed_db)), rounds=1, iterations=1
    )

    report = {
        "sf": BENCH_SF,
        "clustered": sorted(_CLUSTER_KEYS),
        "repeats": REPEATS,
        "queries": entries,
    }
    (output_dir / "BENCH_compressed.json").write_text(
        json.dumps(report, indent=2) + "\n"
    )

    lines = [f"compressed execution @ SF {BENCH_SF:g} (date-clustered, compressed tables)"]
    for e in entries:
        tag = "  [guard]" if e["kind"] == "guard" else ""
        lines.append(
            f"  {e['query']:<18} {e['seconds_decode'] * 1e3:8.2f} ms -> "
            f"{e['seconds_encoded'] * 1e3:8.2f} ms "
            f"({e['speedup']:.2f}x, decoded bytes -{e['decode_reduction']:.0%}, "
            f"{e['encoded_eval_rows'] / 1e6:.1f}M rows encoded-eval, "
            f"{e['runs_touched']:,.0f} runs/blocks)"
            f"{tag}"
        )
    text = "\n".join(lines)
    write_artifact(output_dir, "compressed", text)
    print("\n" + text)

    gated = [e for e in entries if e["kind"] == "gated"]
    winners = [
        e for e in gated
        if e["speedup"] >= REQUIRED_SPEEDUP and e["decode_reduction"] > 0
    ]
    assert winners, (
        f"no RLE/FoR-friendly query reached {REQUIRED_SPEEDUP}x with fewer "
        "decoded bytes: "
        + ", ".join(f"{e['query']}={e['speedup']:.2f}x" for e in gated)
    )
    for e in entries:
        if e["kind"] == "guard":
            assert e["seconds_encoded"] <= e["seconds_decode"] * MAX_GUARD_SLOWDOWN, (
                f"{e['query']} regressed under compressed execution: "
                f"{e['seconds_decode'] * 1e3:.2f} ms -> "
                f"{e['seconds_encoded'] * 1e3:.2f} ms"
            )
