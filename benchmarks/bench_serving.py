"""Serving benchmark: latency/throughput under rising concurrency, and
shed-don't-collapse under deliberate overload.

The wimpy-node serving story (§ concurrency axis of the roadmap): many
clients multiplex one morsel-driven engine through the
:class:`~repro.serve.QueryServer` front door. Two scenarios:

* **Closed-loop load curve** — N client threads each issue a stream of
  mixed analytical queries and wait for rows; QPS and p50/p95/p99
  latency are recorded per concurrency level. The result cache is
  disabled so every request pays real execution.
* **Overload** — admission is capped tight, then ~2x the server's
  capacity is offered in bursts. The server must *shed* the excess with
  typed ``Overloaded`` errors while every admitted request returns
  correct rows and the server stays responsive afterwards — a latency
  plateau instead of a collapse.

Emits ``benchmarks/output/BENCH_serving.json``.

Run::

    PYTHONPATH=src python -m pytest benchmarks/bench_serving.py -q
"""

from __future__ import annotations

import json
import math
import threading
import time

import pytest

from repro.engine import Executor
from repro.engine.sql import sql as parse_sql
from repro.serve import AdmissionPolicy, Overloaded, QueryServer
from repro.tpch import generate

from conftest import write_artifact

BENCH_SF = 0.02
CONCURRENCY_LEVELS = (1, 2, 4, 8)
REQUESTS_PER_CLIENT = 10
OVERLOAD_WAVES = 6
OVERLOAD_FACTOR = 2  # offered burst = factor * (running + queue capacity)

# A mixed bag of cheap analytical shapes: selective scans, group-bys,
# and a join, so concurrent requests contend for different operators.
WORKLOAD = (
    ("count-window",
     "SELECT COUNT(*) AS n FROM lineitem "
     "WHERE l_shipdate >= DATE '1994-01-01' AND l_shipdate < DATE '1995-01-01'"),
    ("q6-revenue",
     "SELECT SUM(l_extendedprice * l_discount) AS revenue FROM lineitem "
     "WHERE l_shipdate >= DATE '1994-01-01' AND l_shipdate < DATE '1995-01-01' "
     "AND l_discount BETWEEN 0.05 AND 0.07 AND l_quantity < 24"),
    ("flag-groupby",
     "SELECT l_returnflag, SUM(l_quantity) AS qty, COUNT(*) AS n "
     "FROM lineitem GROUP BY l_returnflag"),
    ("priority-mix",
     "SELECT o_orderpriority, COUNT(*) AS n FROM orders "
     "WHERE o_orderdate >= DATE '1995-01-01' "
     "GROUP BY o_orderpriority ORDER BY o_orderpriority"),
    ("nation-join",
     "SELECT n_name, COUNT(*) AS suppliers FROM supplier "
     "JOIN nation ON s_nationkey = n_nationkey "
     "GROUP BY n_name ORDER BY suppliers DESC, n_name LIMIT 5"),
)


@pytest.fixture(scope="module")
def bench_db():
    return generate(BENCH_SF, seed=42)


@pytest.fixture(scope="module")
def expected_rows(bench_db):
    """Serial ground truth for every workload query (order-insensitive)."""
    serial = Executor(bench_db)
    return {
        label: sorted(serial.execute(parse_sql(bench_db, text)).rows)
        for label, text in WORKLOAD
    }


def _rows_match(expected_sorted, rows) -> bool:
    """Order-insensitive row equality, floats within the 1e-9-relative
    noise parallel partial-sum reordering introduces."""
    rows = sorted(rows)
    if len(rows) != len(expected_sorted):
        return False
    for expected, actual in zip(expected_sorted, rows):
        if len(expected) != len(actual):
            return False
        for a, b in zip(expected, actual):
            if isinstance(a, float) and isinstance(b, float):
                if not math.isclose(a, b, rel_tol=1e-6, abs_tol=1e-6):
                    return False
            elif a != b:
                return False
    return True


def _percentile(sorted_values, q: float) -> float:
    if not sorted_values:
        return float("nan")
    idx = min(len(sorted_values) - 1, round(q * (len(sorted_values) - 1)))
    return sorted_values[idx]


def _run_level(server, concurrency: int, expected_rows) -> dict:
    latencies = []
    lat_lock = threading.Lock()
    errors = []
    barrier = threading.Barrier(concurrency + 1)

    def client(worker: int):
        barrier.wait()
        for i in range(REQUESTS_PER_CLIENT):
            label, text = WORKLOAD[(worker + i) % len(WORKLOAD)]
            start = time.perf_counter()
            try:
                result = server.query(text, label=label)
            except BaseException as exc:  # pragma: no cover - diagnostics
                errors.append((label, exc))
                return
            elapsed = time.perf_counter() - start
            if not _rows_match(expected_rows[label], result.rows):
                errors.append((label, "row mismatch"))
                return
            with lat_lock:
                latencies.append(elapsed)

    threads = [threading.Thread(target=client, args=(w,)) for w in range(concurrency)]
    for t in threads:
        t.start()
    barrier.wait()
    wall_start = time.perf_counter()
    for t in threads:
        t.join()
    wall = time.perf_counter() - wall_start

    assert not errors, f"serving errors at concurrency {concurrency}: {errors[:3]}"
    total = concurrency * REQUESTS_PER_CLIENT
    assert len(latencies) == total
    latencies.sort()
    return {
        "concurrency": concurrency,
        "requests": total,
        "wall_seconds": wall,
        "qps": total / max(wall, 1e-9),
        "p50_ms": _percentile(latencies, 0.50) * 1e3,
        "p95_ms": _percentile(latencies, 0.95) * 1e3,
        "p99_ms": _percentile(latencies, 0.99) * 1e3,
    }


def test_serving_load_curve_and_overload(
    benchmark, bench_db, expected_rows, output_dir, request
):
    workers = int(request.config.getoption("--workers"))

    # -- load curve: generous admission, no cache, rising concurrency --
    levels = []
    with QueryServer(
        bench_db,
        workers=workers,
        cache_size=0,
        admission=AdmissionPolicy(
            max_concurrent=workers,
            queue_capacity=max(CONCURRENCY_LEVELS) * REQUESTS_PER_CLIENT,
            max_queue_delay_s=1e9,
        ),
    ) as server:
        for concurrency in CONCURRENCY_LEVELS:
            levels.append(_run_level(server, concurrency, expected_rows))

    # -- overload: tight admission, ~2x capacity offered in bursts -----
    overload_policy = AdmissionPolicy(
        max_concurrent=max(1, workers // 2) or 1,
        queue_capacity=2,
        max_queue_delay_s=1e9,
    )
    capacity = overload_policy.max_concurrent + overload_policy.queue_capacity
    burst = OVERLOAD_FACTOR * capacity
    offered = admitted = shed = completed = 0
    with QueryServer(
        bench_db, workers=workers, cache_size=0, admission=overload_policy
    ) as server:
        for wave in range(OVERLOAD_WAVES):
            tickets = []
            for i in range(burst):
                label, text = WORKLOAD[(wave + i) % len(WORKLOAD)]
                offered += 1
                try:
                    tickets.append((label, server.submit(text, label=label)))
                    admitted += 1
                except Overloaded:
                    shed += 1
            for label, ticket in tickets:
                result = ticket.result(timeout=120)
                assert _rows_match(expected_rows[label], result.rows), (
                    f"overload corrupted {label}"
                )
                completed += 1
        # Still responsive after sustained overload.
        post = server.query(WORKLOAD[0][1], label="post-overload")
        assert _rows_match(expected_rows[WORKLOAD[0][0]], post.rows)
        final_stats = server.stats()

    assert shed > 0, "overload scenario never shed — burst did not exceed capacity"
    assert admitted + shed == offered
    assert completed == admitted, "an admitted request failed under overload"
    assert final_stats["breaker"] == "closed"

    benchmark.pedantic(
        lambda: Executor(bench_db).execute(
            parse_sql(bench_db, WORKLOAD[0][1])
        ),
        rounds=1, iterations=1,
    )

    report = {
        "sf": BENCH_SF,
        "workers": workers,
        "requests_per_client": REQUESTS_PER_CLIENT,
        "workload": [label for label, _ in WORKLOAD],
        "levels": levels,
        "overload": {
            "max_concurrent": overload_policy.max_concurrent,
            "queue_capacity": overload_policy.queue_capacity,
            "burst": burst,
            "waves": OVERLOAD_WAVES,
            "offered": offered,
            "admitted": admitted,
            "shed": shed,
            "completed": completed,
        },
    }
    (output_dir / "BENCH_serving.json").write_text(
        json.dumps(report, indent=2) + "\n"
    )

    lines = [f"query serving @ SF {BENCH_SF:g}, {workers} engine workers"]
    for lv in levels:
        lines.append(
            f"  c={lv['concurrency']:<3} {lv['qps']:7.1f} qps   "
            f"p50 {lv['p50_ms']:7.2f} ms   p95 {lv['p95_ms']:7.2f} ms   "
            f"p99 {lv['p99_ms']:7.2f} ms"
        )
    lines.append(
        f"  overload: {offered} offered -> {admitted} admitted "
        f"({completed} correct), {shed} shed typed "
        f"(capacity {capacity}, burst {burst} x {OVERLOAD_WAVES} waves)"
    )
    text = "\n".join(lines)
    write_artifact(output_dir, "serving", text)
    print("\n" + text)
