"""Table II — TPC-H SF 1 runtimes, 22 queries x 10 platforms.

The engine executes all 22 queries on generated data; the calibrated
hardware model prices the measured work per platform.
"""

from repro.analysis import render_runtime_table
from repro.core import TABLE2_SF1_RUNTIMES, compare_grids

from conftest import write_artifact


def _run_table2(study):
    study._cache.pop("table2", None)  # measure the real computation
    return study.table2()


def test_table2_sf1(benchmark, study, output_dir):
    table2 = benchmark.pedantic(_run_table2, args=(study,), rounds=2, iterations=1)
    text = render_runtime_table(table2, title="Table II: Runtimes (s) for SF 1")
    comparison = compare_grids(table2, TABLE2_SF1_RUNTIMES)
    text += (
        f"\n\npaper-vs-measured: {comparison.cells} cells, "
        f"median factor {comparison.median_factor:.2f}x, "
        f"p90 {comparison.p90_factor:.2f}x, "
        f"rank corr {comparison.spearman_like:.2f}"
    )
    write_artifact(output_dir, "table2", text)
    assert comparison.median_factor < 3.0
