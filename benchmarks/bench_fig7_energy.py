"""Fig. 7 — energy-normalized comparison (SF 1 and SF 10, on-premises)."""

import statistics

from repro.analysis import render_runtime_table, render_series

from conftest import write_artifact


def _run_fig7(study):
    return study.fig7()


def test_fig7_energy(benchmark, study, output_dir):
    fig7 = benchmark.pedantic(_run_fig7, args=(study,), rounds=1, iterations=1)
    text = render_runtime_table(
        fig7["sf1"],
        title="Fig. 7 (left): SF 1 energy-normalized improvement (>1 favors the Pi)",
    )
    for server, per_nodes in fig7["sf10"].items():
        series = {
            f"Q{q}": {n: per_nodes[n][q] for n in sorted(per_nodes)}
            for q in sorted(per_nodes[min(per_nodes)])
        }
        text += "\n\n" + render_series(
            series, f"Fig. 7 (right): SF 10 energy-normalized vs {server}",
            x_label="n=", break_even=1.0,
        )
    medians = {
        server: statistics.median(per.values()) for server, per in fig7["sf1"].items()
    }
    text += "\n\nSF 1 median energy improvements: " + ", ".join(
        f"{k}={v:.1f}x" for k, v in medians.items()
    )
    write_artifact(output_dir, "fig7", text)
    assert all(3 < m < 25 for m in medians.values())
