"""Late-materialization benchmark: selection-vector execution on/off.

Late materialization attacks the same scarce resource as data skipping —
a wimpy node's memory bandwidth — from the other side: instead of not
*reading* bytes, it avoids *writing* them. A selective filter emits a
selection vector over the untouched base columns rather than compactly
rewriting every payload column; the gather is deferred to a pipeline
breaker, by which point most queries have narrowed what they actually
touch. On date-clustered tables the surviving rows are contiguous, so
the deferred "gather" degenerates to a zero-copy slice and the filter's
rewrite disappears entirely.

Two query groups are measured against the same clustered database, late
materialization enabled (default) and disabled (``--no-latemat``):

* **Q6-class** — selective scan+aggregate pipelines (TPC-H Q6 and
  windowed single-table variants, including a deliberately unselective
  ~50% window where skipping barely helps but the avoided rewrite is
  half the table). These carry the acceptance floor: at least one must
  reach >= 1.3x wall-clock with a reported rewrite-bytes reduction.
* **guard** — join/aggregate-heavy queries (Q3, Q18) where filters feed
  pipeline breakers almost immediately, so late execution mostly shifts
  work around. They gate only against regression: neither may run more
  than 5% slower with late materialization on.

Emits ``benchmarks/output/BENCH_latemat.json``.

Run::

    PYTHONPATH=src python -m pytest benchmarks/bench_latemat.py -q
"""

from __future__ import annotations

import json
import time

import numpy as np
import pytest

from repro.engine import DEFAULT_SETTINGS, Database, Executor, Q, agg, col
from repro.tpch import generate, get_query

from conftest import write_artifact

BENCH_SF = 0.5
REPEATS = 3
REQUIRED_SPEEDUP = 1.3
MAX_GUARD_SLOWDOWN = 1.05

# Same clustering as the skipping bench: the layout a time-partitioned
# load produces, and the one that makes surviving rows contiguous.
_CLUSTER_KEYS = {"lineitem": "l_shipdate", "orders": "o_orderdate"}


def _q6(db):
    return get_query(6).build(db, {"sf": BENCH_SF})


def _lineitem_half(db):
    """~50%-selectivity window: zone maps skip little, so nearly the whole
    table streams either way — the late win is purely the avoided compact
    rewrite of every payload column."""
    return (
        Q(db)
        .scan("lineitem")
        .filter(col("l_shipdate") >= "1995-06-17")
        .aggregate(
            revenue=agg.sum(col("l_extendedprice") * (1 - col("l_discount"))),
            items=agg.count_star(),
        )
    )


def _lineitem_recent(db):
    """Highly selective trailing window: contiguous TAKE survivors."""
    return (
        Q(db)
        .scan("lineitem")
        .filter(col("l_shipdate") >= "1998-03-01")
        .aggregate(
            revenue=agg.sum(col("l_extendedprice") * (1 - col("l_discount"))),
            items=agg.count_star(),
        )
    )


# (label, plan builder, kind) — kind "gated" carries the speedup floor,
# "guard" carries the no-regression ceiling.
BENCH_QUERIES = (
    ("Q6", _q6, "gated"),
    ("lineitem-half", _lineitem_half, "gated"),
    ("lineitem-recent", _lineitem_recent, "gated"),
    ("Q3", lambda db: get_query(3).build(db, {"sf": BENCH_SF}), "guard"),
    ("Q18", lambda db: get_query(18).build(db, {"sf": BENCH_SF}), "guard"),
)


@pytest.fixture(scope="module")
def clustered_db():
    db = generate(BENCH_SF, seed=42)
    clustered = Database(db.name)
    for name in db.table_names:
        table = db.table(name)
        key = _CLUSTER_KEYS.get(name)
        if key is not None:
            order = np.argsort(table.column(key).values, kind="stable")
            table = table.select_rows(order)
        clustered.add(table)
    clustered.build_zone_maps()
    return clustered


def _best_wall(executor, plan):
    best, result = float("inf"), None
    for _ in range(REPEATS):
        start = time.perf_counter()
        result = executor.execute(plan)
        best = min(best, time.perf_counter() - start)
    return best, result


def test_latemat_speedup(benchmark, clustered_db, output_dir):
    late = Executor(clustered_db)  # late materialization is the default
    eager = Executor(clustered_db, DEFAULT_SETTINGS.without_latemat())

    entries = []
    for label, build, kind in BENCH_QUERIES:
        plan = build(clustered_db)
        t_eager, r_eager = _best_wall(eager, plan)
        t_late, r_late = _best_wall(late, plan)
        assert sorted(map(str, r_late.rows)) == sorted(map(str, r_eager.rows)), (
            f"{label}: late materialization changed the result"
        )
        p_late, p_eager = r_late.profile, r_eager.profile
        written_eager = p_eager.out_bytes
        written_late = p_late.out_bytes
        entries.append({
            "query": label,
            "kind": kind,
            "seconds_eager": t_eager,
            "seconds_late": t_late,
            "speedup": t_eager / max(t_late, 1e-9),
            "bytes_written_eager": written_eager,
            "bytes_written_late": written_late,
            "bytes_rewrite_avoided": p_late.saved_bytes,
            "bytes_gathered": p_late.gather_bytes,
            "rewrite_reduction": 1.0 - written_late / max(written_eager, 1e-9),
        })

    benchmark.pedantic(
        lambda: late.execute(_q6(clustered_db)), rounds=1, iterations=1
    )

    report = {
        "sf": BENCH_SF,
        "clustered": sorted(_CLUSTER_KEYS),
        "repeats": REPEATS,
        "queries": entries,
    }
    (output_dir / "BENCH_latemat.json").write_text(
        json.dumps(report, indent=2) + "\n"
    )

    lines = [f"late materialization @ SF {BENCH_SF:g} (date-clustered tables)"]
    for e in entries:
        tag = "  [guard]" if e["kind"] == "guard" else ""
        lines.append(
            f"  {e['query']:<16} {e['seconds_eager'] * 1e3:8.2f} ms -> "
            f"{e['seconds_late'] * 1e3:8.2f} ms "
            f"({e['speedup']:.2f}x, intermediate writes -{e['rewrite_reduction']:.0%}, "
            f"{e['bytes_gathered'] / 1e6:.1f} MB gathered at breakers)"
            f"{tag}"
        )
    text = "\n".join(lines)
    write_artifact(output_dir, "latemat", text)
    print("\n" + text)

    gated = [e for e in entries if e["kind"] == "gated"]
    winners = [
        e for e in gated
        if e["speedup"] >= REQUIRED_SPEEDUP and e["rewrite_reduction"] > 0
    ]
    assert winners, (
        f"no Q6-class query reached {REQUIRED_SPEEDUP}x with a rewrite reduction: "
        + ", ".join(f"{e['query']}={e['speedup']:.2f}x" for e in gated)
    )
    for e in entries:
        if e["kind"] == "guard":
            assert e["seconds_late"] <= e["seconds_eager"] * MAX_GUARD_SLOWDOWN, (
                f"{e['query']} regressed under late materialization: "
                f"{e['seconds_eager'] * 1e3:.2f} ms -> {e['seconds_late'] * 1e3:.2f} ms"
            )
