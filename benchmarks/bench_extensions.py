"""Benches for the remaining extension studies: power-gated scheduling
(§III-B2) and the TCO sensitivity sweep (§III-A3)."""

from repro.analysis import TcoAssumptions, estimate_tco, render_matrix, tco_advantage
from repro.cluster import PowerPolicy, WorkloadSimulator, poisson_workload

from conftest import write_artifact


def _run_scheduling():
    trace = poisson_workload(duration_s=24 * 3600, queries_per_hour=8,
                             runtime_s=2.0, seed=11)
    gated = WorkloadSimulator.for_wimpi(24).run(trace)
    always = WorkloadSimulator.for_wimpi(24, PowerPolicy(gate_after_idle_s=None)).run(trace)
    server = WorkloadSimulator.for_server("op-e5").run(
        [type(q)(q.arrival_s, q.runtime_s / 3.0) for q in trace]
    )
    return gated, always, server


def test_extension_power_gating(benchmark, output_dir):
    gated, always, server = benchmark.pedantic(_run_scheduling, rounds=1, iterations=1)
    rows = [
        ("WIMPI gated", round(gated.energy_wh, 1), round(gated.mean_latency_s, 1),
         f"{gated.utilization:.1%}"),
        ("WIMPI always-on", round(always.energy_wh, 1), round(always.mean_latency_s, 1),
         f"{always.utilization:.1%}"),
        ("op-e5 always-on", round(server.energy_wh, 1), round(server.mean_latency_s, 1),
         f"{server.utilization:.1%}"),
    ]
    text = render_matrix(
        rows, ["configuration", "energy (Wh/day)", "mean latency (s)", "utilization"],
        title="Extension: power-gated scheduling over a 24 h Poisson trace (SIII-B2)",
    )
    write_artifact(output_dir, "extension_scheduling", text)
    assert gated.energy_wh < always.energy_wh
    assert gated.energy_wh < server.energy_wh


def _run_tco():
    rows = []
    for years in (1.0, 3.0, 5.0):
        assumptions = TcoAssumptions(years=years)
        server = estimate_tco("op-e5", assumptions)
        cluster = estimate_tco("pi3b+", assumptions, n_nodes=24)
        advantage = tco_advantage("op-e5", 24, performance_ratio=1.3,
                                  assumptions=assumptions)
        rows.append((
            f"{years:.0f}y", round(server.total_usd), round(cluster.total_usd),
            round(advantage, 1),
        ))
    return rows


def test_extension_tco(benchmark, output_dir):
    rows = benchmark.pedantic(_run_tco, rounds=1, iterations=1)
    text = render_matrix(
        rows,
        ["horizon", "op-e5 TCO ($)", "24-Pi TCO ($)", "perf-normalized advantage"],
        title="Extension: TCO sensitivity (SIII-A3; paper declined, we quantify)",
    )
    write_artifact(output_dir, "extension_tco", text)
    assert all(row[3] > 1.0 for row in rows)


def _run_ml():
    from repro.mlbench import ml_study

    return ml_study(base_sf=0.01, cluster_sizes=(4, 8, 16, 24))


def test_extension_ml_workloads(benchmark, output_dir):
    """SV future work: ML training priced across platforms + WIMPI
    data-parallel scaling."""
    study = benchmark.pedantic(_run_ml, rounds=1, iterations=1)
    rows = [
        (r.kernel, r.platform, round(r.seconds, 2), round(r.msrp_seconds_usd))
        for r in study["platforms"]
    ]
    text = render_matrix(
        rows, ["kernel", "platform", "train (s)", "s x MSRP ($)"],
        title="Extension: ML training (paper SV future work; lower is better)",
    )
    cluster = study["cluster"]
    text += "\n\ndata-parallel logreg on WIMPI: single Pi "
    text += f"{cluster['single_pi_seconds']:.1f} s; "
    text += ", ".join(f"{n} nodes {t:.1f} s" for n, t in cluster["by_nodes"].items())
    write_artifact(output_dir, "extension_ml", text)
    per_dollar = {(r.kernel, r.platform): r.msrp_seconds_usd for r in study["platforms"]}
    assert per_dollar[("logreg", "pi3b+")] < per_dollar[("logreg", "op-e5")]
