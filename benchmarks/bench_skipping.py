"""Data-skipping benchmark: selective queries with zone maps on/off.

The paper's §III-C2 argument is that a wimpy node's scarce resource is
memory bandwidth, so the cheapest byte is the one never read. This
benchmark measures that claim end to end on the engine: selective
queries run against date-clustered table copies — the layout a
time-partitioned warehouse load produces, and the one zone maps are
designed for; TPC-H's generator emits dates in random order, where a
min/max statistic can prove nothing — with the optimizer's predicate
pushdown + zone-map skipping enabled and disabled (`--no-skipping`).

Two query groups are measured:

* **Q6-class** — scan-dominated selective aggregates (TPC-H Q6 itself
  plus date-windowed single-table scans over lineitem/orders). These
  carry the acceptance floor: >= 1.5x wall-clock speedup with a reported
  bytes-scanned reduction on at least 3 of them. Skipping removes most
  of their total work, so the win shows up on the clock.
* **informative** — selective TPC-H queries whose runtime is dominated
  by joins/aggregation after the filter (Q14, Q15, Q20). Their
  bytes-scanned reduction is just as large, but downstream operators cap
  the end-to-end speedup; they are reported, not gated.

Emits ``benchmarks/output/BENCH_skipping.json``.

Run::

    PYTHONPATH=src python -m pytest benchmarks/bench_skipping.py -q
"""

from __future__ import annotations

import json
import time

import numpy as np
import pytest

from repro.engine import Database, Executor, OptimizerSettings, Q, agg, col
from repro.tpch import generate, get_query

from conftest import write_artifact

BENCH_SF = 0.5
REPEATS = 3
REQUIRED_SPEEDUP = 1.5
REQUIRED_QUERIES = 3

# Cluster each date-partitioned fact table by its natural load order.
_CLUSTER_KEYS = {"lineitem": "l_shipdate", "orders": "o_orderdate"}


def _q6(db):
    return get_query(6).build(db, {"sf": BENCH_SF})


def _q6_narrow(db):
    """Q6 shape over a one-month window: ~99% of blocks prune."""
    return get_query(6).build(
        db, {"sf": BENCH_SF, "date": "1994-01-01", "date_end": "1994-02-01"}
    )


def _orders_quarter(db):
    """Order-priority counts for one quarter (Q4 without the semi-join)."""
    return (
        Q(db)
        .scan("orders")
        .filter(
            (col("o_orderdate") >= "1993-07-01")
            & (col("o_orderdate") < "1993-10-01")
        )
        .aggregate(
            by=["o_orderpriority"],
            order_count=agg.count_star(),
            total_price=agg.sum(col("o_totalprice")),
        )
        .sort("o_orderpriority")
    )


def _lineitem_recent(db):
    """Revenue from the trailing months of the shipdate range."""
    return (
        Q(db)
        .scan("lineitem")
        .filter(col("l_shipdate") >= "1998-03-01")
        .aggregate(
            revenue=agg.sum(col("l_extendedprice") * (1 - col("l_discount"))),
            items=agg.count_star(),
        )
    )


# (label, plan builder, gated?) — gated entries carry the acceptance floor.
BENCH_QUERIES = (
    ("Q6", _q6, True),
    ("Q6-narrow", _q6_narrow, True),
    ("orders-quarter", _orders_quarter, True),
    ("lineitem-recent", _lineitem_recent, True),
    ("Q14", lambda db: get_query(14).build(db, {"sf": BENCH_SF}), False),
    ("Q15", lambda db: get_query(15).build(db, {"sf": BENCH_SF}), False),
    ("Q20", lambda db: get_query(20).build(db, {"sf": BENCH_SF}), False),
)


@pytest.fixture(scope="module")
def clustered_db():
    db = generate(BENCH_SF, seed=42)
    clustered = Database(db.name)
    for name in db.table_names:
        table = db.table(name)
        key = _CLUSTER_KEYS.get(name)
        if key is not None:
            order = np.argsort(table.column(key).values, kind="stable")
            table = table.select_rows(order)
        clustered.add(table)
    # Load-time statistics pass: first-query latency must not include it.
    clustered.build_zone_maps()
    return clustered


def _best_wall(executor, plan):
    best, result = float("inf"), None
    for _ in range(REPEATS):
        start = time.perf_counter()
        result = executor.execute(plan)
        best = min(best, time.perf_counter() - start)
    return best, result


def test_skipping_speedup(benchmark, clustered_db, output_dir):
    on = Executor(clustered_db)
    off = Executor(clustered_db, OptimizerSettings.disabled())

    entries = []
    for label, build, gated in BENCH_QUERIES:
        plan = build(clustered_db)
        t_off, r_off = _best_wall(off, plan)
        t_on, r_on = _best_wall(on, plan)
        assert sorted(map(str, r_on.rows)) == sorted(map(str, r_off.rows)), (
            f"{label}: skipping changed the result"
        )
        p_on, p_off = r_on.profile, r_off.profile
        scanned_off = p_off.seq_bytes
        scanned_on = p_on.seq_bytes
        entries.append({
            "query": label,
            "gated": gated,
            "seconds_no_skipping": t_off,
            "seconds_skipping": t_on,
            "speedup": t_off / max(t_on, 1e-9),
            "bytes_scanned_no_skipping": scanned_off,
            "bytes_scanned_skipping": scanned_on,
            "bytes_skipped": p_on.skipped_bytes,
            "bytes_scanned_reduction": 1.0 - scanned_on / max(scanned_off, 1e-9),
            "zone_probes": p_on.zone_probes,
            "blocks_skipped": p_on.blocks_skipped,
            "blocks_scanned": p_on.blocks_scanned,
        })

    benchmark.pedantic(
        lambda: on.execute(_q6(clustered_db)), rounds=1, iterations=1
    )

    report = {
        "sf": BENCH_SF,
        "clustered": sorted(_CLUSTER_KEYS),
        "repeats": REPEATS,
        "queries": entries,
    }
    (output_dir / "BENCH_skipping.json").write_text(
        json.dumps(report, indent=2) + "\n"
    )

    lines = [f"data skipping @ SF {BENCH_SF:g} (date-clustered tables)"]
    for e in entries:
        tag = "" if e["gated"] else "  [informative]"
        lines.append(
            f"  {e['query']:<16} {e['seconds_no_skipping'] * 1e3:8.2f} ms -> "
            f"{e['seconds_skipping'] * 1e3:8.2f} ms "
            f"({e['speedup']:.2f}x, bytes scanned -{e['bytes_scanned_reduction']:.0%}, "
            f"{int(e['blocks_skipped'])}/{int(e['blocks_skipped'] + e['blocks_scanned'])} blocks skipped)"
            f"{tag}"
        )
    text = "\n".join(lines)
    write_artifact(output_dir, "skipping", text)
    print("\n" + text)

    gated = [e for e in entries if e["gated"]]
    winners = [
        e for e in gated
        if e["speedup"] >= REQUIRED_SPEEDUP and e["bytes_scanned_reduction"] > 0
    ]
    assert len(winners) >= REQUIRED_QUERIES, (
        f"only {len(winners)} of {len(gated)} Q6-class queries reached "
        f"{REQUIRED_SPEEDUP}x with a bytes-scanned reduction: "
        + ", ".join(f"{e['query']}={e['speedup']:.2f}x" for e in gated)
    )
