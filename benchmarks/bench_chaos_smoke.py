"""Chaos smoke benchmark: one dead node + one straggler, full recovery.

The CI gate for the resilient runtime (ISSUE 3): with a *fixed* fault
plan — one sticky node failure plus one straggler — and replication 2,
every one of the 22 TPC-H queries must still match the committed
fault-free goldens, and the whole run must stay inside a wall-clock
budget (injected hangs and backoffs never sleep, so chaos runs at test
speed).

Run::

    PYTHONPATH=src python -m pytest benchmarks/bench_chaos_smoke.py -q
"""

from __future__ import annotations

import json
import math
import time
from pathlib import Path

import pytest

from repro.cluster import (
    FaultPlan,
    InjectedFault,
    RecoveryPolicy,
    ResilientDriver,
    replicate_database,
)
from repro.tpch import ALL_QUERY_NUMBERS, generate, get_query

from conftest import write_artifact

SMOKE_SF = 0.01  # must match the committed goldens
SMOKE_SEED = 42
N_NODES = 4
REPLICATION = 2
WALL_BUDGET_S = 120.0

# The scripted chaos: node 1 dies outright (the paper's swap-off OOM),
# node 3 straggles hard enough to trigger speculation.
SMOKE_PLAN = FaultPlan((
    InjectedFault("oom", 1, pressure=1.4),
    InjectedFault("straggler", 3, slowdown=40.0),
), seed=SMOKE_SEED)

GOLDEN = json.loads(
    (Path(__file__).parent.parent / "tests" / "tpch" / "data"
     / "golden_sf001_seed42.json").read_text()
)


def _numeric_sum(rows) -> float:
    total = 0.0
    for row in rows:
        for value in row:
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                if isinstance(value, float) and math.isnan(value):
                    continue
                total += float(value)
    return total


def test_chaos_smoke(output_dir):
    db = generate(SMOKE_SF, seed=SMOKE_SEED)
    layout = replicate_database(db, N_NODES, replication=REPLICATION)
    driver = ResilientDriver(layout, fault_plan=SMOKE_PLAN, policy=RecoveryPolicy())

    start = time.perf_counter()
    lines = [SMOKE_PLAN.describe(), ""]
    events = 0
    for number in ALL_QUERY_NUMBERS:
        run = driver.run(get_query(number), {"sf": SMOKE_SF})
        expected = GOLDEN[str(number)]
        assert run.coverage == 1.0, f"Q{number}: lost data under the smoke plan"
        assert len(run.result) == expected["rows"], f"Q{number}: row count"
        assert run.result.column_names == expected["columns"], f"Q{number}: columns"
        assert _numeric_sum(run.result.rows) == pytest.approx(
            expected["numeric_sum"], rel=1e-6, abs=0.02
        ), f"Q{number}: checksum"
        events += len(run.recovery.events)
        lines.append(
            f"Q{number:>2}: coverage {run.coverage:.3f}, "
            f"{len(run.recovery.events)} recovery events, "
            f"modeled completion {run.completion_s:.3f}s"
        )
    wall = time.perf_counter() - start

    assert events > 0, "the smoke plan injected no recoverable faults?"
    assert wall < WALL_BUDGET_S, f"chaos smoke took {wall:.1f}s (budget {WALL_BUDGET_S}s)"

    lines += ["", f"all 22 queries match goldens; wall clock {wall:.2f}s "
              f"(budget {WALL_BUDGET_S:.0f}s), {events} recovery events total"]
    write_artifact(output_dir, "chaos_smoke", "\n".join(lines))
