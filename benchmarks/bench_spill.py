"""Out-of-core execution benchmark: spill survives where in-memory dies.

The wimpy-node claim under test (§II's RAM-per-node axis): with a fixed
memory budget a node either refuses queries whose hash state exceeds RAM
(`--no-spill`: typed :class:`MemoryBudgetExceeded`) or — with Grace
spilling — admits and completes them with *identical* rows. This
benchmark walks a scale-factor ladder under one fixed budget and records
where the in-memory engine starts dying while the spilling engine keeps
answering.

Two gates:

* **survival** — at the top of the ladder the budget must be genuinely
  over-subscribed: the no-spill run raises ``MemoryBudgetExceeded`` and
  the spilling run completes with rows identical to the unbudgeted
  reference (and really spills).
* **overhead** — a budget the workload never hits must be free: with a
  1 GB budget (zero spilled bytes) the probe queries together stay
  within 5% of their unbudgeted wall clock (plus a small noise floor;
  rounds are interleaved and the gate sums across queries so one noisy
  sub-100 ms measurement cannot fail the suite).

Emits ``benchmarks/output/BENCH_spill.json``.

Run::

    PYTHONPATH=src python -m pytest benchmarks/bench_spill.py -q
"""

from __future__ import annotations

import json
import time

import pytest

from repro.engine import DEFAULT_SETTINGS, Executor, MemoryBudgetExceeded
from repro.tpch import generate, get_query

from conftest import write_artifact

# Scale ladder under one fixed budget: small enough to survive at the
# bottom, over-subscribed at the top.
LADDER_SFS = (0.02, 0.05, 0.1)
BUDGET_BYTES = 1 * 1024 * 1024  # 1 MB of operator working memory
LADDER_QUERY = 3  # customer ⋈ orders ⋈ lineitem + group-by: hash-heavy

# Overhead probes: join- and aggregate-heavy shapes at the top scale,
# run under a budget they never reach.
OVERHEAD_QUERIES = (1, 3, 6)
UNHIT_BUDGET = 1 << 30  # 1 GB
REPEATS = 7
MAX_OVERHEAD = 1.05
NOISE_FLOOR_S = 0.005


def _paired_overhead(plain, budgeted, plan):
    """Median of per-round budgeted/plain wall-clock ratios.

    The two sides run back-to-back inside each round (pairing cancels
    the slow clock drift of a throttling host) and the order alternates
    between rounds (so within-round warm-up cannot systematically favor
    one side). Returns ``(median_ratio, best_plain_s, best_budgeted_s,
    last_results)``.
    """
    ratios, best = [], {"plain": float("inf"), "budgeted": float("inf")}
    results = {}
    for round_no in range(REPEATS):
        order = [("plain", plain), ("budgeted", budgeted)]
        if round_no % 2:
            order.reverse()
        walls = {}
        for name, executor in order:
            start = time.perf_counter()
            results[name] = executor.execute(plan)
            walls[name] = time.perf_counter() - start
            best[name] = min(best[name], walls[name])
        ratios.append(walls["budgeted"] / max(walls["plain"], 1e-9))
    ratios.sort()
    median = ratios[len(ratios) // 2]
    return median, best["plain"], best["budgeted"], results


def _rows_identical(a, b) -> bool:
    return list(map(str, a)) == list(map(str, b))


def test_spill_survival_and_overhead(benchmark, output_dir):
    # ------------------------------------------------------------------
    # Survival ladder: fixed budget, growing data.
    # ------------------------------------------------------------------
    ladder = []
    for sf in LADDER_SFS:
        db = generate(sf, seed=42)
        plan = get_query(LADDER_QUERY).build(db, {"sf": sf})
        reference = Executor(db).execute(plan)

        no_spill = Executor(
            db, DEFAULT_SETTINGS.without_spilling(), memory_budget=BUDGET_BYTES
        )
        try:
            no_spill.execute(plan)
            in_memory = "completes"
        except MemoryBudgetExceeded:
            in_memory = "dies"

        start = time.perf_counter()
        spilled = Executor(db, memory_budget=BUDGET_BYTES).execute(plan)
        spill_wall = time.perf_counter() - start
        assert _rows_identical(reference.rows, spilled.rows), (
            f"SF {sf}: spilling changed Q{LADDER_QUERY}'s rows"
        )
        ladder.append({
            "sf": sf,
            "query": f"Q{LADDER_QUERY}",
            "budget_bytes": BUDGET_BYTES,
            "in_memory": in_memory,
            "spill": "completes",
            "spilled_bytes": spilled.profile.spilled_bytes,
            "spill_partitions": spilled.profile.spill_partitions,
            "spill_seconds": spill_wall,
        })

    # The ladder's top must be genuinely out-of-core: in-memory dies,
    # spilling answers (and really touched the disk to do it).
    top = ladder[-1]
    assert top["in_memory"] == "dies", (
        f"budget {BUDGET_BYTES} never over-subscribed Q{LADDER_QUERY} — "
        "raise the ladder"
    )
    assert top["spilled_bytes"] > 0
    first_death = next((e["sf"] for e in ladder if e["in_memory"] == "dies"), None)

    # ------------------------------------------------------------------
    # Overhead gate: an unhit budget must be free.
    # ------------------------------------------------------------------
    db = generate(LADDER_SFS[-1], seed=42)
    plain = Executor(db)
    budgeted = Executor(db, memory_budget=UNHIT_BUDGET)
    overhead = []
    for number in OVERHEAD_QUERIES:
        plan = get_query(number).build(db, {"sf": LADDER_SFS[-1]})
        ratio, t_plain, t_budget, results = _paired_overhead(plain, budgeted, plan)
        assert results["budgeted"].profile.spilled_bytes == 0, (
            f"Q{number}: a {UNHIT_BUDGET >> 20} MB budget should never spill "
            f"at SF {LADDER_SFS[-1]}"
        )
        assert _rows_identical(results["plain"].rows, results["budgeted"].rows)
        overhead.append({
            "query": f"Q{number}",
            "seconds_plain": t_plain,
            "seconds_budgeted": t_budget,
            "overhead": ratio,
        })

    benchmark.pedantic(
        lambda: budgeted.execute(
            get_query(LADDER_QUERY).build(db, {"sf": LADDER_SFS[-1]})
        ),
        rounds=1, iterations=1,
    )

    report = {
        "budget_bytes": BUDGET_BYTES,
        "ladder": ladder,
        "first_death_sf": first_death,
        "overhead_budget_bytes": UNHIT_BUDGET,
        "overhead": overhead,
    }
    (output_dir / "BENCH_spill.json").write_text(json.dumps(report, indent=2) + "\n")

    lines = [
        f"out-of-core ladder: Q{LADDER_QUERY} under a "
        f"{BUDGET_BYTES >> 20} MB working-memory budget"
    ]
    for e in ladder:
        lines.append(
            f"  SF {e['sf']:<5g} in-memory: {e['in_memory']:<10} "
            f"spill: completes in {e['spill_seconds'] * 1e3:8.2f} ms "
            f"({e['spilled_bytes'] / 1e6:.2f} MB spilled across "
            f"{e['spill_partitions']} partition files)"
        )
    lines.append(
        f"overhead with an unhit {UNHIT_BUDGET >> 20} MB budget "
        f"(SF {LADDER_SFS[-1]:g}):"
    )
    for e in overhead:
        lines.append(
            f"  {e['query']:<4} {e['seconds_plain'] * 1e3:8.2f} ms -> "
            f"{e['seconds_budgeted'] * 1e3:8.2f} ms ({e['overhead']:.3f}x)"
        )
    text = "\n".join(lines)
    write_artifact(output_dir, "spill", text)
    print("\n" + text)

    # Time-weighted mean of the paired median ratios: long queries carry
    # their weight, and the NOISE_FLOOR_S allowance (expressed as a
    # fraction of the total plain time) absorbs scheduler jitter on a
    # workload of tens of milliseconds.
    total_plain = sum(e["seconds_plain"] for e in overhead)
    weighted = (
        sum(e["overhead"] * e["seconds_plain"] for e in overhead) / total_plain
    )
    allowed = MAX_OVERHEAD + NOISE_FLOOR_S / total_plain
    assert weighted <= allowed, (
        f"unhit budget cost {(weighted - 1) * 100:.1f}% across "
        f"{len(overhead)} probe queries (> {MAX_OVERHEAD - 1:.0%}): "
        + ", ".join(f"{e['query']}={e['overhead']:.3f}x" for e in overhead)
    )
