"""Table III — TPC-H SF 10: server models + real distributed WIMPI runs
at six cluster sizes."""

from repro.analysis import render_runtime_table
from repro.core import TABLE3_WIMPI_RUNTIMES

from conftest import write_artifact


def _run_table3(study):
    study._cache.pop("table3", None)
    return study.table3()


def test_table3_sf10(benchmark, study, output_dir):
    data = benchmark.pedantic(_run_table3, args=(study,), rounds=1, iterations=1)
    grid = dict(data["servers"])
    for nodes, runtimes in data["wimpi"].items():
        grid[f"pi3b+ x{nodes}"] = runtimes
    text = render_runtime_table(grid, title="Table III: Runtimes (s) for SF 10")
    text += "\n\npaper WIMPI rows for comparison:\n"
    text += render_runtime_table(
        {f"paper x{n}": per for n, per in TABLE3_WIMPI_RUNTIMES.items()},
        title="",
    )
    write_artifact(output_dir, "table3", text)
    # The thrash cliff must be visible at 4 nodes on Q1.
    assert data["wimpi"][4][1] > 5 * data["wimpi"][24][1]
