"""Fig. 3 — speedups relative to the Pi configuration (SF 1 and SF 10)."""

from repro.analysis import median_relative, render_runtime_table, render_series

from conftest import write_artifact


def _run_fig3(study):
    return study.fig3_sf1(), study.fig3_sf10()


def test_fig3_speedups(benchmark, study, output_dir):
    sf1, sf10 = benchmark.pedantic(_run_fig3, args=(study,), rounds=1, iterations=1)
    text = render_runtime_table(
        sf1, title="Fig. 3 (left): SF 1 relative performance (t_server / t_pi)"
    )
    medians = median_relative(sf1)
    text += "\n\nmedian relative performance of the Pi per server:\n"
    text += "\n".join(f"  {k}: {1 / v:.2f}x slower (relative {v:.3f})" for k, v in medians.items())
    series = {
        f"Q{q}": {n: sf10[n]["op-e5"][q] for n in sorted(sf10)}
        for q in sorted(next(iter(sf10.values()))["op-e5"])
    }
    text += "\n\n" + render_series(
        series, "Fig. 3 (right): SF 10 WIMPI relative performance vs op-e5",
        x_label="n=", break_even=1.0,
    )
    write_artifact(output_dir, "fig3", text)
    assert medians  # non-empty
