"""Fig. 6 — hourly-cost-normalized comparison (SF 1 and SF 10, cloud)."""

from repro.analysis import render_runtime_table, render_series

from conftest import write_artifact


def _run_fig6(study):
    return study.fig6()


def test_fig6_hourly(benchmark, study, output_dir):
    fig6 = benchmark.pedantic(_run_fig6, args=(study,), rounds=1, iterations=1)
    text = render_runtime_table(
        fig6["sf1"],
        title="Fig. 6 (left): SF 1 hourly-cost-normalized improvement (>1 favors the Pi)",
    )
    series = {
        f"Q{q}": {n: fig6["sf10"]["m5.metal"][n][q] for n in sorted(fig6["sf10"]["m5.metal"])}
        for q in sorted(fig6["sf10"]["m5.metal"][4])
    }
    text += "\n\n" + render_series(
        series, "Fig. 6 (right): SF 10 hourly-normalized vs m5.metal",
        x_label="n=", break_even=1.0,
    )
    write_artifact(output_dir, "fig6", text)
    # The Pi wins every SF 1 cell, reaching thousands-fold improvements.
    sf1_values = [v for per in fig6["sf1"].values() for v in per.values()]
    assert min(sf1_values) > 1.0
    assert max(sf1_values) > 1000.0
