"""Shared benchmark fixtures: one study instance, one output directory.

Every ``bench_*`` module regenerates one of the paper's tables/figures;
alongside the timing, the rendered artifact is written to
``benchmarks/output/<name>.txt`` so the regenerated rows can be diffed
against the paper (see EXPERIMENTS.md).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.core import ExperimentStudy, StudyConfig

OUTPUT_DIR = Path(__file__).parent / "output"


def pytest_addoption(parser):
    parser.addoption(
        "--workers", default=str(os.cpu_count() or 1),
        help="worker threads for parallel-executor benchmarks",
    )
    parser.addoption(
        "--assert-speedup", default=None,
        help="fail the parallel smoke benchmark below this serial/parallel ratio",
    )


@pytest.fixture(scope="session")
def study() -> ExperimentStudy:
    """Study harness at a bench-friendly base scale factor."""
    return ExperimentStudy(StudyConfig(base_sf=0.02))


@pytest.fixture(scope="session")
def output_dir() -> Path:
    OUTPUT_DIR.mkdir(exist_ok=True)
    return OUTPUT_DIR


def write_artifact(output_dir: Path, name: str, text: str) -> None:
    (output_dir / f"{name}.txt").write_text(text + "\n")
