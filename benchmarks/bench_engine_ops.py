"""Engine operator throughput microbenchmarks (the substrate itself).

Not a paper artifact: these track the numpy engine's own performance so
regressions in the reproduction infrastructure are visible.
"""

import pytest

from repro.engine import Q, agg, col, execute
from repro.tpch import generate


@pytest.fixture(scope="module")
def db():
    return generate(0.05)


def test_scan_filter_throughput(benchmark, db):
    plan = (
        Q(db).scan("lineitem")
        .filter((col("l_shipdate") >= "1994-01-01") & (col("l_quantity") < 24))
        .aggregate(n=agg.count_star())
    )
    result = benchmark(execute, db, plan)
    assert result.scalar() > 0


def test_hash_join_throughput(benchmark, db):
    plan = (
        Q(db).scan("lineitem")
        .join("orders", on=[("l_orderkey", "o_orderkey")])
        .aggregate(n=agg.count_star())
    )
    result = benchmark(execute, db, plan)
    assert result.scalar() == db.table("lineitem").nrows


def test_group_by_throughput(benchmark, db):
    plan = (
        Q(db).scan("lineitem")
        .aggregate(by=["l_returnflag", "l_linestatus"],
                   s=agg.sum(col("l_extendedprice")))
    )
    result = benchmark(execute, db, plan)
    assert len(result) == 4


def test_sort_throughput(benchmark, db):
    plan = Q(db).scan("orders").sort(("o_totalprice", "desc")).limit(10)
    result = benchmark(execute, db, plan)
    assert len(result) == 10


def test_dbgen_throughput(benchmark):
    db = benchmark.pedantic(generate, args=(0.01,), rounds=2, iterations=1)
    assert db.table("lineitem").nrows > 50_000
