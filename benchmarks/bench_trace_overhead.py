"""Tracing overhead gate: observability must be ~free when off, cheap when on.

The trace layer's contract is a single ``tracer.enabled`` attribute
check on the hot path when tracing is off (the default executor holds
the shared ``NULL_TRACER``). This benchmark measures Q1 and Q6 — the
paper's compute-bound and bandwidth-bound poles — three ways:

* **base** — default executor (implicit NullTracer),
* **null** — an explicitly passed ``NullTracer`` (must be the same code
  path: <= 5% of base),
* **traced** — a live ``Tracer`` collecting the full span tree
  (<= 15% over base).

Emits ``benchmarks/output/BENCH_trace.json``.

Run::

    PYTHONPATH=src python -m pytest benchmarks/bench_trace_overhead.py -q
"""

from __future__ import annotations

import json
import time

import pytest

from repro.engine import Executor
from repro.obs.trace import NullTracer, Tracer, iter_spans
from repro.tpch import generate, get_query

from conftest import write_artifact

BENCH_SF = 0.2
REPEATS = 7
MAX_DISABLED_OVERHEAD = 1.05
MAX_ENABLED_OVERHEAD = 1.15
BENCH_QUERIES = (1, 6)


@pytest.fixture(scope="module")
def db():
    db = generate(BENCH_SF, seed=42)
    db.build_zone_maps()
    return db


def _best_wall(make_executor, plan):
    """Best-of-REPEATS wall clock; a fresh executor/tracer per repeat so
    traced runs do not accumulate span trees across measurements."""
    best, spans = float("inf"), 0
    for _ in range(REPEATS):
        executor = make_executor()
        start = time.perf_counter()
        executor.execute(plan)
        best = min(best, time.perf_counter() - start)
        if executor.tracer.enabled:
            spans = sum(1 for root in executor.tracer.roots
                        for _ in iter_spans(root))
    return best, spans


def test_trace_overhead(benchmark, db, output_dir):
    entries = []
    for number in BENCH_QUERIES:
        plan = get_query(number).build(db, {"sf": BENCH_SF})
        t_base, _ = _best_wall(lambda: Executor(db), plan)
        t_null, _ = _best_wall(lambda: Executor(db, tracer=NullTracer()), plan)
        t_traced, spans = _best_wall(lambda: Executor(db, tracer=Tracer()), plan)
        entries.append({
            "query": f"Q{number}",
            "seconds_base": t_base,
            "seconds_null": t_null,
            "seconds_traced": t_traced,
            "overhead_disabled": t_null / max(t_base, 1e-9),
            "overhead_enabled": t_traced / max(t_base, 1e-9),
            "spans": spans,
        })

    benchmark.pedantic(
        lambda: Executor(db).execute(get_query(6).build(db, {"sf": BENCH_SF})),
        rounds=1, iterations=1,
    )

    report = {
        "sf": BENCH_SF,
        "repeats": REPEATS,
        "max_disabled_overhead": MAX_DISABLED_OVERHEAD,
        "max_enabled_overhead": MAX_ENABLED_OVERHEAD,
        "queries": entries,
    }
    (output_dir / "BENCH_trace.json").write_text(
        json.dumps(report, indent=2) + "\n"
    )

    lines = [f"tracing overhead @ SF {BENCH_SF:g} (best of {REPEATS})"]
    for e in entries:
        lines.append(
            f"  {e['query']:<4} base {e['seconds_base'] * 1e3:7.2f} ms | "
            f"off {e['overhead_disabled']:.3f}x | "
            f"on {e['overhead_enabled']:.3f}x ({e['spans']} spans)"
        )
    text = "\n".join(lines)
    write_artifact(output_dir, "trace_overhead", text)
    print("\n" + text)

    for e in entries:
        assert e["overhead_disabled"] <= MAX_DISABLED_OVERHEAD, (
            f"{e['query']}: disabled tracing costs "
            f"{(e['overhead_disabled'] - 1) * 100:.1f}% (gate: 5%)"
        )
        assert e["overhead_enabled"] <= MAX_ENABLED_OVERHEAD, (
            f"{e['query']}: enabled tracing costs "
            f"{(e['overhead_enabled'] - 1) * 100:.1f}% (gate: 15%)"
        )
