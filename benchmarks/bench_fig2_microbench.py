"""Fig. 2 — CPU / memory microbenchmarks + §II-C3 network bandwidth."""

from repro.analysis import render_matrix
from repro.microbench import network_bandwidth_mbps, run_all

from conftest import write_artifact


def _run_fig2():
    results = run_all()
    rows = [
        (
            r.platform,
            round(r.whetstone_mwips_1core), round(r.whetstone_mwips_all),
            round(r.dhrystone_dmips_1core), round(r.dhrystone_dmips_all),
            round(r.sysbench_s_1core, 2), round(r.sysbench_s_all, 2),
            round(r.membw_gbs_1core, 1), round(r.membw_gbs_all, 1),
        )
        for r in results.values()
    ]
    table = render_matrix(
        rows,
        ["platform", "whet-1c", "whet-all", "dhry-1c", "dhry-all",
         "sysb-1c(s)", "sysb-all(s)", "bw-1c", "bw-all"],
        title="Fig. 2: Microbenchmarks (MWIPS / DMIPS / seconds / GB/s)",
    )
    return table + f"\n\nWIMPI node-to-node bandwidth: {network_bandwidth_mbps():.0f} Mbps"


def test_fig2_microbenchmarks(benchmark, output_dir):
    text = benchmark(_run_fig2)
    write_artifact(output_dir, "fig2", text)
    assert "220 Mbps" in text
