"""Scale sweep: the numpy engine's own throughput as SF grows.

Not a paper artifact — tracks the reproduction substrate itself so that
profile-extrapolation assumptions (linear work in SF) stay observable.
"""

import pytest

from repro.engine import execute
from repro.tpch import generate, get_query


@pytest.fixture(scope="module")
def dbs():
    return {sf: generate(sf, seed=4) for sf in (0.01, 0.05)}


@pytest.mark.parametrize("number", [1, 6])
def test_scale_linearity(benchmark, dbs, number, output_dir):
    """Measured engine work must scale ~linearly with SF (the DESIGN.md
    §5 extrapolation assumption), checked on live executions."""

    def run():
        out = {}
        for sf, db in dbs.items():
            result = execute(db, get_query(number).build(db, {"sf": sf}))
            out[sf] = result.profile.seq_bytes
        return out

    bytes_by_sf = benchmark.pedantic(run, rounds=1, iterations=1)
    ratio = bytes_by_sf[0.05] / bytes_by_sf[0.01]
    assert 4.0 < ratio < 6.0  # 5x SF -> ~5x bytes


def test_sf01_all_chokepoints_under_a_second_each(benchmark, dbs):
    """The engine substrate stays fast enough for iterative use."""
    from repro.tpch import CHOKEPOINTS

    db = dbs[0.05]

    def run():
        total = 0.0
        for number in CHOKEPOINTS:
            result = execute(db, get_query(number).build(db, {"sf": 0.05}))
            total += result.wall_seconds
        return total

    total = benchmark.pedantic(run, rounds=1, iterations=1)
    assert total < 8.0  # all 8 chokepoints at SF 0.05
