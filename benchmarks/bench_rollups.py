"""Rollup benchmark: workload-adaptive cubes on the repeated-dashboard mix.

The wimpy-node bet behind rollups: a Pi-class node cannot brute-force
scan 100 GB per dashboard refresh, but the dashboards people actually
refresh are *repeated shapes with shifting literals* — and those can be
answered from small materialized cubes mined out of the workload. Three
claims are gated here, all against one catalog built by
:func:`repro.rollup.enable_rollups` from the stock query templates:

* **Routed mix** — a repeated-dashboard mix (literal-varied Q1-style
  pricing summaries and daily-revenue windows, all provably routed:
  every plan must carry an ``[rollup: ...]`` explain tag) must be at
  least **10x cheaper** under the paper's Pi performance model at SF 1
  than base-table execution, with identical rows. Both profiles are
  scaled linearly from the bench scale — conservative in the cubes'
  favor-less direction, since cube cells saturate at the cross product
  of their dimension domains while base tables keep growing.
* **Non-routable guard** — queries the router must decline (join-heavy
  Q3, guard-rejected Q6) may pay at most **5%** wall-clock for the
  routing attempt, and their modeled cost must be unchanged.
* **Memory tax** — the cube catalog's resident bytes must be charged in
  the cluster capacity model: ``pressure_ratio`` with rollups attached
  exceeds the uncharged footprint by exactly the catalog's
  scale-extrapolated bytes.

Emits ``benchmarks/output/BENCH_rollups.json``.

Run::

    PYTHONPATH=src python -m pytest benchmarks/bench_rollups.py -q
"""

from __future__ import annotations

import json
import math
import time

import pytest

from repro.cluster.node import MemoryModel
from repro.engine import Executor
from repro.engine.explain import explain
from repro.engine.optimizer import DEFAULT_SETTINGS
from repro.engine.sql import sql as parse_sql
from repro.hardware import PI_KEY, PerformanceModel, get_platform
from repro.rollup import enable_rollups
from repro.tpch import generate, get_query

from conftest import write_artifact

BENCH_SF = 0.05
TARGET_SF = 1.0
REPEATS = 7
REQUIRED_MIX_SPEEDUP = 10.0
MAX_GUARD_SLOWDOWN = 1.05
# Guard queries finish in single-digit milliseconds at the bench scale,
# where scheduler jitter alone exceeds 5%; the absolute slack covers
# timer noise without hiding a real per-query routing cost (measured at
# ~0.05 ms per declined plan, and independent of data size).
GUARD_SLACK_S = 0.5e-3

ROLLUPS_OFF = DEFAULT_SETTINGS.without_rollups()


def _pricing_dashboard(cutoff: str) -> str:
    """The archetypal repeated dashboard: Q1's pricing summary re-run
    with a shifting date cutoff."""
    return (
        "SELECT l_returnflag, l_linestatus, "
        "SUM(l_quantity) AS sum_qty, SUM(l_extendedprice) AS sum_base, "
        "SUM(l_extendedprice * (1 - l_discount)) AS sum_disc, "
        "SUM(l_extendedprice * (1 - l_discount) * (1 + l_tax)) AS sum_charge, "
        "AVG(l_quantity) AS avg_qty, AVG(l_extendedprice) AS avg_price, "
        "AVG(l_discount) AS avg_disc, COUNT(*) AS n "
        f"FROM lineitem WHERE l_shipdate <= DATE '{cutoff}' "
        "GROUP BY l_returnflag, l_linestatus "
        "ORDER BY l_returnflag, l_linestatus"
    )


def _daily_revenue(since: str) -> str:
    """Daily revenue over a trailing window — re-sliced per refresh."""
    return (
        "SELECT l_shipdate, SUM(l_extendedprice) AS revenue, COUNT(*) AS n "
        f"FROM lineitem WHERE l_shipdate >= DATE '{since}' "
        "GROUP BY l_shipdate ORDER BY l_shipdate"
    )


def _flag_rollup(cutoff: str) -> str:
    """Coarser re-aggregation of the same cube: one group key dropped."""
    return (
        "SELECT l_returnflag, SUM(l_quantity) AS qty, COUNT(*) AS n "
        f"FROM lineitem WHERE l_shipdate <= DATE '{cutoff}' "
        "GROUP BY l_returnflag ORDER BY l_returnflag"
    )


DASHBOARD_MIX = tuple(
    (f"{family}-{literal}", builder(literal))
    for family, builder, literals in (
        ("pricing", _pricing_dashboard, ("1998-09-02", "1998-08-01", "1998-06-15")),
        ("daily-rev", _daily_revenue, ("1998-01-01", "1997-06-01", "1996-01-01")),
        ("flag", _flag_rollup, ("1998-09-02", "1998-03-01", "1997-09-01")),
    )
    for literal in literals
)

# Queries the router must leave alone: Q3 aggregates over a join spine
# no mined cube subsumes; Q6's would-be cube fails the cardinality
# guard (its filter columns are near-unique per row).
GUARD_QUERIES = (3, 6)


@pytest.fixture(scope="module")
def rollup_db():
    db = generate(BENCH_SF, seed=42)
    enable_rollups(db)
    return db


def _rows_match(reference, candidate) -> bool:
    if len(reference) != len(candidate):
        return False
    for expected, actual in zip(reference, candidate):
        for a, b in zip(expected, actual):
            if isinstance(a, float) and isinstance(b, float):
                if not math.isclose(a, b, rel_tol=1e-9, abs_tol=1e-9):
                    return False
            elif a != b:
                return False
    return True


def _best_walls(plan, *executors):
    """Best-of-REPEATS wall per executor, rounds interleaved so clock
    drift and cache warmth land evenly on both sides (the guard gate
    compares milliseconds against milliseconds)."""
    best = [float("inf")] * len(executors)
    results = [None] * len(executors)
    for executor in executors:  # warm untimed: first-touch effects
        executor.execute(plan)
    for _ in range(REPEATS):
        for i, executor in enumerate(executors):
            start = time.perf_counter()
            results[i] = executor.execute(plan)
            best[i] = min(best[i], time.perf_counter() - start)
    return list(zip(best, results))


def test_rollup_routed_mix_and_guards(benchmark, rollup_db, output_dir):
    db = rollup_db
    catalog = db.rollups
    model = PerformanceModel()
    platform = get_platform(PI_KEY)
    scale = TARGET_SF / BENCH_SF
    on = Executor(db, DEFAULT_SETTINGS)
    off = Executor(db, ROLLUPS_OFF)

    # -- routed repeated-dashboard mix ---------------------------------
    mix_entries = []
    mix_off = mix_on = 0.0
    for label, text in DASHBOARD_MIX:
        plan = parse_sql(db, text)
        assert "[rollup:" in explain(plan, db), (
            f"{label} must route for the mix gate to mean anything"
        )
        (t_off, r_off), (t_on, r_on) = _best_walls(plan, off, on)
        assert _rows_match(r_off.rows, r_on.rows), (
            f"{label}: routing changed the result"
        )
        m_off = model.predict(r_off.profile.scaled(scale), platform)
        m_on = model.predict(r_on.profile.scaled(scale), platform)
        mix_off += m_off
        mix_on += m_on
        mix_entries.append({
            "query": label,
            "modeled_base_s": m_off,
            "modeled_routed_s": m_on,
            "modeled_speedup": m_off / max(m_on, 1e-12),
            "wall_base_s": t_off,
            "wall_routed_s": t_on,
        })
    mix_speedup = mix_off / max(mix_on, 1e-12)

    # -- non-routable guards -------------------------------------------
    guard_entries = []
    for number in GUARD_QUERIES:
        plan = get_query(number).build(db, {"sf": BENCH_SF})
        assert "[rollup:" not in explain(plan, db), f"q{number} must decline"
        (t_off, r_off), (t_on, r_on) = _best_walls(plan, off, on)
        assert _rows_match(r_off.rows, r_on.rows)
        m_off = model.predict(r_off.profile.scaled(scale), platform)
        m_on = model.predict(r_on.profile.scaled(scale), platform)
        guard_entries.append({
            "query": f"q{number}",
            "modeled_base_s": m_off,
            "modeled_with_router_s": m_on,
            "wall_base_s": t_off,
            "wall_with_router_s": t_on,
            "wall_slowdown": t_on / max(t_off, 1e-12),
        })

    # -- memory tax in the cluster capacity model ----------------------
    memory = MemoryModel()
    probe = parse_sql(db, DASHBOARD_MIX[0][1])
    probe_result = off.execute(probe)
    footprint = memory.rollup_footprint(db, scale)
    pressure = memory.pressure_ratio(db, probe.node, probe_result.profile, scale)
    uncharged = (
        memory.base_column_footprint(db, probe.node, scale)
        + memory.peak_intermediate_bytes(probe_result.profile)
    ) / memory.spec.available_bytes
    assert footprint > 0.0
    assert pressure == pytest.approx(
        uncharged + footprint / memory.spec.available_bytes
    ), "rollup bytes must be charged in the capacity model"

    # -- build-cost amortization (modeled on the Pi) -------------------
    build_cost_s = model.predict(catalog.build_profile, platform)
    per_refresh_saving = (mix_off - mix_on) / len(DASHBOARD_MIX)
    breakeven = build_cost_s / max(per_refresh_saving, 1e-12)

    benchmark.pedantic(
        lambda: on.execute(parse_sql(db, DASHBOARD_MIX[0][1])),
        rounds=1, iterations=1,
    )

    report = {
        "bench_sf": BENCH_SF,
        "target_sf": TARGET_SF,
        "platform": platform.key,
        "catalog": catalog.stats(),
        "build_wall_s": catalog.build_wall_seconds,
        "build_modeled_s": build_cost_s,
        "mix": mix_entries,
        "mix_modeled_speedup": mix_speedup,
        "guards": guard_entries,
        "rollup_footprint_bytes_at_target": footprint,
        "pressure_ratio_with_rollups": pressure,
        "breakeven_refreshes": breakeven,
    }
    (output_dir / "BENCH_rollups.json").write_text(
        json.dumps(report, indent=2) + "\n"
    )

    lines = [
        f"rollups @ SF {BENCH_SF:g}, modeled on {platform.key} at SF {TARGET_SF:g}",
        f"  catalog: {catalog.stats()['cubes']} cubes, "
        f"{catalog.stats()['cells']} cells, "
        f"{catalog.nbytes / 1e6:.2f} MB "
        f"(built in {catalog.build_wall_seconds:.2f}s wall, "
        f"{build_cost_s:.2f}s modeled on the Pi)",
    ]
    for e in mix_entries:
        lines.append(
            f"  {e['query']:<22} {e['modeled_base_s'] * 1e3:8.1f} ms -> "
            f"{e['modeled_routed_s'] * 1e3:7.1f} ms modeled "
            f"({e['modeled_speedup']:5.1f}x; wall "
            f"{e['wall_base_s'] * 1e3:6.1f} -> {e['wall_routed_s'] * 1e3:5.1f} ms)"
        )
    lines.append(f"  routed mix: {mix_speedup:.1f}x modeled at SF {TARGET_SF:g}")
    for e in guard_entries:
        lines.append(
            f"  {e['query']:<22} declines; wall x{e['wall_slowdown']:.3f}  [guard]"
        )
    lines.append(
        f"  memory tax: {footprint / 1e6:.2f} MB charged at SF {TARGET_SF:g} "
        f"(pressure {pressure:.3f}); build amortizes in "
        f"{breakeven:.1f} dashboard refreshes"
    )
    text = "\n".join(lines)
    write_artifact(output_dir, "rollups", text)
    print("\n" + text)

    # -- gates ----------------------------------------------------------
    assert mix_speedup >= REQUIRED_MIX_SPEEDUP, (
        f"routed dashboard mix reached only {mix_speedup:.1f}x modeled "
        f"(floor {REQUIRED_MIX_SPEEDUP}x)"
    )
    for e in guard_entries:
        assert e["modeled_with_router_s"] == pytest.approx(e["modeled_base_s"]), (
            f"{e['query']}: declining the route must not change modeled cost"
        )
        assert (
            e["wall_with_router_s"]
            <= e["wall_base_s"] * MAX_GUARD_SLOWDOWN + GUARD_SLACK_S
        ), (
            f"{e['query']} pays more than "
            f"{(MAX_GUARD_SLOWDOWN - 1):.0%} for the routing attempt: "
            f"{e['wall_base_s'] * 1e3:.2f} ms -> "
            f"{e['wall_with_router_s'] * 1e3:.2f} ms"
        )
