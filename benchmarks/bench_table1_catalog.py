"""Table I — hardware specifications catalog."""

from repro.analysis import render_matrix

from conftest import write_artifact


def _render_table1(study):
    rows = [
        (
            r["name"], r["category"], r["cpu"], r["frequency_ghz"], r["cores"],
            r["llc_mb"],
            r["msrp_usd"] if r["msrp_usd"] is not None else "-",
            f"{r['hourly_usd']:.4f}" if r["hourly_usd"] is not None else "-",
            r["tdp_w"] if r["tdp_w"] is not None else "-",
        )
        for r in study.table1()
    ]
    return render_matrix(
        rows,
        ["name", "category", "cpu", "GHz", "cores", "LLC(MB)", "MSRP($)", "hourly($)", "TDP(W)"],
        title="Table I: Hardware Specifications",
    )


def test_table1_catalog(benchmark, study, output_dir):
    text = benchmark(_render_table1, study)
    write_artifact(output_dir, "table1", text)
    assert "pi3b+" in text
