"""Reproduce Table II: all 22 TPC-H queries across the 10 platforms.

The engine really executes every query (results included below); the
calibrated hardware model prices the measured work per platform, and the
output is compared cell-by-cell against the paper's published Table II.

Run:  python examples/tpch_single_node.py [base_sf]
"""

import sys

from repro import ExperimentStudy, StudyConfig
from repro.analysis import median_relative, render_runtime_table, speedup_table
from repro.core import TABLE2_SF1_RUNTIMES, compare_grids
from repro.hardware import PI_KEY


def main(base_sf: float = 0.05) -> None:
    study = ExperimentStudy(StudyConfig(base_sf=base_sf))
    table2 = study.table2()

    print(render_runtime_table(table2, title=f"Table II (modeled, base_sf={base_sf})"))

    comparison = compare_grids(table2, TABLE2_SF1_RUNTIMES)
    print(f"\nvs paper: median factor {comparison.median_factor:.2f}x, "
          f"p90 {comparison.p90_factor:.2f}x over {comparison.cells} cells")

    servers = {k: v for k, v in table2.items() if k != PI_KEY}
    medians = median_relative(speedup_table(servers, table2[PI_KEY]))
    print("\nPi relative performance per server (paper: median 0.1-0.3x):")
    for server, value in sorted(medians.items(), key=lambda kv: kv[1]):
        print(f"  {server:<12} {value:.3f}x")

    # Show a couple of actual query answers to make the point that the
    # engine returns real rows, not just runtimes.
    q1 = study.profiler.profile(1, 1.0).result
    print("\nQ1 result (first 2 rows):")
    for row in q1.rows[:2]:
        print("  ", row)


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.05)
