"""Reproduce Table III: WIMPI cluster scaling at SF 10.

Spins up simulated Raspberry Pi clusters of 4-24 nodes, really executes
the 8 chokepoint queries through the distributed driver (partial
aggregation + merge), and models per-node runtimes, the 4-node memory
thrash cliff, and the network gather overhead.

Run:  python examples/wimpi_scaling.py
"""

from repro import WimPiCluster, generate
from repro.analysis import render_series
from repro.core.paperdata import TABLE3_WIMPI_RUNTIMES
from repro.tpch import CHOKEPOINTS

BASE_SF = 0.02
SIZES = (4, 8, 12, 16, 20, 24)


def main() -> None:
    db = generate(BASE_SF)
    series: dict[str, dict[int, float]] = {f"Q{q}": {} for q in CHOKEPOINTS}
    print(f"running {len(CHOKEPOINTS)} queries x {len(SIZES)} cluster sizes "
          f"(base SF {BASE_SF}, modeling SF 10)...\n")
    for n_nodes in SIZES:
        cluster = WimPiCluster(n_nodes, base_sf=BASE_SF, target_sf=10.0, db=db)
        for q in CHOKEPOINTS:
            run = cluster.run_query(q)
            series[f"Q{q}"][n_nodes] = run.total_seconds
            if n_nodes == 4 and max(run.node_pressure) > 1.0:
                print(f"  Q{q} at 4 nodes: memory pressure "
                      f"{max(run.node_pressure):.2f} -> thrashing "
                      f"({run.total_seconds:.1f} s)")

    print("\n" + render_series(series, "Table III (modeled WIMPI runtimes, s)", x_label="n="))
    paper_series = {
        f"Q{q}": {n: TABLE3_WIMPI_RUNTIMES[n][q] for n in SIZES} for q in CHOKEPOINTS
    }
    print("\n" + render_series(paper_series, "Table III (paper)", x_label="n="))

    print("\nobservations reproduced:")
    q1 = series["Q1"]
    print(f"  - Q1 cliff: {q1[4]:.1f} s at 4 nodes vs {q1[12]:.2f} s at 12 "
          f"({q1[4] / q1[12]:.0f}x jump)")
    q13 = series["Q13"]
    print(f"  - Q13 flat at ~{q13[24]:.0f} s for every size (single-node query)")
    q6 = series["Q6"]
    print(f"  - Q6 network floor: {q6[16]:.2f} s at 16 nodes -> {q6[24]:.2f} s at 24")


if __name__ == "__main__":
    main()
