"""Reproduce the Section III analysis: Figures 5, 6, and 7.

Prints MSRP-, hourly-cost-, and energy-normalized comparisons with the
paper's break-even interpretation, plus break-even cluster sizes.

Run:  python examples/cost_energy_report.py
"""

import statistics

from repro import ExperimentStudy, StudyConfig
from repro.analysis import break_even_nodes, render_runtime_table
from repro.hardware import CLOUD, ON_PREMISES


def main() -> None:
    study = ExperimentStudy(StudyConfig(base_sf=0.02))

    fig5 = study.fig5()
    print(render_runtime_table(
        fig5["sf1"],
        title="Fig. 5: SF 1 MSRP-normalized improvement (>1 favors the single Pi)",
    ))
    for server in ON_PREMISES:
        median = statistics.median(fig5["sf1"][server].values())
        print(f"  median vs {server}: {median:.0f}x (paper: 22x / 29x)")

    # Break-even cluster sizes at SF 10 (the dotted line in Fig. 5 right).
    data = study.table3()
    print("\nSF 10 break-even cluster size per query (MSRP vs op-e5):")
    for q in sorted(data["wimpi"][4]):
        cluster_times = {n: data["wimpi"][n][q] for n in data["wimpi"]}
        nodes = break_even_nodes("op-e5", data["servers"]["op-e5"][q], cluster_times)
        print(f"  Q{q:<3} {'never' if nodes is None else f'{nodes} nodes'}")

    fig6 = study.fig6()
    print("\nFig. 6: SF 1 hourly-cost improvement ranges per cloud instance:")
    for server in CLOUD:
        values = list(fig6["sf1"][server].values())
        print(f"  {server:<12} {min(values):8.0f}x .. {max(values):8.0f}x")

    fig7 = study.fig7()
    print("\nFig. 7: SF 1 energy-normalized improvement (TDP methodology):")
    for server in ON_PREMISES:
        values = fig7["sf1"][server]
        print(f"  vs {server}: min {min(values.values()):.1f}x, "
              f"median {statistics.median(values.values()):.1f}x, "
              f"max {max(values.values()):.1f}x  (paper: 2-22x, median ~10x)")
        best = max(values, key=values.get)
        worst = min(values, key=values.get)
        print(f"    best Q{best} (selective), worst Q{worst} (memory-bound)")


if __name__ == "__main__":
    main()
