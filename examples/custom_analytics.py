"""Using the engine as a general-purpose analytics library.

The reproduction's substrate is a real columnar engine: this example
builds a non-TPC-H ad-hoc workload on custom data, demonstrating joins,
conditional aggregation, scalar subqueries, and the work-profile API for
capacity planning on SBC hardware.

Run:  python examples/custom_analytics.py
"""

import numpy as np

from repro import PLATFORMS, PerformanceModel, Q, agg, case, col, execute, scalar
from repro.engine import Column, Database, FLOAT64, INT64, Table

rng = np.random.default_rng(0)
N_READINGS, N_SENSORS = 200_000, 500

# ----------------------------------------------------------------------
# An IoT-ish dataset: sensors on machines, plus a stream of readings —
# the edge-processing setting the paper's introduction motivates.
# ----------------------------------------------------------------------
db = Database("factory")
db.add(Table("sensors", {
    "sensor_id": Column.from_ints(range(N_SENSORS)),
    "machine": Column.from_strings(
        [f"machine-{i % 25:02d}" for i in range(N_SENSORS)]
    ),
    "kind": Column.from_strings(
        [("temp", "vibration", "power")[i % 3] for i in range(N_SENSORS)]
    ),
}))
db.add(Table("readings", {
    "sensor_id": Column(INT64, rng.integers(0, N_SENSORS, N_READINGS)),
    "value": Column(FLOAT64, rng.normal(50, 15, N_READINGS)),
}))

# ----------------------------------------------------------------------
# "Which machines have temperature sensors reading above the fleet-wide
# average, and how often?" — join + scalar subquery + conditional agg.
# ----------------------------------------------------------------------
fleet_avg = Q(db).scan("readings").aggregate(a=agg.avg(col("value")))

report = execute(db, (
    Q(db).scan("readings")
    .join(
        Q(db).scan("sensors").filter(col("kind") == "temp"),
        on=[("sensor_id", "sensor_id")],
    )
    .project(
        machine="machine",
        hot=case([(col("value") > scalar(fleet_avg), 1.0)], 0.0),
    )
    .aggregate(by=["machine"], hot_readings=agg.sum(col("hot")), total=agg.count_star())
    .project(
        machine="machine",
        hot_fraction=col("hot_readings") / col("total"),
        total="total",
    )
    .sort(("hot_fraction", "desc"))
    .limit(5)
))

print("top-5 machines by fraction of hot temperature readings:")
for machine, fraction, total in report.rows:
    print(f"  {machine}: {fraction:.1%} of {total} readings")

# ----------------------------------------------------------------------
# Capacity planning: could one Raspberry Pi keep up with this hourly
# report at 100x the data volume?
# ----------------------------------------------------------------------
model = PerformanceModel(platform_factors={})
profile_100x = report.profile.scaled(100)
for key in ("pi3b+", "op-e5"):
    seconds = model.predict(profile_100x, PLATFORMS[key])
    print(f"predicted at 100x volume on {key}: {seconds:.2f} s")
