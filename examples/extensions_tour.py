"""The paper's discussion-section proposals, built and measured.

1. §III-C2 — heavyweight compression on bandwidth-starved SBCs;
2. §III-C1 — the NAM (network-attached memory) hybrid cluster;
3. §III-B2 — fine-grained energy proportionality via node power control;
4. §II-D2 — distributed joins via co-partitioning (Q13 un-flattened);
5. §III-C1 — tailored node composition (a few 8 GB Pi 4B nodes).

Run:  python examples/extensions_tour.py
"""

from repro.cluster import NodeSpec, WimPiCluster
from repro.cluster.shuffle import run_repartitioned
from repro.cluster.tailored import PI4_NODE, TailoredCluster
from repro.core.extensions import compression_study, nam_study, proportionality_study
from repro.tpch import generate


def main() -> None:
    print("=== 1. Compression (paper §III-C2) ===")
    c = compression_study(base_sf=0.02)
    print(f"lineitem compression ratio: {c['ratio']:.2f}x")
    print("single-node query speedups from compressed storage:")
    for r in c["single_node"]:
        print(f"  Q{r.query:<3} on {r.platform:<7} {r.speedup:.2f}x")
    cliff = c["cliff"]
    print(f"Q1 at 4 WIMPI nodes: {cliff['plain']['seconds']:.1f} s plain "
          f"(pressure {cliff['plain']['pressure']:.2f}) -> "
          f"{cliff['compressed']['seconds']:.1f} s compressed "
          f"(pressure {cliff['compressed']['pressure']:.2f})")
    print("-> the cheap-CPU/scarce-bandwidth trade the paper predicted: "
          "compression pays on the Pi, is neutral on the Xeon, and "
          "defuses the memory cliff.\n")

    print("=== 2. NAM hybrid cluster (paper §III-C1) ===")
    n = nam_study(base_sf=0.02)
    for q, row in sorted(n["queries"].items()):
        print(f"  Q{q:<3} {row['plain_seconds']:8.2f} s -> {row['nam_seconds']:6.2f} s "
              f"({row['offloaded_nodes']} fragment(s) offloaded)")
    print(f"cost of the hybrid: ${n['plain_msrp']:.0f} -> ${n['nam_msrp']:.0f}, "
          f"power {n['plain_power_w']:.0f} W -> {n['nam_power_w']:.0f} W")
    print("-> memory-heavy fragments run on the pool server; the Pis keep "
          "the embarrassingly parallel scans.\n")

    print("=== 3. Energy proportionality (paper §III-B2) ===")
    p = proportionality_study()
    print(f"24-hour bursty trace, 24-node WIMPI:")
    print(f"  nodes powered on/off: {p['cluster_scaled_wh']:.0f} Wh")
    print(f"  cluster always-on:    {p['cluster_always_on_wh']:.0f} Wh")
    print(f"  op-e5 always-on:      {p['server_wh']:.0f} Wh")
    print(f"  savings: {p['savings_vs_always_on']:.0%} vs always-on, "
          f"{p['savings_vs_server']:.0%} vs the server\n")

    print("=== 4. Distributed joins via co-partitioning (paper §II-D2) ===")
    db = generate(0.02)
    flat = WimPiCluster(24, base_sf=0.02, target_sf=10.0, db=db).run_query(13)
    keys = {"orders": "o_custkey", "customer": "c_custkey"}
    shuffled = run_repartitioned(13, 24, keys, base_sf=0.02, db=db)
    pre = run_repartitioned(13, 24, keys, base_sf=0.02, db=db, include_shuffle=False)
    print(f"  Q13: paper driver {flat.total_seconds:.1f} s (flat at every size)")
    print(f"       with shuffle  {shuffled.total_seconds:.2f} s "
          f"(of which {shuffled.shuffle_seconds:.2f} s repartitioning)")
    print(f"       pre-partitioned {pre.total_seconds:.2f} s\n")

    print("=== 5. Tailored node composition (paper §III-C1) ===")
    mixed = TailoredCluster([NodeSpec()] * 20 + [PI4_NODE] * 4,
                            base_sf=0.02, target_sf=10.0, db=db)
    q13 = mixed.run_query(13)
    print(f"  20x Pi 3B+ + 4x Pi 4B (8 GB): Q13 {q13.total_seconds:.2f} s "
          f"(pressure {max(q13.node_pressure):.2f})")
    print(f"  cluster cost ${mixed.total_msrp_usd:.0f} vs $840 all-Pi3, "
          f"${24 * 75:.0f} all-Pi4")


if __name__ == "__main__":
    main()
