"""Quickstart: generate TPC-H, run a query, predict hardware runtimes.

Run:  python examples/quickstart.py
"""

from repro import PLATFORMS, ExperimentStudy, PerformanceModel, Q, agg, col, execute, generate

# ----------------------------------------------------------------------
# 1. Generate a TPC-H database (SF 0.02 ≈ 120k lineitems, < 1 s).
# ----------------------------------------------------------------------
db = generate(scale_factor=0.02, seed=42)
print(f"generated {db.name}: "
      + ", ".join(f"{t}={db.table(t).nrows}" for t in db.table_names))

# ----------------------------------------------------------------------
# 2. Run a query with the fluent plan builder (this is TPC-H Q6).
# ----------------------------------------------------------------------
plan = (
    Q(db).scan("lineitem")
    .filter(
        (col("l_shipdate") >= "1994-01-01")
        & (col("l_shipdate") < "1995-01-01")
        & col("l_discount").between(0.05, 0.07)
        & (col("l_quantity") < 24)
    )
    .aggregate(revenue=agg.sum(col("l_extendedprice") * col("l_discount")))
)
result = execute(db, plan)
print(f"\nQ6 revenue: {result.scalar():,.2f}")
print(f"work profile: {result.profile.summary()}")

# ----------------------------------------------------------------------
# 3. Predict what this query would cost on real hardware.
# ----------------------------------------------------------------------
model = PerformanceModel()
sf1_profile = result.profile.scaled(1.0 / 0.02)  # extrapolate to SF 1
print("\npredicted SF 1 runtimes:")
for key in ("op-e5", "op-gold", "m5.metal", "pi3b+"):
    seconds = model.predict(sf1_profile, PLATFORMS[key])
    print(f"  {key:<10} {seconds * 1000:8.1f} ms")

# ----------------------------------------------------------------------
# 4. Or run a whole paper experiment through the study harness.
# ----------------------------------------------------------------------
study = ExperimentStudy()
fig2 = study.fig2()
pi = fig2["micro"]["pi3b+"]
e5 = fig2["micro"]["op-e5"]
print(f"\nFig 2 check — Pi vs op-e5 single-core Whetstone: "
      f"{e5.whetstone_mwips_1core / pi.whetstone_mwips_1core:.1f}x "
      f"(the paper reports 2-3x)")
print(f"WIMPI node-to-node bandwidth: {fig2['network_mbps']:.0f} Mbps (paper: ~220)")
