"""The SQL front-end: ad-hoc analytics over TPC-H data.

Run:  python examples/sql_interface.py
"""

from repro import execute, generate, sql
from repro.engine.explain import explain, explain_profile

db = generate(0.02)

# ----------------------------------------------------------------------
# TPC-H Q6, straight from the spec text.
# ----------------------------------------------------------------------
q6 = sql(db, """
    SELECT SUM(l_extendedprice * l_discount) AS revenue
    FROM lineitem
    WHERE l_shipdate >= DATE '1994-01-01'
      AND l_shipdate < DATE '1994-01-01' + INTERVAL '1' YEAR
      AND l_discount BETWEEN 0.05 AND 0.07
      AND l_quantity < 24
""")
print("Q6 plan:")
print(explain(q6, db))
result = execute(db, q6)
print(f"\nrevenue = {result.scalar():,.2f}\n")

# ----------------------------------------------------------------------
# Ad-hoc: top nations by open-order value, with a NOT IN subquery.
# ----------------------------------------------------------------------
adhoc = sql(db, """
    SELECT n_name, COUNT(*) AS orders, SUM(o_totalprice) AS value
    FROM orders
    JOIN customer ON o_custkey = c_custkey
    JOIN nation ON c_nationkey = n_nationkey
    WHERE o_orderstatus = 'O'
      AND c_custkey NOT IN (
          SELECT c_custkey FROM customer WHERE c_acctbal < 0)
    GROUP BY n_name
    ORDER BY value DESC
    LIMIT 5
""")
result = execute(db, adhoc)
print("top nations by open-order value (positive-balance customers):")
for name, orders, value in result.rows:
    print(f"  {name:<15} {orders:>6} orders  {value:>16,.2f}")

print("\nwhere the work went:")
print(explain_profile(result))
