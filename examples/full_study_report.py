"""Regenerate the entire study as one text report.

Run:  python examples/full_study_report.py [output_path]
"""

import sys

from repro import ExperimentStudy, StudyConfig
from repro.core.report import full_report


def main() -> None:
    study = ExperimentStudy(StudyConfig(base_sf=0.02))
    report = full_report(study, include_extensions=True)
    if len(sys.argv) > 1:
        with open(sys.argv[1], "w") as handle:
            handle.write(report)
        print(f"wrote {sys.argv[1]} ({len(report.splitlines())} lines)")
    else:
        print(report)


if __name__ == "__main__":
    main()
