"""Node-to-node network bandwidth (the paper's iperf check, §II-C3).

Each WIMPI node's GbE port shares an internal USB 2.0 bus, capping
usable bandwidth at roughly 20% of line rate; the paper measured
~220 Mbps with iperf. The model exposes that figure and simulates a
transfer through the cluster's network model.
"""

from __future__ import annotations

__all__ = ["GBE_LINE_RATE_MBPS", "USB_BUS_EFFICIENCY", "effective_node_bandwidth_mbps",
           "simulate_transfer_s"]

GBE_LINE_RATE_MBPS = 1000.0
# The Pi 3B+ Ethernet hangs off the single USB 2.0 bus (~480 Mbps raw,
# shared both directions plus protocol overhead).
USB_BUS_EFFICIENCY = 0.22


def effective_node_bandwidth_mbps() -> float:
    """Usable point-to-point bandwidth between two WIMPI nodes (Mbps)."""
    return GBE_LINE_RATE_MBPS * USB_BUS_EFFICIENCY


def simulate_transfer_s(payload_bytes: float, latency_s: float = 0.0006) -> float:
    """Time to move ``payload_bytes`` between two nodes: per-message
    latency plus serialization at the effective bandwidth."""
    if payload_bytes < 0:
        raise ValueError("payload must be non-negative")
    bandwidth_bps = effective_node_bandwidth_mbps() * 1e6 / 8.0
    return latency_s + payload_bytes / bandwidth_bps
