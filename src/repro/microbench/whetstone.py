"""Whetstone (floating-point) microbenchmark — Fig. 2a.

Two faces:

* :func:`model_mwips` — the per-platform analytic model (float throughput
  from the platform spec), used to regenerate Fig. 2a for hardware we do
  not have.
* :func:`run_kernel` — a real, runnable Whetstone-style float kernel
  (numpy), exercising the same instruction mix on the host; used by tests
  to validate the kernel path and by the quickstart example.
"""

from __future__ import annotations

import time

import numpy as np

from repro.hardware import PlatformSpec

__all__ = ["model_mwips", "run_kernel"]

# Whetstone reports MWIPS; one "Whetstone instruction" is roughly one
# float operation in the canonical loop mix.
_MWIPS_PER_FLOP = 1.0


def model_mwips(platform: PlatformSpec, all_cores: bool = False) -> float:
    """Predicted MWIPS (higher is better).

    Single-core uses the per-core float rate; all-cores scales by the
    full machine (with the paper's observed moderate Hyper-Threading
    benefit on CPU-bound code).
    """
    if all_cores:
        rate = platform.parallel_rate("flt")
    else:
        rate = platform.core_rate("flt")
    return rate / 1e6 * _MWIPS_PER_FLOP


def run_kernel(duration_s: float = 0.2, vector_size: int = 100_000) -> float:
    """Run a Whetstone-like float mix on the host and return measured
    M float-ops/second (vectorized — measures the host's float pipeline,
    not the interpreter)."""
    rng = np.random.default_rng(7)
    x = rng.random(vector_size) + 0.5
    y = rng.random(vector_size) + 0.5
    flops = 0
    deadline = time.perf_counter() + duration_s
    while time.perf_counter() < deadline:
        # The classic N1/N2/N7 style mix: multiply-add chains and
        # transcendental-ish work.
        z = x * y + y
        z = z * x - y
        z = np.sqrt(z * z + 1.0)
        x = z / (z + 1.0)
        flops += vector_size * 8
    return flops / duration_s / 1e6
