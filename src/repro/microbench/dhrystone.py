"""Dhrystone (integer/string) microbenchmark — Fig. 2b."""

from __future__ import annotations

import time

import numpy as np

from repro.hardware import PlatformSpec

__all__ = ["model_dmips", "run_kernel"]

# DMIPS per (GHz x IPC): classic cores sustain roughly 2-3 Dhrystone
# MIPS per MHz of effective issue rate; 3.2 matches the published
# Cortex-A53 figure (2.24 DMIPS/MHz at IPC 0.7).
_DMIPS_PER_OP = 3.2


def model_dmips(platform: PlatformSpec, all_cores: bool = False) -> float:
    """Predicted DMIPS (higher is better)."""
    if all_cores:
        rate = platform.parallel_rate("int")
    else:
        rate = platform.core_rate("int")
    return rate / 1e6 * _DMIPS_PER_OP


def run_kernel(duration_s: float = 0.2, vector_size: int = 100_000) -> float:
    """Dhrystone-like integer/branch/copy mix on the host; returns
    M int-ops/second."""
    rng = np.random.default_rng(11)
    a = rng.integers(1, 1000, vector_size)
    b = rng.integers(1, 1000, vector_size)
    ops = 0
    deadline = time.perf_counter() + duration_s
    while time.perf_counter() < deadline:
        c = a + b
        d = np.where(c > 1000, c - b, c + b)  # the branch
        a = np.roll(d, 1)  # the record copy
        b = (a & 1023) + 1
        ops += vector_size * 6
    return ops / duration_s / 1e6
