"""Microbenchmark suite (Fig. 2 + the network check in §II-C3)."""

from . import dhrystone, iperf, membw, sysbench, whetstone
from .runner import BENCH_NAMES, MicrobenchResult, network_bandwidth_mbps, run_all, run_platform

__all__ = [
    "BENCH_NAMES", "MicrobenchResult", "dhrystone", "iperf", "membw",
    "network_bandwidth_mbps", "run_all", "run_platform", "sysbench",
    "whetstone",
]
