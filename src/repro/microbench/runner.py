"""Run the full Fig. 2 microbenchmark matrix across all platforms."""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware import ALL_KEYS, PLATFORMS, PlatformSpec

from . import dhrystone, iperf, membw, sysbench, whetstone

__all__ = ["MicrobenchResult", "run_all", "BENCH_NAMES"]

BENCH_NAMES = ("whetstone_mwips", "dhrystone_dmips", "sysbench_s", "membw_gbs")


@dataclass(frozen=True)
class MicrobenchResult:
    """One platform's row across the four Fig. 2 panels."""

    platform: str
    whetstone_mwips_1core: float
    whetstone_mwips_all: float
    dhrystone_dmips_1core: float
    dhrystone_dmips_all: float
    sysbench_s_1core: float
    sysbench_s_all: float
    membw_gbs_1core: float
    membw_gbs_all: float


def run_platform(platform: PlatformSpec) -> MicrobenchResult:
    """Evaluate all four microbenchmark models for one platform."""
    return MicrobenchResult(
        platform=platform.key,
        whetstone_mwips_1core=whetstone.model_mwips(platform, all_cores=False),
        whetstone_mwips_all=whetstone.model_mwips(platform, all_cores=True),
        dhrystone_dmips_1core=dhrystone.model_dmips(platform, all_cores=False),
        dhrystone_dmips_all=dhrystone.model_dmips(platform, all_cores=True),
        sysbench_s_1core=sysbench.model_runtime_s(platform, all_cores=False),
        sysbench_s_all=sysbench.model_runtime_s(platform, all_cores=True),
        membw_gbs_1core=membw.model_bandwidth_gbs(platform, all_cores=False),
        membw_gbs_all=membw.model_bandwidth_gbs(platform, all_cores=True),
    )


def run_all(keys: list[str] | None = None) -> dict[str, MicrobenchResult]:
    """Fig. 2 data for every comparison point (plus the §II-C3 network
    figure via :func:`network_bandwidth_mbps`)."""
    keys = keys or list(ALL_KEYS)
    return {key: run_platform(PLATFORMS[key]) for key in keys}


def network_bandwidth_mbps() -> float:
    """WIMPI node-to-node bandwidth (the paper measured ~220 Mbps)."""
    return iperf.effective_node_bandwidth_mbps()
