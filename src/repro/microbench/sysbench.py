"""sysbench CPU (prime search) microbenchmark — Fig. 2c.

The sysbench CPU test runs a tight loop testing integers up to a limit
for primality by trial division — dominated by integer division, which is
why the paper found the Pi's Cortex-A53 "nearly identical" to the Ivy
Bridge Xeon on this test while trailing on Whetstone/Dhrystone: old
Xeons' integer dividers are slow.
"""

from __future__ import annotations

import math
import time

from repro.hardware import PlatformSpec

__all__ = ["model_runtime_s", "division_count", "run_kernel"]

# Seconds-per-division calibration: one trial division is ~1 "div-class"
# op in the platform model.
_OPS_PER_DIVISION = 1.0
_DEFAULT_LIMIT = 10_000
_DEFAULT_EVENTS = 10_000


def division_count(limit: int = _DEFAULT_LIMIT) -> float:
    """Trial divisions needed to test primality of 3..limit
    (sum of sqrt(n), the sysbench inner loop)."""
    return sum(math.isqrt(n) for n in range(3, limit + 1))


# sysbench's event dispatcher serializes threads on a shared counter; the
# contention is markedly worse with Hyper-Threading (twice the threads
# fighting for the same lock). This is why the paper's all-core sysbench
# gaps (4-14x) are far below the raw core-count ratios: an Amdahl serial
# fraction models it.
_SERIAL_FRACTION_SMT = 0.05
_SERIAL_FRACTION_NO_SMT = 0.01


def model_runtime_s(
    platform: PlatformSpec,
    all_cores: bool = False,
    limit: int = _DEFAULT_LIMIT,
    events: int = _DEFAULT_EVENTS,
) -> float:
    """Predicted runtime in seconds (lower is better) for ``events``
    repetitions of the prime test."""
    total_ops = division_count(limit) * events * _OPS_PER_DIVISION
    if all_cores:
        threads_eff = platform.parallel_rate("div") / platform.core_rate("div")
        serial = _SERIAL_FRACTION_SMT if platform.smt > 1 else _SERIAL_FRACTION_NO_SMT
        speedup = 1.0 / (serial + (1.0 - serial) / threads_eff)
        rate = platform.core_rate("div") * speedup
    else:
        rate = platform.core_rate("div")
    return total_ops / rate


def run_kernel(limit: int = 2_000) -> tuple[int, float]:
    """Run the actual prime loop once on the host; returns
    ``(primes_found, seconds)``."""
    start = time.perf_counter()
    primes = 0
    for n in range(3, limit + 1):
        is_prime = True
        for d in range(2, math.isqrt(n) + 1):
            if n % d == 0:
                is_prime = False
                break
        if is_prime:
            primes += 1
    return primes, time.perf_counter() - start
