"""sysbench memory-bandwidth microbenchmark — Fig. 2d.

The paper's key memory findings, which the model reproduces by
construction of the platform table:

* one Pi core nearly saturates the board's single memory channel, so the
  Pi's all-core bandwidth barely exceeds its single-core bandwidth;
* servers have 5-11x the Pi's single-core bandwidth and 20-99x its
  all-core bandwidth;
* Hyper-Threading does not increase bandwidth (the model never scales
  bandwidth past physical cores).
"""

from __future__ import annotations

import time

import numpy as np

from repro.hardware import PlatformSpec

__all__ = ["model_bandwidth_gbs", "run_kernel"]


def model_bandwidth_gbs(platform: PlatformSpec, all_cores: bool = False) -> float:
    """Predicted sequential read bandwidth in GB/s."""
    threads = platform.total_cores if all_cores else 1
    return platform.mem_bandwidth(threads) / 1e9


def run_kernel(buffer_mb: int = 64, passes: int = 3) -> float:
    """Sequentially read a large buffer on the host; returns GB/s."""
    buf = np.ones(buffer_mb * 1024 * 1024 // 8, dtype=np.float64)
    best = 0.0
    for _ in range(passes):
        start = time.perf_counter()
        total = float(buf.sum())  # forces a full sequential read
        elapsed = time.perf_counter() - start
        assert total > 0
        best = max(best, buf.nbytes / elapsed / 1e9)
    return best
