"""Morsel-driven parallel plan executor.

:class:`ParallelExecutor` is a drop-in for
:class:`~repro.engine.executor.Executor` that keeps all of a wimpy
node's cores busy (the paper's Table I point: the Pi 3B+ has four cores,
and OLAP throughput on it lives or dies by using them). It works on
*parallelizable segments* — maximal scan → filter/project chains over a
base table, optionally capped by a decomposable aggregate or a fused
top-k — executing each segment once per morsel on a shared
``ThreadPoolExecutor`` (the numpy kernels release the GIL), then merging
partial states with :mod:`repro.engine.merge`. Everything outside a
segment (joins, sorts, DISTINCT, non-decomposable aggregates) runs
serially over the merged intermediates, so *every* plan executes
correctly; parallelism is an optimization, never a semantics change.

Repeated plans are served from a plan-fingerprint
:class:`~repro.engine.cache.ResultCache` (single-flight), which is what
the Fig. 3 / Table II sweeps hit when they re-run the same 22 queries
per platform.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor as _ThreadPool

from .cache import ResultCache
from .executor import ExecContext, Executor, _annotate_rollups
from .expr import Expr, ScalarSubquery
from .fingerprint import plan_fingerprint
from .frame import Frame
from .merge import (
    concat_frames,
    decompose_aggregates,
    merge_partial_aggregates,
    merge_profiles,
    merge_topk,
)
from .morsel import (
    DEFAULT_MORSEL_ROWS,
    MIN_PARALLEL_ROWS,
    MorselContext,
    morsel_ranges,
    scan_morsel,
    table_is_morselable,
)
from .operators.aggregate import try_encoded_aggregate
from .operators.filter import execute_filter
from .operators.project import execute_project
from .operators.sort import execute_topk
from .optimizer import OptimizerSettings, optimize_plan
from .profile import WorkProfile
from .plan import (
    AggregateNode,
    FilterNode,
    LimitNode,
    PlanNode,
    ProjectNode,
    Q,
    ScanNode,
    SortNode,
)
from .result import Result
from .spill import maybe_spill_aggregate
from .zonemap import BLOCK_SKIP, classify_blocks, extract_sargable, split_conjuncts

__all__ = ["ParallelExecutor"]


def _collect_scalar_subqueries(obj, found: list[ScalarSubquery]) -> None:
    """Find every ScalarSubquery reachable from an expression tree."""
    if isinstance(obj, ScalarSubquery):
        found.append(obj)
        return
    if isinstance(obj, Expr):
        for value in vars(obj).values():
            _collect_scalar_subqueries(value, found)
    elif isinstance(obj, (list, tuple)):
        for value in obj:
            _collect_scalar_subqueries(value, found)


class _Segment:
    """A parallelizable plan fragment: a scan chain plus an optional cap."""

    __slots__ = ("kind", "chain", "node")

    def __init__(self, kind: str, chain: list[PlanNode], node: PlanNode):
        self.kind = kind  # "chain" | "aggregate" | "topk"
        self.chain = chain  # [ScanNode, Filter/Project, ...] bottom-up
        self.node = node  # the plan node the segment replaces


class ParallelExecutor(Executor):
    """Executes plans with intra-query (morsel) parallelism.

    Args:
        db: the database catalog.
        workers: thread count (default: all host cores). ``workers=1``
            still exercises the morsel/merge machinery, just inline.
        morsel_rows: target rows per morsel; the effective size shrinks
            so large scans yield at least one morsel per worker.
        cache_size: LRU capacity of the plan-fingerprint result cache;
            ``0`` disables caching.
    """

    def __init__(
        self,
        db,
        workers: int | None = None,
        morsel_rows: int = DEFAULT_MORSEL_ROWS,
        cache_size: int = 64,
        min_parallel_rows: int = MIN_PARALLEL_ROWS,
        settings: OptimizerSettings | None = None,
        tracer=None,
        memory_budget=None,
    ):
        super().__init__(db, settings, tracer=tracer, memory_budget=memory_budget)
        self.workers = max(1, workers if workers is not None else (os.cpu_count() or 1))
        self.morsel_rows = max(1, morsel_rows)
        self.min_parallel_rows = min_parallel_rows
        self.cache: ResultCache | None = ResultCache(cache_size) if cache_size else None
        # Semantic layer: caches literal-free finer aggregates so shape
        # re-runs with new filter literals re-slice instead of re-scan.
        # Tied to cache_size so "caching off" disables both layers.
        self.semantic: ResultCache | None = (
            ResultCache(capacity=16, stats_name="rollup.semantic_cache")
            if cache_size
            else None
        )
        self._pool: _ThreadPool | None = None
        self._pool_lock = threading.Lock()

    # -- lifecycle ------------------------------------------------------

    def _ensure_pool(self) -> _ThreadPool:
        with self._pool_lock:
            if self._pool is None:
                self._pool = _ThreadPool(
                    max_workers=self.workers, thread_name_prefix="morsel"
                )
            return self._pool

    def close(self) -> None:
        """Shut down the worker pool (idempotent)."""
        with self._pool_lock:
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - interpreter-shutdown best effort
        try:
            self.close()
        except Exception:
            pass

    # -- entry point ----------------------------------------------------

    def execute(
        self,
        plan: "Q | PlanNode",
        optimize: bool = True,
        label: str | None = None,
        parent_span=None,
        cancel=None,
    ) -> Result:
        node = plan.node if isinstance(plan, Q) else plan
        if node is None:
            raise ValueError("cannot execute an empty plan")
        if cancel is not None:
            cancel.check()
        if optimize:
            node = optimize_plan(node, self.db, self.settings)

        tracer = self.tracer
        qspan = (
            tracer.start("query", label or "query", parent=parent_span)
            if tracer.enabled
            else None
        )
        if qspan is not None:
            _annotate_rollups(qspan, node, self.settings)
        start = time.perf_counter()
        try:
            if self.cache is None:
                frame, profile = self._run(node, qspan, cancel)
                was_cached = False
            else:
                key = plan_fingerprint(node, self.settings)
                (frame, profile), was_cached = self.cache.get_or_run(
                    key, lambda: self._run(node, qspan, cancel), cancel=cancel
                )
        except BaseException:
            if qspan is not None:
                qspan.annotate(error=True)
                tracer.finish(qspan)
                tracer.finalize(qspan)
            raise
        if qspan is not None:
            # A cache hit leaves the span childless: the observation is
            # "this execution was served from the result cache".
            qspan.annotate(
                cached=was_cached, rows=frame.nrows,
                operators=len(profile.operators),
            )
            tracer.finish(qspan)
            tracer.finalize(qspan)
        return Result(
            frame, profile,
            wall_seconds=time.perf_counter() - start,
            cached=was_cached,
        )

    def _run(self, node: PlanNode, qspan=None, cancel=None) -> tuple[Frame, "object"]:
        """Execute an optimized plan, preferring the semantic cache.

        When the plan splits into a literal-free finer aggregate plus a
        re-slice (:mod:`repro.rollup.semantic`), the finer aggregate is
        cached once and every literal variation of the shape answers
        from it. Anything unsplittable executes directly.
        """
        split = None
        if (
            self.semantic is not None
            and self.settings.rollups
            and getattr(self.db, "rollups", None) is not None
        ):
            from repro.rollup.semantic import semantic_plan

            try:
                split = semantic_plan(node, self.db)
            except Exception:
                split = None
        if split is None:
            return self._run_direct(node, qspan, cancel)

        from repro.rollup.semantic import MAX_SEMANTIC_CELLS, run_residual

        key = plan_fingerprint(split.finer, self.settings) + split.cache_suffix

        def build():
            finer = optimize_plan(split.finer, self.db, self.settings)
            frame, profile = self._run_direct(finer, qspan, cancel)
            if frame.nrows > MAX_SEMANTIC_CELLS:
                # Negative-cache oversized shapes: a re-slice over this
                # many cells would rival the base scan.
                return None
            return frame, profile

        value, was_cached = self.semantic.get_or_run(key, build, cancel=cancel)
        if value is None:
            return self._run_direct(node, qspan, cancel)
        finer_frame, build_profile = value
        residual = run_residual(split, finer_frame, self.settings)
        if qspan is not None:
            qspan.annotate(semantic="hit" if was_cached else "build")
        if was_cached:
            # The only real work this execution did was the re-slice.
            return residual.frame, residual.profile
        combined = WorkProfile()
        combined.absorb(build_profile)
        combined.absorb(residual.profile)
        return residual.frame, combined

    def _run_direct(
        self, node: PlanNode, qspan=None, cancel=None
    ) -> tuple[Frame, "object"]:
        tracer = self.tracer
        pspan = (
            tracer.start("pipeline", "main", parent=qspan)
            if qspan is not None
            else None
        )
        ctx = ExecContext(self.db, self, tracer=tracer, parent_span=pspan, cancel=cancel)
        frame = self._exec(node, ctx)
        if frame.is_late:
            frame = frame.dense(
                ctx.profile.operators[-1] if ctx.profile.operators else None
            )
        if pspan is not None:
            ctx.close_op_span()
            tracer.finish(pspan)
        return frame, ctx.profile

    # -- segment detection ---------------------------------------------

    def _exec(self, node: PlanNode, ctx: ExecContext) -> Frame:
        if (
            isinstance(node, AggregateNode)
            and self.settings.compressed_execution
            and isinstance(node.child, ScanNode)
            and node.child.predicate is None
        ):
            # Run-level aggregation touches one value per RLE run; even a
            # perfect morsel split cannot beat that, so it pre-empts
            # segment matching.
            frame = try_encoded_aggregate(node, self.db, ctx)
            if frame is not None:
                return frame
        segment = self._match_segment(node)
        if segment is not None:
            return self._exec_segment(segment, ctx)
        return super()._exec(node, ctx)

    def _scan_chain(self, node: PlanNode) -> list[PlanNode] | None:
        """Bottom-up [scan, op, ...] if ``node`` is a morselable chain."""
        ops: list[PlanNode] = []
        current = node
        while isinstance(current, (FilterNode, ProjectNode)):
            ops.append(current)
            current = current.child
        if not isinstance(current, ScanNode):
            return None
        table = self.db.table(current.table)
        columns = list(current.columns) if current.columns is not None else None
        # The morselable check must cover every column the scan streams,
        # including predicate-only columns it never emits.
        needed = columns
        if current.predicate is not None:
            needed = list(table.column_names) if columns is None else list(columns)
            for ref in sorted(current.predicate.references()):
                if ref not in needed:
                    needed.append(ref)
        if not table_is_morselable(
            table, needed, allow_encoded=self.settings.compressed_execution
        ):
            return None
        if table.nrows < max(self.min_parallel_rows, 2):
            return None
        return [current] + ops[::-1]

    def _match_segment(self, node: PlanNode) -> _Segment | None:
        if isinstance(node, AggregateNode):
            chain = self._scan_chain(node.child)
            if chain is not None and decompose_aggregates(dict(node.aggs)) is not None:
                return _Segment("aggregate", chain, node)
            return None
        if isinstance(node, LimitNode) and isinstance(node.child, SortNode):
            chain = self._scan_chain(node.child.child)
            if chain is not None and node.n > 0:
                return _Segment("topk", chain, node)
            return None
        if isinstance(node, (FilterNode, ProjectNode)):
            chain = self._scan_chain(node)
            if chain is not None:
                return _Segment("chain", chain, node)
        if isinstance(node, ScanNode) and node.predicate is not None:
            # A scan with a pushed-down predicate carries real per-row
            # work (and skipping), so it parallelizes like scan+filter.
            chain = self._scan_chain(node)
            if chain is not None:
                return _Segment("chain", chain, node)
        # Bare predicate-free scans stay serial: slicing + re-concatenating
        # columns would copy every array for zero computational gain.
        return None

    # -- segment execution ---------------------------------------------

    def _effective_morsel_rows(self, nrows: int) -> int:
        per_worker = -(-nrows // self.workers)  # ceil div
        return max(1, min(self.morsel_rows, per_worker))

    def _preskip_morsels(
        self, table, scan: ScanNode, ranges: list[tuple[int, int]]
    ) -> tuple[list[tuple[int, int]], dict | None]:
        """Drop morsels the zone maps prove entirely empty before they are
        ever scheduled — skipped work should not even cost a thread handoff.

        Returns the surviving ranges plus the accounting for the dropped
        ones (zone probes spent, bytes and blocks skipped). Probes for
        surviving morsels are charged by their workers, which re-derive
        the block classification locally (an O(blocks) recomputation).
        At least one range is always kept so the segment still produces a
        well-formed (possibly empty) frame through the normal path.
        """
        conjuncts = split_conjuncts(scan.predicate)
        sargable = [s for s in (extract_sargable(c) for c in conjuncts) if s is not None]
        if not sargable:
            return ranges, None
        names = list(scan.columns) if scan.columns is not None else list(table.column_names)
        for ref in sorted(scan.predicate.references()):
            if ref not in names:
                names.append(ref)
        row_width = sum(table.column(n).dtype.width for n in names)
        kept: list[tuple[int, int]] = []
        dropped: list[tuple[int, int, int, int]] = []
        for lo, hi in ranges:
            codes, probes = classify_blocks(table, sargable, lo, hi)
            if len(codes) and bool((codes == BLOCK_SKIP).all()):
                dropped.append((lo, hi, probes, len(codes)))
            else:
                kept.append((lo, hi))
        if not kept and dropped:
            lo, hi, _, _ = dropped.pop(0)
            kept.append((lo, hi))  # its worker re-derives the skip itself
        if not dropped:
            return kept, None
        stats = {
            "skipped_bytes": float(sum((hi - lo) * row_width for lo, hi, _, _ in dropped)),
            "zone_probes": sum(p for _, _, p, _ in dropped),
            "blocks_skipped": sum(b for _, _, _, b in dropped),
        }
        return kept, stats

    def _exec_segment(self, segment: _Segment, ctx: ExecContext) -> Frame:
        scan = segment.chain[0]
        table = self.db.table(scan.table)
        ranges = morsel_ranges(table.nrows, self._effective_morsel_rows(table.nrows))
        if len(ranges) < 2:
            return super()._exec(segment.node, ctx)

        pre_skip = None
        if scan.predicate is not None and self.settings.zone_map_skipping:
            ranges, pre_skip = self._preskip_morsels(table, scan, ranges)

        # Resolve scalar subqueries on the main thread so morsel workers
        # only ever hit the warm cache — a worker re-entering the executor
        # could otherwise deadlock the pool on itself.
        subqueries: list[ScalarSubquery] = []
        if scan.predicate is not None:
            _collect_scalar_subqueries(scan.predicate, subqueries)
        for op in segment.chain[1:]:
            if isinstance(op, FilterNode):
                _collect_scalar_subqueries(op.predicate, subqueries)
            else:
                _collect_scalar_subqueries([e for _, e in op.exprs], subqueries)
        if segment.kind == "aggregate":
            for _, spec in segment.node.aggs:
                _collect_scalar_subqueries(spec.expr, subqueries)
        for sub in subqueries:
            ctx.scalar(sub.plan)

        partial_aggs = None
        if segment.kind == "aggregate":
            partial_aggs, _ = decompose_aggregates(dict(segment.node.aggs))

        late = self.settings.late_materialization

        tracer = ctx.tracer
        tracing = tracer.enabled
        seg_span = None
        if tracing:
            # A still-open operator span would overlap the segment span
            # as a sibling; close it first (scalar-subquery pre-warm above
            # already emitted its operator spans under the main pipeline,
            # strictly before the segment interval starts).
            ctx.close_op_span()
            seg_span = tracer.start(
                "pipeline", f"segment:{segment.kind}:{scan.table}",
                parent=ctx.pipeline_span,
            )
            seg_span.annotate(morsels=len(ranges), workers=self.workers)

        cancel = ctx.cancel

        def run_morsel(bounds: tuple[int, int]) -> tuple[Frame, "object"]:
            # Morsel boundaries are the parallel engine's preemption
            # points: a cancelled query never starts another morsel, so
            # its worker slots free within one in-flight morsel's work.
            if cancel is not None:
                cancel.check()
            if tracing:
                mspan = tracer.start(
                    "morsel", f"{scan.table}[{bounds[0]}:{bounds[1]})",
                    parent=seg_span,
                )
                mctx = MorselContext(self.db, ctx, tracer=tracer, span=mspan)
            else:
                mspan = None
                mctx = MorselContext(self.db, ctx)
            mctx.begin_operator("scan")
            frame = scan_morsel(
                table,
                list(scan.columns) if scan.columns is not None else None,
                bounds[0], bounds[1], mctx,
                predicate=scan.predicate,
                skipping=self.settings.zone_map_skipping,
                late=late,
                compressed=self.settings.compressed_execution,
            )
            for op in segment.chain[1:]:
                if isinstance(op, FilterNode):
                    mctx.begin_operator("filter")
                    frame = execute_filter(frame, op.predicate, mctx, late=late)
                else:
                    mctx.begin_operator("project")
                    frame = execute_project(frame, dict(op.exprs), mctx)
            if segment.kind == "aggregate":
                mctx.begin_operator("aggregate")
                # Budget-aware: each worker's partial state charges the
                # query's shared MemoryBudget and spills when over.
                frame = maybe_spill_aggregate(
                    frame, list(segment.node.group_by), partial_aggs, mctx
                )
            elif segment.kind == "topk":
                keys = list(segment.node.child.keys)
                mctx.begin_operator("topk")
                frame = execute_topk(frame, keys, segment.node.n, mctx)
            # Morsel boundaries are pipeline breakers: the merge phase
            # concatenates physical columns, so late morsels gather here
            # (charged to the morsel's last operator).
            frame = frame.dense(mctx.work)
            if mspan is not None:
                mctx.close_op_span()
                mspan.annotate(rows=frame.nrows)
                tracer.finish(mspan)
            return frame, mctx.profile

        if self.workers > 1:
            results = list(self._ensure_pool().map(run_morsel, ranges))
        else:
            results = [run_morsel(bounds) for bounds in ranges]

        frames = [frame for frame, _ in results]
        merged = merge_profiles([profile for _, profile in results])
        if pre_skip is not None and merged.operators:
            # Morsels dropped before scheduling charge their skip
            # accounting onto the coalesced scan operator.
            scan_op = merged.operators[0]
            scan_op.skipped_bytes += pre_skip["skipped_bytes"]
            scan_op.zone_probes += pre_skip["zone_probes"]
            scan_op.blocks_skipped += pre_skip["blocks_skipped"]
        ctx.profile.absorb(merged)
        # Merge-phase work is charged onto the segment's last (coalesced)
        # operator so the profile keeps the serial operator count.
        ctx.work = ctx.profile.operators[-1] if ctx.profile.operators else None

        if tracing:
            # One operator span per coalesced profile operator: zero-length
            # markers referencing the very OperatorWork objects absorbed
            # into the final profile, so the end-of-query snapshot also
            # captures post-merge charges (merge-phase work, pre-skip
            # accounting, the result-boundary gather). These — not the
            # per-morsel fragment spans — are what reconciles 1:1 against
            # the WorkProfile.
            for op_work in merged.operators:
                mark = tracer.start(
                    "operator", op_work.operator, parent=seg_span, work=op_work
                )
                mark.attrs["coalesced"] = True
                tracer.finish(mark, end_s=mark.start_s)

        if segment.kind == "aggregate":
            out = merge_partial_aggregates(
                frames, list(segment.node.group_by), dict(segment.node.aggs), ctx
            )
        elif segment.kind == "topk":
            out = merge_topk(
                frames, list(segment.node.child.keys), segment.node.n, ctx
            )
        else:
            out = concat_frames(frames)
        if seg_span is not None:
            tracer.finish(seg_span)
        return out
