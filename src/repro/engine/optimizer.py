"""A small optimizer: projection pruning.

Pruning scan columns to what the query actually reads keeps the work
profiles honest — a selective TPC-H query must not be charged for
streaming the 16-column lineitem table when it touches four columns.
"""

from __future__ import annotations

from .plan import (
    AggregateNode,
    DistinctNode,
    FilterNode,
    JoinNode,
    LimitNode,
    PlanNode,
    ProjectNode,
    ScanNode,
    SortNode,
    UnionAllNode,
)
from .table import Database

__all__ = ["output_columns", "prune_columns"]


def output_columns(node: PlanNode, db: Database) -> list[str]:
    """The column names a node produces."""
    if isinstance(node, ScanNode):
        if node.columns is not None:
            return list(node.columns)
        return db.table(node.table).column_names
    if isinstance(node, (FilterNode, SortNode, LimitNode)):
        return output_columns(node.child, db)
    if isinstance(node, DistinctNode):
        return output_columns(node.child, db)
    if isinstance(node, ProjectNode):
        return [name for name, _ in node.exprs]
    if isinstance(node, AggregateNode):
        return list(node.group_by) + [name for name, _ in node.aggs]
    if isinstance(node, UnionAllNode):
        return output_columns(node.left, db)
    if isinstance(node, JoinNode):
        left = output_columns(node.left, db)
        if node.how in ("semi", "anti"):
            return left
        right = [
            c
            for c in output_columns(node.right, db)
            if not (c in left and c in node.right_on)
        ]
        return left + right
    raise TypeError(f"unknown plan node {type(node).__name__}")


def prune_columns(node: PlanNode, db: Database, required: set[str] | None = None) -> PlanNode:
    """Rewrite the plan so scans read only columns some ancestor needs.

    ``required=None`` means "everything the node produces is needed"
    (the root, or below operators that need all columns).
    """
    if isinstance(node, ScanNode):
        available = output_columns(node, db)
        if required is None:
            return node
        keep = [c for c in available if c in required]
        if not keep:  # degenerate (e.g. COUNT(*) over a bare scan)
            keep = available[:1]
        return ScanNode(node.table, tuple(keep))

    if isinstance(node, FilterNode):
        child_req = None if required is None else required | node.predicate.references()
        return FilterNode(prune_columns(node.child, db, child_req), node.predicate)

    if isinstance(node, ProjectNode):
        exprs = node.exprs if required is None else tuple(
            (name, e) for name, e in node.exprs if name in required
        )
        if not exprs:
            exprs = node.exprs[:1]
        child_req: set[str] = set()
        for _, expr in exprs:
            child_req |= expr.references()
        return ProjectNode(prune_columns(node.child, db, child_req), exprs)

    if isinstance(node, JoinNode):
        left_cols = set(output_columns(node.left, db))
        right_cols = set(output_columns(node.right, db))
        if required is None:
            left_req, right_req = None, None
        else:
            left_req = (required & left_cols) | set(node.left_on)
            right_req = (required & right_cols) | set(node.right_on)
        if node.how in ("semi", "anti"):
            right_req = set(node.right_on) if right_req is not None or True else None
        return JoinNode(
            prune_columns(node.left, db, left_req),
            prune_columns(node.right, db, right_req),
            node.left_on,
            node.right_on,
            node.how,
        )

    if isinstance(node, AggregateNode):
        child_req = set(node.group_by)
        for _, spec in node.aggs:
            if spec.expr is not None:
                child_req |= spec.expr.references()
        # COUNT(*)-only aggregates leave child_req empty; the scan rule
        # falls back to reading a single column.
        return AggregateNode(
            prune_columns(node.child, db, child_req), node.group_by, node.aggs
        )

    if isinstance(node, SortNode):
        child_req = None if required is None else required | {k for k, _ in node.keys}
        return SortNode(prune_columns(node.child, db, child_req), node.keys)

    if isinstance(node, LimitNode):
        return LimitNode(prune_columns(node.child, db, required), node.n)

    if isinstance(node, UnionAllNode):
        # Children must stay positionally aligned: prune both with the
        # same requirement set.
        return UnionAllNode(
            prune_columns(node.left, db, required),
            prune_columns(node.right, db, required),
        )

    if isinstance(node, DistinctNode):
        # DISTINCT ON a subset still *outputs* all child columns (first
        # row per group), so the child's requirement only narrows when an
        # ancestor narrowed ours.
        if required is None:
            child_req = None
        else:
            child_req = required | set(node.columns or ())
        return DistinctNode(prune_columns(node.child, db, child_req), node.columns)

    raise TypeError(f"unknown plan node {type(node).__name__}")
