"""The optimizer: predicate pushdown and projection pruning.

Two rewrites keep the work profiles honest and open the door to data
skipping:

* **Predicate pushdown** — conjunctive filters sink below projections
  (through pass-through aliases) and joins (to whichever side holds
  their columns); sargable conjuncts (``col <op> literal``, ``BETWEEN``,
  ``IN``) attach to the :class:`~repro.engine.plan.ScanNode` itself as
  *scan predicates*, where zone maps can prove whole blocks empty and
  skip streaming them (the paper's §III-C2 point: the cheapest byte is
  the one never read).
* **Projection pruning** — scans read only the columns some ancestor
  needs; a selective TPC-H query must not be charged for streaming the
  16-column lineitem table when it touches four columns.

:class:`OptimizerSettings` gates each rewrite — the ``--no-skipping``
CLI ablation maps to ``OptimizerSettings.disabled()``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from .expr import ColRef, Expr, rewrite_colrefs
from .plan import (
    AggregateNode,
    DistinctNode,
    FilterNode,
    JoinNode,
    LimitNode,
    PlanNode,
    ProjectNode,
    ScanNode,
    SortNode,
    UnionAllNode,
)
from .table import Database
from .zonemap import conjoin, split_conjuncts

__all__ = [
    "DEFAULT_SETTINGS",
    "OptimizerSettings",
    "optimize_plan",
    "output_columns",
    "prune_columns",
    "pushdown_predicates",
]


@dataclass(frozen=True)
class OptimizerSettings:
    """Optimizer feature gates.

    Attributes:
        predicate_pushdown: sink filters toward scans and attach sargable
            conjuncts as scan predicates.
        zone_map_skipping: let scans consult zone maps to skip blocks a
            scan predicate provably excludes (pushdown without skipping
            still filters at the scan, it just streams every block).
        late_materialization: have scans and filters emit selection
            vectors over the base columns instead of rewriting compact
            column copies; gathers are deferred to pipeline breakers
            (joins, aggregates, sorts, DISTINCT, UNION ALL, the final
            result). Orthogonal to pushdown/skipping: the ``--no-latemat``
            ablation flips only this flag.
        compressed_execution: evaluate predicates directly on encoded
            (bitpack/FoR/RLE) columns and aggregate over RLE runs
            (:mod:`repro.engine.encoded`) instead of decoding first;
            unsupported shapes fall back per operator. The
            ``--no-compressed-exec`` ablation flips only this flag.
        rollups: route aggregate plans to materialized rollup cubes when
            the database carries a rollup catalog (``db.rollups``, built
            by :mod:`repro.rollup`) and subsumption is proven; also
            enables the semantic result cache in the parallel executor.
            A no-op for databases without a catalog. The ``--no-rollups``
            ablation flips only this flag.
        spilling: allow hash joins and grouped aggregations whose state
            exceeds the executor's memory budget to run out-of-core via
            Grace partitioning (:mod:`repro.engine.spill`). With spilling
            off, an over-budget operator raises
            :class:`~repro.engine.spill.MemoryBudgetExceeded` instead —
            the modeled in-memory-only wimpy node. A no-op without a
            memory budget. The ``--no-spill`` ablation flips only this
            flag.
    """

    predicate_pushdown: bool = True
    zone_map_skipping: bool = True
    late_materialization: bool = True
    compressed_execution: bool = True
    rollups: bool = True
    spilling: bool = True

    @classmethod
    def disabled(cls) -> "OptimizerSettings":
        """The ``--no-skipping`` ablation: no pushdown, no skipping.
        Late materialization and compressed execution are left at their
        defaults — each is a separate ablation axis."""
        return cls(predicate_pushdown=False, zone_map_skipping=False)

    def without_latemat(self) -> "OptimizerSettings":
        """These settings with late materialization turned off (every
        filter rewrites compact column copies, as the seed engine did)."""
        return replace(self, late_materialization=False)

    def without_compressed(self) -> "OptimizerSettings":
        """These settings with compressed execution turned off (every
        operator decodes to flat arrays first, as before)."""
        return replace(self, compressed_execution=False)

    def without_rollups(self) -> "OptimizerSettings":
        """These settings with rollup routing and the semantic result
        cache turned off (every aggregate runs against base tables)."""
        return replace(self, rollups=False)

    def without_spilling(self) -> "OptimizerSettings":
        """These settings with out-of-core execution turned off (an
        over-budget operator raises instead of spilling)."""
        return replace(self, spilling=False)

    def cache_key(self) -> str:
        """Stable tag mixed into plan fingerprints so results computed
        under different optimizer settings never alias in the cache."""
        return (
            f"pd={int(self.predicate_pushdown)},"
            f"zm={int(self.zone_map_skipping)},"
            f"lm={int(self.late_materialization)},"
            f"ce={int(self.compressed_execution)},"
            f"ru={int(self.rollups)},"
            f"sp={int(self.spilling)}"
        )


DEFAULT_SETTINGS = OptimizerSettings()


def optimize_plan(
    node: PlanNode, db: Database, settings: OptimizerSettings = DEFAULT_SETTINGS
) -> PlanNode:
    """The full rewrite stack: predicate pushdown, then projection
    pruning (in that order — pushdown moves predicates below projects,
    pruning then sees the final column demand at every scan), then rollup
    routing (the router matches the *optimized* shape, so mined templates
    and live queries canonicalize identically)."""
    if settings.predicate_pushdown:
        node = pushdown_predicates(node, db)
    node = prune_columns(node, db, required=None)
    if settings.rollups and getattr(db, "rollups", None) is not None:
        from repro.rollup.router import route_plan

        node = route_plan(node, db, db.rollups)
    return node


def pushdown_predicates(node: PlanNode, db: Database) -> PlanNode:
    """Sink conjunctive filter predicates as close to the scans as
    legality allows; conjuncts that reach a scan attach to it as the
    scan predicate (evaluated while streaming, with zone-map skipping
    for the sargable subset)."""
    return _push(node, [], db)


def _wrap_residual(node: PlanNode, conjuncts: list[Expr]) -> PlanNode:
    """Re-materialize conjuncts that could not sink past ``node``."""
    predicate = conjoin(conjuncts)
    return node if predicate is None else FilterNode(node, predicate)


def _push(node: PlanNode, conjuncts: list[Expr], db: Database) -> PlanNode:
    """Rewrite ``node`` with ``conjuncts`` (filters collected from above)
    applied at the lowest legal position."""
    if isinstance(node, FilterNode):
        # Absorb the filter into the in-flight conjunct set and continue.
        return _push(node.child, conjuncts + split_conjuncts(node.predicate), db)

    if isinstance(node, ScanNode):
        available = set(db.table(node.table).column_names)
        local = [c for c in conjuncts if c.references() <= available]
        rest = [c for c in conjuncts if not (c.references() <= available)]
        predicate = node.predicate
        if local:
            existing = [predicate] if predicate is not None else []
            predicate = conjoin(existing + local)
        return _wrap_residual(
            ScanNode(node.table, node.columns, predicate), rest
        )

    if isinstance(node, ProjectNode):
        # A conjunct passes through when every column it reads is a bare
        # pass-through alias (``name -> col(child_name)``); it is rewritten
        # into child-column terms. Computed outputs block the descent.
        passthrough = {
            name: expr.name for name, expr in node.exprs if isinstance(expr, ColRef)
        }
        down: list[Expr] = []
        keep: list[Expr] = []
        for conjunct in conjuncts:
            refs = conjunct.references()
            if refs <= passthrough.keys():
                down.append(
                    rewrite_colrefs(conjunct, {r: passthrough[r] for r in refs})
                )
            else:
                keep.append(conjunct)
        child = _push(node.child, down, db)
        return _wrap_residual(ProjectNode(child, node.exprs), keep)

    if isinstance(node, JoinNode):
        # Single-side conjuncts route to their side. The probe (left) side
        # accepts them for any join type we evaluate left-driven; the
        # build (right) side only for inner joins — filtering the right
        # input of a left/semi/anti join changes which left rows match.
        left_cols = set(output_columns(node.left, db))
        right_cols = set(output_columns(node.right, db))
        to_left: list[Expr] = []
        to_right: list[Expr] = []
        keep = []
        for conjunct in conjuncts:
            refs = conjunct.references()
            if refs <= left_cols and node.how in ("inner", "left", "semi", "anti"):
                to_left.append(conjunct)
            elif refs <= right_cols and node.how == "inner":
                to_right.append(conjunct)
            else:
                keep.append(conjunct)
        return _wrap_residual(
            JoinNode(
                _push(node.left, to_left, db),
                _push(node.right, to_right, db),
                node.left_on,
                node.right_on,
                node.how,
            ),
            keep,
        )

    if isinstance(node, UnionAllNode):
        # Filter distributes over concatenation; both sides produce the
        # same column set.
        return UnionAllNode(
            _push(node.left, list(conjuncts), db),
            _push(node.right, list(conjuncts), db),
        )

    if isinstance(node, SortNode):
        # Filtering commutes with ordering.
        return SortNode(_push(node.child, conjuncts, db), node.keys)

    if isinstance(node, DistinctNode):
        # Row-level predicates commute with duplicate elimination only
        # when DISTINCT keeps whole rows; with a column subset the kept
        # representative row could change, so stay above.
        child = _push(node.child, [] if node.columns else conjuncts, db)
        residual = conjuncts if node.columns else []
        return _wrap_residual(DistinctNode(child, node.columns), residual)

    if isinstance(node, (AggregateNode, LimitNode)):
        # Barriers: a filter above an aggregate is a HAVING, a filter
        # above a limit sees the truncated rows. Restart the descent in
        # the subtree so nested filters still sink.
        if isinstance(node, AggregateNode):
            rebuilt: PlanNode = AggregateNode(
                _push(node.child, [], db), node.group_by, node.aggs
            )
        else:
            rebuilt = LimitNode(_push(node.child, [], db), node.n)
        return _wrap_residual(rebuilt, conjuncts)

    raise TypeError(f"unknown plan node {type(node).__name__}")


def output_columns(node: PlanNode, db: Database) -> list[str]:
    """The column names a node produces."""
    if isinstance(node, ScanNode):
        if node.columns is not None:
            return list(node.columns)
        return db.table(node.table).column_names
    if isinstance(node, (FilterNode, SortNode, LimitNode)):
        return output_columns(node.child, db)
    if isinstance(node, DistinctNode):
        return output_columns(node.child, db)
    if isinstance(node, ProjectNode):
        return [name for name, _ in node.exprs]
    if isinstance(node, AggregateNode):
        return list(node.group_by) + [name for name, _ in node.aggs]
    if isinstance(node, UnionAllNode):
        return output_columns(node.left, db)
    if isinstance(node, JoinNode):
        left = output_columns(node.left, db)
        if node.how in ("semi", "anti"):
            return left
        right = [
            c
            for c in output_columns(node.right, db)
            if not (c in left and c in node.right_on)
        ]
        return left + right
    raise TypeError(f"unknown plan node {type(node).__name__}")


def prune_columns(node: PlanNode, db: Database, required: set[str] | None = None) -> PlanNode:
    """Rewrite the plan so scans read only columns some ancestor needs.

    ``required=None`` means "everything the node produces is needed"
    (the root, or below operators that need all columns).
    """
    if isinstance(node, ScanNode):
        available = output_columns(node, db)
        if required is None:
            return node
        keep = [c for c in available if c in required]
        if not keep:  # degenerate (e.g. COUNT(*) over a bare scan)
            keep = available[:1]
        # A pushed-down predicate survives pruning; its columns are
        # streamed for evaluation even when not emitted.
        return ScanNode(node.table, tuple(keep), node.predicate)

    if isinstance(node, FilterNode):
        child_req = None if required is None else required | node.predicate.references()
        return FilterNode(prune_columns(node.child, db, child_req), node.predicate)

    if isinstance(node, ProjectNode):
        exprs = node.exprs if required is None else tuple(
            (name, e) for name, e in node.exprs if name in required
        )
        if not exprs:
            exprs = node.exprs[:1]
        child_req: set[str] = set()
        for _, expr in exprs:
            child_req |= expr.references()
        return ProjectNode(prune_columns(node.child, db, child_req), exprs)

    if isinstance(node, JoinNode):
        left_cols = set(output_columns(node.left, db))
        right_cols = set(output_columns(node.right, db))
        if required is None:
            left_req, right_req = None, None
        else:
            left_req = (required & left_cols) | set(node.left_on)
            right_req = (required & right_cols) | set(node.right_on)
        if node.how in ("semi", "anti"):
            right_req = set(node.right_on) if right_req is not None or True else None
        return JoinNode(
            prune_columns(node.left, db, left_req),
            prune_columns(node.right, db, right_req),
            node.left_on,
            node.right_on,
            node.how,
        )

    if isinstance(node, AggregateNode):
        child_req = set(node.group_by)
        for _, spec in node.aggs:
            if spec.expr is not None:
                child_req |= spec.expr.references()
        # COUNT(*)-only aggregates leave child_req empty; the scan rule
        # falls back to reading a single column.
        return AggregateNode(
            prune_columns(node.child, db, child_req), node.group_by, node.aggs
        )

    if isinstance(node, SortNode):
        child_req = None if required is None else required | {k for k, _ in node.keys}
        return SortNode(prune_columns(node.child, db, child_req), node.keys)

    if isinstance(node, LimitNode):
        return LimitNode(prune_columns(node.child, db, required), node.n)

    if isinstance(node, UnionAllNode):
        # Children must stay positionally aligned: prune both with the
        # same requirement set.
        return UnionAllNode(
            prune_columns(node.left, db, required),
            prune_columns(node.right, db, required),
        )

    if isinstance(node, DistinctNode):
        # DISTINCT ON a subset still *outputs* all child columns (first
        # row per group), so the child's requirement only narrows when an
        # ancestor narrowed ours.
        if required is None:
            child_req = None
        else:
            child_req = required | set(node.columns or ())
        return DistinctNode(prune_columns(node.child, db, child_req), node.columns)

    raise TypeError(f"unknown plan node {type(node).__name__}")
