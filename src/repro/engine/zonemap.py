"""Zone maps: per-block min/max/null-count statistics for data skipping.

The paper's §III-C2 argument is that a wimpy node's scarce resource is
memory bandwidth, so the highest-leverage optimization is *not reading*
data at all. A zone map records, for every fixed-size block of a column,
the minimum, maximum, and null count. A sargable scan predicate
(``col <op> literal``, ``BETWEEN``, ``IN``) can then be tested against
the block statistics: a block whose value range provably fails the
predicate is skipped without streaming (or decoding) a single byte of
it, at the cost of one cheap zone-map probe per block.

Blocks are aligned to a fixed global grid (``ZONE_MAP_BLOCK_ROWS`` rows,
matching the frame-of-reference encoding's block so compressed zone maps
fall out of the encoding metadata). Morsels need not align with blocks:
statistics of a partially-overlapped block are a conservative superset
of the sub-range, so skip/take proofs stay sound for any row range.

Three-way block classification:

* ``BLOCK_SKIP`` — no row can satisfy the predicate: never streamed.
* ``BLOCK_TAKE`` — every row provably satisfies it: streamed, but the
  per-row predicate evaluation is elided.
* ``BLOCK_EVAL`` — undecidable from the statistics: streamed and
  evaluated row-at-a-time (vectorized over merged adjacent runs).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .expr import ColRef, Cmp, Expr, BoolOp, InList, Literal
from .types import DATE, STRING, date_to_days

__all__ = [
    "BLOCK_EVAL",
    "BLOCK_SKIP",
    "BLOCK_TAKE",
    "SargableConjunct",
    "ZONE_MAP_BLOCK_ROWS",
    "ZoneMap",
    "classify_blocks",
    "extract_sargable",
    "split_conjuncts",
    "conjoin",
]

# One zone-map block: matches FrameOfReferenceEncoding.block so FoR
# zone maps come straight from the per-block references.
ZONE_MAP_BLOCK_ROWS = 4096

BLOCK_SKIP = np.int8(0)
BLOCK_TAKE = np.int8(1)
BLOCK_EVAL = np.int8(2)

# Flipped comparison operators for ``literal <op> col`` normalization.
_FLIP = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "==": "==", "!=": "!="}


@dataclass(frozen=True)
class ZoneMap:
    """Per-block statistics of one column.

    ``mins``/``maxs`` hold physical values (days for DATE columns,
    decoded Python strings for STRING columns); ``null_counts`` counts
    invalid rows per block. Statistics cover non-null rows only — an
    all-null block keeps placeholder min/max and is identified by its
    null count.
    """

    block_rows: int
    mins: np.ndarray
    maxs: np.ndarray
    null_counts: np.ndarray
    nrows: int

    @property
    def nblocks(self) -> int:
        return len(self.mins)

    def covering_blocks(self, start: int, stop: int) -> tuple[int, int]:
        """Indices ``[b0, b1)`` of the blocks overlapping ``[start, stop)``."""
        b0 = start // self.block_rows
        b1 = -(-stop // self.block_rows)
        return b0, min(b1, self.nblocks)


def build_zone_map(column, block_rows: int = ZONE_MAP_BLOCK_ROWS) -> "ZoneMap | None":
    """Zone map for a plain or compressed column (``None`` when the
    column's statistics cannot support pruning, e.g. nullable strings)."""
    stats = column.zone_stats(block_rows)
    if stats is None:
        return None
    mins, maxs, null_counts = stats
    return ZoneMap(
        block_rows=block_rows,
        mins=mins,
        maxs=maxs,
        null_counts=null_counts,
        nrows=len(column),
    )


# ----------------------------------------------------------------------
# Sargable-conjunct analysis
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class SargableConjunct:
    """A normalized index-friendly conjunct: ``column <op> value(s)``.

    ``op`` is one of ``< <= > >= == != in``; ``values`` is a tuple of
    Python scalars (one element except for ``in``).
    """

    column: str
    op: str
    values: tuple

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.op == "in":
            return f"{self.column} IN {list(self.values)!r}"
        return f"{self.column} {self.op} {self.values[0]!r}"


def _python_scalar(value):
    """Normalize numpy scalars to plain Python numbers (zone-map probes
    and fingerprints must not depend on the numpy version's repr)."""
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    return value


def extract_sargable(conjunct: Expr) -> SargableConjunct | None:
    """Normalize ``conjunct`` to a :class:`SargableConjunct`, or ``None``
    when it is not a plain column-vs-literal comparison or IN list."""
    if isinstance(conjunct, Cmp):
        left, right, op = conjunct.left, conjunct.right, conjunct.op
        if isinstance(left, Literal) and isinstance(right, ColRef):
            left, right, op = right, left, _FLIP[op]
        if isinstance(left, ColRef) and isinstance(right, Literal):
            value = _python_scalar(right.value)
            if isinstance(value, (bool, int, float, str)):
                return SargableConjunct(left.name, op, (value,))
        return None
    if isinstance(conjunct, InList) and isinstance(conjunct.operand, ColRef):
        values = tuple(_python_scalar(v) for v in conjunct.values)
        if values and all(isinstance(v, (bool, int, float, str)) for v in values):
            return SargableConjunct(conjunct.operand.name, "in", values)
    return None


def split_conjuncts(expr: Expr) -> list[Expr]:
    """Flatten a tree of AND combinators into its conjuncts."""
    if isinstance(expr, BoolOp) and expr.op == "and":
        return split_conjuncts(expr.left) + split_conjuncts(expr.right)
    return [expr]


def conjoin(conjuncts: list[Expr]) -> Expr | None:
    """AND-combine conjuncts back into one expression."""
    if not conjuncts:
        return None
    out = conjuncts[0]
    for term in conjuncts[1:]:
        out = BoolOp("and", out, term)
    return out


# ----------------------------------------------------------------------
# Block classification
# ----------------------------------------------------------------------

def _coerce_for_column(value, dtype):
    """Map a literal into the column's physical value domain."""
    if dtype is DATE and isinstance(value, str):
        return date_to_days(value)
    return value


def _as_bool(mask) -> np.ndarray:
    """Object-array comparisons (strings) yield object results; normalize."""
    return np.asarray(mask, dtype=np.bool_)


def _prove(op: str, values: tuple, mins, maxs) -> tuple[np.ndarray, np.ndarray]:
    """(provably-false, provably-true) block masks for one conjunct,
    considering non-null rows only."""
    if op == "in":
        false = np.ones(len(mins), dtype=np.bool_)
        true = np.zeros(len(mins), dtype=np.bool_)
        for v in values:
            false &= _as_bool(mins > v) | _as_bool(maxs < v)
            true |= _as_bool(mins == v) & _as_bool(maxs == v)
        return false, true
    v = values[0]
    if op == "<":
        return _as_bool(mins >= v), _as_bool(maxs < v)
    if op == "<=":
        return _as_bool(mins > v), _as_bool(maxs <= v)
    if op == ">":
        return _as_bool(maxs <= v), _as_bool(mins > v)
    if op == ">=":
        return _as_bool(maxs < v), _as_bool(mins >= v)
    if op == "==":
        return (
            _as_bool(mins > v) | _as_bool(maxs < v),
            _as_bool(mins == v) & _as_bool(maxs == v),
        )
    if op == "!=":
        return (
            _as_bool(mins == v) & _as_bool(maxs == v),
            _as_bool(mins > v) | _as_bool(maxs < v),
        )
    raise ValueError(f"unknown sargable operator {op!r}")


def classify_blocks(
    table, conjuncts: list[SargableConjunct], start: int, stop: int,
    block_rows: int = ZONE_MAP_BLOCK_ROWS,
) -> tuple[np.ndarray, int]:
    """Classify the blocks overlapping ``[start, stop)`` against the
    conjunct set.

    Returns ``(codes, probes)``: one ``BLOCK_SKIP``/``BLOCK_TAKE``/
    ``BLOCK_EVAL`` code per covered block (first code belongs to the
    block containing ``start``), and the number of zone-map probes spent
    (one per block per conjunct with an available zone map).
    """
    b0 = start // block_rows
    b1 = -(-stop // block_rows)
    nblocks = b1 - b0
    skip = np.zeros(nblocks, dtype=np.bool_)
    take = np.ones(nblocks, dtype=np.bool_)
    probes = 0
    decided = False
    for conjunct in conjuncts:
        zone_map = table.zone_map(conjunct.column, block_rows)
        if zone_map is None:
            take[:] = False
            continue
        mins = zone_map.mins[b0:b1]
        maxs = zone_map.maxs[b0:b1]
        nulls = zone_map.null_counts[b0:b1]
        dtype = table.column(conjunct.column).dtype
        values = tuple(_coerce_for_column(v, dtype) for v in conjunct.values)
        if dtype is STRING and not all(isinstance(v, str) for v in values):
            take[:] = False
            continue
        try:
            false_blocks, true_blocks = _prove(conjunct.op, values, mins, maxs)
        except TypeError:
            # Incomparable literal/column combination (e.g. str vs int):
            # statistics cannot decide, fall back to row evaluation.
            take[:] = False
            continue
        probes += nblocks
        decided = True
        # NULL rows always compare false: they never un-skip a block
        # (statistics cover non-null rows), but they do break take-proofs.
        all_null = nulls >= np.minimum(zone_map.block_rows, zone_map.nrows - np.arange(b0, b1) * zone_map.block_rows)
        skip |= false_blocks | all_null
        take &= true_blocks & (nulls == 0)
    if not decided:
        take[:] = False
    codes = np.full(nblocks, BLOCK_EVAL, dtype=np.int8)
    codes[take] = BLOCK_TAKE
    codes[skip] = BLOCK_SKIP  # skip wins over take (cannot co-occur anyway)
    return codes, probes
