"""Full-materialization (MonetDB-style) plan executor with profiling."""

from __future__ import annotations

import threading
import time

from repro.obs.trace import NULL_TRACER, OperatorSpanScope

from .frame import Frame
from .optimizer import DEFAULT_SETTINGS, OptimizerSettings, optimize_plan
from .plan import (
    AggregateNode,
    DistinctNode,
    FilterNode,
    JoinNode,
    LimitNode,
    PlanNode,
    ProjectNode,
    Q,
    ScanNode,
    SortNode,
    UnionAllNode,
)
from .profile import OperatorWork, WorkProfile
from .result import Result
from .table import Database
from .operators.aggregate import try_encoded_aggregate
from .operators.distinct import execute_distinct
from .operators.filter import execute_filter
from .operators.limit import execute_limit
from .operators.project import execute_project
from .operators.scan import execute_scan
from .operators.sort import execute_sort, execute_topk
from .operators.unionall import execute_union_all
from .spill import MemoryBudget, maybe_spill_aggregate, maybe_spill_join

__all__ = ["ExecContext", "Executor", "execute"]


def _annotate_rollups(qspan, node: PlanNode, settings: OptimizerSettings) -> None:
    """Tag a query span with the rollup tables its (optimized) plan
    scans, so routing decisions are visible in traces."""
    if not settings.rollups:
        return
    from repro.rollup.router import routed_tables

    routed = routed_tables(node)
    if routed:
        qspan.annotate(rollup=",".join(routed))


class ExecContext:
    """Per-query execution state: the accumulating profile, the operator
    currently charging work, and the scalar-subquery cache."""

    def __init__(
        self,
        db: Database,
        executor: "Executor",
        tracer=None,
        parent_span=None,
        cancel=None,
    ):
        self.db = db
        self._executor = executor
        self.cancel = cancel
        # Budget-aware operator dispatch (spill.py) reads these; morsel
        # contexts inherit both so workers share one budget.
        self.budget = getattr(executor, "memory_budget", None)
        self.spilling = executor.settings.spilling
        self.profile = WorkProfile()
        self.work: OperatorWork | None = None
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.pipeline_span = parent_span
        # Span bookkeeping exists only when tracing: the disabled hot
        # path pays a single ``is not None`` check per operator.
        self._ops = (
            OperatorSpanScope(self.tracer, parent_span)
            if self.tracer.enabled
            else None
        )
        self._scalar_cache: dict[int, object] = {}
        # Reentrant: a scalar subquery's plan may itself reference another
        # scalar subquery. Morsel workers share this context, so cache
        # fills must be serialized.
        self._scalar_lock = threading.RLock()

    def begin_operator(self, name: str) -> OperatorWork:
        """Open a new operator: append its work record to the profile
        and (when tracing) start its span, closing the previous one."""
        work = self.profile.new_operator(name)
        self.work = work
        if self._ops is not None:
            self._ops.begin(name, work)
        return work

    @property
    def op_span(self):
        """The currently open operator span (None when not tracing)."""
        return self._ops.open_span if self._ops is not None else None

    def close_op_span(self) -> None:
        if self._ops is not None:
            self._ops.close()

    def scalar(self, plan) -> object:
        """Evaluate an uncorrelated scalar subquery once, merging its work
        into this query's profile."""
        key = id(plan)
        with self._scalar_lock:
            if key not in self._scalar_cache:
                saved = self.work
                node = plan.node if isinstance(plan, Q) else plan
                frame = self._executor._exec(node, self)
                self.work = saved
                if frame.nrows != 1 or len(frame.columns) != 1:
                    raise ValueError("scalar subquery must produce a 1x1 result")
                name = next(iter(frame.columns))
                self._scalar_cache[key] = frame.column(name).to_list()[0]
            return self._scalar_cache[key]


class Executor:
    """Executes logical plans against a database catalog."""

    def __init__(
        self,
        db: Database,
        settings: OptimizerSettings | None = None,
        tracer=None,
        memory_budget: "MemoryBudget | int | None" = None,
    ):
        self.db = db
        self.settings = settings if settings is not None else DEFAULT_SETTINGS
        self.tracer = tracer if tracer is not None else NULL_TRACER
        if memory_budget is not None and not isinstance(memory_budget, MemoryBudget):
            memory_budget = MemoryBudget(limit_bytes=int(memory_budget))
        self.memory_budget = memory_budget

    def execute(
        self,
        plan: "Q | PlanNode",
        optimize: bool = True,
        label: str | None = None,
        parent_span=None,
        cancel=None,
    ) -> Result:
        """Run a plan and return its :class:`Result` (rows + profile).

        With a tracer attached, the execution contributes one "query"
        root span (or a child of ``parent_span`` — the cluster drivers
        nest per-node executions under their shard spans), labeled
        ``label`` when given. ``cancel`` is an optional
        :class:`~repro.engine.cancel.CancelToken` checked at every
        operator dispatch.
        """
        node = plan.node if isinstance(plan, Q) else plan
        if node is None:
            raise ValueError("cannot execute an empty plan")
        if cancel is not None:
            cancel.check()
        if optimize:
            node = optimize_plan(node, self.db, self.settings)

        tracer = self.tracer
        qspan = pspan = None
        if tracer.enabled:
            qspan = tracer.start("query", label or "query", parent=parent_span)
            _annotate_rollups(qspan, node, self.settings)
            pspan = tracer.start("pipeline", "main", parent=qspan)
        ctx = ExecContext(self.db, self, tracer=tracer, parent_span=pspan, cancel=cancel)
        start = time.perf_counter()
        try:
            frame = self._exec(node, ctx)
            if frame.is_late:
                # The result boundary is the last pipeline breaker: gather
                # the surviving rows and charge it to the final operator.
                frame = frame.dense(
                    ctx.profile.operators[-1] if ctx.profile.operators else None
                )
        except BaseException:
            if qspan is not None:
                qspan.annotate(error=True)
                ctx.close_op_span()
                tracer.finish(pspan)
                tracer.finish(qspan)
                tracer.finalize(qspan)
            raise
        elapsed = time.perf_counter() - start
        if qspan is not None:
            ctx.close_op_span()
            tracer.finish(pspan)
            qspan.annotate(
                rows=frame.nrows, operators=len(ctx.profile.operators)
            )
            tracer.finish(qspan)
            tracer.finalize(qspan)
        return Result(frame, ctx.profile, wall_seconds=elapsed)

    # ------------------------------------------------------------------

    def _exec(self, node: PlanNode, ctx: ExecContext) -> Frame:
        if ctx.cancel is not None:
            ctx.cancel.check()
        if isinstance(node, ScanNode):
            ctx.begin_operator("scan")
            cols = list(node.columns) if node.columns is not None else None
            return execute_scan(
                self.db.table(node.table),
                cols,
                ctx,
                predicate=node.predicate,
                skipping=self.settings.zone_map_skipping,
                late=self.settings.late_materialization,
                compressed=self.settings.compressed_execution,
            )
        if isinstance(node, FilterNode):
            child = self._exec(node.child, ctx)
            ctx.begin_operator("filter")
            return execute_filter(
                child, node.predicate, ctx,
                late=self.settings.late_materialization,
            )
        if isinstance(node, ProjectNode):
            child = self._exec(node.child, ctx)
            ctx.begin_operator("project")
            return execute_project(child, dict(node.exprs), ctx)
        if isinstance(node, JoinNode):
            left = self._exec(node.left, ctx)
            right = self._exec(node.right, ctx)
            ctx.begin_operator("hashjoin")
            return maybe_spill_join(
                left, right, list(node.left_on), list(node.right_on), node.how, ctx
            )
        if isinstance(node, AggregateNode):
            if (
                self.settings.compressed_execution
                and isinstance(node.child, ScanNode)
                and node.child.predicate is None
            ):
                frame = try_encoded_aggregate(node, self.db, ctx)
                if frame is not None:
                    return frame
            child = self._exec(node.child, ctx)
            ctx.begin_operator("aggregate")
            return maybe_spill_aggregate(
                child, list(node.group_by), dict(node.aggs), ctx
            )
        if isinstance(node, SortNode):
            child = self._exec(node.child, ctx)
            ctx.begin_operator("sort")
            return execute_sort(child, list(node.keys), ctx)
        if isinstance(node, LimitNode):
            if isinstance(node.child, SortNode):
                # Physical top-k: fuse ORDER BY + LIMIT (partition select
                # instead of a full sort).
                child = self._exec(node.child.child, ctx)
                ctx.begin_operator("topk")
                return execute_topk(child, list(node.child.keys), node.n, ctx)
            child = self._exec(node.child, ctx)
            ctx.begin_operator("limit")
            return execute_limit(child, node.n, ctx)
        if isinstance(node, UnionAllNode):
            left = self._exec(node.left, ctx)
            right = self._exec(node.right, ctx)
            ctx.begin_operator("unionall")
            return execute_union_all(left, right, ctx)
        if isinstance(node, DistinctNode):
            child = self._exec(node.child, ctx)
            ctx.begin_operator("distinct")
            return execute_distinct(
                child, list(node.columns) if node.columns else None, ctx
            )
        raise TypeError(f"unknown plan node {type(node).__name__}")


def execute(
    db: Database,
    plan: "Q | PlanNode",
    optimize: bool = True,
    settings: OptimizerSettings | None = None,
    tracer=None,
    label: str | None = None,
    cancel=None,
    memory_budget: "MemoryBudget | int | None" = None,
) -> Result:
    """Convenience wrapper: ``Executor(db).execute(plan)``."""
    return Executor(db, settings, tracer=tracer, memory_budget=memory_budget).execute(
        plan, optimize=optimize, label=label, cancel=cancel
    )
