"""Tables, schemas, and the database catalog."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .column import Column
from .types import DataType

__all__ = ["Schema", "Table", "Database"]


@dataclass(frozen=True)
class Schema:
    """An ordered mapping of column name to :class:`DataType`."""

    fields: tuple[tuple[str, DataType], ...]

    @classmethod
    def of(cls, *fields: tuple[str, DataType]) -> "Schema":
        return cls(tuple(fields))

    @property
    def names(self) -> list[str]:
        return [name for name, _ in self.fields]

    def dtype_of(self, name: str) -> DataType:
        for field_name, dtype in self.fields:
            if field_name == name:
                return dtype
        raise KeyError(f"no column {name!r} in schema")

    def __contains__(self, name: str) -> bool:
        return any(field_name == name for field_name, _ in self.fields)

    def __len__(self) -> int:
        return len(self.fields)


class Table:
    """An immutable in-memory columnar table."""

    def __init__(self, name: str, columns: dict[str, Column]):
        if not columns:
            raise ValueError("a table needs at least one column")
        lengths = {len(col) for col in columns.values()}
        if len(lengths) != 1:
            raise ValueError(f"column length mismatch in table {name!r}: {lengths}")
        self.name = name
        self.columns = columns
        self.nrows = lengths.pop()

    @property
    def column_names(self) -> list[str]:
        return list(self.columns)

    def column(self, name: str) -> Column:
        try:
            return self.columns[name]
        except KeyError:
            raise KeyError(f"table {self.name!r} has no column {name!r}") from None

    def zone_map(self, name: str, block_rows: int | None = None):
        """The (lazily built, cached) zone map of a column — per-block
        min/max/null-count statistics the scan path uses for data
        skipping. ``None`` when the column cannot support pruning (e.g.
        nullable strings). Tables are immutable, so a built map is valid
        for the table's lifetime."""
        from .zonemap import ZONE_MAP_BLOCK_ROWS, build_zone_map

        block_rows = block_rows or ZONE_MAP_BLOCK_ROWS
        cache = getattr(self, "_zone_maps", None)
        if cache is None:
            cache = {}
            self._zone_maps = cache
        key = (name, block_rows)
        if key not in cache:
            cache[key] = build_zone_map(self.column(name), block_rows)
        return cache[key]

    def build_zone_maps(self, block_rows: int | None = None) -> None:
        """Eagerly build zone maps for every column (load-time hook, so
        first-query latency excludes the one-off statistics pass)."""
        for name in self.columns:
            self.zone_map(name, block_rows)

    @property
    def nbytes(self) -> int:
        """Bytes of all value arrays plus string dictionaries (the
        engine's in-memory footprint for this table)."""
        return sum(col.nbytes + col.dict_nbytes for col in self.columns.values())

    def head(self, n: int = 5) -> list[tuple]:
        cols = [col.to_list()[:n] for col in self.columns.values()]
        return list(zip(*cols))

    def select_rows(self, mask_or_indices: np.ndarray) -> "Table":
        """Return a new table with the given rows (boolean mask or index
        array). Used by the cluster partitioner."""
        arr = np.asarray(mask_or_indices)
        if arr.dtype == np.bool_:
            cols = {name: col.filter(arr) for name, col in self.columns.items()}
        else:
            cols = {name: col.take(arr) for name, col in self.columns.items()}
        return Table(self.name, cols)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Table({self.name!r}, rows={self.nrows}, cols={len(self.columns)})"


class Database:
    """A named collection of tables — the engine's catalog."""

    def __init__(self, name: str = "db"):
        self.name = name
        self._tables: dict[str, Table] = {}
        # Materialized rollup catalog (repro.rollup.RollupCatalog), set by
        # enable_rollups(). Rollup tables resolve through table()/"in" but
        # stay out of table_names/nbytes: they are derived state, not part
        # of the base catalog the partitioner/goldens iterate.
        self.rollups = None

    def add(self, table: Table) -> None:
        self._tables[table.name] = table

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            if self.rollups is not None:
                rollup = self.rollups.table(name)
                if rollup is not None:
                    return rollup
            raise KeyError(f"database {self.name!r} has no table {name!r}") from None

    def __contains__(self, name: str) -> bool:
        if name in self._tables:
            return True
        return self.rollups is not None and self.rollups.table(name) is not None

    @property
    def table_names(self) -> list[str]:
        return list(self._tables)

    @property
    def nbytes(self) -> int:
        return sum(t.nbytes for t in self._tables.values())

    def build_zone_maps(self, block_rows: int | None = None) -> None:
        """Eagerly build zone maps for every table (load-time hook)."""
        for table in self._tables.values():
            table.build_zone_maps(block_rows)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Database({self.name!r}, tables={self.table_names})"
