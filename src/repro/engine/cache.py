"""Plan-fingerprint result cache with single-flight execution.

Benchmark sweeps (the Fig. 3 / Table II drivers) execute the same 22
plans over and over while varying only the modeled platform; caching the
engine execution by :func:`~repro.engine.fingerprint.plan_fingerprint`
makes the sweep cost one execution per distinct plan. The cache is
*single-flight*: when several threads request the same fingerprint
concurrently, exactly one runs the plan and the rest block on its result.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable

from repro.obs.metrics import HitMissStats

from .cancel import QueryInterrupted

__all__ = ["ResultCache"]

# How often a blocked waiter wakes to check its own cancel token while
# the owner is still computing. Only paid when an identical plan is
# in flight *and* the waiter carries a token.
_WAITER_POLL_S = 0.02


class _Entry:
    __slots__ = ("event", "value", "error")

    def __init__(self):
        self.event = threading.Event()
        self.value = None
        self.error: BaseException | None = None


class ResultCache:
    """LRU cache keyed by plan fingerprint.

    ``get_or_run(key, run)`` returns ``(value, was_cached)``; ``run`` is
    invoked at most once per live key across all threads (single-flight).

    Failure semantics (the serving layer's correctness contract):

    * A failed or cancelled execution never *retains* a cache entry —
      the key is removed before the waiters wake, so the next request
      for the same plan recomputes from scratch.
    * Waiters piggybacked on an owner that failed with a real error see
      that error (the plan is equally broken for them).
    * Waiters piggybacked on an owner that was merely *interrupted*
      (:class:`~repro.engine.cancel.QueryInterrupted`: client cancel or
      deadline) do NOT inherit the owner's interruption — it was
      personal to the owner's request. They loop and re-contend; one of
      them becomes the new owner and recomputes.
    * A waiter with its own ``cancel`` token checks it while blocked, so
      a waiter's deadline fires even mid-wait on someone else's run.
    """

    def __init__(self, capacity: int = 64, stats_name: str = "engine.result_cache"):
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, _Entry]" = OrderedDict()
        self._stats = HitMissStats(stats_name)

    @property
    def hits(self) -> int:
        return self._stats.hits

    @property
    def misses(self) -> int:
        return self._stats.misses

    def stats(self) -> dict:
        """Deterministic (key-sorted) cache statistics."""
        with self._lock:
            return {
                "capacity": self.capacity,
                "entries": len(self._entries),
                "hits": self._stats.hits,
                "misses": self._stats.misses,
            }

    def get_or_run(
        self, key: str, run: Callable[[], object], cancel=None
    ) -> tuple[object, bool]:
        while True:
            with self._lock:
                entry = self._entries.get(key)
                owner = entry is None
                if owner:
                    entry = _Entry()
                    self._entries[key] = entry
                    self._stats.miss()
                    self._evict_locked()
                else:
                    self._entries.move_to_end(key)
                    self._stats.hit()

            if owner:
                try:
                    entry.value = run()
                except BaseException as exc:
                    # Evict *before* waking waiters: by the time any
                    # waiter observes the error, a fresh attempt already
                    # sees an empty slot and recomputes.
                    entry.error = exc
                    with self._lock:
                        if self._entries.get(key) is entry:
                            del self._entries[key]
                    entry.event.set()
                    raise
                entry.event.set()
                return entry.value, False

            if cancel is None:
                entry.event.wait()
            else:
                while not entry.event.wait(_WAITER_POLL_S):
                    cancel.check()
            error = entry.error
            if error is None:
                return entry.value, True
            if isinstance(error, QueryInterrupted):
                # The owner's cancellation/deadline is not ours; the
                # entry is already evicted, so re-contend for the slot.
                continue
            raise error

    def _evict_locked(self) -> None:
        while len(self._entries) > self.capacity:
            for old_key, old in self._entries.items():
                # Never evict in-flight entries (their owners still need
                # the slot to publish into); capacity >= 1 guarantees the
                # newest in-flight entry itself always fits.
                if old.event.is_set():
                    del self._entries[old_key]
                    break
            else:
                return

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
