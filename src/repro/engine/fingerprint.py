"""Structural plan fingerprints.

A fingerprint is a stable hash of a logical plan's *structure* — node
types, expressions, literals, aggregate specs — independent of object
identity. Two plans built separately for the same query hash equal, so
the :class:`~repro.engine.cache.ResultCache` can recognize the repeated
queries of a benchmark sweep (Fig. 3 / Table II style) and skip
re-execution.
"""

from __future__ import annotations

import hashlib
import json

import numpy as np

from .expr import Expr
from .operators.aggregate import AggSpec
from .plan import PlanNode, Q

__all__ = ["plan_fingerprint"]


def _canonical(obj) -> object:
    """Reduce a plan/expression tree to JSON-serializable structure."""
    if isinstance(obj, Q):
        return _canonical(obj.node)
    # Numpy scalars must hash identically to the Python values they equal:
    # lit(np.int64(5)) and lit(5) are the same query, and a repr() like
    # "np.int64(5)" would also vary across numpy versions.
    if isinstance(obj, np.bool_):
        return bool(obj)
    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, np.floating):
        return float(obj)
    if isinstance(obj, np.ndarray):
        return [_canonical(v) for v in obj.tolist()]
    if isinstance(obj, PlanNode):
        fields = [
            [name, _canonical(value)]
            for name, value in sorted(vars(obj).items())
        ]
        return [type(obj).__name__, fields]
    if isinstance(obj, AggSpec):
        return ["AggSpec", obj.func, _canonical(obj.expr)]
    if isinstance(obj, Expr):
        fields = [
            [name, _canonical(value)]
            for name, value in sorted(vars(obj).items())
            if not name.startswith("_")  # skip caches like Like._regex
        ]
        return [type(obj).__name__, fields]
    if isinstance(obj, (tuple, list)):
        return [_canonical(v) for v in obj]
    if isinstance(obj, dict):
        return [[_canonical(k), _canonical(v)] for k, v in obj.items()]
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    return repr(obj)


def plan_fingerprint(plan: "Q | PlanNode", settings=None) -> str:
    """Hex digest uniquely identifying the plan's structure.

    ``settings`` (an :class:`~repro.engine.optimizer.OptimizerSettings`)
    is mixed into the digest so results computed under different
    optimizer configurations never alias in the result cache — an
    ablation run with skipping disabled must not be served a cached
    skipping result, and vice versa.
    """
    body = _canonical(plan)
    if settings is not None:
        body = [body, ["settings", settings.cache_key()]]
    payload = json.dumps(body, separators=(",", ":"), sort_keys=False)
    return hashlib.sha256(payload.encode()).hexdigest()
