"""Structural plan fingerprints.

A fingerprint is a stable hash of a logical plan's *structure* — node
types, expressions, literals, aggregate specs — independent of object
identity. Two plans built separately for the same query hash equal, so
the :class:`~repro.engine.cache.ResultCache` can recognize the repeated
queries of a benchmark sweep (Fig. 3 / Table II style) and skip
re-execution.
"""

from __future__ import annotations

import hashlib
import json

from .expr import Expr
from .operators.aggregate import AggSpec
from .plan import PlanNode, Q

__all__ = ["plan_fingerprint"]


def _canonical(obj) -> object:
    """Reduce a plan/expression tree to JSON-serializable structure."""
    if isinstance(obj, Q):
        return _canonical(obj.node)
    if isinstance(obj, PlanNode):
        fields = [
            [name, _canonical(value)]
            for name, value in sorted(vars(obj).items())
        ]
        return [type(obj).__name__, fields]
    if isinstance(obj, AggSpec):
        return ["AggSpec", obj.func, _canonical(obj.expr)]
    if isinstance(obj, Expr):
        fields = [
            [name, _canonical(value)]
            for name, value in sorted(vars(obj).items())
            if not name.startswith("_")  # skip caches like Like._regex
        ]
        return [type(obj).__name__, fields]
    if isinstance(obj, (tuple, list)):
        return [_canonical(v) for v in obj]
    if isinstance(obj, dict):
        return [[_canonical(k), _canonical(v)] for k, v in obj.items()]
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    return repr(obj)


def plan_fingerprint(plan: "Q | PlanNode") -> str:
    """Hex digest uniquely identifying the plan's structure."""
    payload = json.dumps(_canonical(plan), separators=(",", ":"), sort_keys=False)
    return hashlib.sha256(payload.encode()).hexdigest()
