"""Intermediate result frames flowing between operators.

The engine executes MonetDB-style: each operator produces a
:class:`Frame` (a bag of equal-length columns) before the next operator
runs. Two physical representations exist behind one logical interface:

* **Dense** frames (``selection is None``) — every column array holds
  exactly the frame's logical rows, as the classic full-materialization
  executor produced them.
* **Late** frames (``selection`` set) — the columns are *base* arrays
  (typically zero-copy views of the scanned table) and ``selection`` is
  an int32 row-id array naming the logical rows, in order. Filters
  compose selections instead of rewriting every surviving column, and
  the gather is deferred to a pipeline breaker (join, aggregate, sort,
  DISTINCT, UNION ALL, or the final result) — the paper's
  memory-bandwidth argument applied to the engine's own intermediates.

The logical API (:meth:`column`, :meth:`filter`, :meth:`take`,
:meth:`slice`, :attr:`nrows`, :attr:`nbytes`) always behaves as if the
frame were dense; operators that can exploit the physical split use
:attr:`selection` / :meth:`dense` explicitly. Gathers through a
contiguous selection degrade to zero-copy slices.
"""

from __future__ import annotations

import numpy as np

from .column import Column
from .table import Table

__all__ = ["Frame"]

SELECTION_DTYPE = np.int32

# Adaptive break point for late execution: when a non-contiguous
# selection keeps more than this fraction of the scanned rows, the
# deferred point-gathers would touch nearly every cache line anyway, so
# an eager compact rewrite (pure streaming) is cheaper. Filters and
# predicated scans materialize instead of emitting a selection vector
# above this density; contiguous selections always stay late (they are
# zero-copy slices).
LATE_BREAK_SELECTIVITY = 0.75


class Frame:
    """A logical intermediate result: named columns of equal length,
    optionally represented late through a selection vector."""

    __slots__ = (
        "columns",
        "nrows",
        "selection",
        "_gathered",
        "_contiguous",
        "_gather_debt",
    )

    def __init__(
        self,
        columns: dict[str, Column],
        nrows: int | None = None,
        selection: np.ndarray | None = None,
    ):
        if selection is not None:
            selection = np.asarray(selection, dtype=SELECTION_DTYPE)
            base_lengths = {len(col) for col in columns.values()}
            if len(base_lengths) > 1:
                raise ValueError(
                    f"late frame base columns disagree on length: {base_lengths}"
                )
            nrows = len(selection)
        else:
            if nrows is None:
                if not columns:
                    raise ValueError("empty frame needs an explicit row count")
                nrows = len(next(iter(columns.values())))
            for name, col in columns.items():
                if len(col) != nrows:
                    raise ValueError(
                        f"column {name!r} has {len(col)} rows, expected {nrows}"
                    )
        self.columns = columns
        self.nrows = nrows
        self.selection = selection
        self._gathered: dict[str, Column] | None = None
        self._contiguous: bool | None = None
        self._gather_debt: float = 0.0

    @classmethod
    def from_table(cls, table: Table, column_names: list[str] | None = None) -> "Frame":
        names = column_names if column_names is not None else table.column_names
        return cls({name: table.column(name) for name in names}, table.nrows)

    # ------------------------------------------------------------------
    # Physical representation
    # ------------------------------------------------------------------

    @property
    def is_late(self) -> bool:
        return self.selection is not None

    @property
    def base_rows(self) -> int:
        """Physical rows of the backing column arrays."""
        if not self.columns:
            return self.nrows
        return len(next(iter(self.columns.values())))

    def _selection_is_contiguous(self) -> bool:
        """True when the selection is a contiguous ascending run, so every
        gather degrades to a zero-copy slice."""
        if self._contiguous is None:
            sel = self.selection
            n = len(sel)
            if n == 0:
                self._contiguous = True
            elif sel[0] < 0 or int(sel[-1]) - int(sel[0]) + 1 != n:
                self._contiguous = False
            else:
                self._contiguous = bool((np.diff(sel) == 1).all()) if n > 1 else True
        return self._contiguous

    def _gather(self, name: str) -> Column:
        """Materialize one column through the selection (memoized)."""
        if self._gathered is None:
            self._gathered = {}
        col = self._gathered.get(name)
        if col is None:
            base = self.columns[name]
            if self._selection_is_contiguous():
                if self.nrows == 0:
                    col = base.slice(0, 0)
                else:
                    lo = int(self.selection[0])
                    col = base.slice(lo, lo + self.nrows)
            else:
                col = base.take(self.selection)
                self._gather_debt += self.nrows * base.dtype.width
            self._gathered[name] = col
        return col

    def drain_gather_debt(self) -> float:
        """Bytes gathered through a non-contiguous selection since the
        last drain. Operators drain this into ``work.gather_bytes`` so
        every deferred materialization is charged exactly once."""
        debt = self._gather_debt
        self._gather_debt = 0.0
        return debt

    def dense(self, work=None) -> "Frame":
        """The dense equivalent of this frame: every column materialized
        through the selection. Dense frames return themselves.

        ``work`` (an :class:`~repro.engine.profile.OperatorWork`) is
        charged the gathered bytes as random access — the price late
        materialization pays at a pipeline breaker.
        """
        if self.selection is None:
            return self
        out = Frame({name: self._gather(name) for name in self.columns}, self.nrows)
        if work is not None:
            work.gather_bytes += self.drain_gather_debt()
        return out

    def row_ids(self, indices: np.ndarray) -> np.ndarray:
        """Map logical row indices to base row ids through the selection.
        Negative indices (outer-join NULL markers) pass through as -1."""
        indices = np.asarray(indices)
        if self.selection is None:
            return indices
        if len(indices) and indices.min() < 0:
            if len(self.selection) == 0:
                # Every index must be a NULL marker (outer join against
                # an empty side).
                return np.full(len(indices), -1, dtype=np.int64)
            safe = np.where(indices < 0, 0, indices)
            return np.where(indices < 0, -1, self.selection[safe])
        return self.selection[indices]

    # ------------------------------------------------------------------
    # Logical interface
    # ------------------------------------------------------------------

    def column(self, name: str) -> Column:
        """The logical values of one column (gathered when late)."""
        try:
            base = self.columns[name]
        except KeyError:
            raise KeyError(
                f"frame has no column {name!r}; available: {list(self.columns)}"
            ) from None
        if self.selection is None:
            return base
        return self._gather(name)

    def __contains__(self, name: str) -> bool:
        return name in self.columns

    @property
    def nbytes(self) -> int:
        """Logical bytes of the frame's values (what a dense
        materialization would occupy)."""
        if self.selection is None:
            return sum(col.nbytes for col in self.columns.values())
        return self.nrows * sum(col.dtype.width for col in self.columns.values())

    def filter(self, mask: np.ndarray) -> "Frame":
        """Keep rows where ``mask`` is true. Late frames compose the
        selection (zero copy); dense frames rewrite compactly."""
        if self.selection is not None:
            return Frame(self.columns, selection=self.selection[mask])
        return Frame({n: c.filter(mask) for n, c in self.columns.items()}, int(mask.sum()))

    def filter_late(self, mask: np.ndarray) -> "Frame":
        """Like :meth:`filter`, but the result is always a late frame —
        a dense input becomes the base of a fresh selection instead of
        being rewritten."""
        if self.selection is not None:
            return Frame(self.columns, selection=self.selection[mask])
        return Frame(
            self.columns,
            selection=np.flatnonzero(mask).astype(SELECTION_DTYPE),
        )

    def take(self, indices: np.ndarray) -> "Frame":
        """Gather rows by logical index. Late frames compose index arrays
        instead of materializing."""
        if self.selection is not None:
            return Frame(self.columns, selection=self.row_ids(indices))
        return Frame({n: c.take(indices) for n, c in self.columns.items()}, len(indices))

    def slice(self, start: int, stop: int) -> "Frame":
        stop = min(stop, self.nrows)
        if self.selection is not None:
            return Frame(self.columns, selection=self.selection[start:stop])
        return Frame({n: c.slice(start, stop) for n, c in self.columns.items()}, stop - start)

    def renamed(self, mapping: dict[str, str]) -> "Frame":
        cols = {mapping.get(n, n): c for n, c in self.columns.items()}
        return Frame(cols, self.nrows, selection=self.selection)

    def with_columns(self, extra: dict[str, Column]) -> "Frame":
        if self.selection is not None:
            # Extra columns are logical-length; anchor them on a dense frame.
            return self.dense().with_columns(extra)
        cols = dict(self.columns)
        cols.update(extra)
        return Frame(cols, self.nrows)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        tag = f", late[{self.nrows}/{self.base_rows}]" if self.is_late else ""
        return f"Frame(rows={self.nrows}, cols={list(self.columns)}{tag})"
