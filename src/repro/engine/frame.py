"""Intermediate result frames flowing between operators.

The engine executes MonetDB-style: each operator fully materializes its
output as a :class:`Frame` (a bag of equal-length columns) before the next
operator runs.
"""

from __future__ import annotations

import numpy as np

from .column import Column
from .table import Table

__all__ = ["Frame"]


class Frame:
    """A materialized intermediate result: named columns of equal length."""

    __slots__ = ("columns", "nrows")

    def __init__(self, columns: dict[str, Column], nrows: int | None = None):
        if nrows is None:
            if not columns:
                raise ValueError("empty frame needs an explicit row count")
            nrows = len(next(iter(columns.values())))
        for name, col in columns.items():
            if len(col) != nrows:
                raise ValueError(f"column {name!r} has {len(col)} rows, expected {nrows}")
        self.columns = columns
        self.nrows = nrows

    @classmethod
    def from_table(cls, table: Table, column_names: list[str] | None = None) -> "Frame":
        names = column_names if column_names is not None else table.column_names
        return cls({name: table.column(name) for name in names}, table.nrows)

    def column(self, name: str) -> Column:
        try:
            return self.columns[name]
        except KeyError:
            raise KeyError(f"frame has no column {name!r}; available: {list(self.columns)}") from None

    def __contains__(self, name: str) -> bool:
        return name in self.columns

    @property
    def nbytes(self) -> int:
        return sum(col.nbytes for col in self.columns.values())

    def filter(self, mask: np.ndarray) -> "Frame":
        return Frame({n: c.filter(mask) for n, c in self.columns.items()}, int(mask.sum()))

    def take(self, indices: np.ndarray) -> "Frame":
        return Frame({n: c.take(indices) for n, c in self.columns.items()}, len(indices))

    def slice(self, start: int, stop: int) -> "Frame":
        stop = min(stop, self.nrows)
        return Frame({n: c.slice(start, stop) for n, c in self.columns.items()}, stop - start)

    def renamed(self, mapping: dict[str, str]) -> "Frame":
        cols = {mapping.get(n, n): c for n, c in self.columns.items()}
        return Frame(cols, self.nrows)

    def with_columns(self, extra: dict[str, Column]) -> "Frame":
        cols = dict(self.columns)
        cols.update(extra)
        return Frame(cols, self.nrows)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Frame(rows={self.nrows}, cols={list(self.columns)})"
