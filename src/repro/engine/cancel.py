"""Cooperative cancellation and deadlines for query execution.

A :class:`CancelToken` is the one object a client, a server front door,
and a deep morsel pipeline all agree on. The client (or an expired
deadline) flips it; the executors *check* it at natural preemption
points — operator dispatch in the serial executor, morsel boundaries in
the parallel executor — so a cancelled query stops consuming worker
threads within one morsel of work and its slot frees immediately.
Checking is cooperative by design: a morsel in flight finishes (numpy
kernels are not interruptible), but no *new* morsel of a cancelled
query ever starts.

Cancellation surfaces as one of two exception types under a common
base: :class:`QueryCancelled` (an explicit client cancel) or
:class:`DeadlineExceeded` (the token's deadline passed). Both derive
from :class:`QueryInterrupted`, which the single-flight result cache
treats specially — an interrupted execution must never populate the
cache, and waiters piggybacking on an interrupted owner recompute
instead of inheriting an error that was personal to the owner.
"""

from __future__ import annotations

import threading
import time

__all__ = [
    "CancelToken",
    "DeadlineExceeded",
    "QueryCancelled",
    "QueryInterrupted",
]


class QueryInterrupted(RuntimeError):
    """Base for interruptions that are *about the caller*, not the query:
    the plan is fine, this particular execution was told to stop."""


class QueryCancelled(QueryInterrupted):
    """The client (or the server on its behalf) cancelled the query."""


class DeadlineExceeded(QueryInterrupted):
    """The query's deadline passed before execution finished."""


class CancelToken:
    """Thread-safe cooperative cancellation flag with an optional deadline.

    Args:
        deadline_s: absolute ``time.monotonic()`` instant after which
            :meth:`check` raises :class:`DeadlineExceeded`. ``None``
            means no deadline.

    The fast path (:meth:`check` on a live token) is one event check
    plus, when a deadline exists, one clock read — cheap enough for a
    per-operator / per-morsel call site.
    """

    __slots__ = ("_event", "_reason", "deadline_s")

    def __init__(self, deadline_s: float | None = None):
        self._event = threading.Event()
        self._reason: str | None = None
        self.deadline_s = deadline_s

    @classmethod
    def from_timeout(cls, timeout_s: float | None) -> "CancelToken":
        """A token whose deadline is ``timeout_s`` seconds from now
        (``None`` -> no deadline)."""
        if timeout_s is None:
            return cls()
        if timeout_s < 0:
            raise ValueError("timeout_s must be non-negative")
        return cls(deadline_s=time.monotonic() + timeout_s)

    def cancel(self, reason: str = "cancelled") -> None:
        """Flip the token. Idempotent; the first reason wins."""
        if not self._event.is_set():
            self._reason = reason
            self._event.set()

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` has been called (deadline not counted)."""
        return self._event.is_set()

    @property
    def reason(self) -> str | None:
        return self._reason

    def remaining_s(self) -> float | None:
        """Seconds until the deadline (``None`` without one; can go
        negative once expired)."""
        if self.deadline_s is None:
            return None
        return self.deadline_s - time.monotonic()

    @property
    def expired(self) -> bool:
        return self.deadline_s is not None and time.monotonic() >= self.deadline_s

    def check(self) -> None:
        """Raise if this execution should stop; otherwise a cheap no-op."""
        if self._event.is_set():
            raise QueryCancelled(self._reason or "cancelled")
        if self.deadline_s is not None and time.monotonic() >= self.deadline_s:
            raise DeadlineExceeded(
                f"query deadline exceeded "
                f"({-self.remaining_s():.3f}s past deadline)"
            )
