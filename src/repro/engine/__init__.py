"""In-memory columnar OLAP engine (the study's MonetDB stand-in).

Public surface::

    from repro.engine import Database, Table, Column, Q, col, lit, agg, execute

Queries really execute and return correct rows; every operator also
records a hardware-independent :class:`~repro.engine.profile.WorkProfile`
that :mod:`repro.hardware` converts into per-platform runtimes.
"""

from .cache import ResultCache
from .cancel import CancelToken, DeadlineExceeded, QueryCancelled, QueryInterrupted
from .column import Column
from .compression import CompressedColumn, compress_column, compress_table, compression_ratio
from .executor import ExecContext, Executor, execute
from .expr import Expr, case, col, lit, scalar
from .fingerprint import plan_fingerprint
from .frame import Frame
from .optimizer import DEFAULT_SETTINGS, OptimizerSettings, optimize_plan
from .parallel import ParallelExecutor
from .zonemap import ZONE_MAP_BLOCK_ROWS, ZoneMap, build_zone_map
from .plan import Q, agg
from .profile import OperatorWork, WorkProfile
from .result import Result
from .spill import (
    MemoryBudget,
    MemoryBudgetExceeded,
    SpillCorrupt,
    SpillDiskFull,
    SpillError,
    SpillFaultPlan,
)
from .sql import SqlSyntaxError, sql
from .table import Database, Schema, Table
from .types import BOOL, DATE, FLOAT64, INT64, STRING, DataType, date_to_days, days_to_date

__all__ = [
    "CancelToken", "DeadlineExceeded", "QueryCancelled", "QueryInterrupted",
    "Column", "Database", "DataType", "ExecContext", "Executor", "Expr",
    "Frame", "OperatorWork", "ParallelExecutor", "Q", "Result", "ResultCache",
    "Schema", "Table", "WorkProfile",
    "agg", "case", "col", "date_to_days", "days_to_date", "execute", "lit",
    "plan_fingerprint", "scalar", "BOOL", "DATE", "FLOAT64", "INT64", "STRING",
    "CompressedColumn", "compress_column", "compress_table", "compression_ratio",
    "MemoryBudget", "MemoryBudgetExceeded", "SpillCorrupt", "SpillDiskFull",
    "SpillError", "SpillFaultPlan",
    "SqlSyntaxError", "sql",
    "DEFAULT_SETTINGS", "OptimizerSettings", "optimize_plan",
    "ZONE_MAP_BLOCK_ROWS", "ZoneMap", "build_zone_map",
]
