"""CSV import/export for tables and whole databases.

Useful for inspecting generated TPC-H data, feeding external tools, and
loading custom datasets into the engine. The on-disk format is plain
CSV with a one-line schema header (``name:type,...``) so loads need no
separate schema argument.
"""

from __future__ import annotations

import csv
from pathlib import Path

import numpy as np

from .column import Column
from .table import Database, Table
from .types import BOOL, DATE, FLOAT64, INT64, STRING, DataType, date_to_days

__all__ = ["write_csv", "read_csv", "save_database", "load_database"]

_TYPES_BY_NAME: dict[str, DataType] = {
    t.name: t for t in (INT64, FLOAT64, DATE, STRING, BOOL)
}


def write_csv(table: Table, path: "str | Path") -> Path:
    """Write ``table`` to CSV with a typed header line."""
    path = Path(path)
    columns = {name: table.column(name) for name in table.column_names}
    for name, col in columns.items():
        if not isinstance(col, Column):
            raise TypeError(f"column {name!r} is compressed; decompress before export")
    header = [f"{name}:{col.dtype.name}" for name, col in columns.items()]
    decoded = [col.to_list() for col in columns.values()]
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(header)
        for row in zip(*decoded):
            writer.writerow(["" if v is None else v for v in row])
    return path


def _parse_column(dtype: DataType, raw: list[str]) -> Column:
    if dtype is INT64:
        return Column(INT64, np.asarray([int(v) for v in raw], dtype=np.int64))
    if dtype is FLOAT64:
        return Column(FLOAT64, np.asarray([float(v) for v in raw], dtype=np.float64))
    if dtype is DATE:
        return Column(DATE, np.asarray([date_to_days(v) for v in raw], dtype=np.int32))
    if dtype is BOOL:
        return Column(BOOL, np.asarray([v == "True" for v in raw], dtype=np.bool_))
    return Column.from_strings(raw)


def read_csv(path: "str | Path", table_name: str | None = None) -> Table:
    """Load a CSV written by :func:`write_csv` (typed header required)."""
    path = Path(path)
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader)
        rows = list(reader)
    names, dtypes = [], []
    for field in header:
        name, _, type_name = field.partition(":")
        if type_name not in _TYPES_BY_NAME:
            raise ValueError(f"header field {field!r} lacks a valid type suffix")
        names.append(name)
        dtypes.append(_TYPES_BY_NAME[type_name])
    column_data = list(zip(*rows)) if rows else [[] for _ in names]
    columns = {
        name: _parse_column(dtype, list(raw))
        for name, dtype, raw in zip(names, dtypes, column_data)
    }
    return Table(table_name or path.stem, columns)


def save_database(db: Database, directory: "str | Path") -> Path:
    """Write every table of ``db`` into ``directory`` as <table>.csv."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    for name in db.table_names:
        write_csv(db.table(name), directory / f"{name}.csv")
    return directory


def load_database(directory: "str | Path", name: str = "db") -> Database:
    """Load every ``*.csv`` in ``directory`` into a new database."""
    directory = Path(directory)
    db = Database(name)
    for path in sorted(directory.glob("*.csv")):
        db.add(read_csv(path))
    if not db.table_names:
        raise FileNotFoundError(f"no CSV tables found in {directory}")
    return db
