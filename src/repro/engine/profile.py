"""Hardware-independent work accounting.

Every operator records the work it performed in a :class:`WorkProfile`.
Profiles are deliberately hardware-free: they count bytes streamed
sequentially through memory, random (cache-unfriendly) accesses, scalar
arithmetic/comparison operations, and tuples processed. The
:mod:`repro.hardware` performance model later converts a profile into a
predicted runtime for a concrete platform, which is how this reproduction
substitutes for running on real Raspberry Pi / Xeon silicon.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import ClassVar

__all__ = ["OperatorWork", "WorkProfile"]


@dataclass
class OperatorWork:
    """Work performed by a single operator instance.

    Attributes:
        operator: operator class name, e.g. ``"hashjoin"``.
        seq_bytes: bytes streamed sequentially (scans, materializations).
        rand_accesses: random accesses (hash probes, gathers, dict lookups
            outside the streaming pattern).
        ops: scalar arithmetic / comparison / hash operations.
        tuples_in: input tuples consumed.
        tuples_out: output tuples produced.
        out_bytes: bytes materialized as output.
        skipped_bytes: bytes a zone-map-pruned scan proved it never had
            to stream (they cost zone-map probes instead of bandwidth).
        zone_probes: zone-map block probes performed.
        blocks_skipped: zone-map blocks proven empty and not streamed.
        blocks_scanned: zone-map blocks actually streamed.
        gather_bytes: bytes materialized through a non-contiguous
            selection vector at a pipeline breaker (priced as random
            access by the performance model).
        saved_bytes: bytes a late-materialized operator did NOT rewrite
            because it passed a selection vector downstream instead of a
            compact column copy.
        decoded_bytes: plain-domain bytes a compressed column actually
            materialized (whole-column or per-run decode); the bandwidth
            compressed execution exists to avoid.
        encoded_eval_rows: rows whose predicate evaluation ran directly
            on the encoded payload (packed dtype / dictionary mask)
            instead of on decoded int64/float64 arrays.
        runs_touched: encoded segments visited by encoded-domain kernels
            (RLE runs, FoR blocks, one per bit-packed array).
        spilled_bytes: bytes written to spill partition files by an
            out-of-core (Grace) join or aggregation; the performance
            model prices each spilled byte as one storage write plus one
            storage read (every partition written is read back once).
        spill_partitions: spill partition files written.
        respill_depth: recursive re-partition events (a partition that
            still exceeded the budget and was split again).
    """

    operator: str
    seq_bytes: float = 0.0
    rand_accesses: float = 0.0
    ops: float = 0.0
    tuples_in: float = 0.0
    tuples_out: float = 0.0
    out_bytes: float = 0.0
    skipped_bytes: float = 0.0
    zone_probes: float = 0.0
    blocks_skipped: float = 0.0
    blocks_scanned: float = 0.0
    gather_bytes: float = 0.0
    saved_bytes: float = 0.0
    decoded_bytes: float = 0.0
    encoded_eval_rows: float = 0.0
    runs_touched: float = 0.0
    spilled_bytes: float = 0.0
    spill_partitions: float = 0.0
    respill_depth: float = 0.0

    def scaled(self, factor: float) -> "OperatorWork":
        return OperatorWork(
            operator=self.operator,
            seq_bytes=self.seq_bytes * factor,
            rand_accesses=self.rand_accesses * factor,
            ops=self.ops * factor,
            tuples_in=self.tuples_in * factor,
            tuples_out=self.tuples_out * factor,
            out_bytes=self.out_bytes * factor,
            skipped_bytes=self.skipped_bytes * factor,
            zone_probes=self.zone_probes * factor,
            blocks_skipped=self.blocks_skipped * factor,
            blocks_scanned=self.blocks_scanned * factor,
            gather_bytes=self.gather_bytes * factor,
            saved_bytes=self.saved_bytes * factor,
            decoded_bytes=self.decoded_bytes * factor,
            encoded_eval_rows=self.encoded_eval_rows * factor,
            runs_touched=self.runs_touched * factor,
            spilled_bytes=self.spilled_bytes * factor,
            spill_partitions=self.spill_partitions * factor,
            respill_depth=self.respill_depth * factor,
        )

    def add(self, other: "OperatorWork") -> None:
        """Accumulate another instance's counts (morsel-fragment merge)."""
        self.seq_bytes += other.seq_bytes
        self.rand_accesses += other.rand_accesses
        self.ops += other.ops
        self.tuples_in += other.tuples_in
        self.tuples_out += other.tuples_out
        self.out_bytes += other.out_bytes
        self.skipped_bytes += other.skipped_bytes
        self.zone_probes += other.zone_probes
        self.blocks_skipped += other.blocks_skipped
        self.blocks_scanned += other.blocks_scanned
        self.gather_bytes += other.gather_bytes
        self.saved_bytes += other.saved_bytes
        self.decoded_bytes += other.decoded_bytes
        self.encoded_eval_rows += other.encoded_eval_rows
        self.runs_touched += other.runs_touched
        self.spilled_bytes += other.spilled_bytes
        self.spill_partitions += other.spill_partitions
        self.respill_depth += other.respill_depth


@dataclass
class WorkProfile:
    """Aggregate work profile of a query (or query fragment).

    The per-operator breakdown is kept so the performance model can apply
    operator-class-specific parallel efficiencies and cache residency.
    """

    operators: list[OperatorWork] = field(default_factory=list)

    # Guards concurrent operator-list mutation when morsel workers and the
    # main thread touch the same profile. A single class-level lock keeps
    # instances picklable/JSON-able; critical sections are two appends.
    _mutate_lock: ClassVar[threading.Lock] = threading.Lock()

    def new_operator(self, name: str) -> OperatorWork:
        work = OperatorWork(name)
        with WorkProfile._mutate_lock:
            self.operators.append(work)
        return work

    def absorb(self, other: "WorkProfile") -> None:
        """Thread-safely append another profile's operators to this one."""
        with WorkProfile._mutate_lock:
            self.operators.extend(other.operators)

    # Aggregate views ---------------------------------------------------

    @property
    def seq_bytes(self) -> float:
        return sum(op.seq_bytes for op in self.operators)

    @property
    def rand_accesses(self) -> float:
        return sum(op.rand_accesses for op in self.operators)

    @property
    def ops(self) -> float:
        return sum(op.ops for op in self.operators)

    @property
    def tuples(self) -> float:
        return sum(op.tuples_in for op in self.operators)

    @property
    def out_bytes(self) -> float:
        return sum(op.out_bytes for op in self.operators)

    @property
    def skipped_bytes(self) -> float:
        return sum(op.skipped_bytes for op in self.operators)

    @property
    def zone_probes(self) -> float:
        return sum(op.zone_probes for op in self.operators)

    @property
    def blocks_skipped(self) -> float:
        return sum(op.blocks_skipped for op in self.operators)

    @property
    def blocks_scanned(self) -> float:
        return sum(op.blocks_scanned for op in self.operators)

    @property
    def gather_bytes(self) -> float:
        return sum(op.gather_bytes for op in self.operators)

    @property
    def saved_bytes(self) -> float:
        return sum(op.saved_bytes for op in self.operators)

    @property
    def decoded_bytes(self) -> float:
        return sum(op.decoded_bytes for op in self.operators)

    @property
    def encoded_eval_rows(self) -> float:
        return sum(op.encoded_eval_rows for op in self.operators)

    @property
    def runs_touched(self) -> float:
        return sum(op.runs_touched for op in self.operators)

    @property
    def spilled_bytes(self) -> float:
        return sum(op.spilled_bytes for op in self.operators)

    @property
    def spill_partitions(self) -> float:
        return sum(op.spill_partitions for op in self.operators)

    @property
    def respill_depth(self) -> float:
        return sum(op.respill_depth for op in self.operators)

    @property
    def result_bytes(self) -> float:
        """Bytes of the final operator's output (what a distributed driver
        would ship over the network)."""
        if not self.operators:
            return 0.0
        return self.operators[-1].out_bytes

    def scaled(self, factor: float) -> "WorkProfile":
        """Scale all work counts by ``factor``.

        Used to extrapolate a profile measured at a small scale factor to
        the paper's nominal SF 1 / SF 10 (all TPC-H query work is linear
        in SF to first order — see DESIGN.md §5).
        """
        return WorkProfile([op.scaled(factor) for op in self.operators])

    def merged(self, other: "WorkProfile") -> "WorkProfile":
        return WorkProfile(list(self.operators) + list(other.operators))

    @classmethod
    def merged_all(cls, profiles: "list[WorkProfile]") -> "WorkProfile":
        """Combine any number of profiles into one (an empty list yields
        an empty profile). Used by the resilient cluster runtime to
        account the wasted work of abandoned and duplicated attempts."""
        return cls([op for profile in profiles for op in profile.operators])

    def summary(self) -> dict:
        return {
            "seq_bytes": self.seq_bytes,
            "rand_accesses": self.rand_accesses,
            "ops": self.ops,
            "tuples": self.tuples,
            "out_bytes": self.out_bytes,
            "n_operators": len(self.operators),
        }
