"""Type system for the columnar engine.

The engine supports the five types TPC-H needs: 64-bit integers, 64-bit
floats, dates (stored as int32 days since the Unix epoch), booleans, and
strings (stored dictionary-encoded: int32 codes into a per-column
dictionary of unique values, which is MonetDB's in-memory layout for
low-cardinality text).
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass

import numpy as np

__all__ = [
    "DataType",
    "INT64",
    "FLOAT64",
    "DATE",
    "STRING",
    "BOOL",
    "date_to_days",
    "days_to_date",
]


@dataclass(frozen=True)
class DataType:
    """A column data type.

    Attributes:
        name: canonical lowercase type name.
        numpy_dtype: dtype of the physical value array. For STRING this is
            the dtype of the *code* array, not the dictionary.
        width: bytes per value as laid out in memory (used for memory
            traffic accounting in :class:`~repro.engine.profile.WorkProfile`).
    """

    name: str
    numpy_dtype: np.dtype
    width: int

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DataType({self.name})"


INT64 = DataType("int64", np.dtype(np.int64), 8)
FLOAT64 = DataType("float64", np.dtype(np.float64), 8)
DATE = DataType("date", np.dtype(np.int32), 4)
STRING = DataType("string", np.dtype(np.int32), 4)
BOOL = DataType("bool", np.dtype(np.bool_), 1)

_EPOCH = _dt.date(1970, 1, 1)


def date_to_days(value: str | _dt.date) -> int:
    """Convert an ISO date string (or :class:`datetime.date`) to epoch days.

    >>> date_to_days("1970-01-02")
    1
    """
    if isinstance(value, str):
        value = _dt.date.fromisoformat(value)
    return (value - _EPOCH).days


def days_to_date(days: int) -> _dt.date:
    """Inverse of :func:`date_to_days`."""
    return _EPOCH + _dt.timedelta(days=int(days))
