"""Logical query plans and the fluent builder.

Queries are composed with :class:`Q`::

    from repro.engine import Q, col, agg

    plan = (
        Q(db).scan("lineitem")
        .filter(col("l_shipdate") <= "1998-09-02")
        .aggregate(by=["l_returnflag", "l_linestatus"],
                   sum_qty=agg.sum(col("l_quantity")))
        .sort("l_returnflag", "l_linestatus")
    )
    result = db.execute(plan)
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .expr import ColRef, Expr, col
from .operators.aggregate import (
    AggSpec,
    avg,
    count,
    count_distinct,
    count_star,
    max_,
    min_,
    sum_,
)

__all__ = ["Q", "agg", "PlanNode", "ScanNode", "FilterNode", "ProjectNode",
           "JoinNode", "AggregateNode", "SortNode", "LimitNode", "DistinctNode",
           "UnionAllNode"]


class agg:
    """Aggregate constructors for :meth:`Q.aggregate`."""

    sum = staticmethod(sum_)
    avg = staticmethod(avg)
    count = staticmethod(count)
    count_star = staticmethod(count_star)
    count_distinct = staticmethod(count_distinct)
    min = staticmethod(min_)
    max = staticmethod(max_)


@dataclass(frozen=True)
class PlanNode:
    """Base logical plan node."""

    def children(self) -> list["PlanNode"]:
        return []


@dataclass(frozen=True)
class ScanNode(PlanNode):
    """Base-table scan, optionally with a pushed-down scan predicate.

    ``predicate`` holds the sargable conjuncts the optimizer attached:
    the scan applies them while streaming and consults zone maps to skip
    blocks they provably exclude (see :mod:`repro.engine.zonemap`).
    ``columns`` are the *output* columns; predicate-only columns are
    streamed for evaluation but not emitted.
    """

    table: str
    columns: tuple[str, ...] | None = None
    predicate: Expr | None = None


@dataclass(frozen=True)
class FilterNode(PlanNode):
    child: PlanNode
    predicate: Expr

    def children(self):
        return [self.child]


@dataclass(frozen=True)
class ProjectNode(PlanNode):
    child: PlanNode
    exprs: tuple[tuple[str, Expr], ...]

    def children(self):
        return [self.child]


@dataclass(frozen=True)
class JoinNode(PlanNode):
    left: PlanNode
    right: PlanNode
    left_on: tuple[str, ...]
    right_on: tuple[str, ...]
    how: str = "inner"

    def children(self):
        return [self.left, self.right]


@dataclass(frozen=True)
class AggregateNode(PlanNode):
    child: PlanNode
    group_by: tuple[str, ...]
    aggs: tuple[tuple[str, AggSpec], ...]

    def children(self):
        return [self.child]


@dataclass(frozen=True)
class SortNode(PlanNode):
    child: PlanNode
    keys: tuple[tuple[str, str], ...]

    def children(self):
        return [self.child]


@dataclass(frozen=True)
class LimitNode(PlanNode):
    child: PlanNode
    n: int

    def children(self):
        return [self.child]


@dataclass(frozen=True)
class DistinctNode(PlanNode):
    child: PlanNode
    columns: tuple[str, ...] | None = None

    def children(self):
        return [self.child]


@dataclass(frozen=True)
class UnionAllNode(PlanNode):
    left: PlanNode
    right: PlanNode

    def children(self):
        return [self.left, self.right]


class Q:
    """Immutable fluent plan builder bound to a database catalog."""

    def __init__(self, db, node: PlanNode | None = None):
        self.db = db
        self.node = node

    def _wrap(self, node: PlanNode) -> "Q":
        return Q(self.db, node)

    def _require_node(self) -> PlanNode:
        if self.node is None:
            raise ValueError("start the plan with .scan(table)")
        return self.node

    # ------------------------------------------------------------------

    def scan(self, table: str, columns: list[str] | None = None) -> "Q":
        """Start from a base table (optionally restricting columns)."""
        if table not in self.db:
            raise KeyError(f"unknown table {table!r}")
        cols = tuple(columns) if columns is not None else None
        return self._wrap(ScanNode(table, cols))

    def filter(self, predicate: Expr) -> "Q":
        """Keep rows satisfying ``predicate``."""
        return self._wrap(FilterNode(self._require_node(), predicate))

    def project(self, **exprs) -> "Q":
        """Compute named expressions; output has exactly these columns.
        String values are shorthand for column references."""
        resolved = tuple(
            (name, col(e) if isinstance(e, str) else e) for name, e in exprs.items()
        )
        return self._wrap(ProjectNode(self._require_node(), resolved))

    def select(self, *names: str) -> "Q":
        """Keep only the named pass-through columns."""
        return self._wrap(
            ProjectNode(self._require_node(), tuple((n, col(n)) for n in names))
        )

    def join(
        self,
        other: "Q | str",
        on: list[tuple[str, str]],
        how: str = "inner",
    ) -> "Q":
        """Join with another plan (or a table name) on key-name pairs
        ``[(left_col, right_col), ...]``."""
        if isinstance(other, str):
            other = Q(self.db).scan(other)
        left_on = tuple(pair[0] for pair in on)
        right_on = tuple(pair[1] for pair in on)
        return self._wrap(
            JoinNode(self._require_node(), other._require_node(), left_on, right_on, how)
        )

    def aggregate(self, by: list[str] | None = None, **aggs: AggSpec) -> "Q":
        """Group by ``by`` (default: global aggregate) and compute ``aggs``."""
        for name, spec in aggs.items():
            if not isinstance(spec, AggSpec):
                raise TypeError(f"aggregate {name!r} must be built with the agg namespace")
        return self._wrap(
            AggregateNode(self._require_node(), tuple(by or ()), tuple(aggs.items()))
        )

    def sort(self, *keys: "str | tuple[str, str]") -> "Q":
        """Order by the given keys; a bare name sorts ascending."""
        resolved = tuple((k, "asc") if isinstance(k, str) else (k[0], k[1]) for k in keys)
        for _, direction in resolved:
            if direction not in ("asc", "desc"):
                raise ValueError(f"sort direction must be asc/desc, got {direction!r}")
        return self._wrap(SortNode(self._require_node(), resolved))

    def limit(self, n: int) -> "Q":
        return self._wrap(LimitNode(self._require_node(), n))

    def distinct(self, *columns: str) -> "Q":
        return self._wrap(DistinctNode(self._require_node(), tuple(columns) or None))

    def union_all(self, other: "Q") -> "Q":
        """Concatenate with another plan producing the same columns."""
        return self._wrap(UnionAllNode(self._require_node(), other._require_node()))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Q({self.node!r})"
