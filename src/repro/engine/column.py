"""Columns: typed, immutable-by-convention numpy-backed vectors.

A :class:`Column` owns a value array and, for strings, a dictionary of
unique values (dictionary encoding). An optional validity mask supports
the NULLs introduced by outer joins (TPC-H base data itself is NULL-free).
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from .types import BOOL, DATE, FLOAT64, INT64, STRING, DataType, date_to_days, days_to_date

__all__ = ["Column"]


class Column:
    """A typed column of values.

    Attributes:
        dtype: the logical :class:`~repro.engine.types.DataType`.
        values: physical value array (codes for STRING columns).
        dictionary: unique string values for STRING columns, else ``None``.
        valid: optional boolean mask, ``True`` where the value is present.
            ``None`` means all values are valid.
    """

    __slots__ = ("dtype", "values", "dictionary", "valid")

    def __init__(
        self,
        dtype: DataType,
        values: np.ndarray,
        dictionary: np.ndarray | None = None,
        valid: np.ndarray | None = None,
    ):
        if dtype is STRING and dictionary is None:
            raise ValueError("STRING columns require a dictionary")
        if dtype is not STRING and dictionary is not None:
            raise ValueError(f"{dtype.name} columns must not carry a dictionary")
        self.dtype = dtype
        self.values = np.asarray(values, dtype=dtype.numpy_dtype)
        self.dictionary = dictionary
        self.valid = valid

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_ints(cls, values: Iterable[int]) -> "Column":
        return cls(INT64, np.asarray(list(values), dtype=np.int64))

    @classmethod
    def from_floats(cls, values: Iterable[float]) -> "Column":
        return cls(FLOAT64, np.asarray(list(values), dtype=np.float64))

    @classmethod
    def from_bools(cls, values: Iterable[bool]) -> "Column":
        return cls(BOOL, np.asarray(list(values), dtype=np.bool_))

    @classmethod
    def from_dates(cls, values: Iterable[str]) -> "Column":
        days = np.asarray([date_to_days(v) for v in values], dtype=np.int32)
        return cls(DATE, days)

    @classmethod
    def from_strings(cls, values: Sequence[str]) -> "Column":
        arr = np.asarray(values, dtype=object)
        dictionary, codes = np.unique(arr, return_inverse=True)
        return cls(STRING, codes.astype(np.int32), dictionary=dictionary)

    @classmethod
    def from_string_codes(cls, codes: np.ndarray, dictionary: np.ndarray) -> "Column":
        """Build a STRING column directly from codes and a dictionary."""
        return cls(STRING, np.asarray(codes, dtype=np.int32), dictionary=np.asarray(dictionary, dtype=object))

    @classmethod
    def from_numpy(cls, dtype: DataType, values: np.ndarray, dictionary: np.ndarray | None = None) -> "Column":
        return cls(dtype, values, dictionary=dictionary)

    @classmethod
    def concat(cls, columns: "list[Column]") -> "Column":
        """Concatenate same-typed columns (used by the distributed driver
        to stack per-node partial results). String columns are re-encoded
        over the union dictionary."""
        if not columns:
            raise ValueError("need at least one column")
        dtype = columns[0].dtype
        if any(c.dtype is not dtype for c in columns):
            raise TypeError("cannot concatenate columns of differing types")
        if dtype is STRING:
            first_dict = columns[0].dictionary
            if all(c.dictionary is first_dict for c in columns):
                # Fast path: slices of one source column share its
                # dictionary, so code arrays concatenate directly.
                codes = np.concatenate([c.values for c in columns])
                if any(c.valid is not None for c in columns):
                    valid = np.concatenate([
                        c.valid if c.valid is not None else np.ones(len(c), dtype=np.bool_)
                        for c in columns
                    ])
                else:
                    valid = None
                return cls(STRING, codes, dictionary=first_dict, valid=valid)
            decoded = np.concatenate([c.decoded() for c in columns])
            has_null = any(c.valid is not None for c in columns)
            if has_null:
                valid = np.asarray([v is not None for v in decoded])
                filled = np.where(valid, decoded, "")
                dictionary, codes = np.unique(filled.astype(object), return_inverse=True)
                return cls(STRING, codes.astype(np.int32), dictionary=dictionary, valid=valid)
            dictionary, codes = np.unique(decoded.astype(object), return_inverse=True)
            return cls(STRING, codes.astype(np.int32), dictionary=dictionary)
        values = np.concatenate([c.values for c in columns])
        if any(c.valid is not None for c in columns):
            valid = np.concatenate([
                c.valid if c.valid is not None else np.ones(len(c), dtype=np.bool_)
                for c in columns
            ])
        else:
            valid = None
        return cls(dtype, values, valid=valid)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.values)

    @property
    def nbytes(self) -> int:
        """Bytes occupied by the value array (dictionary excluded, as it is
        touched once per unique value, not once per row)."""
        return len(self.values) * self.dtype.width

    @property
    def dict_nbytes(self) -> int:
        if self.dictionary is None:
            return 0
        return int(sum(len(s) for s in self.dictionary))

    def has_nulls(self) -> bool:
        return self.valid is not None and not bool(self.valid.all())

    def zone_stats(self, block_rows: int) -> tuple | None:
        """Per-block ``(mins, maxs, null_counts)`` over blocks of
        ``block_rows`` rows (the zone-map payload; see
        :mod:`repro.engine.zonemap`).

        Statistics cover valid rows only. STRING columns report decoded
        string min/max (dictionaries need not be sorted); nullable
        STRING columns return ``None`` (no cheap neutral fill value).
        """
        n = len(self.values)
        if n == 0:
            empty = np.empty(0)
            return empty, empty, np.empty(0, dtype=np.int64)
        nblocks = -(-n // block_rows)
        pad = nblocks * block_rows - n

        if self.valid is None:
            null_counts = np.zeros(nblocks, dtype=np.int64)
        else:
            padded_valid = np.concatenate([self.valid, np.ones(pad, dtype=np.bool_)])
            null_counts = (~padded_valid).reshape(nblocks, block_rows).sum(axis=1)

        if self.dtype is STRING:
            if self.valid is not None and not bool(self.valid.all()):
                return None
            decoded = self.dictionary[self.values]
            padded = np.concatenate([decoded, np.repeat(decoded[-1:], pad)])
            blocks = padded.reshape(nblocks, block_rows)
            return blocks.min(axis=1), blocks.max(axis=1), null_counts

        values = self.values
        if self.valid is not None:
            if values.dtype == np.bool_:
                return None
            # Neutral fills keep invalid rows out of the min/max.
            info = (np.iinfo if np.issubdtype(values.dtype, np.integer) else np.finfo)(values.dtype)
            lo_fill = np.where(self.valid, values, info.max)
            hi_fill = np.where(self.valid, values, info.min)
        else:
            lo_fill = hi_fill = values
        lo = np.concatenate([lo_fill, np.repeat(lo_fill[-1:], pad)])
        hi = np.concatenate([hi_fill, np.repeat(hi_fill[-1:], pad)])
        mins = lo.reshape(nblocks, block_rows).min(axis=1)
        maxs = hi.reshape(nblocks, block_rows).max(axis=1)
        return mins, maxs, null_counts

    # ------------------------------------------------------------------
    # Positional operations (used by operators)
    # ------------------------------------------------------------------

    def take(self, indices: np.ndarray) -> "Column":
        """Gather rows by index; negative index -1 marks a NULL slot (used
        by outer joins)."""
        indices = np.asarray(indices)
        if len(indices) and indices.min() < 0:
            if len(self.values) == 0:
                # Taking from an empty column: every slot must be a NULL
                # marker (outer join against an empty build side).
                values = np.zeros(len(indices), dtype=self.dtype.numpy_dtype)
                dictionary = self.dictionary
                if dictionary is not None and len(dictionary) == 0:
                    dictionary = np.asarray([""], dtype=object)
                return Column(
                    self.dtype, values, dictionary=dictionary,
                    valid=np.zeros(len(indices), dtype=np.bool_),
                )
            safe = np.where(indices < 0, 0, indices)
            values = self.values[safe]
            valid = indices >= 0
            if self.valid is not None:
                valid = valid & self.valid[safe]
            return Column(self.dtype, values, dictionary=self.dictionary, valid=valid)
        values = self.values[indices]
        valid = None if self.valid is None else self.valid[indices]
        return Column(self.dtype, values, dictionary=self.dictionary, valid=valid)

    def filter(self, mask: np.ndarray) -> "Column":
        values = self.values[mask]
        valid = None if self.valid is None else self.valid[mask]
        return Column(self.dtype, values, dictionary=self.dictionary, valid=valid)

    def slice(self, start: int, stop: int) -> "Column":
        valid = None if self.valid is None else self.valid[start:stop]
        return Column(self.dtype, self.values[start:stop], dictionary=self.dictionary, valid=valid)

    # ------------------------------------------------------------------
    # Decoding
    # ------------------------------------------------------------------

    def decoded(self) -> np.ndarray:
        """Return the logical values (strings decoded through the
        dictionary, dates as int days). NULL slots decode to ``None``
        for strings; numeric NULLs are left as their physical payload
        (callers should consult :attr:`valid`)."""
        if self.dtype is STRING:
            out = self.dictionary[self.values]
            if self.valid is not None:
                out = out.copy()
                out[~self.valid] = None
            return out
        return self.values

    def to_list(self) -> list:
        """Python-native values: str, int, float, bool, datetime.date, or None."""
        if self.dtype is STRING:
            return [str(v) if v is not None else None for v in self.decoded()]
        if self.dtype is DATE:
            vals = [days_to_date(v) for v in self.values]
        elif self.dtype is BOOL:
            vals = [bool(v) for v in self.values]
        elif self.dtype is INT64:
            vals = [int(v) for v in self.values]
        else:
            vals = [float(v) for v in self.values]
        if self.valid is not None:
            vals = [v if ok else None for v, ok in zip(vals, self.valid)]
        return vals

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Column({self.dtype.name}, n={len(self)})"
