"""Column compression (the paper's §III-C2 extension).

The paper observes that WIMPI's scarce memory bandwidth, paired with the
Pi's comparatively strong CPU, "could open the door for algorithms
previously considered too costly" — i.e., heavier compression trades
cheap cycles for scarce bytes. This module implements the classic
columnar encodings and integrates them with the scan operator: a
compressed column is streamed at its *compressed* size and charged
decode ops per value, which is exactly the trade the paper describes.

Encodings:

* :class:`BitPackedEncoding` — byte-aligned width reduction for ints
  (lightweight: ~1 op/value).
* :class:`FrameOfReferenceEncoding` — subtract a reference, then pack
  (lightweight; great for dates and dense keys).
* :class:`RunLengthEncoding` — (value, run) pairs for sorted or clustered
  data (lightweight, ratio depends on run structure).
* :class:`DeltaEncoding` — successive differences, then pack
  (heavyweight: ~3 ops/value, best ratio on near-sorted data).

Use :func:`compress_column` / :func:`compress_table` to pick encodings
automatically (smallest encoded size wins).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .column import Column
from .types import DATE, FLOAT64, INT64, STRING, DataType

__all__ = [
    "CompressedColumn",
    "BitPackedEncoding",
    "FrameOfReferenceEncoding",
    "RunLengthEncoding",
    "DeltaEncoding",
    "ALL_ENCODINGS",
    "rle_overlap",
    "compress_column",
    "compress_table",
    "compression_ratio",
]


def _pack_width(max_value: int) -> int:
    """Smallest byte-aligned width holding values in [0, max_value]."""
    if max_value < 0:
        raise ValueError("packing requires non-negative values")
    for width in (1, 2, 4):
        if max_value < (1 << (8 * width)):
            return width
    return 8


def _pack_dtype(width: int):
    return {1: np.uint8, 2: np.uint16, 4: np.uint32, 8: np.uint64}[width]


class Encoding:
    """Interface: encode a numpy int array, report size and decode cost."""

    name: str = "base"
    decode_ops_per_value: float = 1.0

    def encode(self, values: np.ndarray) -> object:
        raise NotImplementedError

    def decode(self, payload: object, n: int, dtype: np.dtype) -> np.ndarray:
        raise NotImplementedError

    def encoded_nbytes(self, payload: object) -> int:
        raise NotImplementedError

    def block_min_max(
        self, payload: object, n: int, block_rows: int
    ) -> tuple[np.ndarray, np.ndarray] | None:
        """Per-block (mins, maxs) in the int64 value domain, derived from
        the encoding metadata without a full decode. ``None`` means the
        encoding cannot answer cheaply (caller decodes once instead)."""
        return None

    def decode_range(
        self, payload: object, n: int, dtype: np.dtype, lo: int, hi: int
    ) -> np.ndarray:
        """Decode only rows ``[lo, hi)``; must equal ``decode(...)[lo:hi]``
        elementwise. The default decodes everything and slices; encodings
        with random access override it."""
        return self.decode(payload, n, dtype)[lo:hi]


def _block_reduce_int(values: np.ndarray, n: int, block_rows: int):
    """Per-block min/max of a dense int array (padded with its last value)."""
    if n == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    v = values.astype(np.int64)
    nblocks = -(-n // block_rows)
    pad = nblocks * block_rows - n
    padded = np.concatenate([v, np.repeat(v[-1:], pad)])
    blocks = padded.reshape(nblocks, block_rows)
    return blocks.min(axis=1), blocks.max(axis=1)


class BitPackedEncoding(Encoding):
    """Shift to zero-base and store at the smallest byte-aligned width."""

    name = "bitpack"
    decode_ops_per_value = 1.0

    def encode(self, values: np.ndarray):
        lo = int(values.min()) if len(values) else 0
        shifted = values.astype(np.int64) - lo
        width = _pack_width(int(shifted.max()) if len(shifted) else 0)
        return lo, shifted.astype(_pack_dtype(width))

    def decode(self, payload, n, dtype):
        lo, packed = payload
        return (packed.astype(np.int64) + lo).astype(dtype)

    def encoded_nbytes(self, payload):
        _, packed = payload
        return packed.nbytes + 8

    def block_min_max(self, payload, n, block_rows):
        lo, packed = payload
        mins, maxs = _block_reduce_int(packed, n, block_rows)
        return mins + lo, maxs + lo

    def decode_range(self, payload, n, dtype, lo, hi):
        base, packed = payload
        return (packed[lo:hi].astype(np.int64) + base).astype(dtype)


class FrameOfReferenceEncoding(Encoding):
    """Per-block reference subtraction, then packing (blocks of 4096)."""

    name = "for"
    decode_ops_per_value = 1.0
    block = 4096

    def encode(self, values: np.ndarray):
        refs, blocks = [], []
        v = values.astype(np.int64)
        for start in range(0, len(v), self.block):
            chunk = v[start:start + self.block]
            ref = int(chunk.min())
            shifted = chunk - ref
            width = _pack_width(int(shifted.max()) if len(shifted) else 0)
            refs.append(ref)
            blocks.append(shifted.astype(_pack_dtype(width)))
        return refs, blocks

    def decode(self, payload, n, dtype):
        refs, blocks = payload
        parts = [b.astype(np.int64) + r for r, b in zip(refs, blocks)]
        out = np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)
        return out.astype(dtype)

    def encoded_nbytes(self, payload):
        refs, blocks = payload
        return sum(b.nbytes for b in blocks) + 8 * len(refs)

    def block_min_max(self, payload, n, block_rows):
        # Zone maps at the encoding's own block size fall straight out of
        # the per-block references; other granularities decode instead.
        if block_rows != self.block:
            return None
        refs, blocks = payload
        mins = np.asarray(
            [r + int(b.min()) for r, b in zip(refs, blocks) if len(b)], dtype=np.int64
        )
        maxs = np.asarray(
            [r + int(b.max()) for r, b in zip(refs, blocks) if len(b)], dtype=np.int64
        )
        return mins, maxs

    def decode_range(self, payload, n, dtype, lo, hi):
        refs, blocks = payload
        parts = []
        first = lo // self.block
        last = min(-(-hi // self.block), len(blocks))
        for b in range(first, last):
            chunk = blocks[b].astype(np.int64) + refs[b]
            start = max(lo - b * self.block, 0)
            stop = min(hi - b * self.block, len(chunk))
            parts.append(chunk[start:stop])
        out = np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)
        return out.astype(dtype)


def rle_overlap(
    run_values: np.ndarray, lengths: np.ndarray, lo: int, hi: int
) -> tuple[np.ndarray, np.ndarray, int, int]:
    """Runs overlapping rows ``[lo, hi)``: ``(values, clipped_lengths, i0, i1)``
    where ``[i0, i1)`` indexes the overlapping runs."""
    if hi <= lo or not len(lengths):
        empty = np.empty(0, dtype=np.int64)
        return empty, empty, 0, 0
    ends = np.cumsum(lengths)
    starts = ends - lengths
    i0 = int(np.searchsorted(ends, lo, side="right"))
    i1 = int(np.searchsorted(starts, hi, side="left"))
    clipped = np.minimum(ends[i0:i1], hi) - np.maximum(starts[i0:i1], lo)
    return run_values[i0:i1], clipped, i0, i1


class RunLengthEncoding(Encoding):
    """(value, run-length) pairs; shines on sorted or clustered columns."""

    name = "rle"
    decode_ops_per_value = 0.5  # amortized: one expansion per run

    def encode(self, values: np.ndarray):
        v = values.astype(np.int64)
        if not len(v):
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        boundaries = np.flatnonzero(np.diff(v) != 0) + 1
        starts = np.concatenate([[0], boundaries])
        run_values = v[starts]
        lengths = np.diff(np.concatenate([starts, [len(v)]]))
        return run_values, lengths

    def decode(self, payload, n, dtype):
        run_values, lengths = payload
        return np.repeat(run_values, lengths).astype(dtype)

    def decode_range(self, payload, n, dtype, lo, hi):
        run_values, lengths = payload
        values, clipped, _, _ = rle_overlap(run_values, lengths, lo, hi)
        return np.repeat(values, clipped).astype(dtype)

    def encoded_nbytes(self, payload):
        run_values, lengths = payload
        return run_values.nbytes + min(lengths.nbytes, len(lengths) * 4)

    def block_min_max(self, payload, n, block_rows):
        run_values, lengths = payload
        if n == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        starts = np.concatenate([[0], np.cumsum(lengths)[:-1]])
        nblocks = -(-n // block_rows)
        mins = np.empty(nblocks, dtype=np.int64)
        maxs = np.empty(nblocks, dtype=np.int64)
        values = run_values.astype(np.int64)
        for b in range(nblocks):
            lo_row, hi_row = b * block_rows, min((b + 1) * block_rows, n)
            i0 = int(np.searchsorted(starts, lo_row, side="right")) - 1
            i1 = int(np.searchsorted(starts, hi_row, side="left"))
            span = values[i0:i1]
            mins[b] = span.min()
            maxs[b] = span.max()
        return mins, maxs


class DeltaEncoding(Encoding):
    """Successive differences, zig-zag mapped, then packed — the
    'heavyweight' end of the spectrum (prefix-sum on decode)."""

    name = "delta"
    decode_ops_per_value = 3.0

    def encode(self, values: np.ndarray):
        v = values.astype(np.int64)
        if not len(v):
            return 0, np.empty(0, dtype=np.uint8)
        first = int(v[0])
        deltas = np.diff(v)
        zigzag = (deltas << 1) ^ (deltas >> 63)  # non-negative mapping
        width = _pack_width(int(zigzag.max()) if len(zigzag) else 0)
        return first, zigzag.astype(_pack_dtype(width))

    def decode(self, payload, n, dtype):
        first, zigzag = payload
        z = zigzag.astype(np.int64)
        deltas = (z >> 1) ^ -(z & 1)
        out = np.empty(n, dtype=np.int64)
        out[0] = first
        np.cumsum(deltas, out=out[1:]) if n > 1 else None
        out[1:] += first
        return out.astype(dtype)

    def encoded_nbytes(self, payload):
        _, zigzag = payload
        return zigzag.nbytes + 8

    def block_min_max(self, payload, n, block_rows):
        # One cumsum over the un-zigzagged deltas reconstructs the int64
        # value stream straight from the metadata — no Column round-trip —
        # so delta-encoded columns participate in zone-map skipping too.
        if n == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        first, zigzag = payload
        z = zigzag.astype(np.int64)
        deltas = (z >> 1) ^ -(z & 1)
        values = np.empty(n, dtype=np.int64)
        values[0] = first
        np.cumsum(deltas, out=values[1:]) if n > 1 else None
        values[1:] += first
        return _block_reduce_int(values, n, block_rows)

    def decode_range(self, payload, n, dtype, lo, hi):
        # Prefix sums need every delta up to ``hi`` but none beyond it.
        hi = min(hi, n)
        if hi <= lo:
            return np.empty(0, dtype=dtype)
        first, zigzag = payload
        z = zigzag[: hi - 1].astype(np.int64)
        deltas = (z >> 1) ^ -(z & 1)
        out = np.empty(hi, dtype=np.int64)
        out[0] = first
        np.cumsum(deltas, out=out[1:]) if hi > 1 else None
        out[1:] += first
        return out[lo:hi].astype(dtype)


ALL_ENCODINGS: tuple[Encoding, ...] = (
    BitPackedEncoding(), FrameOfReferenceEncoding(), RunLengthEncoding(), DeltaEncoding(),
)

# Decompression runs as a tight branch-free SIMD loop, not as interpreted
# engine operator code; one decode "op" costs about an eighth of a
# counted engine op (which carries the DBMS interpretation factor).
DECODE_OP_FRACTION = 0.125


@dataclass
class CompressedColumn:
    """A column stored compressed; scans stream ``nbytes`` (compressed)
    and pay ``decode_ops`` to materialize the plain column."""

    dtype: DataType
    encoding_name: str
    payload: object
    n: int
    nbytes: int
    decode_ops: float
    plain_nbytes: int
    dictionary: np.ndarray | None = None
    _encoding: Encoding | None = None

    def __len__(self) -> int:
        return self.n

    @property
    def dict_nbytes(self) -> int:
        if self.dictionary is None:
            return 0
        return int(sum(len(s) for s in self.dictionary))

    @property
    def ratio(self) -> float:
        """plain bytes / compressed bytes (higher is better)."""
        return self.plain_nbytes / max(1, self.nbytes)

    def to_column(self) -> Column:
        values = self._encoding.decode(self.payload, self.n, self.dtype.numpy_dtype)
        return Column(self.dtype, values, dictionary=self.dictionary)

    @property
    def scale(self) -> float | None:
        """Fixed-point scale for FLOAT64 columns stored as ints, else None."""
        if isinstance(self._encoding, _ScaledEncoding):
            return self._encoding.scale
        return None

    @property
    def base_encoding(self) -> Encoding:
        """The integer encoding, unwrapping any fixed-point wrapper."""
        if isinstance(self._encoding, _ScaledEncoding):
            return self._encoding.inner
        return self._encoding

    @property
    def base_payload(self) -> object:
        """Payload of :attr:`base_encoding` (unwraps fixed-point)."""
        if isinstance(self._encoding, _ScaledEncoding):
            return self.payload[2]
        return self.payload

    def decode_range(self, lo: int, hi: int) -> np.ndarray:
        """Materialize rows ``[lo, hi)`` only; elementwise identical to
        ``to_column().values[lo:hi]``."""
        return self._encoding.decode_range(
            self.payload, self.n, self.dtype.numpy_dtype, lo, hi
        )

    def zone_stats(self, block_rows: int) -> tuple | None:
        """Per-block ``(mins, maxs, null_counts)`` — the zone-map payload.

        Derived from the encoding metadata where the encoding supports it
        (bit-packing, FoR, RLE); delta encoding decodes once (its prefix
        sums are not block-decomposable). Compressed columns are built
        from non-null data, so null counts are zero.
        """
        payload, encoding, scale = self.payload, self._encoding, None
        if isinstance(encoding, _ScaledEncoding):
            _, scale, payload = self.payload
            encoding = encoding.inner
        stats = encoding.block_min_max(payload, self.n, block_rows)
        if stats is None:
            return self.to_column().zone_stats(block_rows)
        mins, maxs = stats
        null_counts = np.zeros(len(mins), dtype=np.int64)
        if scale is not None:
            mins = mins / scale
            maxs = maxs / scale
        if self.dtype is STRING:
            d = self.dictionary
            if len(d) > 1 and not bool(np.all(d[:-1] <= d[1:])):
                # Code order only mirrors string order for sorted
                # dictionaries; otherwise decode once.
                return self.to_column().zone_stats(block_rows)
            mins = d[mins] if len(d) else mins
            maxs = d[maxs] if len(d) else maxs
        return mins, maxs, null_counts


def compress_column(column: Column, encodings: tuple[Encoding, ...] = ALL_ENCODINGS) -> "CompressedColumn | Column":
    """Compress with the best-ratio encoding; returns the original column
    when nothing beats the plain representation (e.g. random floats).

    STRING columns compress their code arrays (the dictionary is shared);
    FLOAT64 columns whose values are integral cents compress via a x100
    integer view, otherwise they stay plain.
    """
    if column.valid is not None:
        return column  # nullable columns stay plain (rare: join outputs)

    values = column.values
    scale = None
    if column.dtype is FLOAT64:
        cents = np.round(values * 100).astype(np.int64)
        if np.allclose(cents / 100.0, values, atol=1e-9):
            values = cents
            scale = 100.0
        else:
            return column

    # Pick the smallest encoding, with a mild penalty on decode cost so
    # near-ties resolve to the cheaper scheme.
    best, best_payload, best_size = None, None, None
    best_score = float(column.nbytes)
    for encoding in encodings:
        payload = encoding.encode(values)
        size = encoding.encoded_nbytes(payload)
        score = size * (1.0 + 0.05 * encoding.decode_ops_per_value)
        if score < best_score:
            best, best_payload, best_size, best_score = encoding, payload, size, score
    if best is None:
        return column

    dtype = column.dtype
    payload = best_payload
    if scale is not None:
        payload = ("scaled", scale, best_payload)
    return CompressedColumn(
        dtype=dtype,
        encoding_name=best.name,
        payload=payload,
        n=len(column),
        nbytes=best_size,
        decode_ops=(best.decode_ops_per_value + (1 if scale else 0))
        * len(column) * DECODE_OP_FRACTION,
        plain_nbytes=column.nbytes,
        dictionary=column.dictionary,
        _encoding=_ScaledEncoding(best, scale) if scale is not None else best,
    )


class _ScaledEncoding(Encoding):
    """Wraps an int encoding for fixed-point floats (cents)."""

    def __init__(self, inner: Encoding, scale: float):
        self.inner = inner
        self.scale = scale
        self.name = f"{inner.name}+fixedpoint"
        self.decode_ops_per_value = inner.decode_ops_per_value + 1

    def decode(self, payload, n, dtype):
        _, scale, inner_payload = payload
        ints = self.inner.decode(inner_payload, n, np.dtype(np.int64))
        return (ints / scale).astype(dtype)

    def decode_range(self, payload, n, dtype, lo, hi):
        _, scale, inner_payload = payload
        ints = self.inner.decode_range(inner_payload, n, np.dtype(np.int64), lo, hi)
        return (ints / scale).astype(dtype)


def compress_table(table, encodings: tuple[Encoding, ...] = ALL_ENCODINGS):
    """Compress every eligible column of a table in place-like fashion
    (returns a new Table whose columns may be CompressedColumn)."""
    from .table import Table

    columns = {
        name: compress_column(col, encodings) if isinstance(col, Column) else col
        for name, col in table.columns.items()
    }
    out = Table.__new__(Table)
    out.name = table.name
    out.columns = columns
    out.nrows = table.nrows
    return out


def compression_ratio(table) -> float:
    """Whole-table plain/compressed byte ratio."""
    plain = compressed = 0
    for col in table.columns.values():
        if isinstance(col, CompressedColumn):
            plain += col.plain_nbytes
            compressed += col.nbytes
        else:
            plain += col.nbytes
            compressed += col.nbytes
    return plain / max(1, compressed)
