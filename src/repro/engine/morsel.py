"""Morsel partitioning for intra-query parallelism.

A *morsel* is a fixed-size horizontal slice of a base table (Leis et al.,
"Morsel-Driven Parallelism"). The parallel executor runs a query's
scan → filter → project → partial-aggregate pipeline once per morsel on a
thread pool (the numpy kernels release the GIL), then merges the partial
states with :mod:`repro.engine.merge`. Each morsel gets its own
:class:`MorselContext` so operator work accounting never contends across
threads; the per-morsel profiles are coalesced afterwards.
"""

from __future__ import annotations

from repro.obs.trace import NULL_TRACER, OperatorSpanScope

from .compression import CompressedColumn
from .frame import Frame
from .profile import WorkProfile
from .table import Database, Table

__all__ = [
    "DEFAULT_MORSEL_ROWS",
    "MIN_PARALLEL_ROWS",
    "MorselContext",
    "morsel_ranges",
    "scan_morsel",
    "table_is_morselable",
]

# Default morsel size: ~64K rows keeps a handful of columns inside a
# wimpy node's LLC while leaving enough morsels per query to load-balance
# four cores at the paper's scale factors.
DEFAULT_MORSEL_ROWS = 65536

# Tables smaller than this execute serially; thread handoff would cost
# more than the scan itself.
MIN_PARALLEL_ROWS = 8192


def morsel_ranges(nrows: int, morsel_rows: int) -> list[tuple[int, int]]:
    """Split ``[0, nrows)`` into contiguous ``(start, stop)`` morsels."""
    if morsel_rows < 1:
        raise ValueError("morsel_rows must be >= 1")
    return [(start, min(start + morsel_rows, nrows))
            for start in range(0, nrows, morsel_rows)]


# Encodings with true random access: a morsel can decode (or evaluate)
# exactly its own rows. Delta stays serial — its prefix sums make every
# morsel pay for all rows before it.
_SLICEABLE_ENCODINGS = frozenset({"bitpack", "for", "rle"})


def table_is_morselable(
    table: Table, columns: list[str] | None, allow_encoded: bool = False
) -> bool:
    """Whether every needed column supports positional slicing.

    Plain columns always do. Compressed columns keep such scans serial
    unless ``allow_encoded`` (compressed execution is on) and the
    encoding has random access — then :func:`scan_morsel` decodes or
    encoded-evaluates exactly its own row range.
    """
    names = columns if columns is not None else table.column_names
    for n in names:
        col = table.column(n)
        if not isinstance(col, CompressedColumn):
            continue
        if not allow_encoded or col.encoding_name not in _SLICEABLE_ENCODINGS:
            return False
    return True


class MorselContext:
    """Execution context scoped to one morsel.

    Operators charge work into a private :class:`WorkProfile`; scalar
    subqueries delegate to the parent query's context (whose cache the
    parallel executor pre-warms on the main thread, so worker-thread
    lookups never re-enter the executor).
    """

    def __init__(self, db: Database, parent, tracer=None, span=None):
        self.db = db
        self._parent = parent
        # Morsels inherit the query's cancel token: the scan re-checks
        # it so a cancellation that lands between scheduling and
        # execution still stops the morsel before it streams any bytes.
        self.cancel = getattr(parent, "cancel", None)
        # Morsels also inherit the query's memory budget and spill
        # policy, so every worker's partial state charges one shared
        # budget (and spills against it when over).
        self.budget = getattr(parent, "budget", None)
        self.spilling = getattr(parent, "spilling", True)
        self.profile = WorkProfile()
        self.work = None
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.span = span
        # Per-morsel operator spans are marked ``fragment`` — their work
        # records are coalesced away by the profile merge, so trace
        # reconciliation counts only the coalesced (profile-resident)
        # operator spans the parallel executor emits at merge time.
        self._ops = (
            OperatorSpanScope(self.tracer, span, fragment=True)
            if self.tracer.enabled
            else None
        )

    def begin_operator(self, name: str):
        work = self.profile.new_operator(name)
        self.work = work
        if self._ops is not None:
            self._ops.begin(name, work)
        return work

    @property
    def op_span(self):
        return self._ops.open_span if self._ops is not None else None

    def close_op_span(self) -> None:
        if self._ops is not None:
            self._ops.close()

    def scalar(self, plan) -> object:
        return self._parent.scalar(plan)


def scan_morsel(
    table: Table,
    columns: list[str] | None,
    start: int,
    stop: int,
    ctx,
    predicate=None,
    skipping: bool = True,
    late: bool = False,
    compressed: bool = False,
) -> Frame:
    """Materialize one morsel of a table scan (zero-copy column slices).

    Delegates to :func:`~repro.engine.operators.scan.scan_range` — the
    exact code path the serial executor uses — so pushed-down predicates
    and zone-map skipping behave identically per morsel, and the
    per-morsel profiles sum to the serial scan's profile. With ``late``
    the morsel comes back as a selection over the full base columns
    (row ids are absolute), so downstream late kernels compose across
    morsels exactly as they do serially.
    """
    from .operators.scan import scan_range

    cancel = getattr(ctx, "cancel", None)
    if cancel is not None:
        cancel.check()
    return scan_range(
        table, columns, start, stop, ctx, predicate, skipping,
        late=late, compressed=compressed,
    )
