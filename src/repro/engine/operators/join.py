"""Hash joins: inner, left outer, semi, and anti.

The physical algorithm is sort-and-binary-search over the build side's
encoded keys, which is a cache-friendly stand-in with identical output to
a hash join; the *work profile* it records is that of a classic hash join
(build inserts + random probes), because that is what MonetDB executes
and what the hardware model should price.

String keys join on dictionary codes whenever possible: sides sharing a
dictionary object compare int32 codes directly, and differing
dictionaries are remapped through their union — O(|dictionaries|) work —
instead of decoding every row to Python strings. Key factorizations and
build-side sort orders are memoized in the process-wide
:mod:`~repro.engine.keycache`, so repeated executions against the same
(immutable) base arrays skip the ``np.unique``/``argsort``.
"""

from __future__ import annotations

import numpy as np

from repro.obs.trace import note

from ..column import Column
from ..frame import Frame
from ..keycache import combine_codes, key_cache
from ..types import STRING

__all__ = ["execute_join"]


def _encode_key(column: Column) -> np.ndarray:
    """Return an array that equality-matches the column's values
    across frames (strings are decoded so differing dictionaries agree).
    Prefer :func:`_encode_key_pair` when both sides are at hand — it
    stays on dictionary codes."""
    if column.dtype is STRING:
        return column.decoded()
    return column.values


def _union_dictionary_codes(
    left_col: Column, right_col: Column
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Remap two dictionary-encoded columns onto their union dictionary.

    Returns ``(union_dict, left_codes, right_codes)``. Cost is
    O(|left dict| + |right dict|) plus one O(rows) int gather per side —
    never a per-row string decode.
    """
    union = np.unique(np.concatenate([left_col.dictionary, right_col.dictionary]))
    lmap = np.searchsorted(union, left_col.dictionary)
    rmap = np.searchsorted(union, right_col.dictionary)
    return union, lmap[left_col.values], rmap[right_col.values]


def _encode_key_pair(
    left_col: Column, right_col: Column, ctx
) -> tuple[np.ndarray, np.ndarray]:
    """Encode one key-column pair into equality-comparable arrays.

    String sides sharing a dictionary object match on raw codes;
    differing dictionaries remap through the union dictionary. Either
    way the per-row work is integer, not string.
    """
    if left_col.dtype is STRING and right_col.dtype is STRING:
        if left_col.dictionary is right_col.dictionary:
            return left_col.values, right_col.values
        _, left_codes, right_codes = _union_dictionary_codes(left_col, right_col)
        # The remap touches each dictionary entry once.
        ctx.work.ops += len(left_col.dictionary) + len(right_col.dictionary)
        return left_codes, right_codes
    return _encode_key(left_col), _encode_key(right_col)


def _combine_keys(columns: list[Column]) -> np.ndarray:
    """Combine one or more key columns into a single comparable array.

    Each column is factorized to dense codes (dictionary codes already
    are dense for strings) and the codes are mixed via
    :func:`~repro.engine.keycache.combine_codes`, which detects int64
    overflow of the cardinality product and falls back to lexicographic
    factorization instead of silently wrapping.
    """
    if len(columns) == 1 and columns[0].dtype is not STRING:
        return columns[0].values
    code_arrays: list[np.ndarray] = []
    cards: list[int] = []
    for column in columns:
        if column.dtype is STRING:
            # Dictionary codes are already a dense factorization.
            code_arrays.append(column.values.astype(np.int64, copy=False))
            cards.append(max(1, len(column.dictionary)))
        else:
            uniques, codes = key_cache.factorize(column.values)
            code_arrays.append(codes)
            cards.append(max(1, len(uniques)))
    return combine_codes(code_arrays, cards)


def _null_mask(columns: list[Column]) -> np.ndarray | None:
    mask = None
    for column in columns:
        if column.valid is not None:
            mask = column.valid if mask is None else (mask & column.valid)
    return mask


def _match(
    left_keys: np.ndarray, right_keys: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """For every left row, find matching right rows.

    Returns ``(counts, left_expanded, right_expanded)`` where the expanded
    arrays list each (left, right) match pair.
    """
    order = key_cache.sort_order(right_keys)
    sorted_keys = right_keys[order]
    lo = np.searchsorted(sorted_keys, left_keys, side="left")
    hi = np.searchsorted(sorted_keys, left_keys, side="right")
    counts = hi - lo
    total = int(counts.sum())
    left_idx = np.repeat(np.arange(len(left_keys)), counts)
    starts = np.repeat(lo, counts)
    offsets = np.arange(total) - np.repeat(np.cumsum(counts) - counts, counts)
    right_idx = order[starts + offsets] if total else np.empty(0, dtype=np.int64)
    return counts, left_idx, right_idx


def execute_join(
    left: Frame,
    right: Frame,
    left_on: list[str],
    right_on: list[str],
    how: str,
    ctx,
) -> Frame:
    """Join ``left`` with ``right`` on equality of the key column lists.

    ``how`` is one of ``inner``, ``left`` (left outer), ``semi``
    (left semi), ``anti`` (left anti). Semi/anti keep only left columns.
    Rows whose key is NULL never match.

    Late (selection-vector) inputs gather only their key columns here;
    payload columns materialize once, through the composed
    selection ∘ match indices, in :func:`_materialize_pair` — or not at
    all for semi/anti joins, whose outputs stay late.
    """
    left_cols = [left.column(n) for n in left_on]
    right_cols = [right.column(n) for n in right_on]
    if len(left_cols) == 1:
        left_keys, right_keys = _encode_key_pair(left_cols[0], right_cols[0], ctx)
    else:
        # Multi-key combination must factorize over the union so codes agree.
        both = _combine_keys(
            [_stack(lc, rc, ctx) for lc, rc in zip(left_cols, right_cols)]
        )
        left_keys, right_keys = both[: left.nrows], both[left.nrows :]

    left_null = _null_mask(left_cols)
    right_null = _null_mask(right_cols)
    if right_null is not None:
        keep = right_null
        right_keys = right_keys[keep]
        right_map = np.flatnonzero(keep)
    else:
        right_map = None

    counts, left_idx, right_idx = _match(left_keys, right_keys)
    if left_null is not None:
        # NULL left keys match nothing.
        matched_null = left_null[left_idx]
        left_idx, right_idx = left_idx[matched_null], right_idx[matched_null]
        counts = counts * left_null
    if right_map is not None and len(right_idx):
        right_idx = right_map[right_idx]

    # Work accounting: hash build over the (smaller, by convention right)
    # side plus a random probe per left row, plus per-match output.
    ctx.work.tuples_in += left.nrows + right.nrows
    ctx.work.seq_bytes += sum(c.nbytes for c in left_cols) + sum(c.nbytes for c in right_cols)
    ctx.work.ops += left.nrows + 2 * right.nrows  # probe + build/hash
    ctx.work.rand_accesses += left.nrows + len(left_idx)
    # The build-side hash structure (key + bucket pointer per row) is
    # part of the operator's resident working set.
    ctx.work.out_bytes += right.nrows * 16

    if how == "inner":
        out = _materialize_pair(left, right, left_idx, right_idx, right_on)
    elif how == "left":
        miss = np.flatnonzero(counts == 0)
        all_left = np.concatenate([left_idx, miss]) if len(miss) else left_idx
        all_right = (
            np.concatenate([right_idx, np.full(len(miss), -1, dtype=np.int64)])
            if len(miss)
            else right_idx
        )
        out = _materialize_pair(left, right, all_left, all_right, right_on)
    elif how == "semi":
        mask = counts > 0
        out = left.filter(mask)
    elif how == "anti":
        mask = counts == 0
        out = left.filter(mask)
    else:
        raise ValueError(f"unknown join type {how!r}")

    # Key-column gathers on late inputs are the join's materialization
    # price; charge them as random access.
    ctx.work.gather_bytes += left.drain_gather_debt() + right.drain_gather_debt()
    ctx.work.tuples_out += out.nrows
    ctx.work.out_bytes += out.nbytes
    note(
        ctx, how=how, left_rows=left.nrows, right_rows=right.nrows,
        matches=out.nrows,
    )
    return out


def _stack(left_col: Column, right_col: Column, ctx) -> Column:
    """Concatenate two key columns (for shared factorization) without
    decoding strings: same-dictionary sides concatenate codes, differing
    dictionaries remap through the union dictionary first."""
    if left_col.dtype is STRING:
        if left_col.dictionary is right_col.dictionary:
            codes = np.concatenate([left_col.values, right_col.values])
            return Column(STRING, codes, dictionary=left_col.dictionary)
        union, left_codes, right_codes = _union_dictionary_codes(left_col, right_col)
        ctx.work.ops += len(left_col.dictionary) + len(right_col.dictionary)
        return Column.from_string_codes(
            np.concatenate([left_codes, right_codes]).astype(np.int32), union
        )
    values = np.concatenate([left_col.values, right_col.values])
    return Column(left_col.dtype, values)


def _materialize_pair(
    left: Frame,
    right: Frame,
    left_idx: np.ndarray,
    right_idx: np.ndarray,
    right_on: list[str],
) -> Frame:
    """Gather the matched rows of both sides into one dense frame. Late
    inputs compose their selection with the match indices so every
    payload column is gathered exactly once, straight from the base."""
    left_idx = left.row_ids(left_idx)
    right_idx = right.row_ids(right_idx)
    columns = {name: col.take(left_idx) for name, col in left.columns.items()}
    for name, col in right.columns.items():
        if name in columns:
            if name in right_on:
                continue  # equal-named key column: keep the left copy
            raise ValueError(f"join output would duplicate column {name!r}")
        columns[name] = col.take(right_idx)
    return Frame(columns, len(left_idx))
