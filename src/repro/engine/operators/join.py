"""Hash joins: inner, left outer, semi, and anti.

The physical algorithm is sort-and-binary-search over the build side's
encoded keys, which is a cache-friendly stand-in with identical output to
a hash join; the *work profile* it records is that of a classic hash join
(build inserts + random probes), because that is what MonetDB executes
and what the hardware model should price.
"""

from __future__ import annotations

import numpy as np

from ..column import Column
from ..frame import Frame
from ..types import STRING

__all__ = ["execute_join"]


def _encode_key(column: Column) -> np.ndarray:
    """Return an int64 array that equality-matches the column's values
    across frames (strings are decoded so differing dictionaries agree)."""
    if column.dtype is STRING:
        return column.decoded()
    return column.values


def _combine_keys(columns: list[Column]) -> np.ndarray:
    """Combine one or more key columns into a single comparable array."""
    encoded = [_encode_key(c) for c in columns]
    if len(encoded) == 1:
        return encoded[0]
    # Factorize each key and mix into a single int64 (cardinalities in
    # TPC-H keys are far below the overflow threshold).
    combined = np.zeros(len(encoded[0]), dtype=np.int64)
    for arr in encoded:
        _, codes = np.unique(arr, return_inverse=True)
        card = int(codes.max()) + 1 if len(codes) else 1
        combined = combined * card + codes
    return combined


def _null_mask(columns: list[Column]) -> np.ndarray | None:
    mask = None
    for column in columns:
        if column.valid is not None:
            mask = column.valid if mask is None else (mask & column.valid)
    return mask


def _match(
    left_keys: np.ndarray, right_keys: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """For every left row, find matching right rows.

    Returns ``(counts, left_expanded, right_expanded)`` where the expanded
    arrays list each (left, right) match pair.
    """
    order = np.argsort(right_keys, kind="stable")
    sorted_keys = right_keys[order]
    lo = np.searchsorted(sorted_keys, left_keys, side="left")
    hi = np.searchsorted(sorted_keys, left_keys, side="right")
    counts = hi - lo
    total = int(counts.sum())
    left_idx = np.repeat(np.arange(len(left_keys)), counts)
    starts = np.repeat(lo, counts)
    offsets = np.arange(total) - np.repeat(np.cumsum(counts) - counts, counts)
    right_idx = order[starts + offsets] if total else np.empty(0, dtype=np.int64)
    return counts, left_idx, right_idx


def execute_join(
    left: Frame,
    right: Frame,
    left_on: list[str],
    right_on: list[str],
    how: str,
    ctx,
) -> Frame:
    """Join ``left`` with ``right`` on equality of the key column lists.

    ``how`` is one of ``inner``, ``left`` (left outer), ``semi``
    (left semi), ``anti`` (left anti). Semi/anti keep only left columns.
    Rows whose key is NULL never match.
    """
    left_cols = [left.column(n) for n in left_on]
    right_cols = [right.column(n) for n in right_on]
    if len(left_cols) == 1:
        left_keys = _encode_key(left_cols[0])
        right_keys = _encode_key(right_cols[0])
    else:
        # Multi-key combination must factorize over the union so codes agree.
        both = _combine_keys([_stack(lc, rc) for lc, rc in zip(left_cols, right_cols)])
        left_keys, right_keys = both[: left.nrows], both[left.nrows :]

    left_null = _null_mask(left_cols)
    right_null = _null_mask(right_cols)
    if right_null is not None:
        keep = right_null
        right_keys = right_keys[keep]
        right_map = np.flatnonzero(keep)
    else:
        right_map = None

    counts, left_idx, right_idx = _match(left_keys, right_keys)
    if left_null is not None:
        # NULL left keys match nothing.
        matched_null = left_null[left_idx]
        left_idx, right_idx = left_idx[matched_null], right_idx[matched_null]
        counts = counts * left_null
    if right_map is not None and len(right_idx):
        right_idx = right_map[right_idx]

    # Work accounting: hash build over the (smaller, by convention right)
    # side plus a random probe per left row, plus per-match output.
    ctx.work.tuples_in += left.nrows + right.nrows
    ctx.work.seq_bytes += sum(c.nbytes for c in left_cols) + sum(c.nbytes for c in right_cols)
    ctx.work.ops += left.nrows + 2 * right.nrows  # probe + build/hash
    ctx.work.rand_accesses += left.nrows + len(left_idx)
    # The build-side hash structure (key + bucket pointer per row) is
    # part of the operator's resident working set.
    ctx.work.out_bytes += right.nrows * 16

    if how == "inner":
        out = _materialize_pair(left, right, left_idx, right_idx, right_on)
    elif how == "left":
        miss = np.flatnonzero(counts == 0)
        all_left = np.concatenate([left_idx, miss]) if len(miss) else left_idx
        all_right = (
            np.concatenate([right_idx, np.full(len(miss), -1, dtype=np.int64)])
            if len(miss)
            else right_idx
        )
        out = _materialize_pair(left, right, all_left, all_right, right_on)
    elif how == "semi":
        mask = counts > 0
        out = left.filter(mask)
    elif how == "anti":
        mask = counts == 0
        out = left.filter(mask)
    else:
        raise ValueError(f"unknown join type {how!r}")

    ctx.work.tuples_out += out.nrows
    ctx.work.out_bytes += out.nbytes
    return out


def _stack(left_col: Column, right_col: Column) -> Column:
    """Concatenate two key columns (for shared factorization)."""
    if left_col.dtype is STRING:
        values = np.concatenate([left_col.decoded(), right_col.decoded()])
        return Column.from_strings(list(values))
    values = np.concatenate([left_col.values, right_col.values])
    return Column(left_col.dtype, values)


def _materialize_pair(
    left: Frame,
    right: Frame,
    left_idx: np.ndarray,
    right_idx: np.ndarray,
    right_on: list[str],
) -> Frame:
    columns = {name: col.take(left_idx) for name, col in left.columns.items()}
    for name, col in right.columns.items():
        if name in columns:
            if name in right_on:
                continue  # equal-named key column: keep the left copy
            raise ValueError(f"join output would duplicate column {name!r}")
        columns[name] = col.take(right_idx)
    return Frame(columns, len(left_idx))
