"""DISTINCT over the frame's columns (or a subset)."""

from __future__ import annotations

import numpy as np

from repro.obs.trace import note

from ..frame import Frame
from ..keycache import combine_codes
from ..types import STRING

__all__ = ["execute_distinct"]


def execute_distinct(frame: Frame, columns: list[str] | None, ctx) -> Frame:
    """Keep the first row of each distinct combination of ``columns``
    (default: all columns)."""
    names = columns if columns is not None else list(frame.columns)
    code_arrays: list[np.ndarray] = []
    cards: list[int] = []
    for name in names:
        column = frame.column(name)
        if column.dtype is STRING:
            # Dictionary codes are already a dense factorization.
            code_arrays.append(column.values.astype(np.int64, copy=False))
            cards.append(max(1, len(column.dictionary)))
        else:
            uniques, codes = np.unique(column.values, return_inverse=True)
            code_arrays.append(codes.astype(np.int64, copy=False))
            cards.append(max(1, len(uniques)))
    combined = combine_codes(code_arrays, cards)
    _, first = np.unique(combined, return_index=True)
    out = frame.take(np.sort(first))
    ctx.work.tuples_in += frame.nrows
    ctx.work.tuples_out += out.nrows
    ctx.work.rand_accesses += frame.nrows
    ctx.work.ops += frame.nrows
    ctx.work.out_bytes += out.nbytes
    ctx.work.gather_bytes += frame.drain_gather_debt()
    note(ctx, distinct=out.nrows, on=len(names))
    return out
