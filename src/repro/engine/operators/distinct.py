"""DISTINCT over the frame's columns (or a subset)."""

from __future__ import annotations

import numpy as np

from ..frame import Frame
from ..types import STRING

__all__ = ["execute_distinct"]


def execute_distinct(frame: Frame, columns: list[str] | None, ctx) -> Frame:
    """Keep the first row of each distinct combination of ``columns``
    (default: all columns)."""
    names = columns if columns is not None else list(frame.columns)
    combined = np.zeros(frame.nrows, dtype=np.int64)
    for name in names:
        column = frame.column(name)
        values = column.decoded() if column.dtype is STRING else column.values
        _, codes = np.unique(values, return_inverse=True)
        card = int(codes.max()) + 1 if len(codes) else 1
        combined = combined * card + codes
    _, first = np.unique(combined, return_index=True)
    out = frame.take(np.sort(first))
    ctx.work.tuples_in += frame.nrows
    ctx.work.tuples_out += out.nrows
    ctx.work.rand_accesses += frame.nrows
    ctx.work.ops += frame.nrows
    ctx.work.out_bytes += out.nbytes
    return out
