"""Table scan: materializes the requested columns of a base table.

Handles both plain and compressed columns: a compressed column is
streamed at its compressed size and charged its decode ops — the
bandwidth-for-cycles trade the paper's §III-C2 proposes for SBCs.

With a pushed-down predicate attached, the scan first classifies the
zone-map blocks covering its row range (:mod:`repro.engine.zonemap`):

* ``SKIP`` blocks are provably empty — their bytes are never streamed
  (and compressed blocks are never decoded); they cost only the
  zone-map probes, charged as ``skipped_bytes``/``zone_probes``.
* ``TAKE`` blocks provably satisfy every conjunct — they are streamed
  but the per-row predicate evaluation is elided.
* ``EVAL`` blocks are streamed and evaluated vectorized, exactly like
  the explicit filter operator the optimizer replaced.

Adjacent same-kind blocks merge into runs, so an unclustered table
degenerates to a single EVAL run — i.e. the classic scan + filter
pipeline with no extra slicing. Work accounting splits across two
operators ("scan" for streaming, "filter" for predicate evaluation) so
profiles keep the operator shape of the unpushed plan.
"""

from __future__ import annotations

import numpy as np

from repro.obs.metrics import metrics
from repro.obs.trace import note

from ..column import Column
from ..compression import CompressedColumn
from ..encoded import compile_predicate
from ..frame import LATE_BREAK_SELECTIVITY, SELECTION_DTYPE, Frame
from ..table import Table
from ..zonemap import (
    BLOCK_EVAL,
    BLOCK_SKIP,
    BLOCK_TAKE,
    ZONE_MAP_BLOCK_ROWS,
    classify_blocks,
    conjoin,
    extract_sargable,
    split_conjuncts,
)

__all__ = ["execute_scan", "scan_range"]

# Process-wide data-skipping counters (cumulative across queries); the
# per-query numbers live in the WorkProfile / trace spans.
_ZONE_PROBES = metrics.counter("engine.zonemap.probes")
_BLOCKS_SKIPPED = metrics.counter("engine.zonemap.blocks_skipped")
_BLOCKS_SCANNED = metrics.counter("engine.zonemap.blocks_scanned")


def _empty_like(col) -> Column:
    """A zero-row column of the same type — built without decoding when
    the source is compressed (the all-blocks-skipped fast path)."""
    if isinstance(col, CompressedColumn):
        values = np.empty(0, dtype=col.dtype.numpy_dtype)
        return Column(col.dtype, values, dictionary=col.dictionary)
    return col.slice(0, 0)


def _merge_runs(
    codes: np.ndarray, start: int, stop: int, block_rows: int
) -> list[tuple[int, int, int]]:
    """Collapse per-block codes into ``(kind, lo, hi)`` row runs clipped
    to ``[start, stop)``, merging adjacent blocks of the same kind."""
    runs: list[tuple[int, int, int]] = []
    b0 = start // block_rows
    for i, kind in enumerate(codes):
        lo = max(start, (b0 + i) * block_rows)
        hi = min(stop, (b0 + i + 1) * block_rows)
        if hi <= lo:
            continue
        if runs and runs[-1][0] == kind and runs[-1][2] == lo:
            runs[-1] = (kind, runs[-1][1], hi)
        else:
            runs.append((int(kind), lo, hi))
    return runs


def _scan_unfiltered(
    table: Table, names: list[str], start: int, stop: int, ctx,
    compressed: bool = False,
) -> Frame:
    """The predicate-free scan: stream every requested column once."""
    full = start == 0 and stop == table.nrows
    out: dict[str, Column] = {}
    for name in names:
        col = table.column(name)
        if isinstance(col, CompressedColumn):
            fraction = (stop - start) / max(1, len(col))
            ctx.work.seq_bytes += col.nbytes * fraction
            ctx.work.ops += col.decode_ops * fraction
            if compressed and not full:
                # Partial ranges (morsels) decode only their own rows —
                # without this, every morsel would re-decode the whole
                # column and parallel scans would go quadratic.
                values = col.decode_range(start, stop)
                out[name] = Column(col.dtype, values, dictionary=col.dictionary)
                ctx.work.decoded_bytes += (stop - start) * col.dtype.width
            else:
                plain = col.to_column()
                out[name] = plain if full else plain.slice(start, stop)
                ctx.work.decoded_bytes += col.plain_nbytes
        else:
            sliced = col if full else col.slice(start, stop)
            ctx.work.seq_bytes += sliced.nbytes
            out[name] = sliced
    frame = Frame(out, stop - start)
    ctx.work.tuples_in += frame.nrows
    ctx.work.tuples_out += frame.nrows
    return frame


def scan_range(
    table: Table,
    columns: list[str] | None,
    start: int,
    stop: int,
    ctx,
    predicate=None,
    skipping: bool = True,
    late: bool = False,
    compressed: bool = False,
) -> Frame:
    """Scan rows ``[start, stop)`` of ``table``, applying ``predicate``
    (if any) with zone-map block skipping (if enabled).

    ``columns`` are the output columns; predicate-only columns are
    streamed for evaluation but dropped from the result. The serial
    executor calls this over the full table; the parallel executor calls
    it once per morsel — both share this exact code path. With
    ``compressed`` the scan compiles predicate conjuncts against encoded
    columns (:mod:`repro.engine.encoded`) and decodes per run instead of
    per column.
    """
    out_names = columns if columns is not None else table.column_names
    if predicate is None:
        return _scan_unfiltered(table, out_names, start, stop, ctx, compressed)

    conjuncts = split_conjuncts(predicate)
    sargable = [s for s in (extract_sargable(c) for c in conjuncts) if s is not None]
    all_sargable = len(sargable) == len(conjuncts)

    block_rows = ZONE_MAP_BLOCK_ROWS
    if skipping and sargable:
        codes, probes = classify_blocks(table, sargable, start, stop, block_rows)
    else:
        nblocks = max(0, -(-stop // block_rows) - start // block_rows)
        codes = np.full(nblocks, BLOCK_EVAL, dtype=np.int8)
        probes = 0
    if not all_sargable:
        # TAKE only proves the sargable conjuncts; a non-sargable residue
        # still needs per-row evaluation.
        codes[codes == BLOCK_TAKE] = BLOCK_EVAL
    runs = _merge_runs(codes, start, stop, block_rows)

    stream_names = list(out_names)
    for ref in sorted(predicate.references()):
        if ref not in stream_names:
            stream_names.append(ref)

    range_rows = stop - start
    survived = sum(hi - lo for kind, lo, hi in runs if kind != BLOCK_SKIP)
    skipped = range_rows - survived
    n_skip_blocks = int((codes == BLOCK_SKIP).sum())

    scan_work = ctx.work
    scan_work.zone_probes += probes
    scan_work.blocks_skipped += n_skip_blocks
    scan_work.blocks_scanned += len(codes) - n_skip_blocks
    if probes:
        _ZONE_PROBES.inc(probes)
    if n_skip_blocks:
        _BLOCKS_SKIPPED.inc(n_skip_blocks)
    if len(codes) - n_skip_blocks:
        _BLOCKS_SCANNED.inc(len(codes) - n_skip_blocks)
    note(ctx, runs=len(runs))

    if compressed:
        enc_plans, residual = compile_predicate(conjuncts, table)
        if enc_plans:
            return _scan_range_encoded(
                table, out_names, stream_names, runs, enc_plans, residual,
                ctx, scan_work, range_rows, survived, skipped, late,
            )

    decoded: dict[str, Column] = {}
    for name in stream_names:
        col = table.column(name)
        if isinstance(col, CompressedColumn):
            # Whole-column decode path: if any block survives we decode
            # once, but charge streaming/decode only for the surviving
            # fraction (a block-granular codec would touch exactly that
            # much); fully-skipped columns are never decoded at all.
            range_fraction = range_rows / max(1, len(col))
            live = survived / max(1, range_rows)
            scan_work.seq_bytes += col.nbytes * range_fraction * live
            scan_work.skipped_bytes += col.nbytes * range_fraction * (1.0 - live)
            if survived:
                scan_work.ops += col.decode_ops * range_fraction * live
                scan_work.decoded_bytes += col.plain_nbytes
                decoded[name] = col.to_column()
        else:
            scan_work.seq_bytes += survived * col.dtype.width
            scan_work.skipped_bytes += skipped * col.dtype.width
            decoded[name] = col
    scan_work.tuples_in += survived
    scan_work.tuples_out += survived

    # Predicate evaluation is its own operator, mirroring the explicit
    # filter the optimizer pushed down — profiles keep the same shape.
    # (Unit tests drive this with bare profile-only contexts, hence the
    # duck-typed dispatch through begin_operator when available.)
    begin = getattr(ctx, "begin_operator", None)
    if begin is not None:
        filter_work = begin("filter")
    else:
        filter_work = ctx.profile.new_operator("filter")
        ctx.work = filter_work
    note(ctx, pushdown=True)

    if late and all(name in decoded for name in stream_names):
        # Late materialization: emit the base columns untouched plus a
        # selection vector of surviving row ids. TAKE runs contribute a
        # contiguous range, EVAL runs the rows their mask keeps; no
        # column is rewritten here — the gather waits for a breaker.
        sel_parts: list[np.ndarray] = []
        for kind, lo, hi in runs:
            if kind == BLOCK_SKIP:
                continue
            filter_work.tuples_in += hi - lo
            if kind == BLOCK_TAKE:
                sel_parts.append(np.arange(lo, hi, dtype=SELECTION_DTYPE))
            else:
                run_frame = Frame(
                    {n: decoded[n].slice(lo, hi) for n in stream_names}, hi - lo
                )
                mask = predicate.evaluate(run_frame, ctx).values
                filter_work.seq_bytes += hi - lo  # the mask / candidate list
                sel_parts.append((lo + np.flatnonzero(mask)).astype(SELECTION_DTYPE))
        if len(sel_parts) == 1:
            sel = sel_parts[0]
        elif sel_parts:
            sel = np.concatenate(sel_parts)
        else:
            sel = np.empty(0, dtype=SELECTION_DTYPE)
        out_frame = Frame({n: decoded[n] for n in out_names}, selection=sel)
        if (
            not out_frame._selection_is_contiguous()
            and out_frame.nrows > LATE_BREAK_SELECTIVITY * max(1, survived)
        ):
            # The selection is dense but scattered: the deferred gathers
            # would touch almost every cache line, so break the vector
            # here and pay the streaming rewrite an eager filter pays.
            out_frame = out_frame.dense()
            filter_work.tuples_out += out_frame.nrows
            filter_work.out_bytes += out_frame.nbytes
            note(ctx, late=True, broke=True)
            return out_frame
        filter_work.tuples_out += out_frame.nrows
        filter_work.out_bytes += sel.nbytes
        # The compact column rewrite an eager filter would have paid.
        filter_work.saved_bytes += out_frame.nbytes
        note(ctx, late=True)
        return out_frame

    pieces: list[Frame] = []
    for kind, lo, hi in runs:
        if kind == BLOCK_SKIP:
            continue
        frame = Frame({n: decoded[n].slice(lo, hi) for n in stream_names}, hi - lo)
        filter_work.tuples_in += frame.nrows
        if kind == BLOCK_EVAL:
            mask = predicate.evaluate(frame, ctx).values
            frame = frame.filter(mask)
            filter_work.seq_bytes += hi - lo  # the mask / candidate list
        pieces.append(frame)

    if pieces:
        n_out = sum(p.nrows for p in pieces)
        if len(pieces) == 1:
            out_cols = {n: pieces[0].column(n) for n in out_names}
        else:
            out_cols = {
                n: Column.concat([p.column(n) for p in pieces]) for n in out_names
            }
    else:
        n_out = 0
        out_cols = {n: _empty_like(table.column(n)) for n in out_names}
    out_frame = Frame(out_cols, n_out)
    filter_work.tuples_out += n_out
    filter_work.out_bytes += out_frame.nbytes
    return out_frame


def _decoded_slice(table: Table, name: str, lo: int, hi: int, scan_work) -> Column:
    """Materialize rows ``[lo, hi)`` of one column, charging the decode
    (bytes + ops) to the scan operator; plain columns slice zero-copy."""
    col = table.column(name)
    if isinstance(col, CompressedColumn):
        scan_work.decoded_bytes += (hi - lo) * col.dtype.width
        scan_work.ops += col.decode_ops * (hi - lo) / max(1, len(col))
        return Column(col.dtype, col.decode_range(lo, hi), dictionary=col.dictionary)
    return col.slice(lo, hi)


def _scan_range_encoded(
    table: Table,
    out_names: list[str],
    stream_names: list[str],
    runs: list[tuple[int, int, int]],
    plans: list,
    residual: list,
    ctx,
    scan_work,
    range_rows: int,
    survived: int,
    skipped: int,
    late: bool = False,
) -> Frame:
    """Predicated scan with compiled encoded conjuncts.

    EVAL runs test the packed payloads directly (no int64
    materialization); only the output columns of surviving runs — plus
    whatever a residual (uncompiled) conjunct reads — are ever decoded.
    A skipped-then-filtered block therefore never decodes at all, and
    compiled predicate-only columns never decode anywhere. With ``late``
    the output rides a selection vector over whole-decoded base columns
    (the late pipeline needs absolute row ids), so the decode saving is
    confined to predicate-only columns — but the rewrite saving and the
    deferred gather compose exactly as on plain tables.
    """
    residual_pred = conjoin(residual)
    residual_names = (
        sorted({n for c in residual for n in c.references()}) if residual else []
    )

    for name in stream_names:
        col = table.column(name)
        if isinstance(col, CompressedColumn):
            range_fraction = range_rows / max(1, len(col))
            live = survived / max(1, range_rows)
            scan_work.seq_bytes += col.nbytes * range_fraction * live
            scan_work.skipped_bytes += col.nbytes * range_fraction * (1.0 - live)
        else:
            scan_work.seq_bytes += survived * col.dtype.width
            scan_work.skipped_bytes += skipped * col.dtype.width
    scan_work.tuples_in += survived
    scan_work.tuples_out += survived

    begin = getattr(ctx, "begin_operator", None)
    if begin is not None:
        filter_work = begin("filter")
    else:
        filter_work = ctx.profile.new_operator("filter")
        ctx.work = filter_work
    note(ctx, pushdown=True, encoded=True)

    if late and survived:
        # Late materialization over encoded predicates: base columns the
        # frame carries (outputs + residual inputs) whole-decode exactly
        # as on the decode path, but compiled predicate-only columns are
        # never decoded and EVAL-run masks come from the packed domain.
        decoded: dict[str, Column] = {}
        late_names = list(out_names) + [
            n for n in residual_names if n not in out_names
        ]
        for name in late_names:
            col = table.column(name)
            if isinstance(col, CompressedColumn):
                range_fraction = range_rows / max(1, len(col))
                live = survived / max(1, range_rows)
                scan_work.ops += col.decode_ops * range_fraction * live
                scan_work.decoded_bytes += col.plain_nbytes
                decoded[name] = col.to_column()
            else:
                decoded[name] = col
        sel_parts: list[np.ndarray] = []
        for kind, lo, hi in runs:
            if kind == BLOCK_SKIP:
                continue
            filter_work.tuples_in += hi - lo
            if kind == BLOCK_TAKE:
                sel_parts.append(np.arange(lo, hi, dtype=SELECTION_DTYPE))
                continue
            mask = None
            for plan in plans:
                m = plan.mask(lo, hi, filter_work)
                mask = m if mask is None else mask & m
            if residual_pred is not None:
                run_frame = Frame(
                    {n: decoded[n].slice(lo, hi) for n in residual_names},
                    hi - lo,
                )
                rmask = residual_pred.evaluate(run_frame, ctx).values
                mask = rmask if mask is None else mask & rmask
            filter_work.seq_bytes += hi - lo  # the mask / candidate list
            sel_parts.append((lo + np.flatnonzero(mask)).astype(SELECTION_DTYPE))
        if len(sel_parts) == 1:
            sel = sel_parts[0]
        elif sel_parts:
            sel = np.concatenate(sel_parts)
        else:
            sel = np.empty(0, dtype=SELECTION_DTYPE)
        out_frame = Frame({n: decoded[n] for n in out_names}, selection=sel)
        if (
            not out_frame._selection_is_contiguous()
            and out_frame.nrows > LATE_BREAK_SELECTIVITY * max(1, survived)
        ):
            out_frame = out_frame.dense()
            filter_work.tuples_out += out_frame.nrows
            filter_work.out_bytes += out_frame.nbytes
            note(ctx, late=True, broke=True)
            return out_frame
        filter_work.tuples_out += out_frame.nrows
        filter_work.out_bytes += sel.nbytes
        filter_work.saved_bytes += out_frame.nbytes
        note(ctx, late=True)
        return out_frame

    pieces: list[Frame] = []
    for kind, lo, hi in runs:
        if kind == BLOCK_SKIP:
            continue
        filter_work.tuples_in += hi - lo
        cache: dict[str, Column] = {}

        def run_slice(name: str, lo=lo, hi=hi, cache=cache) -> Column:
            if name not in cache:
                cache[name] = _decoded_slice(table, name, lo, hi, scan_work)
            return cache[name]

        frame = None
        if kind == BLOCK_EVAL:
            mask = None
            for plan in plans:
                m = plan.mask(lo, hi, filter_work)
                mask = m if mask is None else mask & m
            if residual_pred is not None:
                run_frame = Frame(
                    {n: run_slice(n) for n in residual_names}, hi - lo
                )
                rmask = residual_pred.evaluate(run_frame, ctx).values
                mask = rmask if mask is None else mask & rmask
            filter_work.seq_bytes += hi - lo  # the mask / candidate list
            frame = Frame({n: run_slice(n) for n in out_names}, hi - lo).filter(mask)
        else:  # BLOCK_TAKE — the zone map proved every row survives
            frame = Frame({n: run_slice(n) for n in out_names}, hi - lo)
        pieces.append(frame)

    if pieces:
        n_out = sum(p.nrows for p in pieces)
        if len(pieces) == 1:
            out_cols = {n: pieces[0].column(n) for n in out_names}
        else:
            out_cols = {
                n: Column.concat([p.column(n) for p in pieces]) for n in out_names
            }
    else:
        n_out = 0
        out_cols = {n: _empty_like(table.column(n)) for n in out_names}
    out_frame = Frame(out_cols, n_out)
    filter_work.tuples_out += n_out
    filter_work.out_bytes += out_frame.nbytes
    return out_frame


def execute_scan(
    table: Table,
    columns: list[str] | None,
    ctx,
    predicate=None,
    skipping: bool = True,
    late: bool = False,
    compressed: bool = False,
) -> Frame:
    """Read ``columns`` (default: all) of ``table``.

    Accounting: a columnar scan streams every referenced column array
    sequentially through memory once — the dominant memory-bandwidth term
    for OLAP queries (and the reason Q1 is the Pi's worst query).
    Compressed columns stream fewer bytes but cost decode ops. Blocks a
    zone map proves empty against the pushed-down predicate are charged
    ``skipped_bytes`` (and zone probes) instead of streaming. With
    ``late`` a predicated scan returns a selection vector over the base
    columns instead of rewriting the survivors. With ``compressed``
    sargable conjuncts evaluate directly on the encoded payloads.
    """
    return scan_range(
        table, columns, 0, table.nrows, ctx, predicate, skipping, late, compressed
    )
