"""Table scan: materializes the requested columns of a base table.

Handles both plain and compressed columns: a compressed column is
streamed at its compressed size and charged its decode ops — the
bandwidth-for-cycles trade the paper's §III-C2 proposes for SBCs.
"""

from __future__ import annotations

from ..column import Column
from ..compression import CompressedColumn
from ..frame import Frame
from ..table import Table

__all__ = ["execute_scan"]


def execute_scan(table: Table, columns: list[str] | None, ctx) -> Frame:
    """Read ``columns`` (default: all) of ``table``.

    Accounting: a columnar scan streams every referenced column array
    sequentially through memory once — the dominant memory-bandwidth term
    for OLAP queries (and the reason Q1 is the Pi's worst query).
    Compressed columns stream fewer bytes but cost decode ops.
    """
    names = columns if columns is not None else table.column_names
    out: dict[str, Column] = {}
    for name in names:
        col = table.column(name)
        if isinstance(col, CompressedColumn):
            ctx.work.seq_bytes += col.nbytes
            ctx.work.ops += col.decode_ops
            out[name] = col.to_column()
        else:
            ctx.work.seq_bytes += col.nbytes
            out[name] = col
    frame = Frame(out, table.nrows)
    ctx.work.tuples_in += frame.nrows
    ctx.work.tuples_out += frame.nrows
    return frame
