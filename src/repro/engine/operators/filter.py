"""Selection: evaluate a boolean expression and keep matching rows."""

from __future__ import annotations

from repro.obs.trace import note

from ..expr import Expr
from ..frame import LATE_BREAK_SELECTIVITY, Frame

__all__ = ["execute_filter"]


def execute_filter(frame: Frame, predicate: Expr, ctx, late: bool = False) -> Frame:
    """Keep the rows of ``frame`` where ``predicate`` is true.

    The predicate's per-row arithmetic is charged by the expression
    evaluator; the filter itself charges the selection-vector
    materialization. Eager mode rewrites the output columns compactly
    (MonetDB's candidate-list execution); late mode emits or composes a
    selection vector over the input's base columns and defers the
    rewrite to a pipeline breaker.
    """
    mask = predicate.evaluate(frame, ctx).values
    if late or frame.is_late:
        out = frame.filter_late(mask) if late else frame.filter(mask)
        if (
            out.is_late
            and not out._selection_is_contiguous()
            and out.nrows > LATE_BREAK_SELECTIVITY * frame.nrows
        ):
            # Dense-but-scattered survivors: break the selection vector
            # and rewrite compactly (streaming beats point gathers here).
            out = out.dense()
    else:
        out = frame.filter(mask)
    ctx.work.tuples_in += frame.nrows
    ctx.work.tuples_out += out.nrows
    ctx.work.seq_bytes += frame.nrows  # the mask/candidate list itself
    ctx.work.gather_bytes += frame.drain_gather_debt()
    if out.is_late:
        ctx.work.out_bytes += out.selection.nbytes
        ctx.work.saved_bytes += out.nbytes  # the avoided compact rewrite
    else:
        ctx.work.out_bytes += out.nbytes
    note(
        ctx,
        selectivity=out.nrows / frame.nrows if frame.nrows else 0.0,
        late=out.is_late,
    )
    return out
