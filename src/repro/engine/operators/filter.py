"""Selection: evaluate a boolean expression and keep matching rows."""

from __future__ import annotations

from ..expr import Expr
from ..frame import Frame

__all__ = ["execute_filter"]


def execute_filter(frame: Frame, predicate: Expr, ctx) -> Frame:
    """Keep the rows of ``frame`` where ``predicate`` is true.

    The predicate's per-row arithmetic is charged by the expression
    evaluator; the filter itself charges the selection-vector
    materialization (output columns are rewritten compactly, as in
    MonetDB's candidate-list execution).
    """
    mask = predicate.evaluate(frame, ctx).values
    out = frame.filter(mask)
    ctx.work.tuples_in += frame.nrows
    ctx.work.tuples_out += out.nrows
    ctx.work.seq_bytes += frame.nrows  # the mask/candidate list itself
    ctx.work.out_bytes += out.nbytes
    return out
