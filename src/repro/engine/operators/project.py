"""Projection: compute named expressions into a new frame."""

from __future__ import annotations

from repro.obs.trace import note

from ..expr import ColRef, Expr
from ..frame import Frame

__all__ = ["execute_project"]


def execute_project(frame: Frame, exprs: dict[str, Expr], ctx) -> Frame:
    """Evaluate ``exprs`` over ``frame``; the output has exactly those
    columns. Plain column references are zero-copy, and a pass-through
    projection over a late frame keeps its selection vector intact
    (renaming base columns costs nothing)."""
    if frame.is_late and all(isinstance(e, ColRef) for e in exprs.values()):
        columns = {name: frame.columns[e.name] for name, e in exprs.items()}
        out = Frame(columns, selection=frame.selection)
        ctx.work.tuples_in += frame.nrows
        ctx.work.tuples_out += out.nrows
        note(ctx, exprs=len(exprs), passthrough=True)
        return out
    columns = {}
    materialized_bytes = 0
    for name, expr in exprs.items():
        column = expr.evaluate(frame, ctx)
        columns[name] = column
        if not isinstance(expr, ColRef):
            materialized_bytes += column.nbytes
    out = Frame(columns, frame.nrows)
    ctx.work.tuples_in += frame.nrows
    ctx.work.tuples_out += out.nrows
    ctx.work.out_bytes += materialized_bytes
    ctx.work.gather_bytes += frame.drain_gather_debt()
    note(ctx, exprs=len(exprs))
    return out
