"""Projection: compute named expressions into a new frame."""

from __future__ import annotations

from ..expr import ColRef, Expr
from ..frame import Frame

__all__ = ["execute_project"]


def execute_project(frame: Frame, exprs: dict[str, Expr], ctx) -> Frame:
    """Evaluate ``exprs`` over ``frame``; the output has exactly those
    columns. Plain column references are zero-copy."""
    columns = {}
    materialized_bytes = 0
    for name, expr in exprs.items():
        column = expr.evaluate(frame, ctx)
        columns[name] = column
        if not isinstance(expr, ColRef):
            materialized_bytes += column.nbytes
    out = Frame(columns, frame.nrows)
    ctx.work.tuples_in += frame.nrows
    ctx.work.tuples_out += out.nrows
    ctx.work.out_bytes += materialized_bytes
    return out
