"""LIMIT: keep the first n rows."""

from __future__ import annotations

from repro.obs.trace import note

from ..frame import Frame

__all__ = ["execute_limit"]


def execute_limit(frame: Frame, n: int, ctx) -> Frame:
    out = frame.slice(0, n)
    ctx.work.tuples_in += frame.nrows
    ctx.work.tuples_out += out.nrows
    ctx.work.out_bytes += out.nbytes
    note(ctx, n=n)
    return out
