"""Order-by via numpy lexsort.

String columns sort by dictionary code, which is order-preserving because
dictionaries are built sorted (``np.unique``).
"""

from __future__ import annotations

import math

import numpy as np

from repro.obs.trace import note

from ..frame import Frame
from ..types import STRING

__all__ = ["execute_sort", "execute_topk"]


def _sort_key(frame: Frame, name: str, ascending: bool) -> np.ndarray:
    column = frame.column(name)
    values = column.values
    if column.dtype is STRING:
        # Codes are only order-preserving against the column's own sorted
        # dictionary; re-rank through it to be safe after joins/substrings.
        rank = np.argsort(np.argsort(column.dictionary))
        values = rank[values]
    values = values.astype(np.float64)
    if column.valid is not None:
        # NULLs sort last regardless of direction.
        values = np.where(column.valid, values, np.inf if ascending else -np.inf)
    return values if ascending else -values


def execute_topk(frame: Frame, keys: list[tuple[str, str]], n: int, ctx) -> Frame:
    """Fused ORDER BY + LIMIT n (top-k).

    For a single sort key this selects the k smallest with a partition
    (O(N + k log k) instead of O(N log N)) — the optimization real
    engines apply to Q3/Q10/Q18-style top-k queries. Multi-key sorts
    partition on the primary key first and fall back to a full sort of
    the (rare) boundary ties.
    """
    if n <= 0:
        return frame.slice(0, 0)
    if frame.nrows <= n or not keys:
        out = execute_sort(frame, keys, ctx)
        return out.slice(0, n)

    primary = _sort_key(frame, keys[0][0], keys[0][1] == "asc")
    # Keep everything tied with the n-th primary value so secondary keys
    # (and the stable original order) decide the final cut exactly as a
    # full stable sort would.
    partitioned = np.argpartition(primary, n - 1)
    threshold = primary[partitioned[n - 1]]
    candidate_idx = np.flatnonzero(primary <= threshold)
    candidates = frame.take(candidate_idx)
    out = execute_sort(candidates, keys, ctx)
    out = out.slice(0, n)
    # The selection pass itself: one streaming comparison per row.
    ctx.work.tuples_in += frame.nrows
    ctx.work.ops += frame.nrows
    ctx.work.seq_bytes += frame.column(keys[0][0]).nbytes
    ctx.work.gather_bytes += frame.drain_gather_debt()
    note(ctx, k=n, candidates=len(candidate_idx))
    return out


def execute_sort(frame: Frame, keys: list[tuple[str, str]], ctx) -> Frame:
    """Sort by ``keys`` — a list of ``(column, "asc"|"desc")`` pairs,
    most-significant first."""
    if frame.nrows == 0:
        return frame
    arrays = [_sort_key(frame, name, direction == "asc") for name, direction in keys]
    order = np.lexsort(arrays[::-1])  # lexsort's last key is primary
    out = frame.take(order)
    n = frame.nrows
    ctx.work.tuples_in += n
    ctx.work.tuples_out += n
    ctx.work.ops += n * max(1, int(math.log2(n)) if n > 1 else 1)
    ctx.work.rand_accesses += n  # the reorder gather
    ctx.work.seq_bytes += sum(frame.column(k).nbytes for k, _ in keys)
    ctx.work.out_bytes += out.nbytes
    ctx.work.gather_bytes += frame.drain_gather_debt()
    note(ctx, keys=len(keys))
    return out
