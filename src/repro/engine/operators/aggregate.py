"""Hash group-by aggregation.

Supports SUM, AVG, MIN, MAX, COUNT (non-null), COUNT(*), and
COUNT(DISTINCT expr), with zero or more grouping keys. Grouping keys are
factorized per column and mixed into a single group id, after which each
aggregate reduces with ``np.bincount`` / ``ufunc.at``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..column import Column
from ..expr import Expr
from ..frame import Frame
from ..types import FLOAT64, INT64, STRING

__all__ = ["AggSpec", "execute_aggregate", "sum_", "avg", "count", "count_star", "count_distinct", "min_", "max_"]


@dataclass(frozen=True)
class AggSpec:
    """One aggregate: a function name and (for all but COUNT(*)) an input
    expression."""

    func: str
    expr: Expr | None = None


def sum_(expr: Expr) -> AggSpec:
    return AggSpec("sum", expr)


def avg(expr: Expr) -> AggSpec:
    return AggSpec("avg", expr)


def count(expr: Expr) -> AggSpec:
    return AggSpec("count", expr)


def count_star() -> AggSpec:
    return AggSpec("count_star")


def count_distinct(expr: Expr) -> AggSpec:
    return AggSpec("count_distinct", expr)


def min_(expr: Expr) -> AggSpec:
    return AggSpec("min", expr)


def max_(expr: Expr) -> AggSpec:
    return AggSpec("max", expr)


def _group_ids(frame: Frame, keys: list[str]) -> tuple[np.ndarray, int, np.ndarray]:
    """Factorize key columns into dense group ids.

    Returns ``(gids, n_groups, first_row_of_group)``.
    """
    if not keys:
        gids = np.zeros(frame.nrows, dtype=np.int64)
        return gids, 1, np.zeros(1, dtype=np.int64)
    combined = np.zeros(frame.nrows, dtype=np.int64)
    for name in keys:
        column = frame.column(name)
        values = column.values
        if column.valid is not None:
            # Treat NULL as its own group key (SQL GROUP BY semantics).
            values = np.where(column.valid, values, values.min() - 1 if len(values) else 0)
        _, codes = np.unique(values, return_inverse=True)
        card = int(codes.max()) + 1 if len(codes) else 1
        combined = combined * card + codes
    uniques, gids = np.unique(combined, return_inverse=True)
    n_groups = len(uniques)
    first = np.full(n_groups, -1, dtype=np.int64)
    # First occurrence per group (reverse pass keeps the earliest row).
    first[gids[::-1]] = np.arange(frame.nrows - 1, -1, -1)
    return gids, n_groups, first


def _input(spec: AggSpec, frame: Frame, ctx) -> Column:
    assert spec.expr is not None
    return spec.expr.evaluate(frame, ctx)


def execute_aggregate(
    frame: Frame,
    group_by: list[str],
    aggs: dict[str, AggSpec],
    ctx,
) -> Frame:
    """Group ``frame`` by ``group_by`` and compute ``aggs``.

    With no grouping keys the result has exactly one row (global
    aggregate), even over empty input (COUNT=0, SUM=0, MIN/MAX=NaN).
    """
    gids, n_groups, first = _group_ids(frame, group_by)

    out_columns: dict[str, Column] = {}
    for name in group_by:
        out_columns[name] = frame.column(name).take(first)

    ones = None
    for name, spec in aggs.items():
        if spec.func == "count_star":
            counts = np.bincount(gids, minlength=n_groups)
            out_columns[name] = Column(INT64, counts.astype(np.int64))
            continue
        column = _input(spec, frame, ctx)
        values = column.values.astype(np.float64)
        valid = column.valid
        if spec.func == "sum":
            weights = values if valid is None else np.where(valid, values, 0.0)
            out = np.bincount(gids, weights=weights, minlength=n_groups)
            out_columns[name] = Column(FLOAT64, out)
        elif spec.func == "avg":
            weights = values if valid is None else np.where(valid, values, 0.0)
            sums = np.bincount(gids, weights=weights, minlength=n_groups)
            if valid is None:
                counts = np.bincount(gids, minlength=n_groups)
            else:
                counts = np.bincount(gids, weights=valid.astype(np.float64), minlength=n_groups)
            with np.errstate(invalid="ignore", divide="ignore"):
                out_columns[name] = Column(FLOAT64, sums / counts)
        elif spec.func == "count":
            if valid is None:
                if ones is None:
                    ones = np.ones(frame.nrows)
                counts = np.bincount(gids, minlength=n_groups)
            else:
                counts = np.bincount(gids, weights=valid.astype(np.float64), minlength=n_groups)
            out_columns[name] = Column(INT64, counts.astype(np.int64))
        elif spec.func in ("min", "max"):
            init = np.inf if spec.func == "min" else -np.inf
            out = np.full(n_groups, init, dtype=np.float64)
            target = values if valid is None else values[valid]
            target_gids = gids if valid is None else gids[valid]
            if spec.func == "min":
                np.minimum.at(out, target_gids, target)
            else:
                np.maximum.at(out, target_gids, target)
            out[~np.isfinite(out)] = np.nan
            if column.dtype is INT64:
                safe = np.where(np.isnan(out), 0, out)
                out_columns[name] = Column(
                    INT64, safe.astype(np.int64), valid=~np.isnan(out) if np.isnan(out).any() else None
                )
            else:
                out_columns[name] = Column(FLOAT64, out)
        elif spec.func == "count_distinct":
            key = column.decoded() if column.dtype is STRING else column.values
            pair_gids = gids
            if valid is not None:
                key, pair_gids = key[valid], gids[valid]
            # Count unique (gid, value) pairs per gid.
            order = np.lexsort((key, pair_gids))
            sg, sk = pair_gids[order], key[order]
            if len(sg):
                new = np.ones(len(sg), dtype=bool)
                new[1:] = (sg[1:] != sg[:-1]) | (sk[1:] != sk[:-1])
                counts = np.bincount(sg[new], minlength=n_groups)
            else:
                counts = np.zeros(n_groups, dtype=np.int64)
            out_columns[name] = Column(INT64, counts.astype(np.int64))
        else:
            raise ValueError(f"unknown aggregate {spec.func!r}")

    out = Frame(out_columns, n_groups)
    # Work accounting: one hash insert (random access) per input row per
    # grouped aggregate pass, plus streaming the aggregate inputs.
    ctx.work.tuples_in += frame.nrows
    ctx.work.tuples_out += n_groups
    ctx.work.ops += frame.nrows * max(1, len(aggs))
    ctx.work.rand_accesses += frame.nrows if group_by else 0
    ctx.work.seq_bytes += frame.nrows * 8 * max(1, len(aggs))
    ctx.work.out_bytes += out.nbytes
    return out
