"""Hash group-by aggregation.

Supports SUM, AVG, MIN, MAX, COUNT (non-null), COUNT(*), and
COUNT(DISTINCT expr), with zero or more grouping keys. Grouping keys are
factorized per column and mixed into a single group id, after which each
aggregate reduces with ``np.bincount`` / ``ufunc.at``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.obs.trace import note

from ..column import Column
from ..expr import Expr
from ..frame import Frame
from ..keycache import combine_codes, key_cache
from ..types import FLOAT64, INT64, STRING

__all__ = ["AggSpec", "execute_aggregate", "try_encoded_aggregate", "sum_", "avg", "count", "count_star", "count_distinct", "min_", "max_"]


@dataclass(frozen=True)
class AggSpec:
    """One aggregate: a function name and (for all but COUNT(*)) an input
    expression."""

    func: str
    expr: Expr | None = None


def sum_(expr: Expr) -> AggSpec:
    return AggSpec("sum", expr)


def avg(expr: Expr) -> AggSpec:
    return AggSpec("avg", expr)


def count(expr: Expr) -> AggSpec:
    return AggSpec("count", expr)


def count_star() -> AggSpec:
    return AggSpec("count_star")


def count_distinct(expr: Expr) -> AggSpec:
    return AggSpec("count_distinct", expr)


def min_(expr: Expr) -> AggSpec:
    return AggSpec("min", expr)


def max_(expr: Expr) -> AggSpec:
    return AggSpec("max", expr)


def try_encoded_aggregate(node, db, ctx) -> Frame | None:
    """Run-level fast path for ``AggregateNode(ScanNode)`` without a
    predicate: group by an RLE key's runs and reduce aggregate inputs
    over ``(value, run_length)`` segments (:mod:`repro.engine.encoded`).

    Returns ``None`` — and the caller executes the ordinary
    scan-then-hash pipeline — whenever the compiled plan cannot prove
    bit-identical output. Dispatch outcomes land in the
    ``engine.encoded.aggregate`` hit/miss metrics, with misses counted
    only when the aggregation actually reads compressed columns.
    """
    from ..compression import CompressedColumn
    from ..encoded import aggregate_stats, prepare_aggregate

    table = db.table(node.child.table)
    plan = prepare_aggregate(table, list(node.group_by), dict(node.aggs))
    if plan is None:
        refs = set(node.group_by)
        for spec in dict(node.aggs).values():
            if spec.expr is not None:
                refs |= spec.expr.references()
        if any(
            isinstance(table.columns.get(n), CompressedColumn) for n in refs
        ):
            aggregate_stats.miss()
        return None
    aggregate_stats.hit()
    return plan.execute(ctx)


def _key_codes(column: Column) -> tuple[np.ndarray, int]:
    """Dense factorization codes for one grouping column, with NULL as
    its own group (SQL GROUP BY semantics).

    NULL gets the reserved code 0 and valid values shift up by one —
    never a ``values.min() - 1`` sentinel, which collides with real data
    (or wraps) when the column already holds the dtype minimum. NULLs
    keep sorting before every valid value, exactly where the old
    sentinel placed them, so group output order is unchanged.
    """
    values = column.values
    if column.valid is not None and not bool(column.valid.all()):
        uniques = np.unique(values[column.valid])
        codes = np.searchsorted(uniques, values) + 1
        codes[~column.valid] = 0
        return codes.astype(np.int64, copy=False), len(uniques) + 1
    uniques, codes = key_cache.factorize(values)
    return codes, max(1, len(uniques))


def _group_ids(frame: Frame, keys: list[str]) -> tuple[np.ndarray, int, np.ndarray]:
    """Factorize key columns into dense group ids.

    Returns ``(gids, n_groups, first_row_of_group)``.
    """
    if not keys:
        gids = np.zeros(frame.nrows, dtype=np.int64)
        return gids, 1, np.zeros(1, dtype=np.int64)
    code_arrays: list[np.ndarray] = []
    cards: list[int] = []
    for name in keys:
        codes, card = _key_codes(frame.column(name))
        code_arrays.append(codes)
        cards.append(card)
    combined = combine_codes(code_arrays, cards)
    uniques, gids = np.unique(combined, return_inverse=True)
    n_groups = len(uniques)
    first = np.full(n_groups, -1, dtype=np.int64)
    # First occurrence per group (reverse pass keeps the earliest row).
    first[gids[::-1]] = np.arange(frame.nrows - 1, -1, -1)
    return gids, n_groups, first


def _input(spec: AggSpec, frame: Frame, ctx) -> Column:
    assert spec.expr is not None
    return spec.expr.evaluate(frame, ctx)


def _global_aggregate(frame: Frame, aggs: dict[str, AggSpec], ctx) -> Frame:
    """Grouping-free fast path: reduce each aggregate input directly with
    ``np.sum``/``np.min``/``np.max`` instead of building group ids and
    ``bincount``-ing against them.

    This is the tail of the fused filter+aggregate pipeline for Q6-class
    queries: the input is typically a late frame, so each aggregate
    input gathers only the surviving rows of the columns it reads, and
    COUNT(*) reads nothing at all. Output rows/dtypes/NaN semantics
    match the grouped path with one group exactly; sums reduce through
    the same ``bincount`` kernel so float accumulation order (and thus
    the last ulp) is identical to the grouped path.
    """
    zeros: np.ndarray | None = None

    def _total(weights: np.ndarray) -> float:
        nonlocal zeros
        if zeros is None:
            zeros = np.zeros(frame.nrows, dtype=np.intp)
        return float(np.bincount(zeros, weights=weights, minlength=1)[0])

    out_columns: dict[str, Column] = {}
    for name, spec in aggs.items():
        if spec.func == "count_star":
            out_columns[name] = Column(INT64, np.asarray([frame.nrows], dtype=np.int64))
            continue
        column = _input(spec, frame, ctx)
        values = column.values.astype(np.float64)
        valid = column.valid
        if spec.func == "sum":
            weights = values if valid is None else np.where(valid, values, 0.0)
            out_columns[name] = Column(FLOAT64, np.asarray([_total(weights)]))
        elif spec.func == "avg":
            weights = values if valid is None else np.where(valid, values, 0.0)
            total = _total(weights)
            count = float(frame.nrows) if valid is None else float(valid.sum())
            with np.errstate(invalid="ignore", divide="ignore"):
                out_columns[name] = Column(FLOAT64, np.asarray([total]) / count if count else np.asarray([np.nan]))
        elif spec.func == "count":
            count = frame.nrows if valid is None else int(valid.sum())
            out_columns[name] = Column(INT64, np.asarray([count], dtype=np.int64))
        elif spec.func == "isum":
            weights = values if valid is None else np.where(valid, values, 0.0)
            out_columns[name] = Column(
                INT64, np.asarray([round(_total(weights))], dtype=np.int64)
            )
        elif spec.func in ("min", "max"):
            target = values if valid is None else values[valid]
            if len(target):
                extreme = float(target.min() if spec.func == "min" else target.max())
            else:
                extreme = np.nan
            out = np.asarray([extreme])
            if column.dtype is INT64:
                safe = np.where(np.isnan(out), 0, out)
                out_columns[name] = Column(
                    INT64, safe.astype(np.int64),
                    valid=~np.isnan(out) if np.isnan(out).any() else None,
                )
            else:
                out_columns[name] = Column(FLOAT64, out)
        elif spec.func == "count_distinct":
            key = column.decoded() if column.dtype is STRING else column.values
            if valid is not None:
                key = key[valid]
            out_columns[name] = Column(INT64, np.asarray([len(np.unique(key))], dtype=np.int64))
        else:
            raise ValueError(f"unknown aggregate {spec.func!r}")

    out = Frame(out_columns, 1)
    ctx.work.tuples_in += frame.nrows
    ctx.work.tuples_out += 1
    ctx.work.ops += frame.nrows * max(1, len(aggs))
    ctx.work.seq_bytes += frame.nrows * 8 * max(1, len(aggs))
    ctx.work.out_bytes += out.nbytes
    ctx.work.gather_bytes += frame.drain_gather_debt()
    note(ctx, groups=1, aggs=len(aggs))
    return out


def execute_aggregate(
    frame: Frame,
    group_by: list[str],
    aggs: dict[str, AggSpec],
    ctx,
) -> Frame:
    """Group ``frame`` by ``group_by`` and compute ``aggs``.

    With no grouping keys the result has exactly one row (global
    aggregate), even over empty input (COUNT=0, SUM=0, MIN/MAX=NaN).
    """
    if not group_by:
        return _global_aggregate(frame, aggs, ctx)
    gids, n_groups, first = _group_ids(frame, group_by)

    out_columns: dict[str, Column] = {}
    for name in group_by:
        out_columns[name] = frame.column(name).take(first)

    ones = None
    for name, spec in aggs.items():
        if spec.func == "count_star":
            counts = np.bincount(gids, minlength=n_groups)
            out_columns[name] = Column(INT64, counts.astype(np.int64))
            continue
        column = _input(spec, frame, ctx)
        values = column.values.astype(np.float64)
        valid = column.valid
        if spec.func == "sum":
            weights = values if valid is None else np.where(valid, values, 0.0)
            out = np.bincount(gids, weights=weights, minlength=n_groups)
            out_columns[name] = Column(FLOAT64, out)
        elif spec.func == "avg":
            weights = values if valid is None else np.where(valid, values, 0.0)
            sums = np.bincount(gids, weights=weights, minlength=n_groups)
            if valid is None:
                counts = np.bincount(gids, minlength=n_groups)
            else:
                counts = np.bincount(gids, weights=valid.astype(np.float64), minlength=n_groups)
            with np.errstate(invalid="ignore", divide="ignore"):
                out_columns[name] = Column(FLOAT64, sums / counts)
        elif spec.func == "count":
            if valid is None:
                if ones is None:
                    ones = np.ones(frame.nrows)
                counts = np.bincount(gids, minlength=n_groups)
            else:
                counts = np.bincount(gids, weights=valid.astype(np.float64), minlength=n_groups)
            out_columns[name] = Column(INT64, counts.astype(np.int64))
        elif spec.func == "isum":
            # Exact integer sum: recombines COUNT-valued partial states
            # (rollup cells, two-phase merges). Inputs are integral and
            # far below 2**53, so the float accumulator is exact.
            weights = values if valid is None else np.where(valid, values, 0.0)
            out = np.bincount(gids, weights=weights, minlength=n_groups)
            out_columns[name] = Column(INT64, np.rint(out).astype(np.int64))
        elif spec.func in ("min", "max"):
            init = np.inf if spec.func == "min" else -np.inf
            out = np.full(n_groups, init, dtype=np.float64)
            target = values if valid is None else values[valid]
            target_gids = gids if valid is None else gids[valid]
            if spec.func == "min":
                np.minimum.at(out, target_gids, target)
            else:
                np.maximum.at(out, target_gids, target)
            out[~np.isfinite(out)] = np.nan
            if column.dtype is INT64:
                safe = np.where(np.isnan(out), 0, out)
                out_columns[name] = Column(
                    INT64, safe.astype(np.int64), valid=~np.isnan(out) if np.isnan(out).any() else None
                )
            else:
                out_columns[name] = Column(FLOAT64, out)
        elif spec.func == "count_distinct":
            key = column.decoded() if column.dtype is STRING else column.values
            pair_gids = gids
            if valid is not None:
                key, pair_gids = key[valid], gids[valid]
            # Count unique (gid, value) pairs per gid.
            order = np.lexsort((key, pair_gids))
            sg, sk = pair_gids[order], key[order]
            if len(sg):
                new = np.ones(len(sg), dtype=bool)
                new[1:] = (sg[1:] != sg[:-1]) | (sk[1:] != sk[:-1])
                counts = np.bincount(sg[new], minlength=n_groups)
            else:
                counts = np.zeros(n_groups, dtype=np.int64)
            out_columns[name] = Column(INT64, counts.astype(np.int64))
        else:
            raise ValueError(f"unknown aggregate {spec.func!r}")

    out = Frame(out_columns, n_groups)
    # Work accounting: one hash insert (random access) per input row per
    # grouped aggregate pass, plus streaming the aggregate inputs.
    ctx.work.tuples_in += frame.nrows
    ctx.work.tuples_out += n_groups
    ctx.work.ops += frame.nrows * max(1, len(aggs))
    ctx.work.rand_accesses += frame.nrows if group_by else 0
    ctx.work.seq_bytes += frame.nrows * 8 * max(1, len(aggs))
    ctx.work.out_bytes += out.nbytes
    ctx.work.gather_bytes += frame.drain_gather_debt()
    note(ctx, groups=n_groups, aggs=len(aggs))
    return out
