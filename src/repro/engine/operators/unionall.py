"""UNION ALL: concatenate two frames with identical schemas."""

from __future__ import annotations

from repro.obs.trace import note

from ..column import Column
from ..frame import Frame

__all__ = ["execute_union_all"]


def execute_union_all(left: Frame, right: Frame, ctx) -> Frame:
    """Stack ``right`` under ``left``; column names and types must match
    positionally (SQL UNION ALL semantics, no dedup)."""
    if list(left.columns) != list(right.columns):
        raise ValueError(
            f"UNION ALL schema mismatch: {list(left.columns)} vs {list(right.columns)}"
        )
    columns = {
        name: Column.concat([left.column(name), right.column(name)])
        for name in left.columns
    }
    out = Frame(columns, left.nrows + right.nrows)
    ctx.work.tuples_in += left.nrows + right.nrows
    ctx.work.tuples_out += out.nrows
    ctx.work.seq_bytes += left.nbytes + right.nbytes
    ctx.work.out_bytes += out.nbytes
    ctx.work.gather_bytes += left.drain_gather_debt() + right.drain_gather_debt()
    note(ctx, left_rows=left.nrows, right_rows=right.nrows)
    return out
