"""EXPLAIN: render logical plans and per-operator work profiles.

``explain(plan, db)`` prints the (optionally optimized) operator tree;
``explain_profile(result)`` shows where a finished query spent its work —
useful for understanding why a query is memory- or compute-bound on a
given platform (e.g. Q1's scan dominance on the Pi).
"""

from __future__ import annotations

from .expr import ColRef
from .optimizer import (
    DEFAULT_SETTINGS,
    OptimizerSettings,
    optimize_plan,
    output_columns,
)
from .plan import (
    AggregateNode,
    DistinctNode,
    FilterNode,
    JoinNode,
    LimitNode,
    PlanNode,
    ProjectNode,
    Q,
    ScanNode,
    SortNode,
    UnionAllNode,
)
from .result import Result
from .table import Database

__all__ = ["explain", "explain_profile"]


def _describe(node: PlanNode) -> str:
    if isinstance(node, ScanNode):
        cols = "*" if node.columns is None else ", ".join(node.columns)
        base = f"Scan {node.table} [{cols}]"
        if node.predicate is not None:
            return f"{base} Filter ({node.predicate!r})"
        return base
    if isinstance(node, FilterNode):
        return f"Filter ({node.predicate!r})"
    if isinstance(node, ProjectNode):
        return "Project [" + ", ".join(name for name, _ in node.exprs) + "]"
    if isinstance(node, JoinNode):
        keys = ", ".join(f"{l}={r}" for l, r in zip(node.left_on, node.right_on))
        return f"HashJoin {node.how} on ({keys})"
    if isinstance(node, AggregateNode):
        by = ", ".join(node.group_by) or "<global>"
        aggs = ", ".join(f"{name}={spec.func}" for name, spec in node.aggs)
        return f"Aggregate by [{by}] computing [{aggs}]"
    if isinstance(node, SortNode):
        keys = ", ".join(f"{k} {d}" for k, d in node.keys)
        return f"Sort [{keys}]"
    if isinstance(node, LimitNode):
        return f"Limit {node.n}"
    if isinstance(node, DistinctNode):
        cols = "*" if node.columns is None else ", ".join(node.columns)
        return f"Distinct [{cols}]"
    if isinstance(node, UnionAllNode):
        return "UnionAll"
    return type(node).__name__


def _produces_late(node: PlanNode) -> bool:
    """Whether this operator's output rides a selection vector (under
    late materialization) instead of materialized columns."""
    if isinstance(node, ScanNode):
        return node.predicate is not None
    if isinstance(node, FilterNode):
        return True
    if isinstance(node, ProjectNode):
        # Pass-through projections keep the selection; computed
        # expressions materialize their inputs.
        return all(isinstance(e, ColRef) for _, e in node.exprs) and _produces_late(
            node.child
        )
    if isinstance(node, LimitNode):
        return _produces_late(node.child)
    return False


def _late_tag(node: PlanNode) -> str:
    if _produces_late(node):
        return "  [late: selection vector]"
    if any(_produces_late(child) for child in node.children()):
        return "  [materialize]"
    return ""


def _rollup_tag(node: PlanNode) -> str:
    """Routing annotation: scans of materialized rollup cubes."""
    from repro.rollup.shapes import ROLLUP_PREFIX

    if isinstance(node, ScanNode) and node.table.startswith(ROLLUP_PREFIX):
        return f"  [rollup: {node.table}]"
    return ""


def _enc_tag(node: PlanNode, db: Database) -> str:
    """Compressed-execution annotation: how this operator will treat
    encoded columns (a dry run of the same dispatch the executor does)."""
    from .encoded import classify_conjuncts, prepare_aggregate

    if isinstance(node, ScanNode) and node.predicate is not None:
        encoded, decode = classify_conjuncts(node.predicate, db.table(node.table))
        if encoded and decode:
            return f"  [enc-eval {encoded}/{encoded + decode}]"
        if encoded:
            return "  [enc-eval]"
        if decode:
            return "  [decode]"
        return ""
    if (
        isinstance(node, AggregateNode)
        and isinstance(node.child, ScanNode)
        and node.child.predicate is None
    ):
        table = db.table(node.child.table)
        if prepare_aggregate(table, list(node.group_by), dict(node.aggs)) is not None:
            return "  [enc-agg: run-level]"
    return ""


def _subtree_size(node: PlanNode, db: Database) -> tuple[float, float]:
    """Static (bytes, rows) upper bound for a subtree's output: the sum
    of its base scans' streamed column bytes (filters only shrink it;
    joins are bounded here by their larger input — a heuristic, the same
    one the runtime dispatch refines with real frame sizes)."""
    if isinstance(node, ScanNode):
        table = db.table(node.table)
        names = list(node.columns) if node.columns is not None else list(table.column_names)
        width = sum(table.column(n).dtype.width for n in names)
        return float(width * table.nrows), float(table.nrows)
    sizes = [_subtree_size(child, db) for child in node.children()]
    if not sizes:
        return 0.0, 0.0
    return sum(b for b, _ in sizes), max(r for _, r in sizes)


def _spill_tag(node: PlanNode, db: Database, budget) -> str:
    """Out-of-core annotation: a dry run of the budget dispatch in
    :mod:`repro.engine.spill`, using static size estimates."""
    from .spill import HASH_ENTRY_BYTES, MAX_SPILL_DEPTH, choose_partitions

    limit = getattr(budget, "limit_bytes", budget)
    if limit is None:
        return ""
    if isinstance(node, JoinNode):
        nbytes, nrows = _subtree_size(node.right, db)
        estimate = nbytes + nrows * HASH_ENTRY_BYTES
        kind = "join"
    elif isinstance(node, AggregateNode) and node.group_by:
        nbytes, nrows = _subtree_size(node.child, db)
        estimate = nrows * (
            8.0 * (len(node.group_by) + max(1, len(node.aggs))) + HASH_ENTRY_BYTES
        )
        kind = "agg"
    else:
        return ""
    if estimate <= limit:
        return ""
    fanout = 0
    depth = 0
    while estimate > limit and depth < MAX_SPILL_DEPTH and nrows > 1:
        p = choose_partitions(estimate, float(limit), int(nrows), depth)
        if depth == 0:
            fanout = p
        estimate /= p
        nrows /= p
        depth += 1
    return f"  [spill: {kind} p={fanout} depth={depth}]"


def explain(
    plan: "Q | PlanNode",
    db: Database,
    optimize: bool = True,
    settings: OptimizerSettings | None = None,
    memory_budget=None,
) -> str:
    """Render a plan as an indented operator tree (top operator first).

    With ``optimize`` the tree shown is the one the executor actually
    runs under ``settings`` — pushed-down scan predicates appear on their
    ``Scan`` line. With ``memory_budget`` (a byte count or a
    :class:`~repro.engine.spill.MemoryBudget`), joins and grouped
    aggregates whose static size estimate exceeds the budget carry a
    ``[spill: ...]`` tag showing the predicted Grace fan-out and depth."""
    node = plan.node if isinstance(plan, Q) else plan
    if node is None:
        raise ValueError("cannot explain an empty plan")
    effective = settings if settings is not None else DEFAULT_SETTINGS
    if optimize:
        node = optimize_plan(node, db, effective)

    lines: list[str] = []
    annotate_late = effective.late_materialization
    annotate_enc = effective.compressed_execution

    def walk(current: PlanNode, depth: int) -> None:
        tag = _late_tag(current) if annotate_late else ""
        if annotate_enc:
            tag += _enc_tag(current, db)
        if effective.rollups:
            tag += _rollup_tag(current)
        if memory_budget is not None and effective.spilling:
            tag += _spill_tag(current, db, memory_budget)
        lines.append("  " * depth + "-> " + _describe(current) + tag)
        for child in current.children():
            walk(child, depth + 1)

    walk(node, 0)
    lines.append("output: [" + ", ".join(output_columns(node, db)) + "]")
    return "\n".join(lines)


def explain_profile(result: Result) -> str:
    """Tabulate a finished query's per-operator work counts."""
    header = (
        f"{'operator':<12} {'tuples_in':>12} {'tuples_out':>12} "
        f"{'seq_MB':>9} {'rand_acc':>12} {'ops':>14} {'out_MB':>8}"
    )
    lines = [header, "-" * len(header)]
    for op in result.profile.operators:
        lines.append(
            f"{op.operator:<12} {op.tuples_in:>12,.0f} {op.tuples_out:>12,.0f} "
            f"{op.seq_bytes / 1e6:>9.2f} {op.rand_accesses:>12,.0f} "
            f"{op.ops:>14,.0f} {op.out_bytes / 1e6:>8.2f}"
        )
    totals = result.profile
    lines.append("-" * len(header))
    lines.append(
        f"{'total':<12} {totals.tuples:>12,.0f} {'':>12} "
        f"{totals.seq_bytes / 1e6:>9.2f} {totals.rand_accesses:>12,.0f} "
        f"{totals.ops:>14,.0f} {totals.out_bytes / 1e6:>8.2f}"
    )
    if totals.zone_probes or totals.skipped_bytes:
        lines.append(
            f"skipping: {totals.skipped_bytes / 1e6:.2f} MB skipped via zone maps "
            f"({totals.blocks_skipped:,.0f} blocks skipped, "
            f"{totals.blocks_scanned:,.0f} scanned, "
            f"{totals.zone_probes:,.0f} probes)"
        )
    if totals.gather_bytes or totals.saved_bytes:
        lines.append(
            f"late materialization: {totals.gather_bytes / 1e6:.2f} MB gathered "
            f"at pipeline breakers, {totals.saved_bytes / 1e6:.2f} MB of eager "
            f"intermediate rewrites avoided"
        )
    if totals.encoded_eval_rows or totals.runs_touched or totals.decoded_bytes:
        lines.append(
            f"compressed execution: {totals.encoded_eval_rows:,.0f} rows "
            f"evaluated in the encoded domain "
            f"({totals.runs_touched:,.0f} runs/blocks touched), "
            f"{totals.decoded_bytes / 1e6:.2f} MB decoded"
        )
    if totals.spilled_bytes or totals.spill_partitions:
        lines.append(
            f"spilling: {totals.spilled_bytes / 1e6:.2f} MB written to "
            f"{totals.spill_partitions:,.0f} partition files "
            f"({totals.respill_depth:,.0f} recursive re-partitions)"
        )
    return "\n".join(lines)
