"""Merging per-morsel partial states back into one result.

The parallel executor runs a pipeline fragment once per morsel; this
module recombines the fragments:

* :func:`concat_frames` — order-preserving concatenation (filter/project
  chains).
* :func:`decompose_aggregates` / :func:`merge_partial_aggregates` — the
  classic two-phase group-by: per-morsel partial aggregation, then a
  merge aggregation over the stacked partials (AVG splits into SUM+COUNT,
  COUNT merges by summation, MIN/MAX by re-minimization).
* :func:`merge_topk` — local top-k per morsel, then top-k over the
  survivors; ties resolve exactly as a global stable sort would.
* :func:`merge_sorted_runs` — stable k-way merge of per-morsel sorted
  runs (binary-merge via ``searchsorted`` on a single key; stable lexsort
  fallback for compound keys).
* :func:`merge_profiles` — coalesce per-morsel work profiles back into
  one operator sequence so profiles stay comparable with serial runs.

Everything here is deliberately deterministic: for any morsel split, the
merged output is bit-identical (modulo float summation order) to the
serial operator, which the differential and property suites assert.
"""

from __future__ import annotations

import numpy as np

from .column import Column
from .expr import col
from .frame import Frame
from .operators.aggregate import (
    AggSpec,
    count,
    max_,
    min_,
    sum_,
)
from .operators.sort import _sort_key, execute_topk
from .profile import OperatorWork, WorkProfile
from .spill import maybe_spill_aggregate
from .types import FLOAT64, INT64

__all__ = [
    "concat_frames",
    "decompose_aggregates",
    "merge_partial_aggregates",
    "merge_profiles",
    "merge_sorted_runs",
    "merge_topk",
]


def concat_frames(frames: list[Frame]) -> Frame:
    """Stack frames vertically, preserving frame (morsel) order."""
    if not frames:
        raise ValueError("need at least one frame")
    # Concatenation reads physical columns; late frames gather first.
    frames = [f.dense() for f in frames]
    if len(frames) == 1:
        return frames[0]
    names = list(frames[0].columns)
    for frame in frames[1:]:
        if list(frame.columns) != names:
            raise ValueError("frames have mismatched columns")
    columns = {
        name: Column.concat([f.columns[name] for f in frames]) for name in names
    }
    return Frame(columns, sum(f.nrows for f in frames))


# ----------------------------------------------------------------------
# Two-phase aggregation
# ----------------------------------------------------------------------

# Aggregates whose partial states merge with another aggregate pass.
# COUNT(DISTINCT) is absent on purpose: its state is the distinct set
# itself, so such plans fall back to a serial aggregate over the
# concatenated (still parallel-scanned) input.
_DECOMPOSABLE = {"sum", "avg", "count", "count_star", "min", "max", "isum"}


def decompose_aggregates(
    aggs: dict[str, AggSpec],
) -> tuple[dict[str, AggSpec], dict[str, AggSpec]] | None:
    """Split aggregates into (per-morsel partial, merge-phase final) specs.

    Returns ``None`` when any aggregate is not decomposable. AVG expands
    to two partial columns (``name@sum``, ``name@cnt``) that
    :func:`merge_partial_aggregates` recombines.
    """
    if any(spec.func not in _DECOMPOSABLE for spec in aggs.values()):
        return None
    partial: dict[str, AggSpec] = {}
    final: dict[str, AggSpec] = {}
    for name, spec in aggs.items():
        if spec.func == "avg":
            partial[f"{name}@sum"] = sum_(spec.expr)
            partial[f"{name}@cnt"] = count(spec.expr)
            final[f"{name}@sum"] = sum_(col(f"{name}@sum"))
            final[f"{name}@cnt"] = sum_(col(f"{name}@cnt"))
        elif spec.func in ("count", "count_star"):
            partial[name] = spec
            final[name] = sum_(col(name))
        elif spec.func == "isum":
            # Exact integer sums merge by exact integer re-summation, so
            # routed COUNT recompositions stay INT64 end to end.
            partial[name] = spec
            final[name] = AggSpec("isum", col(name))
        elif spec.func == "sum":
            partial[name] = spec
            final[name] = sum_(col(name))
        else:  # min / max: idempotent re-reduction
            partial[name] = spec
            final[name] = (min_ if spec.func == "min" else max_)(col(name))
    return partial, final


def merge_partial_aggregates(
    frames: list[Frame],
    group_by: list[str],
    aggs: dict[str, AggSpec],
    ctx,
) -> Frame:
    """Merge per-morsel partial aggregate frames into the final result.

    Output matches the serial ``execute_aggregate`` exactly: same group
    rows (group order follows sorted key factorization in both paths),
    same column order, same dtypes (counts return to INT64, AVG becomes
    the merged SUM/COUNT ratio).
    """
    decomposed = decompose_aggregates(aggs)
    if decomposed is None:
        raise ValueError("aggregates are not decomposable for parallel merge")
    _, final = decomposed
    combined = concat_frames(frames)
    # The merge aggregation over stacked partials is itself budget-aware:
    # under a tight MemoryBudget it Grace-partitions to disk rather than
    # building one oversized hash table on the coordinating thread.
    merged = maybe_spill_aggregate(combined, list(group_by), final, ctx)

    out: dict[str, Column] = {name: merged.column(name) for name in group_by}
    for name, spec in aggs.items():
        if spec.func == "avg":
            sums = merged.column(f"{name}@sum").values
            counts = merged.column(f"{name}@cnt").values
            with np.errstate(invalid="ignore", divide="ignore"):
                out[name] = Column(FLOAT64, sums / counts)
        elif spec.func in ("count", "count_star"):
            # Counts merged via SUM come back FLOAT64; they are exact
            # integers, so restore the serial INT64 dtype.
            values = merged.column(name).values
            out[name] = Column(INT64, np.rint(values).astype(np.int64))
        else:
            out[name] = merged.column(name)
    frame = Frame(out, merged.nrows)
    ctx.work.out_bytes += frame.nbytes - merged.nbytes
    return frame


# ----------------------------------------------------------------------
# Order-based merges
# ----------------------------------------------------------------------

def merge_topk(
    frames: list[Frame], keys: list[tuple[str, str]], n: int, ctx
) -> Frame:
    """Top-k over per-morsel local top-k results.

    Any row of the global top-k is in its morsel's local top-k (local
    selection uses the same total order: sort keys, ties by original row
    order), so a top-k over the stacked survivors is exact.
    """
    return execute_topk(concat_frames(frames), keys, n, ctx)


def merge_sorted_runs(frames: list[Frame], keys: list[tuple[str, str]]) -> Frame:
    """Stable merge of per-morsel sorted runs into one sorted frame.

    Equal keys keep run order (run i before run j for i < j), matching a
    stable sort of the concatenated input. Single-key merges use true
    ``searchsorted`` binary merging; compound keys fall back to a stable
    lexsort over the concatenation.
    """
    frames = [f for f in frames if f.nrows]
    if not frames:
        raise ValueError("need at least one non-empty frame")
    if len(frames) == 1:
        return frames[0]
    if len(keys) == 1:
        name, direction = keys[0]
        merged = frames[0]
        merged_key = _sort_key(merged, name, direction == "asc")
        for nxt in frames[1:]:
            nxt_key = _sort_key(nxt, name, direction == "asc")
            merged, merged_key = _merge_two(merged, merged_key, nxt, nxt_key)
        return merged
    combined = concat_frames(frames)
    arrays = [_sort_key(combined, k, d == "asc") for k, d in keys]
    return combined.take(np.lexsort(arrays[::-1]))


def _merge_two(
    fa: Frame, ka: np.ndarray, fb: Frame, kb: np.ndarray
) -> tuple[Frame, np.ndarray]:
    """Stably merge two sorted (frame, key) runs; ``fa`` rows win ties."""
    pos_a = np.arange(len(ka)) + np.searchsorted(kb, ka, side="left")
    pos_b = np.arange(len(kb)) + np.searchsorted(ka, kb, side="right")
    order = np.empty(len(ka) + len(kb), dtype=np.int64)
    order[pos_a] = np.arange(len(ka))
    order[pos_b] = np.arange(len(kb)) + len(ka)
    combined = concat_frames([fa, fb]).take(order)
    return combined, np.concatenate([ka, kb])[order]


# ----------------------------------------------------------------------
# Profiles
# ----------------------------------------------------------------------

def merge_profiles(profiles: list[WorkProfile]) -> WorkProfile:
    """Coalesce per-morsel profiles into one operator sequence.

    Morsel fragments of one pipeline all record the same operator
    sequence; summing them position-wise yields a profile shaped exactly
    like the serial run's (so the hardware model sees one scan, one
    filter, ... — not hundreds of slivers). Misaligned profiles fall back
    to plain concatenation.
    """
    profiles = [p for p in profiles if p.operators]
    if not profiles:
        return WorkProfile()
    signature = [op.operator for op in profiles[0].operators]
    if all([op.operator for op in p.operators] == signature for p in profiles):
        coalesced = []
        for position, name in enumerate(signature):
            total = OperatorWork(name)
            for p in profiles:
                total.add(p.operators[position])
            coalesced.append(total)
        return WorkProfile(coalesced)
    out = WorkProfile()
    for p in profiles:
        out.operators.extend(p.operators)
    return out
