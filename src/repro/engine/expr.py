"""Expression AST and vectorized evaluator.

Expressions are built with a small combinator API::

    from repro.engine.expr import col, lit
    pred = (col("l_shipdate") >= "1994-01-01") & (col("l_quantity") < 24)

and evaluated column-at-a-time over a :class:`~repro.engine.frame.Frame`.
Every evaluation records scalar-operation counts into the active
:class:`~repro.engine.profile.OperatorWork`, so downstream hardware models
see the arithmetic the query actually performed.

String columns are dictionary-encoded; comparisons and LIKE run once per
*unique* value and are then mapped through the code array, exactly the
trick a columnar DBMS uses.
"""

from __future__ import annotations

import re
from typing import TYPE_CHECKING, Sequence

import numpy as np

from .column import Column
from .frame import Frame
from .types import BOOL, DATE, FLOAT64, INT64, STRING, date_to_days

if TYPE_CHECKING:  # pragma: no cover
    from .executor import ExecContext

__all__ = [
    "Expr",
    "col",
    "lit",
    "case",
    "scalar",
    "concat",
    "ColRef",
    "Literal",
    "ScalarSubquery",
    "StringCase",
    "Concat",
    "rewrite_colrefs",
]


def _coerce_literal_for(other, reference: "Expr"):
    """Wrap a bare Python value as a Literal."""
    if isinstance(other, Expr):
        return other
    return Literal(other)


class Expr:
    """Base class for all expression nodes."""

    # -- arithmetic ----------------------------------------------------
    def __add__(self, other) -> "Expr":
        return Arith("+", self, _coerce_literal_for(other, self))

    def __radd__(self, other) -> "Expr":
        return Arith("+", _coerce_literal_for(other, self), self)

    def __sub__(self, other) -> "Expr":
        return Arith("-", self, _coerce_literal_for(other, self))

    def __rsub__(self, other) -> "Expr":
        return Arith("-", _coerce_literal_for(other, self), self)

    def __mul__(self, other) -> "Expr":
        return Arith("*", self, _coerce_literal_for(other, self))

    def __rmul__(self, other) -> "Expr":
        return Arith("*", _coerce_literal_for(other, self), self)

    def __truediv__(self, other) -> "Expr":
        return Arith("/", self, _coerce_literal_for(other, self))

    def __rtruediv__(self, other) -> "Expr":
        return Arith("/", _coerce_literal_for(other, self), self)

    # -- comparison ----------------------------------------------------
    def __eq__(self, other) -> "Expr":  # type: ignore[override]
        return Cmp("==", self, _coerce_literal_for(other, self))

    def __ne__(self, other) -> "Expr":  # type: ignore[override]
        return Cmp("!=", self, _coerce_literal_for(other, self))

    def __lt__(self, other) -> "Expr":
        return Cmp("<", self, _coerce_literal_for(other, self))

    def __le__(self, other) -> "Expr":
        return Cmp("<=", self, _coerce_literal_for(other, self))

    def __gt__(self, other) -> "Expr":
        return Cmp(">", self, _coerce_literal_for(other, self))

    def __ge__(self, other) -> "Expr":
        return Cmp(">=", self, _coerce_literal_for(other, self))

    # -- boolean -------------------------------------------------------
    def __and__(self, other) -> "Expr":
        return BoolOp("and", self, other)

    def __or__(self, other) -> "Expr":
        return BoolOp("or", self, other)

    def __invert__(self) -> "Expr":
        return Not(self)

    # -- SQL-ish helpers -------------------------------------------------
    def between(self, lo, hi) -> "Expr":
        return (self >= lo) & (self <= hi)

    def isin(self, values: Sequence) -> "Expr":
        return InList(self, list(values))

    def like(self, pattern: str) -> "Expr":
        return Like(self, pattern)

    def not_like(self, pattern: str) -> "Expr":
        return Not(Like(self, pattern))

    def substring(self, start: int, length: int) -> "Expr":
        return Substring(self, start, length)

    def upper(self) -> "Expr":
        return StringCase(self, "upper")

    def lower(self) -> "Expr":
        return StringCase(self, "lower")

    def year(self) -> "Expr":
        return ExtractYear(self)

    def is_null(self) -> "Expr":
        return IsNull(self, negate=False)

    def is_not_null(self) -> "Expr":
        return IsNull(self, negate=True)

    def __hash__(self):  # __eq__ is overloaded, keep Expr usable in sets
        return id(self)

    # -- evaluation ------------------------------------------------------
    def evaluate(self, frame: Frame, ctx: "ExecContext") -> Column:
        raise NotImplementedError

    def references(self) -> set[str]:
        """Column names this expression reads (for projection pruning)."""
        raise NotImplementedError


class ColRef(Expr):
    """Reference to a column of the input frame."""

    def __init__(self, name: str):
        self.name = name

    def evaluate(self, frame: Frame, ctx: "ExecContext") -> Column:
        return frame.column(self.name)

    def references(self) -> set[str]:
        return {self.name}

    def __repr__(self) -> str:  # pragma: no cover
        return f"col({self.name!r})"


class Literal(Expr):
    """A constant. Strings that look like ISO dates are coerced when
    compared against DATE columns; everything else keeps its Python type."""

    def __init__(self, value):
        self.value = value

    def evaluate(self, frame: Frame, ctx: "ExecContext") -> Column:
        n = frame.nrows
        v = self.value
        if isinstance(v, bool):
            return Column(BOOL, np.full(n, v, dtype=np.bool_))
        if isinstance(v, int):
            return Column(INT64, np.full(n, v, dtype=np.int64))
        if isinstance(v, float):
            return Column(FLOAT64, np.full(n, v, dtype=np.float64))
        if isinstance(v, str):
            return Column.from_strings([v] * n) if n else Column.from_strings([])
        raise TypeError(f"unsupported literal {v!r}")

    def references(self) -> set[str]:
        return set()

    def __repr__(self) -> str:  # pragma: no cover
        return f"lit({self.value!r})"


_DATE_RE = re.compile(r"^\d{4}-\d{2}-\d{2}$")


def _numeric(column: Column) -> np.ndarray:
    """Physical numeric payload of a column (dates as days)."""
    return column.values


def _string_unique_mask(column: Column, func) -> np.ndarray:
    """Apply ``func`` (vectorized over the dictionary) and map through codes."""
    mask_unique = func(column.dictionary)
    return mask_unique[column.values]


class Arith(Expr):
    """Binary arithmetic; result is FLOAT64 (INT64 when both sides are
    integers and the op is not division)."""

    _OPS = {"+": np.add, "-": np.subtract, "*": np.multiply, "/": np.divide}

    def __init__(self, op: str, left: Expr, right: Expr):
        self.op = op
        self.left = left
        self.right = right

    def evaluate(self, frame: Frame, ctx: "ExecContext") -> Column:
        lcol = self.left.evaluate(frame, ctx)
        rcol = self.right.evaluate(frame, ctx)
        lval, rval = _numeric(lcol), _numeric(rcol)
        if self.op == "/":
            # x/0 -> inf and 0/0 -> NaN, silently: AVG recomposition from
            # rollup cells divides by a zero count for all-NULL groups,
            # matching the aggregate kernel's errstate-guarded ratio.
            with np.errstate(invalid="ignore", divide="ignore"):
                result = self._OPS[self.op](lval, rval)
        else:
            result = self._OPS[self.op](lval, rval)
        ctx.work.ops += frame.nrows
        if self.op != "/" and lcol.dtype is INT64 and rcol.dtype is INT64:
            return Column(INT64, result.astype(np.int64))
        if lcol.dtype is DATE and rcol.dtype is INT64:
            return Column(DATE, result.astype(np.int32))
        return Column(FLOAT64, result.astype(np.float64))

    def references(self) -> set[str]:
        return self.left.references() | self.right.references()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"({self.left!r} {self.op} {self.right!r})"


class Cmp(Expr):
    """Comparison producing a BOOL column. Handles date-string literals and
    dictionary-encoded string columns."""

    _OPS = {
        "==": np.equal,
        "!=": np.not_equal,
        "<": np.less,
        "<=": np.less_equal,
        ">": np.greater,
        ">=": np.greater_equal,
    }

    def __init__(self, op: str, left: Expr, right: Expr):
        self.op = op
        self.left = left
        self.right = right

    def evaluate(self, frame: Frame, ctx: "ExecContext") -> Column:
        ufunc = self._OPS[self.op]
        ctx.work.ops += frame.nrows
        # Fast paths: column vs literal.
        if isinstance(self.right, Literal):
            lcol = self.left.evaluate(frame, ctx)
            rv = self.right.value
            if lcol.dtype is STRING and isinstance(rv, str):
                mask = _string_unique_mask(lcol, lambda d: ufunc(d.astype(str), rv))
                return self._masked(lcol, mask)
            if lcol.dtype is DATE and isinstance(rv, str) and _DATE_RE.match(rv):
                rv = date_to_days(rv)
            return self._masked(lcol, ufunc(lcol.values, rv))
        lcol = self.left.evaluate(frame, ctx)
        rcol = self.right.evaluate(frame, ctx)
        if lcol.dtype is STRING and rcol.dtype is STRING:
            if lcol.dictionary is rcol.dictionary and self.op in ("==", "!="):
                # Shared dictionary: equal strings have equal codes, so
                # compare the int32 codes without decoding either side.
                return self._masked(lcol, ufunc(lcol.values, rcol.values), rcol)
            mask = ufunc(lcol.decoded().astype(str), rcol.decoded().astype(str))
            ctx.work.rand_accesses += frame.nrows  # dictionary gathers
            return self._masked(lcol, mask, rcol)
        return self._masked(lcol, ufunc(lcol.values, rcol.values), rcol)

    @staticmethod
    def _masked(lcol: Column, mask: np.ndarray, rcol: Column | None = None) -> Column:
        # NULL comparisons are false.
        if lcol.valid is not None:
            mask = mask & lcol.valid
        if rcol is not None and rcol.valid is not None:
            mask = mask & rcol.valid
        return Column(BOOL, mask.astype(np.bool_))

    def references(self) -> set[str]:
        return self.left.references() | self.right.references()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"({self.left!r} {self.op} {self.right!r})"


class BoolOp(Expr):
    def __init__(self, op: str, left: Expr, right: Expr):
        if not isinstance(right, Expr):
            raise TypeError("boolean operands must be expressions")
        self.op = op
        self.left = left
        self.right = right

    def evaluate(self, frame: Frame, ctx: "ExecContext") -> Column:
        lval = self.left.evaluate(frame, ctx).values
        rval = self.right.evaluate(frame, ctx).values
        ctx.work.ops += frame.nrows
        out = np.logical_and(lval, rval) if self.op == "and" else np.logical_or(lval, rval)
        return Column(BOOL, out)

    def references(self) -> set[str]:
        return self.left.references() | self.right.references()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"({self.left!r} {self.op.upper()} {self.right!r})"


class Not(Expr):
    def __init__(self, operand: Expr):
        self.operand = operand

    def evaluate(self, frame: Frame, ctx: "ExecContext") -> Column:
        ctx.work.ops += frame.nrows
        return Column(BOOL, np.logical_not(self.operand.evaluate(frame, ctx).values))

    def references(self) -> set[str]:
        return self.operand.references()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"(NOT {self.operand!r})"


class InList(Expr):
    def __init__(self, operand: Expr, values: list):
        self.operand = operand
        self.values = values

    def evaluate(self, frame: Frame, ctx: "ExecContext") -> Column:
        column = self.operand.evaluate(frame, ctx)
        ctx.work.ops += frame.nrows * max(1, len(self.values) // 2)
        if column.dtype is STRING:
            wanted = set(self.values)
            mask = _string_unique_mask(column, lambda d: np.asarray([s in wanted for s in d]))
        else:
            vals = self.values
            if column.dtype is DATE:
                vals = [date_to_days(v) if isinstance(v, str) else v for v in vals]
            mask = np.isin(column.values, np.asarray(vals))
        if column.valid is not None:
            mask = mask & column.valid
        return Column(BOOL, mask.astype(np.bool_))

    def references(self) -> set[str]:
        return self.operand.references()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"({self.operand!r} IN {self.values!r})"


def _like_to_regex(pattern: str) -> re.Pattern:
    parts = []
    for ch in pattern:
        if ch == "%":
            parts.append(".*")
        elif ch == "_":
            parts.append(".")
        else:
            parts.append(re.escape(ch))
    return re.compile("^" + "".join(parts) + "$", re.DOTALL)


class Like(Expr):
    """SQL LIKE over a dictionary-encoded string column (evaluated once per
    unique value)."""

    def __init__(self, operand: Expr, pattern: str):
        self.operand = operand
        self.pattern = pattern
        self._regex = _like_to_regex(pattern)

    def evaluate(self, frame: Frame, ctx: "ExecContext") -> Column:
        column = self.operand.evaluate(frame, ctx)
        if column.dtype is not STRING:
            raise TypeError("LIKE requires a string operand")
        regex = self._regex
        mask = _string_unique_mask(
            column, lambda d: np.asarray([regex.match(s) is not None for s in d])
        )
        # Cost model: dictionary pooling makes our LIKE nearly free, but a
        # real engine pattern-matches every row's string bytes. Charge the
        # per-row work it would do: stream the string heap and ~1 op per
        # 2 characters matched.
        avg_len = float(np.mean([len(s) for s in column.dictionary])) if len(column.dictionary) else 0.0
        ctx.work.ops += frame.nrows * avg_len * 0.5
        ctx.work.seq_bytes += frame.nrows * avg_len
        if column.valid is not None:
            mask = mask & column.valid
        return Column(BOOL, mask.astype(np.bool_))

    def references(self) -> set[str]:
        return self.operand.references()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"({self.operand!r} LIKE {self.pattern!r})"


class Substring(Expr):
    """1-based SQL SUBSTRING over strings."""

    def __init__(self, operand: Expr, start: int, length: int):
        self.operand = operand
        self.start = start
        self.length = length

    def evaluate(self, frame: Frame, ctx: "ExecContext") -> Column:
        column = self.operand.evaluate(frame, ctx)
        if column.dtype is not STRING:
            raise TypeError("SUBSTRING requires a string operand")
        lo = self.start - 1
        hi = lo + self.length
        sub_unique = np.asarray([s[lo:hi] for s in column.dictionary], dtype=object)
        new_dict, remap = np.unique(sub_unique, return_inverse=True)
        ctx.work.ops += frame.nrows
        return Column.from_string_codes(remap[column.values].astype(np.int32), new_dict)

    def references(self) -> set[str]:
        return self.operand.references()


class StringCase(Expr):
    """UPPER/LOWER over a dictionary-encoded string column. Like
    :class:`Substring`, the transform runs once per *unique* value and is
    mapped through the code array."""

    def __init__(self, operand: Expr, mode: str):
        if mode not in ("upper", "lower"):
            raise ValueError(f"string case mode must be upper/lower, got {mode!r}")
        self.operand = operand
        self.mode = mode

    def evaluate(self, frame: Frame, ctx: "ExecContext") -> Column:
        column = self.operand.evaluate(frame, ctx)
        if column.dtype is not STRING:
            raise TypeError(f"{self.mode.upper()} requires a string operand")
        func = str.upper if self.mode == "upper" else str.lower
        mapped = np.asarray([func(s) for s in column.dictionary], dtype=object)
        new_dict, remap = np.unique(mapped, return_inverse=True)
        ctx.work.ops += frame.nrows
        return Column.from_string_codes(remap[column.values].astype(np.int32), new_dict)

    def references(self) -> set[str]:
        return self.operand.references()


class Concat(Expr):
    """String concatenation of two or more operands.

    Unlike the per-unique-value kernels above, the result cardinality is
    the cross of the operands' dictionaries, so this decodes each operand
    and concatenates row-at-a-time — and charges that per-row work."""

    def __init__(self, parts: Sequence[Expr]):
        if len(parts) < 2:
            raise ValueError("CONCAT requires at least two operands")
        self.parts = list(parts)

    def evaluate(self, frame: Frame, ctx: "ExecContext") -> Column:
        columns = [part.evaluate(frame, ctx) for part in self.parts]
        for column in columns:
            if column.dtype is not STRING:
                raise TypeError("CONCAT requires string operands")
        decoded = [column.decoded().astype(str) for column in columns]
        out = decoded[0]
        for piece in decoded[1:]:
            out = np.char.add(out, piece)
        ctx.work.ops += frame.nrows * len(columns)
        ctx.work.rand_accesses += frame.nrows * len(columns)  # dictionary gathers
        return Column.from_strings(list(out))

    def references(self) -> set[str]:
        refs: set[str] = set()
        for part in self.parts:
            refs |= part.references()
        return refs


class ExtractYear(Expr):
    """EXTRACT(YEAR FROM date_column)."""

    def __init__(self, operand: Expr):
        self.operand = operand

    def evaluate(self, frame: Frame, ctx: "ExecContext") -> Column:
        column = self.operand.evaluate(frame, ctx)
        if column.dtype is not DATE:
            raise TypeError("EXTRACT YEAR requires a date operand")
        days = column.values.astype("datetime64[D]")
        years = days.astype("datetime64[Y]").astype(np.int64) + 1970
        ctx.work.ops += frame.nrows
        return Column(INT64, years)

    def references(self) -> set[str]:
        return self.operand.references()


class Case(Expr):
    """CASE WHEN ... THEN ... [WHEN ...] ELSE ... END."""

    def __init__(self, whens: list[tuple[Expr, Expr]], otherwise: Expr):
        self.whens = whens
        self.otherwise = otherwise

    def evaluate(self, frame: Frame, ctx: "ExecContext") -> Column:
        result_col = self.otherwise.evaluate(frame, ctx)
        result = result_col.values.astype(np.float64)
        # Apply WHENs in reverse so the first match wins.
        for cond, value in reversed(self.whens):
            mask = cond.evaluate(frame, ctx).values
            val = value.evaluate(frame, ctx).values
            result = np.where(mask, val, result)
            ctx.work.ops += frame.nrows
        return Column(FLOAT64, result)

    def references(self) -> set[str]:
        refs = self.otherwise.references()
        for cond, value in self.whens:
            refs |= cond.references() | value.references()
        return refs


class IsNull(Expr):
    def __init__(self, operand: Expr, negate: bool):
        self.operand = operand
        self.negate = negate

    def evaluate(self, frame: Frame, ctx: "ExecContext") -> Column:
        column = self.operand.evaluate(frame, ctx)
        ctx.work.ops += frame.nrows
        if column.valid is None:
            mask = np.zeros(frame.nrows, dtype=np.bool_)
        else:
            mask = ~column.valid
        if self.negate:
            mask = ~mask
        return Column(BOOL, mask)

    def references(self) -> set[str]:
        return self.operand.references()


class ScalarSubquery(Expr):
    """A subplan producing a single value, usable as a literal.

    The executor runs the subplan once per query (results are cached in
    the execution context), merging the subplan's work profile into the
    parent query's profile — just as MonetDB evaluates an uncorrelated
    scalar subquery once.
    """

    def __init__(self, plan):
        self.plan = plan

    def evaluate(self, frame: Frame, ctx: "ExecContext") -> Column:
        value = ctx.scalar(self.plan)
        return Literal(value).evaluate(frame, ctx)

    def references(self) -> set[str]:
        return set()


def rewrite_colrefs(expr: Expr, mapping: dict[str, str]) -> Expr:
    """Rebuild ``expr`` with column references renamed through ``mapping``.

    Used by predicate pushdown to translate a filter through a
    pass-through projection (``project(alias=col("x"))`` means a filter
    on ``alias`` becomes a filter on ``x`` below the project). Names
    absent from the mapping are kept. Scalar subqueries are shared, not
    copied: they reference no outer columns.
    """
    if isinstance(expr, ColRef):
        return ColRef(mapping.get(expr.name, expr.name))
    if isinstance(expr, (Literal, ScalarSubquery)):
        return expr
    if isinstance(expr, (Arith, Cmp)):
        return type(expr)(
            expr.op,
            rewrite_colrefs(expr.left, mapping),
            rewrite_colrefs(expr.right, mapping),
        )
    if isinstance(expr, BoolOp):
        return BoolOp(
            expr.op,
            rewrite_colrefs(expr.left, mapping),
            rewrite_colrefs(expr.right, mapping),
        )
    if isinstance(expr, Not):
        return Not(rewrite_colrefs(expr.operand, mapping))
    if isinstance(expr, InList):
        return InList(rewrite_colrefs(expr.operand, mapping), list(expr.values))
    if isinstance(expr, Like):
        return Like(rewrite_colrefs(expr.operand, mapping), expr.pattern)
    if isinstance(expr, Substring):
        return Substring(rewrite_colrefs(expr.operand, mapping), expr.start, expr.length)
    if isinstance(expr, StringCase):
        return StringCase(rewrite_colrefs(expr.operand, mapping), expr.mode)
    if isinstance(expr, Concat):
        return Concat([rewrite_colrefs(part, mapping) for part in expr.parts])
    if isinstance(expr, ExtractYear):
        return ExtractYear(rewrite_colrefs(expr.operand, mapping))
    if isinstance(expr, IsNull):
        return IsNull(rewrite_colrefs(expr.operand, mapping), expr.negate)
    if isinstance(expr, Case):
        return Case(
            [
                (rewrite_colrefs(cond, mapping), rewrite_colrefs(value, mapping))
                for cond, value in expr.whens
            ],
            rewrite_colrefs(expr.otherwise, mapping),
        )
    raise TypeError(f"cannot rewrite expression {type(expr).__name__}")


def col(name: str) -> ColRef:
    """Reference a column by name."""
    return ColRef(name)


def lit(value) -> Literal:
    """Wrap a Python constant as an expression."""
    return Literal(value)


def case(whens: list[tuple[Expr, "Expr | float | int"]], otherwise) -> Case:
    """Build a CASE expression: ``case([(cond, value), ...], else_value)``.
    THEN/ELSE values may be bare Python numbers."""
    coerced = [(cond, _coerce_literal_for(value, None)) for cond, value in whens]
    return Case(coerced, _coerce_literal_for(otherwise, None))


def scalar(plan) -> ScalarSubquery:
    """Use an aggregate subplan as a scalar value."""
    return ScalarSubquery(plan)


def concat(*parts: "Expr | str") -> Concat:
    """Concatenate string expressions (bare strings become literals)."""
    return Concat([_coerce_literal_for(part, None) for part in parts])
