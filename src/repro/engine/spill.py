"""Out-of-core execution: memory budgets and Grace spill-to-disk.

The paper's wimpy nodes live on the edge of a memory-capacity cliff:
Table III *models* SF10+ but the engine could not *execute* it, because
every hash join and grouped aggregation assumed its build state fits in
RAM. This module removes that assumption with the classic Grace
recipe — hash-partition both inputs to disk, then solve each partition
independently — pinned to a :class:`MemoryBudget` that all operators of
one query (including morsel workers and the parallel merge phase) share.

Dispatch is a three-way split per operator:

* estimate fits the budget → run the ordinary in-memory operator under
  :meth:`MemoryBudget.charge` (the state really is resident);
* estimate exceeds the budget and spilling is enabled → Grace: partition
  both inputs by a depth-salted hash of the join/group keys into spill
  files (integer payloads re-use the column codecs; floats and validity
  masks stay raw because the fixed-point codec is only almost-exact),
  then recurse into any partition that still exceeds the budget;
* spilling disabled → raise :class:`MemoryBudgetExceeded`, the modeled
  "wimpy node OOM" the serve layer used to have to shed.

Recursion terminates unconditionally: a partition re-partitions only
while it is strictly smaller than its parent (adversarial single-key
skew makes no progress and executes in memory — always correct, merely
over budget) and never beyond :data:`MAX_SPILL_DEPTH`.

Bit-identity with the in-memory operators is engineered, not hoped for:

* join outputs carry transient row-id columns and are restored to the
  exact serial emission order ((left row, right row) ascending, outer
  misses last, semi/anti by left row) before the row-ids are dropped;
* all rows of one group land in one partition in their original
  relative order (stable partition sort), so ``np.bincount`` float
  accumulation order — and therefore the last ulp of every SUM/AVG —
  matches the serial kernel exactly;
* spilled string columns re-attach the *same* dictionary object on read
  (:class:`SpillSet` keeps an identity registry), so dictionary-code
  collation and ``Column.concat``'s shared-dictionary fast path behave
  as if the frame had never left memory;
* integer codecs are verified round-trip at write time and fall back to
  raw storage on any mismatch.

Temp files live in a per-operator :class:`SpillSet` directory removed in
a ``finally`` — fault injection (:class:`SpillFaultPlan`, following the
``cluster/faults.py`` idiom) and cooperative cancellation both leave no
orphans behind.
"""

from __future__ import annotations

import os
import pickle
import shutil
import struct
import tempfile
import threading
from contextlib import contextmanager
from dataclasses import dataclass

import numpy as np

from repro.obs.metrics import metrics
from repro.obs.trace import note

from .column import Column
from .compression import ALL_ENCODINGS
from .frame import Frame
from .keycache import combine_codes
from .operators.aggregate import _key_codes, execute_aggregate
from .operators.join import _combine_keys, _encode_key_pair, _stack, execute_join
from .types import BOOL, DATE, FLOAT64, INT64, STRING

__all__ = [
    "MAX_SPILL_DEPTH",
    "MemoryBudget",
    "MemoryBudgetExceeded",
    "SpillCorrupt",
    "SpillDiskFull",
    "SpillError",
    "SpillFaultPlan",
    "SpillFile",
    "SpillSet",
    "aggregate_estimate",
    "choose_partitions",
    "join_build_estimate",
    "maybe_spill_aggregate",
    "maybe_spill_join",
]

# Deepest recursive re-partition level. Level 0 is the first partition
# pass; a partition at level MAX_SPILL_DEPTH - 1 that still exceeds the
# budget executes in memory instead of splitting again.
MAX_SPILL_DEPTH = 4

# Fan-out bounds: wide at the first level (one pass should usually be
# enough), narrow when recursing (each level multiplies the file count).
MAX_FANOUT = 64
MAX_RECURSIVE_FANOUT = 4

# No point cutting partitions below this many rows — the per-file
# constant costs would dominate the memory saved.
MIN_PARTITION_ROWS = 4096

# Bytes of hash-table state (key + bucket pointer) per build-side row,
# matching the join operator's resident working-set charge.
HASH_ENTRY_BYTES = 16

_MAGIC = b"RSPL"
_HEADER = struct.Struct("<Q")

_LROW = "__spill_lrow__"
_RROW = "__spill_rrow__"

_DTYPES = {t.name: t for t in (INT64, FLOAT64, DATE, STRING, BOOL)}
_ENCODINGS_BY_NAME = {e.name: e for e in ALL_ENCODINGS}

_partitions_counter = metrics.counter("spill.partitions")
_bytes_written_counter = metrics.counter("spill.bytes_written")
_bytes_read_counter = metrics.counter("spill.bytes_read")
_respills_counter = metrics.counter("spill.respills")
_operators_counter = metrics.counter("spill.operators")
_errors_counter = metrics.counter("spill.errors")
_cleanups_counter = metrics.counter("spill.cleanups")


class SpillError(RuntimeError):
    """Base for spill I/O failures. Spill reads and writes either succeed
    or raise one of these — never a silent wrong answer."""


class SpillDiskFull(SpillError):
    """The spill device ran out of space (or refused the write)."""


class SpillCorrupt(SpillError):
    """A spill partition file is truncated or fails to decode."""


class MemoryBudgetExceeded(RuntimeError):
    """An operator's state would exceed the memory budget and spilling is
    disabled — the modeled wimpy-node OOM."""


@dataclass(frozen=True)
class SpillFaultPlan:
    """Deterministic fault injection for spill I/O, following the
    ``cluster/faults.py`` idiom: a frozen value object the writer
    consults, never wall-clock or randomness at injection time.

    Attributes:
        disk_full_after_bytes: writes that would push the budget's total
            spilled bytes past this raise :class:`SpillDiskFull` (the
            SD card filled up).
        truncate_file: the Nth spill file written through the budget
            (0-based) is written with half its payload missing, so the
            reader must detect the truncation and raise
            :class:`SpillCorrupt`.
    """

    disk_full_after_bytes: int | None = None
    truncate_file: int | None = None

    def __post_init__(self):
        if self.disk_full_after_bytes is not None and self.disk_full_after_bytes < 0:
            raise ValueError("disk_full_after_bytes must be non-negative")
        if self.truncate_file is not None and self.truncate_file < 0:
            raise ValueError("truncate_file must be non-negative")


class MemoryBudget:
    """Thread-safe tracker of one query's operator-state memory.

    ``limit_bytes=None`` means unlimited (every operator runs in memory
    and nothing here costs more than a lock). With a limit, in-memory
    operators :meth:`charge` their estimated state while they run and the
    Grace paths consult :meth:`available` to size partition fan-out.

    Admission is optimistic: reservations serialize through the lock,
    but concurrent ``available()`` checks may overlap, so morsel workers
    can transiently overcommit by at most one morsel's state each — the
    budget is a modeled constraint, not an allocator.

    Attributes:
        limit_bytes: the budget, or ``None`` for unlimited.
        spill_dir: base directory for spill files (``None`` = system tmp).
        faults: optional :class:`SpillFaultPlan` injected into writes.
    """

    def __init__(
        self,
        limit_bytes: int | None = None,
        spill_dir: str | None = None,
        faults: SpillFaultPlan | None = None,
    ):
        if limit_bytes is not None and limit_bytes < 0:
            raise ValueError("limit_bytes must be non-negative")
        self.limit_bytes = None if limit_bytes is None else int(limit_bytes)
        self.spill_dir = spill_dir
        self.faults = faults
        self._lock = threading.Lock()
        self._used = 0.0
        self._peak = 0.0
        self._spilled = 0
        self._file_counter = 0

    @property
    def used_bytes(self) -> float:
        with self._lock:
            return self._used

    @property
    def peak_bytes(self) -> float:
        with self._lock:
            return self._peak

    @property
    def spilled_bytes(self) -> int:
        with self._lock:
            return self._spilled

    def available(self) -> float:
        """Bytes still unreserved (``inf`` when unlimited; can go
        negative under transient overcommit)."""
        if self.limit_bytes is None:
            return float("inf")
        with self._lock:
            return self.limit_bytes - self._used

    def reserve(self, nbytes: float) -> None:
        with self._lock:
            self._used += nbytes
            if self._used > self._peak:
                self._peak = self._used

    def release(self, nbytes: float) -> None:
        with self._lock:
            self._used = max(0.0, self._used - nbytes)

    @contextmanager
    def charge(self, nbytes: float):
        """Reserve ``nbytes`` for the duration of the block."""
        self.reserve(nbytes)
        try:
            yield
        finally:
            self.release(nbytes)

    def next_file_index(self) -> int:
        """Query-global spill-file ordinal (fault plans index by it)."""
        with self._lock:
            index = self._file_counter
            self._file_counter += 1
            return index

    def record_spill(self, nbytes: int) -> None:
        with self._lock:
            self._spilled += int(nbytes)


# ----------------------------------------------------------------------
# Spill files
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SpillFile:
    """Handle to one written partition."""

    path: str
    nrows: int
    nbytes: int


def _encode_values(values: np.ndarray):
    """Pick the smallest column codec for an integer-kind value array,
    *verified* to round-trip bit-identically; everything else (floats,
    bools) stays raw — the fixed-point float codec is only
    ``allclose``-exact, which is not good enough for spill files."""
    if values.dtype.kind != "i":
        return ("raw", values)
    v = np.ascontiguousarray(values).astype(np.int64, copy=False)
    best = None
    best_size = v.nbytes
    for encoding in ALL_ENCODINGS:
        try:
            payload = encoding.encode(v)
            size = encoding.encoded_nbytes(payload)
            if size < best_size and np.array_equal(
                encoding.decode(payload, len(v), np.dtype(np.int64)), v
            ):
                best, best_size = (encoding.name, payload), size
        except Exception:
            continue  # e.g. shift-width overflow on extreme int64 ranges
    if best is None:
        return ("raw", values)
    return ("codec", best[0], best[1], len(v))


def _decode_values(payload) -> np.ndarray:
    kind = payload[0]
    if kind == "raw":
        return payload[1]
    if kind == "codec":
        _, name, encoded, n = payload
        return _ENCODINGS_BY_NAME[name].decode(encoded, n, np.dtype(np.int64))
    raise ValueError(f"unknown spill value payload kind {kind!r}")


class SpillSet:
    """One operator's spill files: a private temp directory, a
    dictionary-identity registry (so read-back string columns reattach
    the *same* dictionary object they were written with), and a
    ``cleanup()`` the owner calls in ``finally``."""

    def __init__(self, budget: MemoryBudget | None = None):
        base = budget.spill_dir if budget is not None else None
        self.directory = tempfile.mkdtemp(prefix="repro-spill-", dir=base)
        self._budget = budget
        self._dictionaries: dict[int, np.ndarray] = {}
        self._counter = 0
        self._closed = False

    def write_frame(self, frame: Frame, ctx=None) -> SpillFile:
        """Serialize one frame to a new spill file.

        Raises :class:`SpillDiskFull` on write failure (real or
        injected); charges ``spilled_bytes``/``spill_partitions`` to the
        operator's work profile.
        """
        work = getattr(ctx, "work", None)
        frame = frame.dense(work)
        specs = []
        for name, column in frame.columns.items():
            dict_key = None
            if column.dictionary is not None:
                dict_key = id(column.dictionary)
                self._dictionaries[dict_key] = column.dictionary
            valid = None
            if column.valid is not None:
                valid = np.asarray(column.valid, dtype=np.bool_)
            specs.append(
                (name, column.dtype.name, _encode_values(column.values), dict_key, valid)
            )
        blob = pickle.dumps(
            {"nrows": frame.nrows, "columns": specs},
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        budget = self._budget
        index = 0 if budget is None else budget.next_file_index()
        faults = budget.faults if budget is not None else None
        if (
            faults is not None
            and faults.disk_full_after_bytes is not None
            and budget.spilled_bytes + len(blob) > faults.disk_full_after_bytes
        ):
            _errors_counter.inc()
            raise SpillDiskFull(
                f"spill device full: partition {index} needs {len(blob)} bytes "
                f"past the {faults.disk_full_after_bytes}-byte capacity"
            )
        payload = blob
        if faults is not None and faults.truncate_file == index:
            payload = blob[: len(blob) // 2]
        path = os.path.join(
            self.directory, f"part-{index:06d}-{self._counter:06d}.spill"
        )
        self._counter += 1
        try:
            with open(path, "wb") as f:
                f.write(_MAGIC + _HEADER.pack(len(blob)) + payload)
        except OSError as exc:
            _errors_counter.inc()
            raise SpillDiskFull(f"spill write to {path!r} failed: {exc}") from exc
        if budget is not None:
            budget.record_spill(len(blob))
        if work is not None:
            work.spilled_bytes += len(blob)
            work.spill_partitions += 1
        _partitions_counter.inc()
        _bytes_written_counter.inc(len(blob))
        return SpillFile(path, frame.nrows, len(blob))

    def read_frame(self, ref: SpillFile, ctx=None) -> Frame:
        """Read one partition back, bit-identical to what was written.

        Any failure — unreadable file, truncation, undecodable payload,
        length mismatch — raises a typed :class:`SpillError`; a corrupt
        partition can never become a silent wrong answer.
        """
        try:
            with open(ref.path, "rb") as f:
                raw = f.read()
        except OSError as exc:
            _errors_counter.inc()
            raise SpillError(
                f"cannot read spill partition {ref.path!r}: {exc}"
            ) from exc
        if len(raw) < 4 + _HEADER.size or raw[:4] != _MAGIC:
            _errors_counter.inc()
            raise SpillCorrupt(f"spill partition {ref.path!r} is missing its header")
        (expected,) = _HEADER.unpack(raw[4 : 4 + _HEADER.size])
        body = raw[4 + _HEADER.size :]
        if len(body) != expected:
            _errors_counter.inc()
            raise SpillCorrupt(
                f"spill partition {ref.path!r} is truncated "
                f"({len(body)} of {expected} payload bytes)"
            )
        try:
            doc = pickle.loads(body)
            nrows = doc["nrows"]
            columns: dict[str, Column] = {}
            for name, dtype_name, payload, dict_key, valid in doc["columns"]:
                dtype = _DTYPES[dtype_name]
                values = _decode_values(payload).astype(dtype.numpy_dtype, copy=False)
                dictionary = None
                if dict_key is not None:
                    dictionary = self._dictionaries[dict_key]
                if len(values) != nrows or (valid is not None and len(valid) != nrows):
                    raise ValueError(f"column {name!r} length mismatch")
                columns[name] = Column(dtype, values, dictionary=dictionary, valid=valid)
            frame = Frame(columns, nrows)
        except Exception as exc:
            _errors_counter.inc()
            raise SpillCorrupt(
                f"spill partition {ref.path!r} failed to decode: {exc}"
            ) from exc
        _bytes_read_counter.inc(ref.nbytes)
        return frame

    def cleanup(self) -> None:
        """Remove every spill file and the directory (idempotent)."""
        if self._closed:
            return
        self._closed = True
        shutil.rmtree(self.directory, ignore_errors=True)
        _cleanups_counter.inc()


# ----------------------------------------------------------------------
# Hash partitioning
# ----------------------------------------------------------------------

_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX2 = np.uint64(0x94D049BB133111EB)
_GOLDEN = 0x9E3779B97F4A7C15


def _to_uint64(values: np.ndarray) -> np.ndarray:
    """View key values as uint64 hash input. Floats normalize -0.0 to
    +0.0 and canonicalize every NaN payload to one bit pattern first,
    because the in-memory join's ``searchsorted`` matching treats all
    NaNs (and both zeros) as equal — partitioning must agree."""
    values = np.asarray(values)
    if values.dtype.kind == "f":
        v = values.astype(np.float64, copy=True)
        v[v == 0.0] = 0.0
        nan = np.isnan(v)
        if nan.any():
            v[nan] = np.nan
        return v.view(np.uint64)
    if values.dtype.kind == "b":
        return values.astype(np.uint64)
    return np.ascontiguousarray(values.astype(np.int64, copy=False)).view(np.uint64)


def _partition_ids(keys: np.ndarray, n_partitions: int, depth: int) -> np.ndarray:
    """splitmix64-style finalizer over depth-salted keys; the salt makes
    every recursion level an independent hash function, so a partition
    that was 1/P of its parent splits again instead of collapsing into
    one child."""
    seed = np.uint64(((2 * depth + 1) * _GOLDEN) & 0xFFFFFFFFFFFFFFFF)
    z = keys + seed
    z = (z ^ (z >> np.uint64(30))) * _MIX1
    z = (z ^ (z >> np.uint64(27))) * _MIX2
    z = z ^ (z >> np.uint64(31))
    return ((z >> np.uint64(32)) % np.uint64(n_partitions)).astype(np.int64)


def _partition_frame(frame: Frame, pids: np.ndarray, n_partitions: int) -> list[Frame]:
    """Split a dense frame by partition id, preserving original relative
    row order inside each partition (stable sort — the float-summation
    order guarantee depends on this)."""
    order = np.argsort(pids, kind="stable")
    sorted_pids = pids[order]
    bounds = np.searchsorted(sorted_pids, np.arange(n_partitions + 1))
    return [
        frame.take(order[bounds[i] : bounds[i + 1]]) for i in range(n_partitions)
    ]


def _pow2_ceil(n: int) -> int:
    p = 2
    while p < n:
        p *= 2
    return p


def choose_partitions(
    estimate: float, available: float, nrows: int, depth: int
) -> int:
    """Partition fan-out: enough that each child *should* fit the
    available budget, capped by level and by useful partition size."""
    cap = MAX_FANOUT if depth == 0 else MAX_RECURSIVE_FANOUT
    cap = min(cap, _pow2_ceil(max(2, -(-nrows // MIN_PARTITION_ROWS))))
    want = _pow2_ceil(max(2, int(np.ceil(estimate / max(1.0, float(available))))))
    return int(max(2, min(want, cap)))


# ----------------------------------------------------------------------
# Estimates and dispatch
# ----------------------------------------------------------------------


def join_build_estimate(right: Frame) -> int:
    """Resident state of an in-memory hash join: the build side's values
    plus a hash entry per build row."""
    return int(right.nbytes + right.nrows * HASH_ENTRY_BYTES)


def aggregate_estimate(frame: Frame, group_by, aggs) -> int:
    """Upper bound on grouped-aggregation state: worst case every row is
    its own group, each holding its keys and accumulators."""
    width = 8 * (len(group_by) + max(1, len(aggs)))
    return int(frame.nrows * (width + HASH_ENTRY_BYTES))


def _check_cancel(ctx) -> None:
    cancel = getattr(ctx, "cancel", None)
    if cancel is not None:
        cancel.check()


def maybe_spill_join(left, right, left_on, right_on, how, ctx) -> Frame:
    """Budget-aware join dispatch (see module docstring for the
    three-way split). Without a budget this is exactly ``execute_join``."""
    budget = getattr(ctx, "budget", None)
    if budget is None or budget.limit_bytes is None:
        return execute_join(left, right, list(left_on), list(right_on), how, ctx)
    estimate = join_build_estimate(right)
    available = budget.available()
    if estimate <= available:
        with budget.charge(estimate):
            return execute_join(left, right, list(left_on), list(right_on), how, ctx)
    if not getattr(ctx, "spilling", True):
        raise MemoryBudgetExceeded(
            f"hash join build side needs ~{estimate:,} bytes but only "
            f"{max(0, int(available)):,} of the {budget.limit_bytes:,}-byte "
            f"memory budget are free, and spilling is disabled"
        )
    return _grace_join(left, right, list(left_on), list(right_on), how, ctx)


def maybe_spill_aggregate(frame, group_by, aggs, ctx) -> Frame:
    """Budget-aware aggregation dispatch. Global aggregates (no group
    keys) carry O(1) state and never spill."""
    budget = getattr(ctx, "budget", None)
    if budget is None or budget.limit_bytes is None or not group_by:
        return execute_aggregate(frame, list(group_by), dict(aggs), ctx)
    estimate = aggregate_estimate(frame, group_by, aggs)
    available = budget.available()
    if estimate <= available:
        with budget.charge(estimate):
            return execute_aggregate(frame, list(group_by), dict(aggs), ctx)
    if not getattr(ctx, "spilling", True):
        raise MemoryBudgetExceeded(
            f"grouped aggregation needs ~{estimate:,} bytes but only "
            f"{max(0, int(available)):,} of the {budget.limit_bytes:,}-byte "
            f"memory budget are free, and spilling is disabled"
        )
    return _grace_aggregate(frame, list(group_by), dict(aggs), ctx)


# ----------------------------------------------------------------------
# Grace hash join
# ----------------------------------------------------------------------


def _join_partition_keys(left: Frame, right: Frame, left_on, right_on, ctx):
    """Hashable key arrays for both sides, encoded *jointly* (the same
    shared-dictionary / union-remap paths the join itself uses), so equal
    keys land in the same partition by construction."""
    left_cols = [left.column(n) for n in left_on]
    right_cols = [right.column(n) for n in right_on]
    if len(left_cols) == 1:
        lk, rk = _encode_key_pair(left_cols[0], right_cols[0], ctx)
    else:
        both = _combine_keys(
            [_stack(lc, rc, ctx) for lc, rc in zip(left_cols, right_cols)]
        )
        lk, rk = both[: left.nrows], both[left.nrows :]
    return _to_uint64(lk), _to_uint64(rk)


def _concat(frames: list[Frame]) -> Frame:
    if len(frames) == 1:
        return frames[0]
    names = list(frames[0].columns)
    columns = {n: Column.concat([f.columns[n] for f in frames]) for n in names}
    return Frame(columns, sum(f.nrows for f in frames))


def _load(spills: SpillSet, ref, ctx):
    return spills.read_frame(ref, ctx) if isinstance(ref, SpillFile) else ref


def _grace_join(left, right, left_on, right_on, how, ctx) -> Frame:
    budget = ctx.budget
    work = ctx.work
    bytes0, depth0 = work.spilled_bytes, work.respill_depth
    left = left.dense(work)
    right = right.dense(work)
    left = left.with_columns(
        {_LROW: Column(INT64, np.arange(left.nrows, dtype=np.int64))}
    )
    keep_rrow = how in ("inner", "left")
    if keep_rrow:
        right = right.with_columns(
            {_RROW: Column(INT64, np.arange(right.nrows, dtype=np.int64))}
        )
    _operators_counter.inc()
    spills = SpillSet(budget)
    try:
        out = _grace_join_level(
            left, right, left_on, right_on, how, ctx, spills, 0
        )
    finally:
        spills.cleanup()
    out = _restore_join_order(out, how, keep_rrow, ctx)
    note(
        ctx,
        spill="grace-join",
        spilled_bytes=work.spilled_bytes - bytes0,
        respills=work.respill_depth - depth0,
    )
    return out


def _grace_join_level(
    left, right, left_on, right_on, how, ctx, spills, depth
) -> Frame:
    budget = ctx.budget
    n_parts = choose_partitions(
        join_build_estimate(right),
        budget.available(),
        max(left.nrows, right.nrows),
        depth,
    )
    lkeys, rkeys = _join_partition_keys(left, right, left_on, right_on, ctx)
    lpids = _partition_ids(lkeys, n_parts, depth)
    rpids = _partition_ids(rkeys, n_parts, depth)
    ctx.work.ops += left.nrows + right.nrows  # hash + scatter
    ctx.work.seq_bytes += left.nbytes + right.nbytes  # partition pass streams both
    lparts = _partition_frame(left, lpids, n_parts)
    rparts = _partition_frame(right, rpids, n_parts)
    parent_rows = right.nrows
    pairs = []
    for lp, rp in zip(lparts, rparts):
        _check_cancel(ctx)
        pairs.append(
            (
                spills.write_frame(lp, ctx) if lp.nrows else lp,
                spills.write_frame(rp, ctx) if rp.nrows else rp,
            )
        )
    del left, right, lparts, rparts  # partitions now live on disk

    outputs = []
    for lref, rref in pairs:
        _check_cancel(ctx)
        lp = _load(spills, lref, ctx)
        rp = _load(spills, rref, ctx)
        child_estimate = join_build_estimate(rp)
        if (
            child_estimate > budget.available()
            and depth + 1 < MAX_SPILL_DEPTH
            and 0 < rp.nrows < parent_rows
        ):
            ctx.work.respill_depth += 1
            _respills_counter.inc()
            outputs.append(
                _grace_join_level(
                    lp, rp, left_on, right_on, how, ctx, spills, depth + 1
                )
            )
        else:
            with budget.charge(child_estimate):
                outputs.append(execute_join(lp, rp, left_on, right_on, how, ctx))
    return _concat(outputs)


def _restore_join_order(out: Frame, how: str, keep_rrow: bool, ctx) -> Frame:
    """Reorder the concatenated partition outputs into the serial join's
    exact emission order, then drop the transient row-id columns.

    The serial join emits match pairs ascending in (left row, right row)
    — its probe walks left rows in order and the build side's stable
    sort yields each key's matches ascending in right row — with outer
    misses appended last, ascending in left row, and semi/anti outputs
    simply filtered in left order.
    """
    lrow = out.column(_LROW).values
    if not keep_rrow:  # semi / anti
        order = np.argsort(lrow, kind="stable")
    else:
        rrow = out.column(_RROW)
        if rrow.valid is None:  # inner, or left outer with no misses
            order = np.lexsort((rrow.values, lrow))
        else:
            matched = rrow.valid
            m = np.flatnonzero(matched)
            u = np.flatnonzero(~matched)
            order = np.concatenate(
                [
                    m[np.lexsort((rrow.values[m], lrow[m]))],
                    u[np.argsort(lrow[u], kind="stable")],
                ]
            )
    out = out.take(order)
    ctx.work.ops += out.nrows  # the restoration sort
    columns = {
        name: col
        for name, col in out.columns.items()
        if name not in (_LROW, _RROW)
    }
    return Frame(columns, out.nrows)


# ----------------------------------------------------------------------
# Grace hash aggregation
# ----------------------------------------------------------------------


def _group_partition_keys(frame: Frame, group_by) -> np.ndarray:
    """Combined per-row group codes for partitioning. Uses the aggregate
    operator's own ``_key_codes`` (NULL is its own group, code 0), so a
    group can never straddle partitions — not ``_combine_keys``, which
    ignores validity masks."""
    code_arrays = []
    cards = []
    for name in group_by:
        codes, card = _key_codes(frame.column(name))
        code_arrays.append(codes)
        cards.append(card)
    combined = combine_codes(code_arrays, cards)
    return _to_uint64(combined)


def _grace_aggregate(frame, group_by, aggs, ctx) -> Frame:
    budget = ctx.budget
    work = ctx.work
    bytes0, depth0 = work.spilled_bytes, work.respill_depth
    frame = frame.dense(work)
    _operators_counter.inc()
    spills = SpillSet(budget)
    try:
        out = _grace_aggregate_level(frame, group_by, aggs, ctx, spills, 0)
    finally:
        spills.cleanup()
    if out.nrows > 1:
        # Restore the serial group order: every group appears exactly
        # once, so re-ranking the output keys (same per-column NULL-first
        # collation as the serial factorization) and sorting reproduces
        # `np.unique`'s ascending combined-code order.
        code_arrays = []
        cards = []
        for name in group_by:
            codes, card = _key_codes(out.column(name))
            code_arrays.append(codes)
            cards.append(card)
        order = np.argsort(combine_codes(code_arrays, cards), kind="stable")
        out = out.take(order)
        ctx.work.ops += out.nrows
    note(
        ctx,
        spill="grace-aggregate",
        spilled_bytes=work.spilled_bytes - bytes0,
        respills=work.respill_depth - depth0,
    )
    return out


def _grace_aggregate_level(frame, group_by, aggs, ctx, spills, depth) -> Frame:
    budget = ctx.budget
    n_parts = choose_partitions(
        aggregate_estimate(frame, group_by, aggs),
        budget.available(),
        frame.nrows,
        depth,
    )
    pids = _partition_ids(_group_partition_keys(frame, group_by), n_parts, depth)
    ctx.work.ops += frame.nrows
    ctx.work.seq_bytes += frame.nbytes
    parts = _partition_frame(frame, pids, n_parts)
    parent_rows = frame.nrows
    refs = []
    for part in parts:
        _check_cancel(ctx)
        refs.append(spills.write_frame(part, ctx) if part.nrows else part)
    del frame, parts

    outputs = []
    for ref in refs:
        _check_cancel(ctx)
        part = _load(spills, ref, ctx)
        child_estimate = aggregate_estimate(part, group_by, aggs)
        if (
            child_estimate > budget.available()
            and depth + 1 < MAX_SPILL_DEPTH
            and 0 < part.nrows < parent_rows
        ):
            ctx.work.respill_depth += 1
            _respills_counter.inc()
            outputs.append(
                _grace_aggregate_level(part, group_by, aggs, ctx, spills, depth + 1)
            )
        else:
            with budget.charge(child_estimate):
                outputs.append(
                    execute_aggregate(part, list(group_by), dict(aggs), ctx)
                )
    return _concat(outputs)
