"""Process-wide join-key factorization cache and key-combination helpers.

Joins and group-bys repeatedly factorize the same key arrays: every
execution of Q3 re-runs ``np.unique`` over ``orders.o_orderkey``, every
probe of the same build side re-sorts the same encoded keys. For
immutable tables (the engine's :class:`~repro.engine.table.Table` is
immutable, and unfiltered scans return the table-owned arrays zero-copy)
the factorization is a pure function of the backing array's identity, so
``(table id, column set, version)`` collapses to "the same ndarray
object" — which this cache keys on directly. Holding a strong reference
to the keyed array guarantees its ``id()`` cannot be recycled while the
entry lives, making identity checks sound.

The cache is process-wide and thread-safe (morsel workers share it), and
bounded both by entry count and by total cached bytes so transient
per-query arrays cannot pin unbounded memory. Eviction is FIFO — the
stable table-owned arrays that benefit re-enter on the next execution.

Also hosted here (shared by join, aggregate, and distinct):
:func:`combine_codes`, the overflow-safe mixed-radix code combiner. The
naive ``combined * card + codes`` scheme silently wraps int64 once the
product of key cardinalities reaches 2**63; this version detects that in
exact Python integers and falls back to lexicographic factorization,
which orders groups identically (mixed-radix mixing of per-column ranks
*is* the lexicographic order) at the cost of one ``lexsort``.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.obs.metrics import HitMissStats

__all__ = ["KeyCache", "combine_codes", "key_cache"]

_INT64_LIMIT = 2**63


def combine_codes(code_arrays: "list[np.ndarray]", cards: "list[int]") -> np.ndarray:
    """Mix per-column factorization codes into one int64 key per row.

    ``code_arrays[i]`` holds dense codes in ``[0, cards[i])`` for column
    ``i``. The combined key preserves lexicographic order of the code
    tuples (most-significant column first), so ``np.unique`` over it
    yields groups in the same order either path produces.
    """
    if not code_arrays:
        raise ValueError("need at least one code array")
    if len(code_arrays) == 1:
        return np.asarray(code_arrays[0], dtype=np.int64)
    product = 1
    for card in cards:
        product *= max(1, int(card))
    if product < _INT64_LIMIT:
        combined = np.zeros(len(code_arrays[0]), dtype=np.int64)
        for codes, card in zip(code_arrays, cards):
            combined = combined * np.int64(max(1, int(card))) + codes
        return combined
    return _lexicographic_codes(code_arrays)


def _lexicographic_codes(code_arrays: "list[np.ndarray]") -> np.ndarray:
    """Dense per-row codes ranking rows by their code tuple
    (lexicographic, first array most significant). Overflow-proof: ranks
    are bounded by the row count, not the cardinality product."""
    n = len(code_arrays[0])
    if n == 0:
        return np.empty(0, dtype=np.int64)
    order = np.lexsort(code_arrays[::-1])  # lexsort's last key is primary
    new_group = np.zeros(n, dtype=bool)
    new_group[0] = True
    for codes in code_arrays:
        in_order = codes[order]
        new_group[1:] |= in_order[1:] != in_order[:-1]
    ranks = np.cumsum(new_group) - 1
    combined = np.empty(n, dtype=np.int64)
    combined[order] = ranks
    return combined


class KeyCache:
    """Bounded, thread-safe cache of per-array factorizations and sort
    orders, keyed by array identity (see module docstring)."""

    def __init__(self, max_entries: int = 32, max_bytes: int = 256 * 1024 * 1024):
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self._lock = threading.Lock()
        # key -> (source_array, cached_value); insertion order = FIFO age.
        self._entries: dict[tuple[str, int], tuple[np.ndarray, object]] = {}
        self._bytes = 0
        self._stats = HitMissStats("engine.key_cache")

    @property
    def hits(self) -> int:
        return self._stats.hits

    @property
    def misses(self) -> int:
        return self._stats.misses

    # -- internals -----------------------------------------------------

    @staticmethod
    def _payload_bytes(source: np.ndarray, value) -> int:
        total = source.nbytes
        for part in value if isinstance(value, tuple) else (value,):
            if isinstance(part, np.ndarray):
                total += part.nbytes
        return total

    def _lookup(self, kind: str, array: np.ndarray):
        key = (kind, id(array))
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None and entry[0] is array:
                self._stats.hit()
                return entry[1]
            self._stats.miss()
            return None

    def _store(self, kind: str, array: np.ndarray, value) -> None:
        size = self._payload_bytes(array, value)
        if size > self.max_bytes:
            return
        key = (kind, id(array))
        with self._lock:
            if key in self._entries:
                return
            while self._entries and (
                len(self._entries) >= self.max_entries
                or self._bytes + size > self.max_bytes
            ):
                old_key = next(iter(self._entries))
                old_source, old_value = self._entries.pop(old_key)
                self._bytes -= self._payload_bytes(old_source, old_value)
            self._entries[key] = (array, value)
            self._bytes += size

    # -- cached computations -------------------------------------------

    def factorize(self, array: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """``(uniques, codes)`` of ``np.unique(array, return_inverse=True)``,
        cached by array identity."""
        cached = self._lookup("factorize", array)
        if cached is not None:
            return cached
        uniques, codes = np.unique(array, return_inverse=True)
        codes = codes.astype(np.int64, copy=False).reshape(array.shape)
        value = (uniques, codes)
        self._store("factorize", array, value)
        return value

    def sort_order(self, array: np.ndarray) -> np.ndarray:
        """Stable argsort of ``array``, cached by array identity (the
        build-side ordering a repeated hash-join probe reuses)."""
        cached = self._lookup("sort_order", array)
        if cached is not None:
            return cached
        order = np.argsort(array, kind="stable")
        self._store("sort_order", array, order)
        return order

    # -- management ----------------------------------------------------

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._bytes = 0
            self._stats.reset_local()

    def stats(self) -> dict:
        """Deterministic (key-sorted) cache statistics."""
        with self._lock:
            return {
                "bytes": self._bytes,
                "entries": len(self._entries),
                "hits": self._stats.hits,
                "misses": self._stats.misses,
            }


# The process-wide instance every executor shares.
key_cache = KeyCache()
