"""Encoded-domain execution: predicates and aggregates on compressed columns.

The paper's §III-C2 trade (cheap cycles for scarce bytes) only pays off
fully when the engine *stays* in the compressed domain. This module
compiles predicate conjuncts and whole aggregations to run directly on
the encoded payloads from :mod:`repro.engine.compression`:

* **Constant translation.** ``decode`` is monotone nondecreasing in the
  stored integer for every supported encoding (identity for INT64/DATE,
  ``k / scale`` for fixed-point floats), so the true-set of
  ``v <op> c`` is a prefix/suffix/interval of the stored domain. A
  ~64-step bisection — probing with the *exact* decode-path comparison
  on a one-element array — finds the stored-int interval, which then
  evaluates as clamped comparisons on the narrow packed dtype (bitpack),
  per-block with references (FoR), or once per *run* (RLE).
* **Dictionary masks.** String predicates (=, !=, <, …, IN, LIKE)
  evaluate once per dictionary entry — byte-for-byte the same kernel
  :mod:`repro.engine.expr` uses — and the boolean mask is indexed by the
  packed codes without materializing an int64 code array.
* **RLE aggregation.** SUM/AVG/COUNT/MIN/MAX over run-length-encoded
  inputs reduce over ``(value, run_length)`` segments, and a group-by on
  a low-cardinality RLE key builds group ids from runs instead of
  per-row hashing. Only shapes whose float accumulation is provably
  bit-identical to the decode path are compiled (integer sums bounded
  by 2**53; monotone min/max); everything else falls back.

Every compile step is wrapped so *any* surprise — unsupported shape,
overflow raised by the probe, a missing column — lands on the ordinary
decode-then-eval path, which reproduces the legacy behavior (including
its exceptions) exactly. Hit/miss counts report into the process-wide
metrics registry under ``engine.encoded.*``.
"""

from __future__ import annotations

import numpy as np

from repro.obs.metrics import HitMissStats

from .column import Column
from .compression import CompressedColumn, rle_overlap
from .expr import _DATE_RE, Cmp, ColRef, Expr, InList, Like, Literal
from .types import DATE, FLOAT64, INT64, STRING, date_to_days

__all__ = [
    "compile_conjunct",
    "compile_predicate",
    "classify_conjuncts",
    "prepare_aggregate",
    "EncodedConjunct",
    "EncodedAggregatePlan",
    "predicate_stats",
    "aggregate_stats",
]

# Process-wide encoded-vs-decode dispatch outcomes, mirrored into the
# metrics registry (visible in ``repro trace``) like the cache stats.
predicate_stats = HitMissStats("engine.encoded.predicate")
aggregate_stats = HitMissStats("engine.encoded.aggregate")

# Encodings with random access / run structure the kernels understand.
# Delta stays out: its prefix sums have no packed-domain comparison.
_SUPPORTED = frozenset({"bitpack", "for", "rle"})

_UFUNCS = Cmp._OPS

# Integer sums stay exact in float64 only while every partial sum fits
# the 53-bit mantissa; beyond that accumulation order matters and the
# run-weighted sum would drift from the decode path's per-row bincount.
_EXACT_SUM_BOUND = 2 ** 53

# RLE kernels win when runs are long; past this many runs the per-run
# bookkeeping (and the exactness audit) stops being worth it.
_MAX_AGG_RUNS = 65536


def _encodable(col) -> bool:
    return isinstance(col, CompressedColumn) and col.encoding_name in _SUPPORTED


# -- Constant translation (bisection over the stored-int domain) --------


def _stored_bounds(col: CompressedColumn) -> tuple[int, int]:
    """The representable stored-integer domain for ``col``'s physical
    type: int32 for DATE (bisecting over int64 would wrap through the
    int32 cast and break monotonicity), int64 otherwise (fixed-point
    floats store int64 cents)."""
    np_dtype = np.dtype(col.dtype.numpy_dtype)
    if col.scale is None and np_dtype.kind == "i":
        info = np.iinfo(np_dtype)
    else:
        info = np.iinfo(np.int64)
    return int(info.min), int(info.max)


def _probe(col: CompressedColumn, v: int) -> np.ndarray:
    """Decode the stored int ``v`` through the exact cast chain the full
    ``decode`` applies, as a one-element array (so ufunc type promotion
    against the literal matches the decode path bit-for-bit)."""
    if col.scale is not None:
        return (np.asarray([v], dtype=np.int64) / col.scale).astype(np.float64)
    return np.asarray([v], dtype=np.int64).astype(col.dtype.numpy_dtype)


def _first_true(pred, lo: int, hi: int) -> int | None:
    """Smallest v in [lo, hi] with pred(v), for monotone False→True pred."""
    if not pred(hi):
        return None
    if pred(lo):
        return lo
    while lo + 1 < hi:
        mid = (lo + hi) // 2
        if pred(mid):
            hi = mid
        else:
            lo = mid
    return hi


def _last_true(pred, lo: int, hi: int) -> int | None:
    """Largest v in [lo, hi] with pred(v), for monotone True→False pred."""
    if not pred(lo):
        return None
    if pred(hi):
        return hi
    while lo + 1 < hi:
        mid = (lo + hi) // 2
        if pred(mid):
            lo = mid
        else:
            hi = mid
    return lo


def _translate_range(col: CompressedColumn, op: str, rv) -> tuple[int, int, bool]:
    """Translate ``decode(v) <op> rv`` into a stored-int interval.

    Returns ``(a, b, negate)``: stored ``v`` satisfies the comparison iff
    ``(a <= v <= b) != negate`` (``a > b`` encodes the empty interval).
    Correct because decode is monotone nondecreasing, so each
    comparison's true-set is a prefix, suffix, or interval of the stored
    domain. Probes use the same ufunc/dtypes as the decode path, so NaN
    literals, promotion quirks, and overflow errors behave identically.
    """
    ufunc = _UFUNCS[op]
    lo, hi = _stored_bounds(col)
    if op in (">", ">="):
        a = _first_true(lambda v: bool(ufunc(_probe(col, v), rv)[0]), lo, hi)
        return (1, 0, False) if a is None else (a, hi, False)
    if op in ("<", "<="):
        b = _last_true(lambda v: bool(ufunc(_probe(col, v), rv)[0]), lo, hi)
        return (1, 0, False) if b is None else (lo, b, False)
    # == / !=: the preimage of rv is the interval [first >= rv, last <= rv].
    a = _first_true(lambda v: bool(np.greater_equal(_probe(col, v), rv)[0]), lo, hi)
    b = _last_true(lambda v: bool(np.less_equal(_probe(col, v), rv)[0]), lo, hi)
    if a is None or b is None or a > b:
        a, b = 1, 0
    return (a, b, op == "!=")


# -- Compiled conjuncts -------------------------------------------------


class EncodedConjunct:
    """One predicate conjunct compiled against one encoded column.

    ``mask(lo, hi, work)`` returns the boolean row mask for rows
    ``[lo, hi)`` — elementwise identical to evaluating the original
    conjunct on the decoded slice — without materializing the int64
    value array. Subclasses provide the per-run and packed kernels.
    """

    __slots__ = ("name", "col")

    def __init__(self, name: str, col: CompressedColumn):
        self.name = name
        self.col = col

    def _runs_mask(self, run_values: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def _packed_mask(self, packed: np.ndarray, base: int) -> np.ndarray:
        raise NotImplementedError

    def mask(self, lo: int, hi: int, work) -> np.ndarray:
        col = self.col
        work.encoded_eval_rows += hi - lo
        kind = col.encoding_name
        if kind == "rle":
            run_values, lengths = col.base_payload
            values, clipped, i0, i1 = rle_overlap(run_values, lengths, lo, hi)
            work.runs_touched += i1 - i0
            return np.repeat(self._runs_mask(values), clipped)
        if kind == "bitpack":
            base, packed = col.base_payload
            work.runs_touched += 1
            return self._packed_mask(packed[lo:hi], base)
        # frame-of-reference: one clamped comparison per overlapped block
        refs, blocks = col.base_payload
        block = col.base_encoding.block
        first = lo // block
        last = min(-(-hi // block), len(blocks))
        parts = []
        for b in range(first, last):
            seg = blocks[b]
            s = max(lo - b * block, 0)
            e = min(hi - b * block, len(seg))
            parts.append(self._packed_mask(seg[s:e], refs[b]))
        work.runs_touched += max(0, last - first)
        if not parts:
            return np.zeros(0, dtype=bool)
        return parts[0] if len(parts) == 1 else np.concatenate(parts)


class _RangeConjunct(EncodedConjunct):
    """Numeric comparison as a stored-int interval test."""

    __slots__ = ("a", "b", "negate")

    def __init__(self, name, col, a: int, b: int, negate: bool):
        super().__init__(name, col)
        self.a = a
        self.b = b
        self.negate = negate

    def _runs_mask(self, run_values):
        m = (run_values >= self.a) & (run_values <= self.b)
        return ~m if self.negate else m

    def _packed_mask(self, packed, base):
        info = np.iinfo(packed.dtype)
        pa, pb = self.a - base, self.b - base
        if pb < 0 or pa > int(info.max):
            m = np.zeros(len(packed), dtype=bool)
        else:
            pa = max(pa, 0)
            pb = min(pb, int(info.max))
            if pa == 0 and pb == int(info.max):
                m = np.ones(len(packed), dtype=bool)
            elif pa == 0:
                m = packed <= packed.dtype.type(pb)
            elif pb == int(info.max):
                m = packed >= packed.dtype.type(pa)
            else:
                m = (packed >= packed.dtype.type(pa)) & (packed <= packed.dtype.type(pb))
        return ~m if self.negate else m


class _DictMaskConjunct(EncodedConjunct):
    """String predicate as a per-dictionary-entry mask indexed by codes."""

    __slots__ = ("dict_mask",)

    def __init__(self, name, col, dict_mask: np.ndarray):
        super().__init__(name, col)
        self.dict_mask = np.asarray(dict_mask, dtype=bool)

    def _runs_mask(self, run_values):
        return self.dict_mask[run_values]

    def _packed_mask(self, packed, base):
        # Codes and references are non-negative, so shifting the mask by
        # ``base`` lets the narrow packed array index it directly.
        sub = self.dict_mask[base:] if base else self.dict_mask
        return sub[packed]


class _InListRunsConjunct(EncodedConjunct):
    """Numeric IN-list, one membership test per RLE run.

    Restricted to RLE because ``np.isin`` promotes through a common
    type; mirroring that promotion per *run value* is exact, but there
    is no equivalent comparison in the packed domain.
    """

    __slots__ = ("values",)

    def __init__(self, name, col, values: np.ndarray):
        super().__init__(name, col)
        self.values = values

    def _runs_mask(self, run_values):
        col = self.col
        if col.scale is not None:
            decoded = (run_values / col.scale).astype(np.float64)
        else:
            decoded = run_values.astype(col.dtype.numpy_dtype)
        return np.isin(decoded, self.values)

    def _packed_mask(self, packed, base):  # pragma: no cover - rle only
        raise NotImplementedError("IN-list compiles for RLE columns only")


def compile_conjunct(conjunct: Expr, table) -> EncodedConjunct | None:
    """Compile one conjunct for encoded evaluation; ``None`` → decode.

    Never raises: a probe overflow, a type mismatch, or a missing
    column simply routes the conjunct to the decode path, which then
    reproduces whatever the legacy evaluation would have done.
    """
    try:
        return _compile(conjunct, table)
    except Exception:
        return None


def _compile(conjunct: Expr, table) -> EncodedConjunct | None:
    if isinstance(conjunct, Cmp):
        if not (isinstance(conjunct.left, ColRef) and isinstance(conjunct.right, Literal)):
            return None
        name = conjunct.left.name
        col = table.column(name)
        if not _encodable(col):
            return None
        rv = conjunct.right.value
        ufunc = _UFUNCS[conjunct.op]
        if col.dtype is STRING:
            if not isinstance(rv, str):
                return None
            return _DictMaskConjunct(name, col, ufunc(col.dictionary.astype(str), rv))
        if col.dtype is DATE and isinstance(rv, str) and _DATE_RE.match(rv):
            rv = date_to_days(rv)
        a, b, neg = _translate_range(col, conjunct.op, rv)
        return _RangeConjunct(name, col, a, b, neg)
    if isinstance(conjunct, InList):
        if not isinstance(conjunct.operand, ColRef):
            return None
        name = conjunct.operand.name
        col = table.column(name)
        if not _encodable(col):
            return None
        if col.dtype is STRING:
            wanted = set(conjunct.values)
            return _DictMaskConjunct(
                name, col, np.asarray([s in wanted for s in col.dictionary])
            )
        if col.encoding_name != "rle":
            return None
        vals = conjunct.values
        if col.dtype is DATE:
            vals = [date_to_days(v) if isinstance(v, str) else v for v in vals]
        return _InListRunsConjunct(name, col, np.asarray(vals))
    if isinstance(conjunct, Like):
        if not isinstance(conjunct.operand, ColRef):
            return None
        name = conjunct.operand.name
        col = table.column(name)
        if not _encodable(col) or col.dtype is not STRING:
            return None
        regex = conjunct._regex
        return _DictMaskConjunct(
            name, col, np.asarray([regex.match(s) is not None for s in col.dictionary])
        )
    return None


def _touches_compressed(conjunct: Expr, table) -> bool:
    try:
        return any(
            isinstance(table.column(n), CompressedColumn)
            for n in conjunct.references()
        )
    except Exception:
        return False


def compile_predicate(
    conjuncts: list[Expr], table
) -> tuple[list[EncodedConjunct], list[Expr]]:
    """Split ``conjuncts`` into compiled encoded plans and a residual
    list for decode-then-eval, recording dispatch outcomes (a miss is
    only counted when the conjunct actually reads compressed data)."""
    plans: list[EncodedConjunct] = []
    residual: list[Expr] = []
    for conjunct in conjuncts:
        plan = compile_conjunct(conjunct, table)
        if plan is not None:
            plans.append(plan)
            predicate_stats.hit()
        else:
            residual.append(conjunct)
            if _touches_compressed(conjunct, table):
                predicate_stats.miss()
    return plans, residual


def classify_conjuncts(predicate: Expr, table) -> tuple[int, int]:
    """(encoded, decode) conjunct counts for ``explain`` tags — a pure
    dry-run that records no metrics."""
    from .zonemap import split_conjuncts

    conjuncts = split_conjuncts(predicate)
    encoded = sum(1 for c in conjuncts if compile_conjunct(c, table) is not None)
    return encoded, len(conjuncts) - encoded


# -- RLE-aware aggregation ---------------------------------------------


def _run_starts(col: CompressedColumn) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(run_values, run_starts, run_lengths) of an RLE column."""
    run_values, lengths = col.base_payload
    ends = np.cumsum(lengths)
    return run_values, ends - lengths, lengths


def _abs_weighted_total(values: np.ndarray, lengths: np.ndarray) -> int:
    """Exact Σ|v_i|·len_i as a Python int (the 2**53 audit)."""
    return sum(abs(int(v)) * int(l) for v, l in zip(values.tolist(), lengths.tolist()))


def _rle_input(col, funcs: set[str]) -> bool:
    """Can every aggregate in ``funcs`` run over this column's runs with
    bit-identical results?"""
    if not (isinstance(col, CompressedColumn) and col.encoding_name == "rle"):
        return False
    run_values, lengths = col.base_payload
    if len(run_values) > _MAX_AGG_RUNS:
        return False
    if funcs & {"sum", "avg"}:
        # Integer inputs only, with every partial sum exact in float64:
        # then the run-weighted bincount equals the per-row bincount.
        if col.scale is not None or col.dtype not in (INT64, DATE):
            return False
        if _abs_weighted_total(run_values, lengths) >= _EXACT_SUM_BOUND:
            return False
    if funcs & {"min", "max"}:
        if col.dtype not in (INT64, DATE, FLOAT64):
            return False
    return True


class EncodedAggregatePlan:
    """A whole predicate-free scan+aggregate compiled to run over runs."""

    def __init__(self, table, group_by, aggs, key, inputs):
        self.table = table
        self.group_by = group_by
        self.aggs = aggs
        self.key = key  # RLE CompressedColumn, or None for global
        self.inputs = inputs  # agg name -> RLE CompressedColumn | None

    # - execution ------------------------------------------------------

    def execute(self, ctx) -> "Frame":
        from .frame import Frame  # local import keeps module deps acyclic

        table, aggs = self.table, self.aggs
        n = table.nrows
        scan_work = ctx.begin_operator("scan")
        streamed: set[int] = set()
        for col in [self.key, *self.inputs.values()]:
            if col is not None and id(col) not in streamed:
                streamed.add(id(col))
                scan_work.seq_bytes += col.nbytes
        scan_work.tuples_in += n
        scan_work.tuples_out += n

        work = ctx.begin_operator("aggregate")
        if self.key is None:
            out_columns, segments, runs = self._global(work)
            n_groups = 1
        else:
            out_columns, segments, runs, n_groups = self._grouped(work)
        out = Frame(out_columns, n_groups)
        work.tuples_in += n
        work.tuples_out += n_groups
        work.ops += segments * max(1, len(aggs)) + n_groups
        work.runs_touched += runs
        work.seq_bytes += segments * 16  # one (value, length) pair each
        work.out_bytes += out.nbytes
        from repro.obs.trace import note

        note(ctx, groups=n_groups, aggs=len(aggs), encoded=True)
        return out

    def _grouped(self, work):
        n = self.table.nrows
        kvals, kstarts, klens = _run_starts(self.key)
        # Sorted-unique factorization — the same group order the decode
        # path gets from key_cache.factorize (np.unique over values).
        uniq, run_gids = np.unique(kvals, return_inverse=True)
        n_groups = len(uniq)
        counts = np.zeros(n_groups, dtype=np.int64)
        np.add.at(counts, run_gids, klens)
        segments = len(kvals)
        runs = len(kvals)

        out_columns: dict[str, Column] = {}
        kd = self.key.dtype
        if kd is STRING:
            key_col = Column(STRING, uniq.astype(np.int32), dictionary=self.key.dictionary)
        elif kd is DATE:
            key_col = Column(DATE, uniq.astype(np.int32))
        else:
            key_col = Column(INT64, uniq)
        out_columns[self.group_by[0]] = key_col

        for name, spec in self.aggs.items():
            if spec.func in ("count_star", "count"):
                out_columns[name] = Column(INT64, counts.astype(np.int64))
                continue
            ccol = self.inputs[name]
            ivals, istarts, _ = _run_starts(ccol)
            runs += len(ivals)
            # Merge key and input run boundaries into homogeneous
            # segments: constant group id and constant value inside each.
            starts = np.union1d(kstarts, istarts)
            seg_len = np.diff(np.append(starts, n))
            seg_gid = run_gids[np.searchsorted(kstarts, starts, side="right") - 1]
            seg_val = ivals[np.searchsorted(istarts, starts, side="right") - 1]
            segments += len(starts)
            if spec.func == "sum":
                weights = (seg_val * seg_len).astype(np.float64)
                sums = np.bincount(seg_gid, weights=weights, minlength=n_groups)
                out_columns[name] = Column(FLOAT64, sums)
            elif spec.func == "avg":
                weights = (seg_val * seg_len).astype(np.float64)
                sums = np.bincount(seg_gid, weights=weights, minlength=n_groups)
                with np.errstate(invalid="ignore", divide="ignore"):
                    out_columns[name] = Column(FLOAT64, sums / counts)
            else:  # min / max
                if ccol.scale is not None:
                    decoded = (seg_val / ccol.scale).astype(np.float64)
                else:
                    decoded = seg_val.astype(np.float64)
                init = np.inf if spec.func == "min" else -np.inf
                out = np.full(n_groups, init, dtype=np.float64)
                if spec.func == "min":
                    np.minimum.at(out, seg_gid, decoded)
                else:
                    np.maximum.at(out, seg_gid, decoded)
                out[~np.isfinite(out)] = np.nan
                if ccol.dtype is INT64:
                    safe = np.where(np.isnan(out), 0, out)
                    out_columns[name] = Column(
                        INT64,
                        safe.astype(np.int64),
                        valid=~np.isnan(out) if np.isnan(out).any() else None,
                    )
                else:
                    out_columns[name] = Column(FLOAT64, out)
        return out_columns, segments, runs, n_groups

    def _global(self, work):
        n = self.table.nrows
        out_columns: dict[str, Column] = {}
        segments = runs = 0
        for name, spec in self.aggs.items():
            if spec.func in ("count_star", "count"):
                out_columns[name] = Column(INT64, np.asarray([n], dtype=np.int64))
                continue
            ccol = self.inputs[name]
            ivals, lengths = ccol.base_payload
            runs += len(ivals)
            segments += len(ivals)
            if spec.func in ("sum", "avg"):
                total = sum(
                    int(v) * int(l) for v, l in zip(ivals.tolist(), lengths.tolist())
                )
                if spec.func == "sum":
                    out_columns[name] = Column(FLOAT64, np.asarray([float(total)]))
                else:
                    with np.errstate(invalid="ignore", divide="ignore"):
                        out_columns[name] = Column(
                            FLOAT64, np.asarray([float(total)]) / float(n)
                        )
            else:  # min / max
                stored = int(ivals.min() if spec.func == "min" else ivals.max())
                extreme = float(_probe(self.inputs[name], stored).astype(np.float64)[0])
                out = np.asarray([extreme])
                if ccol.dtype is INT64:
                    safe = np.where(np.isnan(out), 0, out)
                    out_columns[name] = Column(
                        INT64,
                        safe.astype(np.int64),
                        valid=~np.isnan(out) if np.isnan(out).any() else None,
                    )
                else:
                    out_columns[name] = Column(FLOAT64, out)
        return out_columns, segments, runs


def prepare_aggregate(table, group_by: list[str], aggs: dict) -> EncodedAggregatePlan | None:
    """Compile a predicate-free scan+aggregate for run-level execution.

    Returns ``None`` whenever exactness cannot be proven — multi-key
    grouping, non-RLE or float-summed inputs, expression (non-ColRef)
    aggregates, nullable count inputs, empty tables — and the caller
    falls back to the row-at-a-time decode path.
    """
    try:
        return _prepare_aggregate(table, group_by, aggs)
    except Exception:
        return None


def _prepare_aggregate(table, group_by, aggs) -> EncodedAggregatePlan | None:
    if table.nrows == 0 or len(group_by) > 1 or not aggs:
        return None
    key = None
    if group_by:
        key = table.column(group_by[0])
        if not (isinstance(key, CompressedColumn) and key.encoding_name == "rle"):
            return None
        # FLOAT64 keys fall back: distinct stored cents may decode to
        # equal floats at large magnitudes, changing the grouping.
        if key.scale is not None or key.dtype not in (INT64, DATE, STRING):
            return None
        if len(key.base_payload[0]) > _MAX_AGG_RUNS:
            return None

    inputs: dict[str, CompressedColumn | None] = {}
    for name, spec in aggs.items():
        if spec.func == "count_star":
            inputs[name] = None
            continue
        if spec.expr is None or not isinstance(spec.expr, ColRef):
            return None
        col = table.column(spec.expr.name)
        if spec.func == "count":
            # COUNT over never-null input is the group size; compressed
            # columns are built non-null, plain ones must prove it.
            if isinstance(col, CompressedColumn) or getattr(col, "valid", True) is None:
                inputs[name] = None
                continue
            return None
        if spec.func not in ("sum", "avg", "min", "max"):
            return None
        if not _rle_input(col, {spec.func}):
            return None
        inputs[name] = col
    return EncodedAggregatePlan(table, list(group_by), dict(aggs), key, inputs)
