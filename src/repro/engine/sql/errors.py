"""The SQL frontend's single controlled failure mode.

Every malformed, unsupported, or hostile input — lexer garbage,
truncated statements, unknown tables, pathological nesting — surfaces
as exactly one exception type, :class:`SqlError`, carrying the source
position it was detected at. Nothing that flows through
:func:`repro.engine.sql.parse` may escape as a ``KeyError``,
``IndexError``, ``ValueError``, or ``RecursionError``: a query server
front door catches one class, returns one error shape, and stays up.

``internal=True`` marks errors manufactured by the last-resort guard in
:func:`~repro.engine.sql.parser.parse` around an unexpected exception.
The fuzz suite (``tests/engine/test_sql_fuzz.py``) asserts no input
produces an internal error, so the guard is a production safety net,
not a blanket that hides parser bugs from the tests.
"""

from __future__ import annotations

__all__ = ["SqlError", "SqlSyntaxError"]


class SqlError(ValueError):
    """Raised on any malformed or unsupported SQL (lexing, parsing, or
    planning). The only exception :func:`repro.engine.sql.parse` raises."""

    def __init__(
        self,
        message: str,
        *,
        line: int | None = None,
        column: int | None = None,
        internal: bool = False,
    ):
        self.line = line
        self.column = column
        self.internal = internal
        if line is not None and column is not None:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)


# Historical name, kept as an alias so existing imports and exception
# handlers keep working.
SqlSyntaxError = SqlError
